//! Integration umbrella for the `refminer` workspace.
//!
//! This crate exists to host the cross-crate integration tests in
//! `tests/` and the runnable examples in `examples/`. The actual library
//! surface lives in the [`refminer`] facade crate and the per-subsystem
//! crates it re-exports.

pub use refminer;

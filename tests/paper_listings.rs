//! Every code listing of the paper, pushed through the pipeline: the
//! checkers must reproduce each listed bug (and stay quiet on the
//! corrected variants).

use refminer::checkers::{check_unit, AntiPattern, Impact};
use refminer::cparse::parse_str;
use refminer::cpg::FunctionGraph;
use refminer::rcapi::ApiKb;
use refminer::template::{parse_template, TemplateMatcher};

fn findings(src: &str) -> Vec<refminer::Finding> {
    let tu = parse_str("listing.c", src);
    check_unit(&tu, &ApiKb::builtin())
}

/// Listing 1 — the NVMEM missing-refcounting bug: `bus_find_device`
/// embeds an increment the error path never undoes.
#[test]
fn listing_1_nvmem_missing_refcounting() {
    let f = findings(
        r#"
struct nvmem_device *__nvmem_device_get(struct device_node *np)
{
        struct device *dev;
        dev = bus_find_device(&nvmem_bus_type, NULL, np, of_nvmem_match);
        if (!dev)
                return ERR_PTR(-EPROBE_DEFER);
        if (any_error)
                return ERR_PTR(-EINVAL);
        return to_nvmem_device(dev);
}
"#,
    );
    assert!(
        f.iter()
            .any(|x| x.pattern == AntiPattern::P4 && x.api == "bus_find_device"),
        "got {f:?}"
    );
}

/// Listing 2 — the USB serial misplacing-refcounting bug: the unlock
/// dereferences `serial` after `usb_serial_put` may have freed it.
#[test]
fn listing_2_usb_console_uad() {
    let f = findings(
        r#"
static int usb_console_setup(struct console *co, char *options)
{
        usb_serial_put(serial);
        mutex_unlock(&serial->disc_mutex);
        return retval;
}
"#,
    );
    assert!(
        f.iter().any(|x| {
            x.pattern == AntiPattern::P8
                && x.impact == Impact::Uaf
                && x.object.as_deref() == Some("serial")
        }),
        "got {f:?}"
    );
}

/// Listing 3 — the Return-Error deviation: `pm_runtime_get_sync`
/// increments even on failure; the caller's early return leaks.
#[test]
fn listing_3_stm32_return_error() {
    let f = findings(
        r#"
static int stm32_crc_remove(struct platform_device *pdev)
{
        struct stm32_crc *crc = platform_get_drvdata(pdev);
        int ret = pm_runtime_get_sync(crc->dev);
        if (ret < 0)
                return ret;
        crc_shutdown(crc);
        pm_runtime_put(crc->dev);
        return 0;
}
"#,
    );
    assert!(
        f.iter()
            .any(|x| x.pattern == AntiPattern::P1 && x.api == "pm_runtime_get_sync"),
        "got {f:?}"
    );
}

/// Listing 4 — the smartloop break bug in the Broadcom PM driver.
#[test]
fn listing_4_brcmstb_smartloop_break() {
    let f = findings(
        r#"
static int brcmstb_pm_probe(struct platform_device *pdev)
{
        struct device_node *dn;
        int i = 0;
        for_each_matching_node(dn, sram_dt_ids) {
                ctrl.memcs[i] = of_iomap(dn, 0);
                if (!ctrl.memcs[i])
                        break;
                i++;
        }
        return 0;
}
"#,
    );
    assert!(
        f.iter()
            .any(|x| { x.pattern == AntiPattern::P3 && x.api == "for_each_matching_node" }),
        "got {f:?}"
    );
}

/// Listing 5 — the lpfc false positive: the conditional get inside the
/// list iteration is guarded by the later NULL-equivalent check. Our
/// checkers must not flag `lpfc_bsg_event_ref` here (the paper's tool
/// did — it was one of their 5 FPs).
#[test]
fn listing_5_lpfc_event_shape() {
    let f = findings(
        r#"
static int lpfc_bsg_hba_set_event(struct bsg_job *job)
{
        struct lpfc_bsg_event *evt;
        list_for_each_entry(evt, &phba->ct_ev_waiters, node) {
                if (evt->reg_id == event_req->ev_reg_id)
                        lpfc_bsg_event_ref(evt);
        }
        if (&evt->node == &phba->ct_ev_waiters) {
                evt = lpfc_bsg_event_new(ev_mask);
        }
        return evt ? 0 : -ENOMEM;
}
"#,
    );
    assert!(
        !f.iter().any(|x| x.api == "lpfc_bsg_event_ref"),
        "the Listing 5 shape must not be flagged: {f:?}"
    );
}

/// Listing 6 — the `ping_unhash` UAD the developers disputed: the
/// checkers report it (as the paper's did; the patch was rejected).
#[test]
fn listing_6_ping_unhash_uad() {
    let f = findings(
        r#"
void ping_unhash(struct sock *sk)
{
        sock_put(sk);
        isk->inet_num = 0;
        isk->inet_sport = 0;
        sock_prot_inuse_add(net, sk->sk_prot, -1);
}
"#,
    );
    assert!(
        f.iter()
            .any(|x| { x.pattern == AntiPattern::P8 && x.object.as_deref() == Some("sk") }),
        "got {f:?}"
    );
}

/// Table 1 — both semantic templates match their listings through the
/// generic template matcher (independent of the specialized checkers).
#[test]
fn table_1_templates_match_listings() {
    let kb = ApiKb::builtin();
    let matcher = TemplateMatcher::new(&kb);

    let tu = parse_str(
        "l1.c",
        r#"
struct nvmem_device *__nvmem_device_get(struct device_node *np)
{
        struct device *dev = bus_find_device(&bus, NULL, np, match_fn);
        if (!dev)
                return ERR_PTR(-EPROBE_DEFER);
        return to_nvmem_device(dev);
}
"#,
    );
    let g = FunctionGraph::build(tu.function("__nvmem_device_get").unwrap());
    let t1 = parse_template("F_start -> S_G -> B_error -> F_end").unwrap();
    assert_eq!(matcher.find(&t1, &g).len(), 1);

    let tu = parse_str(
        "l2.c",
        r#"
static int usb_console_setup(struct usb_serial *serial)
{
        usb_serial_put(serial);
        mutex_unlock(&serial->disc_mutex);
        return 0;
}
"#,
    );
    let g = FunctionGraph::build(tu.function("usb_console_setup").unwrap());
    let t2 = parse_template("F_start -> S_P(p0) -> S_{U.D}(p0) -> F_end").unwrap();
    let matches = matcher.find(&t2, &g);
    assert_eq!(matches.len(), 1);
    assert_eq!(matches[0].bindings[0].1, "serial");
}

/// The corrected variants of the listings stay clean.
#[test]
fn corrected_listings_are_clean() {
    // Listing 1, fixed: put_device on the error path.
    let f = findings(
        r#"
struct nvmem_device *__nvmem_device_get(struct device_node *np)
{
        struct device *dev = bus_find_device(&bus, NULL, np, match_fn);
        if (!dev)
                return ERR_PTR(-EPROBE_DEFER);
        if (any_error) {
                put_device(dev);
                return ERR_PTR(-EINVAL);
        }
        return to_nvmem_device(dev);
}
"#,
    );
    assert!(f.is_empty(), "fixed listing 1 flagged: {f:?}");

    // Listing 2, fixed: unlock before the put.
    let f = findings(
        r#"
static int usb_console_setup(struct usb_serial *serial)
{
        mutex_unlock(&serial->disc_mutex);
        usb_serial_put(serial);
        return 0;
}
"#,
    );
    assert!(f.is_empty(), "fixed listing 2 flagged: {f:?}");

    // Listing 3, fixed: put_noidle on the error path.
    let f = findings(
        r#"
static int stm32_crc_remove(struct platform_device *pdev)
{
        int ret = pm_runtime_get_sync(pdev->dev.parent);
        if (ret < 0) {
                pm_runtime_put_noidle(pdev->dev.parent);
                return ret;
        }
        pm_runtime_put(pdev->dev.parent);
        return 0;
}
"#,
    );
    assert!(f.is_empty(), "fixed listing 3 flagged: {f:?}");

    // Listing 4, fixed: put before the break.
    let f = findings(
        r#"
static int brcmstb_pm_probe(struct platform_device *pdev)
{
        struct device_node *dn;
        for_each_matching_node(dn, sram_dt_ids) {
                if (!try_map(dn)) {
                        of_node_put(dn);
                        break;
                }
        }
        return 0;
}
"#,
    );
    assert!(f.is_empty(), "fixed listing 4 flagged: {f:?}");
}

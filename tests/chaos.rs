//! Chaos-injection integration suite.
//!
//! The contract under test: the audit pipeline, fed a tree with seeded
//! corruption, (1) never panics, (2) contains the damage — uncorrupted
//! files produce exactly the findings a clean run produces — and
//! (3) reports per-file diagnostics that point at the corrupted files
//! and nothing else.

use std::collections::BTreeSet;

use refminer::corpus::{
    apply_chaos, generate_tree, ChaosConfig, ChaosCorpus, MutationKind, SyntheticTree, TreeConfig,
};
use refminer::{audit, AuditConfig, AuditReport, Finding, Project, UnitErrorKind};

fn small_tree() -> SyntheticTree {
    generate_tree(&TreeConfig {
        scale: 0.03,
        include_tricky: false,
        ..Default::default()
    })
}

fn chaos_with(kind: MutationKind, ratio: f64) -> (SyntheticTree, ChaosCorpus) {
    let tree = small_tree();
    let chaos = apply_chaos(
        &tree,
        &ChaosConfig {
            ratio,
            kinds: vec![kind],
            ..Default::default()
        },
    );
    (tree, chaos)
}

fn audit_corpus(chaos: &ChaosCorpus, discover: bool) -> AuditReport {
    let project = Project::from_sources(chaos.to_sources());
    audit(
        &project,
        &AuditConfig {
            discover_apis: discover,
            ..Default::default()
        },
    )
}

/// Findings restricted to `paths`, as comparable tuples.
fn findings_on<'a>(findings: &'a [Finding], paths: &BTreeSet<&str>) -> Vec<&'a Finding> {
    findings
        .iter()
        .filter(|f| paths.contains(f.file.as_str()))
        .collect()
}

// ----------------------------------------------------------------------
// The acceptance run: every kind at once, seeded.
// ----------------------------------------------------------------------

#[test]
fn chaos_tree_audits_without_panic_and_contains_the_damage() {
    let tree = small_tree();
    let chaos = apply_chaos(
        &tree,
        &ChaosConfig {
            ratio: 0.3,
            ..Default::default()
        },
    );
    assert!(!chaos.records.is_empty());
    let mutated = chaos.mutated_paths();
    let clean_paths: BTreeSet<&str> = tree
        .files
        .iter()
        .map(|f| f.path.as_str())
        .filter(|p| !mutated.contains(p))
        .collect();

    // Clean baseline vs chaos run (discovery off: the KB is
    // corpus-global by design, so stage isolation is what's asserted).
    let clean_report = audit(
        &Project::from_tree(&tree),
        &AuditConfig {
            discover_apis: false,
            ..Default::default()
        },
    );
    let chaos_report = audit_corpus(&chaos, false);

    // (2) Damage containment: findings on uncorrupted files identical.
    assert_eq!(
        findings_on(&clean_report.findings, &clean_paths),
        findings_on(&chaos_report.findings, &clean_paths),
        "a corrupted sibling changed findings on clean files"
    );

    // (3) Diagnostics accuracy: every non-clean unit is a mutated file.
    for d in &chaos_report.diagnostics.units {
        assert!(
            mutated.contains(d.path.as_str()),
            "{} diagnosed [{:?}] but was never mutated",
            d.path,
            d.errors
        );
    }
    assert_eq!(
        chaos_report.diagnostics.ok
            + chaos_report.diagnostics.degraded
            + chaos_report.diagnostics.skipped,
        tree.files.len()
    );
}

#[test]
fn chaos_audit_with_discovery_still_completes() {
    let tree = small_tree();
    let chaos = apply_chaos(&tree, &ChaosConfig::default());
    let report = audit_corpus(&chaos, true);
    assert_eq!(report.files, tree.files.len());
    let mutated = chaos.mutated_paths();
    for d in &report.diagnostics.units {
        assert!(mutated.contains(d.path.as_str()));
    }
}

#[test]
fn same_seed_gives_identical_audit_results() {
    let tree = small_tree();
    let cfg = ChaosConfig {
        ratio: 0.4,
        ..Default::default()
    };
    let a = audit_corpus(&apply_chaos(&tree, &cfg), false);
    let b = audit_corpus(&apply_chaos(&tree, &cfg), false);
    assert_eq!(a.findings, b.findings);
    let paths = |r: &AuditReport| -> Vec<String> {
        r.diagnostics.units.iter().map(|u| u.path.clone()).collect()
    };
    assert_eq!(paths(&a), paths(&b));
    assert_eq!(a.diagnostics.degraded, b.diagnostics.degraded);
    assert_eq!(a.diagnostics.skipped, b.diagnostics.skipped);
}

// ----------------------------------------------------------------------
// The same contract under the parallel scheduler (--jobs 4): a unit
// that panics mid-parse or mid-check must degrade itself inside its
// worker thread, never escape and take the scheduler down.
// ----------------------------------------------------------------------

fn audit_corpus_jobs(chaos: &ChaosCorpus, discover: bool, jobs: usize) -> AuditReport {
    let project = Project::from_sources(chaos.to_sources());
    audit(
        &project,
        &AuditConfig {
            discover_apis: discover,
            jobs,
            ..Default::default()
        },
    )
}

#[test]
fn parallel_chaos_audit_never_panics_and_matches_sequential() {
    let tree = small_tree();
    let chaos = apply_chaos(
        &tree,
        &ChaosConfig {
            ratio: 0.4,
            ..Default::default()
        },
    );
    assert!(!chaos.records.is_empty());
    // If a panic escaped a worker, audit() itself would panic and the
    // test harness would report it — completing is half the assertion.
    let seq = audit_corpus_jobs(&chaos, false, 1);
    let par = audit_corpus_jobs(&chaos, false, 4);
    assert_eq!(seq.findings, par.findings, "findings diverged at --jobs 4");
    let paths = |r: &AuditReport| -> Vec<String> {
        r.diagnostics.units.iter().map(|u| u.path.clone()).collect()
    };
    assert_eq!(paths(&seq), paths(&par));
    assert_eq!(seq.diagnostics.degraded, par.diagnostics.degraded);
    assert_eq!(seq.diagnostics.skipped, par.diagnostics.skipped);
}

#[test]
fn parallel_chaos_diagnostics_name_only_mutated_files() {
    let tree = small_tree();
    for kind in [
        MutationKind::TruncateMidToken,
        MutationKind::DeepNesting,
        MutationKind::BinaryGarbage,
    ] {
        let chaos = apply_chaos(
            &tree,
            &ChaosConfig {
                ratio: 0.5,
                kinds: vec![kind],
                ..Default::default()
            },
        );
        let report = audit_corpus_jobs(&chaos, false, 4);
        assert_eq!(report.files, tree.files.len());
        let mutated = chaos.mutated_paths();
        for d in &report.diagnostics.units {
            assert!(
                mutated.contains(d.path.as_str()),
                "{:?}: {} diagnosed [{:?}] but was never mutated",
                kind,
                d.path,
                d.errors
            );
        }
    }
}

#[test]
fn parallel_chaos_with_discovery_contains_the_damage() {
    let tree = small_tree();
    let chaos = apply_chaos(
        &tree,
        &ChaosConfig {
            ratio: 0.3,
            ..Default::default()
        },
    );
    let report = audit_corpus_jobs(&chaos, true, 4);
    assert_eq!(report.files, tree.files.len());
    let mutated = chaos.mutated_paths();
    for d in &report.diagnostics.units {
        assert!(mutated.contains(d.path.as_str()));
    }
}

// ----------------------------------------------------------------------
// One test per mutation kind.
// ----------------------------------------------------------------------

#[test]
fn kind_truncate_mid_token_survives() {
    let (tree, chaos) = chaos_with(MutationKind::TruncateMidToken, 1.0);
    let report = audit_corpus(&chaos, false);
    assert_eq!(report.files, tree.files.len());
}

#[test]
fn kind_byte_flip_survives() {
    let (tree, chaos) = chaos_with(MutationKind::ByteFlip, 1.0);
    let report = audit_corpus(&chaos, false);
    assert_eq!(report.files, tree.files.len());
}

#[test]
fn kind_unterminated_comment_is_diagnosed() {
    let (_, chaos) = chaos_with(MutationKind::UnterminatedComment, 1.0);
    let report = audit_corpus(&chaos, false);
    // Truncation plus an unterminated construct always leaves the
    // lexer with something unterminated, whatever context the cut
    // landed in.
    assert_eq!(report.diagnostics.degraded, chaos.records.len());
    assert!(report
        .diagnostics
        .units
        .iter()
        .all(|u| u.errors.contains(&UnitErrorKind::LexNoise)));
}

#[test]
fn kind_unterminated_string_is_diagnosed() {
    let (_, chaos) = chaos_with(MutationKind::UnterminatedString, 1.0);
    let report = audit_corpus(&chaos, false);
    assert_eq!(report.diagnostics.degraded, chaos.records.len());
    assert!(report
        .diagnostics
        .units
        .iter()
        .all(|u| u.errors.contains(&UnitErrorKind::LexNoise)));
}

#[test]
fn kind_deep_nesting_hits_the_depth_cap() {
    let (_, chaos) = chaos_with(MutationKind::DeepNesting, 1.0);
    let report = audit_corpus(&chaos, false);
    assert_eq!(report.diagnostics.degraded, chaos.records.len());
    assert!(report
        .diagnostics
        .units
        .iter()
        .all(|u| u.errors.contains(&UnitErrorKind::ParseDepth)));
}

#[test]
fn kind_macro_bomb_hits_the_depth_cap() {
    let (_, chaos) = chaos_with(MutationKind::MacroBomb, 1.0);
    let report = audit_corpus(&chaos, false);
    assert_eq!(report.diagnostics.degraded, chaos.records.len());
    assert!(report
        .diagnostics
        .units
        .iter()
        .all(|u| u.errors.contains(&UnitErrorKind::ParseDepth)));
}

#[test]
fn kind_nul_garbage_is_diagnosed_or_absorbed() {
    let (tree, chaos) = chaos_with(MutationKind::NulGarbage, 1.0);
    let report = audit_corpus(&chaos, false);
    assert_eq!(report.files, tree.files.len());
    // A NUL run landing in code is lexer garbage; landing inside a
    // comment or string it is absorbed. Most land in code.
    assert!(report.diagnostics.degraded > 0);
    let mutated = chaos.mutated_paths();
    for d in &report.diagnostics.units {
        assert!(mutated.contains(d.path.as_str()));
        assert!(d.errors.contains(&UnitErrorKind::LexNoise));
    }
}

#[test]
fn kind_binary_garbage_is_diagnosed_or_absorbed() {
    let (tree, chaos) = chaos_with(MutationKind::BinaryGarbage, 1.0);
    let report = audit_corpus(&chaos, false);
    assert_eq!(report.files, tree.files.len());
    assert!(report.diagnostics.degraded > 0);
    let mutated = chaos.mutated_paths();
    for d in &report.diagnostics.units {
        assert!(mutated.contains(d.path.as_str()));
    }
}

// ----------------------------------------------------------------------
// Disk round trip: chaos bytes through Project::scan.
// ----------------------------------------------------------------------

#[test]
fn chaos_corpus_survives_a_disk_round_trip() {
    let (tree, chaos) = chaos_with(MutationKind::BinaryGarbage, 1.0);
    let dir = std::env::temp_dir().join(format!("refminer_chaos_rt_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    chaos.write_to(&dir).expect("write chaos corpus");
    let project = Project::scan(&dir).expect("scan");
    assert_eq!(project.units().len(), tree.files.len());
    // Binary garbage must be flagged at scan time…
    assert!(project
        .scan_diagnostics()
        .iter()
        .any(|d| d.kind == refminer::ScanErrorKind::NonUtf8));
    // …and carried into the audit diagnostics.
    let report = audit(
        &project,
        &AuditConfig {
            discover_apis: false,
            ..Default::default()
        },
    );
    assert!(report
        .diagnostics
        .units
        .iter()
        .any(|u| u.errors.contains(&UnitErrorKind::NonUtf8)));
    std::fs::remove_dir_all(&dir).ok();
}

//! Cross-crate test of the empirical-study pipeline: history → mining →
//! classification → statistics, against the paper's Findings 1–5.

use refminer::corpus::{generate_history, HistoryConfig};
use refminer::dataset::{
    classify_history, growth_by_year, mine, BugKind, DistributionStats, ImpactStats, LifetimeStats,
};
use refminer::rcapi::ApiKb;

fn standard() -> (refminer::corpus::History, Vec<refminer::dataset::HistBug>) {
    let h = generate_history(&HistoryConfig::default());
    let bugs = classify_history(&h.commits, &ApiKb::builtin());
    (h, bugs)
}

#[test]
fn dataset_scale_matches_paper() {
    let (h, bugs) = standard();
    let mined = mine(&h.commits, &ApiKb::builtin());
    // Paper: 1,825 candidates → 1,033 confirmed. Ours lands nearby.
    assert!(
        (1400..=2000).contains(&mined.candidates.len()),
        "candidates {}",
        mined.candidates.len()
    );
    assert!(
        (980..=1100).contains(&bugs.len()),
        "confirmed {}",
        bugs.len()
    );
    // Every wrong patch carries the revert signature.
    assert_eq!(mined.reverted.len(), 12);
}

#[test]
fn finding_1_and_2_impact_split() {
    let (_, bugs) = standard();
    let s = ImpactStats::compute(&bugs);
    let leak_pct = s.pct(s.leaks);
    assert!(
        (leak_pct - 71.7).abs() < 4.0,
        "leak share {leak_pct} (paper 71.7)"
    );
    let intra_pct = s.pct(s.count(BugKind::MissingDecIntra));
    assert!(
        (intra_pct - 57.1).abs() < 4.0,
        "intra share {intra_pct} (paper 57.1)"
    );
    let uad_pct = s.pct(s.count(BugKind::MisplacedDecUad));
    assert!(
        (uad_pct - 9.1).abs() < 3.0,
        "UAD share {uad_pct} (paper 9.1)"
    );
}

#[test]
fn finding_3_distribution() {
    let (_, bugs) = standard();
    let d = DistributionStats::compute(&bugs);
    assert_eq!(d.counts[0].0, "drivers");
    let top3 = 100.0 * d.top_share(3);
    assert!((top3 - 82.4).abs() < 5.0, "top-3 {top3} (paper 82.4)");
    assert_eq!(d.density[0].0, "block", "block densest (Figure 2 right)");
}

#[test]
fn finding_4_and_5_lifetimes() {
    let (_, bugs) = standard();
    let l = LifetimeStats::compute(&bugs);
    let share = l.over_one_year as f64 / l.tagged as f64;
    assert!(
        (share - 0.757).abs() < 0.06,
        "over-one-year share {share} (paper 75.7%)"
    );
    assert!(
        (5..=40).contains(&l.over_ten_years),
        ">10y {} (paper 19)",
        l.over_ten_years
    );
    assert!(l.ancient >= 8, "ancient {} (paper 23)", l.ancient);
    // Ordering of Figure 3's spans.
    assert!(l.span(5, 5) > l.span(4, 5), "within-v5 > v4→v5");
    assert!(l.span(4, 5) > l.span(3, 5), "v4→v5 > v3→v5");
}

#[test]
fn figure_1_growth_monotone_by_era() {
    let (_, bugs) = standard();
    let g = growth_by_year(&bugs);
    let sum = |lo: u32, hi: u32| -> usize {
        g.iter()
            .filter(|(y, _)| *y >= lo && *y <= hi)
            .map(|(_, c)| c)
            .sum()
    };
    let e1 = sum(2005, 2010);
    let e2 = sum(2011, 2016);
    let e3 = sum(2017, 2022);
    assert!(e1 < e2 && e2 < e3, "eras must grow: {e1} {e2} {e3}");
}

#[test]
fn classification_is_deterministic() {
    let (_, a) = standard();
    let (_, b) = standard();
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.commit_id, y.commit_id);
        assert_eq!(x.kind, y.kind);
    }
}

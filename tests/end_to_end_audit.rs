//! The headline reproduction test: the full Table 4 run, end to end —
//! generate the synthetic "latest release" tree, audit it with all
//! nine checkers, triage against ground truth, and require the paper's
//! numbers.

use refminer::corpus::{generate_tree, TreeConfig};
use refminer::dataset::triage;
use refminer::{audit, AuditConfig, Project};

#[test]
fn table4_reproduces_exactly() {
    let tree = generate_tree(&TreeConfig::default());
    let project = Project::from_tree(&tree);
    let report = audit(&project, &AuditConfig::default());
    let t = triage(&report.findings, &tree.manifest);
    let tot = t.totals();

    // Table 4's grand totals.
    assert_eq!(tot.bugs, 351, "new bugs");
    assert_eq!(tot.leak, 296, "leak impact");
    assert_eq!(tot.uaf, 48, "UAF impact");
    assert_eq!(tot.npd, 7, "NPD impact");
    assert_eq!(tot.confirmed, 240, "confirmed");
    assert_eq!(tot.rejected, 3, "rejected");
    assert_eq!(tot.false_positives, 5, "false positives");

    // Per-subsystem rows.
    let by = t.by_subsystem();
    let row = |s: &str| by.iter().find(|(n, _)| n == s).map(|(_, r)| r).unwrap();
    assert_eq!(row("arch").bugs, 156);
    assert_eq!(row("drivers").bugs, 182);
    assert_eq!(row("include").bugs, 2);
    assert_eq!(row("net").bugs, 2);
    assert_eq!(row("sound").bugs, 9);
    assert_eq!(row("arch").false_positives, 1);
    assert_eq!(row("drivers").false_positives, 4);

    // Ground-truth measurement (beyond the paper's reach).
    assert!(
        (t.recall(&tree.manifest) - 1.0).abs() < 1e-9,
        "perfect recall"
    );
    assert!(t.precision() > 0.98, "precision {}", t.precision());
}

#[test]
fn every_false_positive_is_a_tricky_snippet() {
    let tree = generate_tree(&TreeConfig::default());
    let project = Project::from_tree(&tree);
    let report = audit(&project, &AuditConfig::default());
    let t = triage(&report.findings, &tree.manifest);
    for row in &t.rows {
        if !row.true_positive {
            assert!(
                row.on_tricky,
                "unexpected organic false positive: {}",
                row.finding
            );
        }
    }
}

#[test]
fn audit_scales_down_consistently() {
    for scale in [0.02, 0.1, 0.25] {
        let tree = generate_tree(&TreeConfig {
            scale,
            include_tricky: false,
            ..Default::default()
        });
        let project = Project::from_tree(&tree);
        let report = audit(&project, &AuditConfig::default());
        let t = triage(&report.findings, &tree.manifest);
        assert!(
            (t.recall(&tree.manifest) - 1.0).abs() < 1e-9,
            "recall at scale {scale}"
        );
        assert!(
            (t.precision() - 1.0).abs() < 1e-9,
            "precision at scale {scale}: {}",
            t.precision()
        );
    }
}

#[test]
fn filesystem_round_trip_preserves_findings() {
    let tree = generate_tree(&TreeConfig {
        scale: 0.05,
        ..Default::default()
    });
    let in_memory = audit(&Project::from_tree(&tree), &AuditConfig::default());
    let dir = std::env::temp_dir().join(format!("refminer_e2e_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    tree.write_to(&dir).expect("write");
    let from_disk = audit(&Project::scan(&dir).expect("scan"), &AuditConfig::default());
    std::fs::remove_dir_all(&dir).ok();
    assert_eq!(in_memory.findings.len(), from_disk.findings.len());
    for (a, b) in in_memory.findings.iter().zip(&from_disk.findings) {
        assert_eq!(a, b);
    }
}

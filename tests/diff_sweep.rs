//! Integration suite for the finding-generalization sweep and the
//! diff-aware incremental audit.
//!
//! The contract under test: (1) `diff` deltas are exactly the set
//! difference of two full audits — byte-identical at any job count and
//! cache temperature; (2) pure line shifts classify as `moved`, not
//! introduced+fixed; (3) a partial-fix commit surfaces its unfixed
//! clone siblings as `left_behind`; (4) on the FP-trap corpus the
//! sweep finds ≥90% of injected clone siblings with zero spurious
//! matches.

use refminer::corpus::{generate_fix_history, generate_tree, TreeConfig};
use refminer::serve::render_finding_line;
use refminer::{
    audit_with_cache, diff_projects, evaluate_sweep, render_diff_lines, AuditCache, AuditConfig,
    DiffOptions, Project,
};
use std::collections::HashSet;

fn history_cfg() -> TreeConfig {
    TreeConfig {
        seed: 11,
        scale: 0.05,
        clone_groups: 3,
        ..Default::default()
    }
}

fn config(jobs: usize) -> AuditConfig {
    AuditConfig {
        jobs,
        discover_apis: true,
        ..Default::default()
    }
}

// ----------------------------------------------------------------------
// Delta exactness: diff == set difference of two full audits.
// ----------------------------------------------------------------------

#[test]
fn diff_delta_is_the_full_audit_set_difference() {
    let revs = generate_fix_history(&history_cfg());
    let projects: Vec<Project> = revs.iter().map(|r| Project::from_tree(&r.tree)).collect();
    let cfg = config(1);
    let mut cache = AuditCache::new();
    for i in 1..projects.len() {
        let (a, b) = (&projects[i - 1], &projects[i]);
        let dr = diff_projects(a, b, &cfg, &mut cache, &DiffOptions::default());

        let lines_a: HashSet<String> = dr
            .report_a
            .findings
            .iter()
            .map(render_finding_line)
            .collect();
        let lines_b: HashSet<String> = dr
            .report_b
            .findings
            .iter()
            .map(render_finding_line)
            .collect();
        let b_only: HashSet<&String> = lines_b.difference(&lines_a).collect();
        let a_only: HashSet<&String> = lines_a.difference(&lines_b).collect();

        let introduced: HashSet<String> = dr
            .delta
            .introduced
            .iter()
            .chain(dr.delta.moved.iter().map(|(_, to)| to))
            .map(render_finding_line)
            .collect();
        let fixed: HashSet<String> = dr
            .delta
            .fixed
            .iter()
            .chain(dr.delta.moved.iter().map(|(from, _)| from))
            .map(render_finding_line)
            .collect();
        assert_eq!(
            introduced.iter().collect::<HashSet<_>>(),
            b_only,
            "commit {i}: introduced+moved must equal the B-only findings"
        );
        assert_eq!(
            fixed.iter().collect::<HashSet<_>>(),
            a_only,
            "commit {i}: fixed+moved must equal the A-only findings"
        );
    }
}

#[test]
fn diff_delta_is_stable_across_jobs_and_cache_temperature() {
    let revs = generate_fix_history(&history_cfg());
    let a = Project::from_tree(&revs[0].tree);
    let b = Project::from_tree(&revs[1].tree);
    let opts = DiffOptions::default();

    let baseline =
        render_diff_lines(&diff_projects(&a, &b, &config(1), &mut AuditCache::new(), &opts).delta);
    assert!(!baseline.is_empty(), "the fix commit must produce a delta");

    // Parallel, cold cache.
    let par =
        render_diff_lines(&diff_projects(&a, &b, &config(4), &mut AuditCache::new(), &opts).delta);
    assert_eq!(baseline, par, "delta must not depend on the job count");

    // Warm cache: audit both revisions first, then diff against the
    // fully warm per-unit cache.
    let mut warm = AuditCache::new();
    audit_with_cache(&a, &config(1), &mut warm);
    audit_with_cache(&b, &config(1), &mut warm);
    let cached = render_diff_lines(&diff_projects(&a, &b, &config(1), &mut warm, &opts).delta);
    assert_eq!(
        baseline, cached,
        "delta must not depend on cache temperature"
    );
}

// ----------------------------------------------------------------------
// Moved detection.
// ----------------------------------------------------------------------

#[test]
fn pure_line_shifts_classify_as_moved() {
    let revs = generate_fix_history(&history_cfg());
    let base = &revs[0].tree;
    let cfg = config(1);
    let report = audit_with_cache(&Project::from_tree(base), &cfg, &mut AuditCache::new());
    assert!(!report.findings.is_empty());

    // Prepend two comment lines to the file holding the first finding:
    // its findings shift down, nothing else changes.
    let target = report.findings[0].file.clone();
    let mut shifted = base.clone();
    let file = shifted
        .files
        .iter_mut()
        .find(|f| f.path == target)
        .expect("finding's file exists in the tree");
    file.content = format!("// shifted\n// shifted\n{}", file.content);

    let dr = diff_projects(
        &Project::from_tree(base),
        &Project::from_tree(&shifted),
        &cfg,
        &mut AuditCache::new(),
        &DiffOptions::default(),
    );
    assert!(
        dr.delta.introduced.is_empty() && dr.delta.fixed.is_empty(),
        "a pure line shift must not read as introduced or fixed"
    );
    assert!(
        !dr.delta.moved.is_empty(),
        "the shift must classify as moved"
    );
    for (from, to) in &dr.delta.moved {
        assert_eq!(from.file, target);
        assert_eq!(to.line, from.line + 2, "shift distance is two lines");
    }
    assert!(dr.delta.is_clean(), "a move-only commit is clean");
}

// ----------------------------------------------------------------------
// Left-behind sweep on partial fixes.
// ----------------------------------------------------------------------

#[test]
fn partial_fix_commit_surfaces_left_behind_clones() {
    let revs = generate_fix_history(&history_cfg());
    let a = Project::from_tree(&revs[0].tree);
    let b = Project::from_tree(&revs[1].tree);
    let dr = diff_projects(
        &a,
        &b,
        &config(1),
        &mut AuditCache::new(),
        &DiffOptions::default(),
    );
    assert_eq!(dr.delta.fixed.len(), 1, "the commit repairs one clone site");
    assert!(!dr.delta.is_clean(), "clones were left behind");

    // The fixed member's group has CLONE_GROUP_SIZE - 1 unfixed
    // siblings; every one of them must be among the sweep's matches.
    let (group, fixed_path, _) = &revs[1].fixed[0];
    let manifest = &revs[1].tree.manifest;
    let cg = manifest
        .clone_groups
        .iter()
        .find(|g| &g.group == group)
        .expect("fixed group is in the manifest");
    let matched: HashSet<(&str, &str)> = dr
        .delta
        .left_behind
        .iter()
        .flat_map(|lb| lb.matches.iter())
        .map(|m| (m.finding.file.as_str(), m.finding.function.as_str()))
        .collect();
    for member in &cg.members {
        if &member.path == fixed_path {
            continue;
        }
        assert!(
            matched.contains(&(member.path.as_str(), member.function.as_str())),
            "unfixed sibling {}:{} missing from the left-behind sweep",
            member.path,
            member.function
        );
    }

    // With the sweep disabled the same delta reports nothing left
    // behind (and therefore reads clean).
    let quiet = diff_projects(
        &a,
        &b,
        &config(1),
        &mut AuditCache::new(),
        &DiffOptions { sweep: false },
    );
    assert!(quiet.delta.left_behind.is_empty());
    assert!(quiet.delta.is_clean());
}

// ----------------------------------------------------------------------
// Sweep acceptance: ≥90% clone recall, zero spurious, FP-trap corpus.
// ----------------------------------------------------------------------

#[test]
fn sweep_finds_clone_siblings_with_zero_spurious_matches() {
    let tree = generate_tree(&TreeConfig {
        seed: 7,
        scale: 0.05,
        clone_groups: 5,
        fp_traps: true,
        ..Default::default()
    });
    let project = Project::from_tree(&tree);
    let report = audit_with_cache(&project, &config(1), &mut AuditCache::new());
    let sweep = evaluate_sweep(&report.findings, &tree.manifest, &report.kb, |path| {
        project
            .units()
            .iter()
            .find(|u| u.path == path)
            .map(|u| u.text.clone())
    });
    assert!(
        sweep.totals.found + sweep.totals.missed > 0,
        "the corpus must seed clone groups"
    );
    assert!(
        sweep.totals.recall() >= 0.9,
        "sweep recall {:.3} below the 90% acceptance floor",
        sweep.totals.recall()
    );
    assert_eq!(
        sweep.totals.spurious, 0,
        "sweep matched sites that are not injected bugs"
    );
    for row in &sweep.rows {
        assert!(row.seeded, "group {} found no seed finding", row.group);
    }
}

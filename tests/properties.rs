//! Property-style tests over the core data structures and invariants:
//! the lexer/parser never panic and preserve ordering invariants, the
//! template syntax round-trips, path queries respect their contracts,
//! and generated corpora always parse cleanly.
//!
//! Each property runs over a deterministic, seeded input stream
//! (refminer-prng) instead of an external property-testing framework,
//! so failures reproduce exactly and the suite builds offline.

use refminer::clex::{Lexer, TokenKind};
use refminer::corpus::{generate_history, generate_tree, HistoryConfig, TreeConfig};
use refminer::cparse::{parse_str, parse_str_with_errors};
use refminer::cpg::{Cfg, FunctionGraph, PathQuery, Step};
use refminer::rcapi::{name_direction, paired_dec_name, ApiKb};
use refminer::template::parse_template;
use refminer::w2v::tokenize;
use refminer_prng::{ChaCha8Rng, Rng, SeedableRng};

/// Draws a random string of length `0..=max_len` over `charset`.
fn rand_string(rng: &mut ChaCha8Rng, charset: &[u8], max_len: usize) -> String {
    let len = rng.gen_range(0..=max_len);
    (0..len)
        .map(|_| charset[rng.gen_range(0..charset.len())] as char)
        .collect()
}

/// All printable ASCII plus newline/tab — the classic fuzz alphabet.
fn printable() -> Vec<u8> {
    let mut cs: Vec<u8> = (b' '..=b'~').collect();
    cs.push(b'\n');
    cs.push(b'\t');
    cs
}

/// The lexer never panics and its spans are sorted and
/// non-overlapping for any input.
#[test]
fn lexer_total_and_spans_ordered() {
    let charset = printable();
    let mut rng = ChaCha8Rng::seed_from_u64(0x1e8a);
    for _ in 0..200 {
        let src = rand_string(&mut rng, &charset, 400);
        let toks = Lexer::new(&src).tokenize();
        for w in toks.windows(2) {
            assert!(w[0].span.start <= w[1].span.start, "spans out of order");
            assert!(w[0].span.end <= w[1].span.start, "spans overlap");
        }
        for t in &toks {
            assert!(t.span.end as usize <= src.len());
        }
    }
}

/// Lexing only identifier soup loses nothing: the token stream has one
/// token per word, each an identifier or keyword.
#[test]
fn lexer_covers_simple_input() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xc0f3);
    let first: Vec<u8> = (b'a'..=b'z').chain([b'_']).collect();
    let rest: Vec<u8> = (b'a'..=b'z').chain(b'0'..=b'9').chain([b'_']).collect();
    for _ in 0..200 {
        let n_words = rng.gen_range(1..20usize);
        let words: Vec<String> = (0..n_words)
            .map(|_| {
                let mut w = String::new();
                w.push(first[rng.gen_range(0..first.len())] as char);
                for _ in 0..rng.gen_range(0..8usize) {
                    w.push(rest[rng.gen_range(0..rest.len())] as char);
                }
                w
            })
            .collect();
        let src = words.join(" ");
        let toks = Lexer::new(&src).tokenize();
        assert_eq!(toks.len(), words.len());
        for (t, w) in toks.iter().zip(&words) {
            match &t.kind {
                TokenKind::Ident(s) => assert_eq!(&**s, w.as_str()),
                TokenKind::Keyword(_) => {} // C keywords are fine.
                other => panic!("unexpected token {other:?}"),
            }
        }
    }
}

/// The parser never panics on arbitrary printable input, and recovery
/// always terminates.
#[test]
fn parser_total() {
    let charset: Vec<u8> = (b' '..=b'~').chain([b'\n']).collect();
    let mut rng = ChaCha8Rng::seed_from_u64(0x9a25e);
    for _ in 0..200 {
        let src = rand_string(&mut rng, &charset, 400);
        let (_tu, _errs) = parse_str_with_errors("fuzz.c", &src);
    }
}

/// The parser is total on brace/paren/semicolon soup — the worst case
/// for recovery logic.
#[test]
fn parser_total_on_brace_soup() {
    let charset: Vec<u8> = b"(){};,=+*<> \n"
        .iter()
        .copied()
        .chain(b'a'..=b'z')
        .collect();
    let mut rng = ChaCha8Rng::seed_from_u64(0x50b5);
    for _ in 0..200 {
        let src = rand_string(&mut rng, &charset, 300);
        let tu = parse_str("soup.c", &src);
        // Walking the result must also be safe.
        for f in tu.functions() {
            let _ = Cfg::build(f);
        }
    }
}

/// CFG invariants for any parseable function: edges are dual
/// (succ/pred agree), the exit has no successors, and entry has no
/// predecessors.
#[test]
fn cfg_edge_duality() {
    let charset: Vec<u8> = b"abcdefghijklmnopqrstuvwxyz0123456789_ =+;(){}<>!&|\n".to_vec();
    let mut rng = ChaCha8Rng::seed_from_u64(0xcf6);
    for _ in 0..150 {
        let body = rand_string(&mut rng, &charset, 200);
        let src = format!("int f(int a, int b) {{ {body} }}");
        let tu = parse_str("t.c", &src);
        if let Some(f) = tu.function("f") {
            let cfg = Cfg::build(f);
            assert!(cfg.succs(cfg.exit).is_empty());
            assert!(cfg.preds(cfg.entry).is_empty());
            for n in cfg.node_ids() {
                for &(s, k) in cfg.succs(n) {
                    assert!(cfg.preds(s).contains(&(n, k)), "missing dual edge {n}->{s}");
                }
            }
        }
    }
}

/// A path-query witness always has exactly one node per step, in
/// graph-reachable order.
#[test]
fn path_query_witness_shape() {
    for n_steps in 1usize..4 {
        let src = "int f(int a) { s1(); s2(); s3(); s4(); return 0; }";
        let tu = parse_str("t.c", src);
        let g = FunctionGraph::build(tu.function("f").unwrap());
        let names = ["s1", "s2", "s3", "s4"];
        let steps: Vec<Step> = names[..n_steps]
            .iter()
            .map(|name| {
                let facts = &g.facts;
                Step::new(move |n| facts[n].calls_named(name))
            })
            .collect();
        let witness = PathQuery::new(steps).search_from_entry(&g.cfg);
        let w = witness.expect("straight-line calls always match");
        assert_eq!(w.len(), n_steps);
        for pair in w.windows(2) {
            assert!(g.cfg.reachable(pair[0], pair[1]));
        }
    }
}

/// Template text syntax round-trips through Display for any
/// composition of atoms the printer can emit.
#[test]
fn template_round_trip() {
    const OPS: [&str; 13] = [
        "G",
        "P",
        "A",
        "D",
        "L",
        "U",
        "{G_E}",
        "{G_N}",
        "{P_H}",
        "{A_GO}",
        "{U.D}(p0)",
        "P(p0)",
        "D(p0)",
    ];
    let mut rng = ChaCha8Rng::seed_from_u64(0x7e41);
    for _ in 0..200 {
        let n = rng.gen_range(1..4usize);
        let middle: Vec<String> = (0..n)
            .map(|_| format!("S_{}", OPS[rng.gen_range(0..OPS.len())]))
            .collect();
        let text = format!("F_start -> {} -> F_end", middle.join(" -> "));
        let t = parse_template(&text).unwrap();
        let printed = t.to_string();
        let reparsed = parse_template(&printed).unwrap();
        assert_eq!(t, reparsed);
    }
}

/// Keyword direction and pairing are consistent: a derived paired name
/// always classifies as a decrement.
#[test]
fn paired_name_is_dec() {
    const KEYWORDS: [&str; 5] = ["get", "hold", "grab", "pin", "ref"];
    let stems: Vec<u8> = (b'a'..=b'z').collect();
    let mut rng = ChaCha8Rng::seed_from_u64(0xdec);
    for _ in 0..300 {
        let stem: String = (0..rng.gen_range(2..=8usize))
            .map(|_| stems[rng.gen_range(0..stems.len())] as char)
            .collect();
        let kw = KEYWORDS[rng.gen_range(0..KEYWORDS.len())];
        let inc_name = format!("{stem}_{kw}");
        if name_direction(&inc_name) != Some(refminer::rcapi::RcDir::Inc) {
            continue;
        }
        if let Some(dec) = paired_dec_name(&inc_name) {
            assert_eq!(
                name_direction(&dec),
                Some(refminer::rcapi::RcDir::Dec),
                "paired name {dec} not a dec"
            );
        }
    }
}

/// Commit-log tokenization produces lowercase alphanumeric tokens of
/// length ≥ 2, never panicking.
#[test]
fn tokenizer_invariants() {
    let charset: Vec<u8> = (b' '..=b'~').chain([b'\n']).collect();
    let mut rng = ChaCha8Rng::seed_from_u64(0x70c);
    for _ in 0..200 {
        let text = rand_string(&mut rng, &charset, 300);
        for tok in tokenize(&text) {
            assert!(tok.len() >= 2);
            assert!(tok
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));
            assert!(!tok.chars().all(|c| c.is_ascii_digit()));
        }
    }
}

/// Every file of a generated tree parses without recovery errors — the
/// corpus generator only emits well-formed C.
#[test]
fn generated_trees_parse_cleanly() {
    for seed in 0u64..8 {
        let tree = generate_tree(&TreeConfig {
            seed,
            scale: 0.02,
            ..Default::default()
        });
        for f in &tree.files {
            let (_tu, errs) = parse_str_with_errors(&f.path, &f.content);
            assert!(errs.is_empty(), "parse errors in {}: {:?}", f.path, errs);
        }
    }
}

/// Tree generation is injective on bug identity: no two manifest
/// entries collide on (path, function).
#[test]
fn manifest_bugs_unique() {
    for seed in 0u64..8 {
        let tree = generate_tree(&TreeConfig {
            seed,
            scale: 0.05,
            ..Default::default()
        });
        let mut seen = std::collections::HashSet::new();
        for b in &tree.manifest.bugs {
            assert!(
                seen.insert((b.path.clone(), b.function.clone())),
                "duplicate bug site {}:{}",
                b.path,
                b.function
            );
        }
    }
}

/// History generation: Fixes tags always resolve, whatever the seed
/// and sizes.
#[test]
fn history_fixes_tags_resolve() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xf1e5);
    for seed in 0u64..10 {
        let n_bugs = rng.gen_range(10..60usize);
        let h = generate_history(&HistoryConfig {
            seed,
            n_bugs,
            n_noise: 10,
            n_reverts: 2,
            n_neutral: 20,
        });
        let ids: std::collections::HashSet<&str> =
            h.commits.iter().map(|c| c.id.as_str()).collect();
        for c in &h.commits {
            if let Some(t) = c.fixes_tag() {
                assert!(ids.contains(t));
            }
        }
    }
}

/// The KB pairing relation is sound for every seeded inc API: each
/// accepted dec is itself a known dec or keyword-dec.
#[test]
fn kb_pairings_are_decs() {
    let kb = ApiKb::builtin();
    for api in kb.apis().filter(|a| a.dir == refminer::rcapi::RcDir::Inc) {
        for dec in &api.dec_names {
            assert!(
                kb.is_dec(dec) || name_direction(dec) == Some(refminer::rcapi::RcDir::Dec),
                "{} pairs with non-dec {}",
                api.name,
                dec
            );
        }
    }
}

/// For any seed, auditing a small generated tree finds every injected
/// bug with zero organic false positives — the recall and precision
/// invariant of the checker suite.
#[test]
fn audit_invariant_across_seeds() {
    for seed in 0u64..6 {
        let tree = generate_tree(&TreeConfig {
            seed,
            scale: 0.02,
            include_tricky: false,
            ..Default::default()
        });
        let project = refminer::Project::from_tree(&tree);
        let report = refminer::audit(&project, &refminer::AuditConfig::default());
        let t = refminer::dataset::triage(&report.findings, &tree.manifest);
        assert!(
            (t.recall(&tree.manifest) - 1.0).abs() < 1e-9,
            "recall {} at seed {seed}",
            t.recall(&tree.manifest)
        );
        assert!(
            (t.precision() - 1.0).abs() < 1e-9,
            "precision {} at seed {seed}",
            t.precision()
        );
    }
}

/// Origin analysis invariants: a parameter never loses its Param
/// origin unless assigned.
#[test]
fn origins_params_stable() {
    let charset: Vec<u8> = b"abcdefghijklmnopqrstuvwxyz_ =;()\n".to_vec();
    let mut rng = ChaCha8Rng::seed_from_u64(0x0817);
    for _ in 0..150 {
        let body = rand_string(&mut rng, &charset, 120);
        let src = format!(
            "int f(struct device_node *alpha) {{ struct device_node *beta; {body} return 0; }}"
        );
        let tu = parse_str("t.c", &src);
        if let Some(func) = tu.function("f") {
            let g = FunctionGraph::build(func);
            // If `alpha` is never an assignment target, it keeps the
            // Param origin at exit.
            let reassigned = g.facts.iter().any(|f| {
                f.assigns
                    .iter()
                    .any(|a| a.target == refminer::cpg::StoreTarget::Var("alpha".to_string()))
            });
            if !reassigned {
                let at_exit = g.origins.at(&g.cfg, g.cfg.exit, "alpha");
                assert!(
                    at_exit
                        .iter()
                        .any(|o| matches!(o, refminer::cpg::Origin::Param)),
                    "alpha lost its Param origin without an assignment"
                );
            }
        }
    }
}

/// word2vec text persistence round-trips for any trained model shape.
#[test]
fn w2v_persistence_round_trip() {
    use refminer::w2v::{W2vConfig, Word2Vec};
    let mut rng = ChaCha8Rng::seed_from_u64(0x2f2f);
    for _ in 0..6 {
        let dim = rng.gen_range(2..12usize);
        let seed = rng.gen_range(0..20u64);
        let corpus = "alpha beta gamma delta\nbeta gamma alpha delta\n".repeat(10);
        let m = Word2Vec::train_text(
            &corpus,
            &W2vConfig {
                dim,
                epochs: 2,
                min_count: 1,
                subsample: 0.0,
                seed,
                ..Default::default()
            },
        );
        let text = m.to_text();
        let loaded = Word2Vec::read_text(&mut text.as_bytes()).unwrap();
        assert_eq!(loaded.dim(), dim);
        assert_eq!(loaded.vector("alpha"), m.vector("alpha"));
    }
}

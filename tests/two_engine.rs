//! Acceptance suite for the two-engine audit core: the template
//! checkers and the ownership-delta dataflow engine cross-validating
//! each other.
//!
//! The contract under test: (1) every bug class the corpus injects is
//! found by at least one engine, (2) the delta engine *alone* has
//! nonzero recall on the leak-family anti-patterns, (3) `Corroborated`
//! findings — flagged independently by both engines — have zero false
//! positives even on the trap corpus built to bait the checkers,
//! (4) the `--json` report stays byte-identical across job counts,
//! cache temperature, and scheduling mode with both engines on, and
//! (5) the feasibility flag applies uniformly to both engines and
//! never keys the cache.

use refminer::checkers::Feasibility;
use refminer::corpus::{generate_tree, SyntheticTree, TreeConfig};
use refminer::dataset::triage;
use refminer::{
    audit, audit_with_cache, AuditCache, AuditConfig, AuditReport, Confidence, EngineSet, Project,
};
use refminer_json::ToJson;

fn small_tree() -> SyntheticTree {
    generate_tree(&TreeConfig {
        scale: 0.05,
        ..Default::default()
    })
}

fn config(engines: EngineSet) -> AuditConfig {
    AuditConfig {
        engines,
        ..Default::default()
    }
}

/// The exact bytes `refminer --json` prints for a report.
fn json_lines(report: &AuditReport) -> String {
    let mut out = String::new();
    for f in &report.findings {
        out.push_str(&f.to_json().to_string());
        out.push('\n');
    }
    out
}

// ----------------------------------------------------------------------
// Coverage: engine attribution spans every injected bug class.
// ----------------------------------------------------------------------

#[test]
fn every_bug_class_is_found_by_at_least_one_engine() {
    let tree = generate_tree(&TreeConfig::default());
    let project = Project::from_tree(&tree);
    let report = audit(&project, &config(EngineSet::default()));

    // Attribution is total: no finding escapes the engine stamp.
    for f in &report.findings {
        assert!(
            !f.engines.is_empty(),
            "unattributed finding: {}:{} {}",
            f.file,
            f.line,
            f.pattern.id()
        );
    }

    let t = triage(&report.findings, &tree.manifest);
    let mut classes: Vec<u8> = tree.manifest.bugs.iter().map(|b| b.pattern).collect();
    classes.sort_unstable();
    classes.dedup();
    assert!(classes.len() >= 8, "corpus should span the taxonomy");
    for class in classes {
        let hit = t.rows.iter().any(|r| {
            r.true_positive
                && r.finding.pattern.id() == format!("P{class}")
                && !r.finding.engines.is_empty()
        });
        assert!(hit, "no engine found any P{class} bug");
    }
}

#[test]
fn delta_engine_alone_has_recall_on_the_leak_family() {
    let tree = small_tree();
    let project = Project::from_tree(&tree);
    let delta_only = EngineSet {
        template: false,
        delta: true,
    };
    let report = audit(&project, &config(delta_only));

    let t = triage(&report.findings, &tree.manifest);
    let leak_hits = t
        .rows
        .iter()
        .filter(|r| {
            r.true_positive
                && matches!(r.finding.pattern.id(), "P1" | "P4" | "P5")
                && r.finding.confidence() == Confidence::DeltaOnly
        })
        .count();
    assert!(
        leak_hits > 0,
        "delta engine alone found no leak-family bugs"
    );
}

// ----------------------------------------------------------------------
// Cross-validation: corroboration is a precision signal.
// ----------------------------------------------------------------------

#[test]
fn corroborated_findings_have_zero_false_positives_on_the_trap_corpus() {
    // The trap corpus proper: traps, clean functions, and injected
    // bugs. The tricky-snippet family is excluded — those are the
    // audit's five *known* whitelisted organic FPs (see the
    // `end_to_end_audit` suite), not what corroboration is measured
    // against.
    let tree = generate_tree(&TreeConfig {
        scale: 0.1,
        fp_traps: true,
        include_tricky: false,
        ..Default::default()
    });
    assert!(!tree.manifest.fp_traps.is_empty(), "traps were generated");
    let project = Project::from_tree(&tree);
    let report = audit(&project, &config(EngineSet::default()));

    let t = triage(&report.findings, &tree.manifest);
    let mut corroborated = 0usize;
    for r in &t.rows {
        if r.finding.confidence() == Confidence::Corroborated {
            corroborated += 1;
            assert!(
                r.true_positive,
                "corroborated false positive: {}:{} {} ({})",
                r.finding.file,
                r.finding.line,
                r.finding.pattern.id(),
                r.finding.api
            );
        }
    }
    assert!(corroborated > 0, "cross-validation never corroborated");
}

// ----------------------------------------------------------------------
// Determinism with both engines on.
// ----------------------------------------------------------------------

#[test]
fn json_is_byte_identical_across_jobs_cache_and_scheduling() {
    let tree = small_tree();
    let project = Project::from_tree(&tree);

    let baseline = audit(
        &project,
        &AuditConfig {
            jobs: 1,
            ..config(EngineSet::default())
        },
    );
    let expected = json_lines(&baseline);

    for jobs in [2, 8] {
        for streaming in [false, true] {
            let cfg = AuditConfig {
                jobs,
                streaming,
                ..config(EngineSet::default())
            };
            let mut cache = AuditCache::new();
            let cold = audit_with_cache(&project, &cfg, &mut cache);
            let warm = audit_with_cache(&project, &cfg, &mut cache);
            assert_eq!(
                json_lines(&cold),
                expected,
                "cold diverged (jobs={jobs}, streaming={streaming})"
            );
            assert_eq!(
                json_lines(&warm),
                expected,
                "warm diverged (jobs={jobs}, streaming={streaming})"
            );
            assert_eq!(warm.cache.check_misses, 0, "warm run re-checked");
        }
    }
}

// ----------------------------------------------------------------------
// Feasibility interplay: one verdict layer, two engines, zero cache
// keys.
// ----------------------------------------------------------------------

#[test]
fn feasibility_flag_never_keys_the_cache() {
    let tree = small_tree();
    let project = Project::from_tree(&tree);
    let mut cache = AuditCache::new();

    let with = AuditConfig {
        feasibility: true,
        ..config(EngineSet::default())
    };
    let without = AuditConfig {
        feasibility: false,
        ..with.clone()
    };

    let cold = audit_with_cache(&project, &with, &mut cache);
    assert!(cold.cache.check_misses > 0);

    // Flipping the flag must be a pure report-layer change: the warm
    // run re-checks nothing and re-parses nothing.
    let flipped = audit_with_cache(&project, &without, &mut cache);
    assert_eq!(flipped.cache.check_misses, 0, "flag keyed the check cache");
    assert_eq!(flipped.cache.parse_misses, 0, "flag keyed the parse cache");
    assert!(flipped.findings.len() >= cold.findings.len());

    // And back again: still fully warm, and byte-identical to the cold
    // suppressed report.
    let back = audit_with_cache(&project, &with, &mut cache);
    assert_eq!(back.cache.check_misses, 0);
    assert_eq!(json_lines(&back), json_lines(&cold));
}

#[test]
fn feasibility_verdicts_apply_uniformly_to_both_engines() {
    let tree = generate_tree(&TreeConfig {
        scale: 0.1,
        fp_traps: true,
        ..Default::default()
    });
    let project = Project::from_tree(&tree);

    for engines in [EngineSet::template_only(), EngineSet::default()] {
        let on = audit(
            &project,
            &AuditConfig {
                feasibility: true,
                ..config(engines)
            },
        );
        let off = audit(
            &project,
            &AuditConfig {
                feasibility: false,
                ..config(engines)
            },
        );
        // The suppressed report is exactly the unsuppressed one minus
        // `Infeasible`-tagged findings — for any engine set.
        let filtered: Vec<_> = off
            .findings
            .iter()
            .filter(|f| f.feasibility != Feasibility::Infeasible)
            .cloned()
            .collect();
        assert_eq!(
            json_lines(&on),
            filtered.iter().fold(String::new(), |mut s, f| {
                s.push_str(&f.to_json().to_string());
                s.push('\n');
                s
            }),
            "feasibility suppression is not a pure filter (engines: {})",
            engines.render()
        );
    }
}

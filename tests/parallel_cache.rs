//! Integration suite for the parallel audit pipeline and the
//! content-hash incremental cache.
//!
//! The contract under test: (1) the `--json` report is byte-identical
//! at any job count, (2) a warm cached run reproduces the cold run's
//! findings exactly — in memory and across a disk round trip — and
//! (3) editing one file invalidates exactly that unit's cache entries.

use refminer::corpus::{generate_tree, next_revision, SyntheticTree, TreeConfig};
use refminer::{audit, audit_with_cache, AuditCache, AuditConfig, AuditReport, Project};
use refminer_json::ToJson;

fn small_tree() -> SyntheticTree {
    generate_tree(&TreeConfig {
        scale: 0.04,
        ..Default::default()
    })
}

fn config(jobs: usize, discover: bool) -> AuditConfig {
    AuditConfig {
        jobs,
        discover_apis: discover,
        ..Default::default()
    }
}

/// The exact bytes `refminer --json` prints for a report.
fn json_lines(report: &AuditReport) -> String {
    let mut out = String::new();
    for f in &report.findings {
        out.push_str(&f.to_json().to_string());
        out.push('\n');
    }
    out
}

// ----------------------------------------------------------------------
// Determinism across job counts.
// ----------------------------------------------------------------------

#[test]
fn jobs_1_and_jobs_8_produce_byte_identical_json() {
    let tree = small_tree();
    let project = Project::from_tree(&tree);
    for discover in [false, true] {
        let seq = audit(&project, &config(1, discover));
        let par = audit(&project, &config(8, discover));
        assert_eq!(
            json_lines(&seq),
            json_lines(&par),
            "JSON diverged at --jobs 8 (discover={discover})"
        );
        assert_eq!(seq.files, par.files);
        assert_eq!(seq.lines, par.lines);
        assert_eq!(seq.functions, par.functions);
        let paths = |r: &AuditReport| -> Vec<String> {
            r.diagnostics.units.iter().map(|u| u.path.clone()).collect()
        };
        assert_eq!(paths(&seq), paths(&par));
    }
}

#[test]
fn auto_jobs_matches_sequential() {
    let tree = small_tree();
    let project = Project::from_tree(&tree);
    let seq = audit(&project, &config(1, false));
    let auto = audit(&project, &config(0, false));
    assert_eq!(json_lines(&seq), json_lines(&auto));
}

// ----------------------------------------------------------------------
// Warm cache reproduces cold results.
// ----------------------------------------------------------------------

#[test]
fn warm_in_memory_run_reproduces_cold_findings() {
    let tree = small_tree();
    let project = Project::from_tree(&tree);
    let cfg = config(4, true);
    let mut cache = AuditCache::new();

    let cold = audit_with_cache(&project, &cfg, &mut cache);
    assert_eq!(cold.cache.parse_hits, 0, "cold run cannot hit");
    assert!(cold.cache.parse_misses > 0);

    let warm = audit_with_cache(&project, &cfg, &mut cache);
    assert_eq!(json_lines(&cold), json_lines(&warm));
    assert_eq!(cold.functions, warm.functions);
    assert_eq!(cold.lines, warm.lines);
    assert_eq!(warm.cache.parse_misses, 0, "warm run must not re-parse");
    assert_eq!(warm.cache.check_misses, 0, "warm run must not re-check");
    assert_eq!(warm.cache.parse_hits, tree.files.len());
    assert_eq!(warm.cache.discovery_hits, 1);
}

#[test]
fn warm_disk_run_reproduces_cold_findings() {
    let tree = small_tree();
    let project = Project::from_tree(&tree);
    let cfg = config(2, true);
    let dir = std::env::temp_dir().join(format!(
        "refminer_cache_rt_{}_{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);

    let mut cold_cache = AuditCache::with_dir(&dir);
    let cold = audit_with_cache(&project, &cfg, &mut cold_cache);
    cold_cache.save().expect("persist cache");

    // A fresh process would construct a new cache from the same dir.
    let mut warm_cache = AuditCache::with_dir(&dir);
    let warm = audit_with_cache(&project, &cfg, &mut warm_cache);
    assert_eq!(json_lines(&cold), json_lines(&warm));
    assert_eq!(cold.functions, warm.functions);
    assert_eq!(
        warm.cache.check_misses, 0,
        "disk-warm run must not re-check: {:?}",
        warm.cache
    );
    assert_eq!(warm.cache.discovery_hits, 1);
    std::fs::remove_dir_all(&dir).ok();
}

// ----------------------------------------------------------------------
// Incremental invalidation.
// ----------------------------------------------------------------------

#[test]
fn editing_one_file_invalidates_exactly_that_unit() {
    let base = small_tree();
    let (rev, edited) = next_revision(&base, 11, 1);
    assert_eq!(edited.len(), 1);

    // Discovery off: the KB is tree-global, so a single-file edit
    // re-runs discovery by design; the per-unit layers are what this
    // test isolates.
    let cfg = config(4, false);
    let mut cache = AuditCache::new();
    let cold = audit_with_cache(&Project::from_tree(&base), &cfg, &mut cache);

    let incr = audit_with_cache(&Project::from_tree(&rev), &cfg, &mut cache);
    assert_eq!(
        incr.cache.parse_misses, 1,
        "exactly the edited unit re-parses"
    );
    assert_eq!(
        incr.cache.check_misses, 1,
        "exactly the edited unit re-checks"
    );
    assert_eq!(incr.cache.parse_hits, base.files.len() - 1);

    // The appended helper is clean, so findings are unchanged.
    assert_eq!(json_lines(&cold), json_lines(&incr));

    // And a from-scratch audit of the revision agrees with the
    // incremental one.
    let scratch = audit(&Project::from_tree(&rev), &cfg);
    assert_eq!(json_lines(&scratch), json_lines(&incr));
    assert_eq!(scratch.functions, incr.functions);
    assert_eq!(scratch.lines, incr.lines);
}

#[test]
fn editing_one_file_reruns_discovery_but_not_clean_units() {
    let base = small_tree();
    let (rev, _) = next_revision(&base, 3, 1);
    let cfg = config(2, true);
    let mut cache = AuditCache::new();
    audit_with_cache(&Project::from_tree(&base), &cfg, &mut cache);

    let incr = audit_with_cache(&Project::from_tree(&rev), &cfg, &mut cache);
    // The tree fingerprint changed, so discovery re-runs…
    assert_eq!(incr.cache.discovery_misses, 1);
    // …but only the edited unit re-parses.
    assert_eq!(incr.cache.parse_misses, 1);

    let scratch = audit(&Project::from_tree(&rev), &cfg);
    assert_eq!(json_lines(&scratch), json_lines(&incr));
}

// ----------------------------------------------------------------------
// Whole-program analysis on the cross-unit corpus.
// ----------------------------------------------------------------------

fn cross_tree() -> SyntheticTree {
    generate_tree(&TreeConfig {
        scale: 0.04,
        cross_unit: true,
        ..Default::default()
    })
}

fn pattern_num(p: refminer::AntiPattern) -> u8 {
    refminer::AntiPattern::all()
        .iter()
        .position(|&q| q == p)
        .unwrap() as u8
        + 1
}

#[test]
fn whole_program_mode_finds_cross_unit_ground_truth_without_new_fps() {
    let tree = cross_tree();
    let project = Project::from_tree(&tree);
    let inter: Vec<_> = tree.manifest.bugs.iter().filter(|b| b.inter_unit).collect();
    assert!(!inter.is_empty(), "cross_unit tree must tag bugs");

    let whole = audit(&project, &config(4, true));
    let per_unit = audit(
        &project,
        &AuditConfig {
            whole_program: false,
            ..config(4, true)
        },
    );

    // Every tagged ground-truth bug is found under whole-program
    // analysis; none of them is visible to the per-unit pipeline.
    for b in &inter {
        let hit = |r: &AuditReport| {
            r.findings.iter().any(|f| {
                f.file == b.path && f.function == b.function && pattern_num(f.pattern) == b.pattern
            })
        };
        assert!(hit(&whole), "missed cross-unit bug: {b:?}");
        assert!(!hit(&per_unit), "per-unit mode cannot see: {b:?}");
    }

    // Zero false positives: every whole-program finding inside the
    // cross-unit module is ground truth…
    for f in whole
        .findings
        .iter()
        .filter(|f| f.file.starts_with("drivers/crossunit/"))
    {
        assert!(
            tree.manifest
                .matches(&f.file, &f.function, pattern_num(f.pattern)),
            "false positive: {f:?}"
        );
    }
    // …and outside it the two modes agree byte for byte, so the merged
    // database changes nothing on single-unit ground truth.
    let outside = |r: &AuditReport| -> Vec<String> {
        r.findings
            .iter()
            .filter(|f| !f.file.starts_with("drivers/crossunit/"))
            .map(|f| f.to_json().to_string())
            .collect()
    };
    assert_eq!(outside(&whole), outside(&per_unit));
}

#[test]
fn cross_unit_tree_is_deterministic_across_jobs_and_cache_temperature() {
    let tree = cross_tree();
    let project = Project::from_tree(&tree);
    let seq = audit(&project, &config(1, true));
    let par = audit(&project, &config(8, true));
    assert_eq!(json_lines(&seq), json_lines(&par));

    let mut cache = AuditCache::new();
    let cold = audit_with_cache(&project, &config(4, true), &mut cache);
    let warm = audit_with_cache(&project, &config(4, true), &mut cache);
    assert_eq!(json_lines(&seq), json_lines(&cold));
    assert_eq!(json_lines(&cold), json_lines(&warm));
    assert_eq!(warm.cache.check_misses, 0);
    assert_eq!(warm.cache.export_misses, 0, "summary layer must be warm");
    assert_eq!(warm.cache.export_hits, tree.files.len());
}

#[test]
fn helper_summary_change_rechecks_exactly_the_dependent_units() {
    let base = cross_tree();
    // Discovery off: a stable KB isolates the export/check layers.
    let cfg = config(4, false);
    let mut cache = AuditCache::new();
    audit_with_cache(&Project::from_tree(&base), &cfg, &mut cache);

    // Semantic edit: xu0_teardown stops releasing its argument. The
    // helpers unit re-parses and re-exports; the core unit re-checks
    // because its dependency fingerprint follows the helper summary —
    // and nothing else in the tree is touched.
    let mut rev = base.clone();
    let helpers = rev
        .files
        .iter_mut()
        .find(|f| f.path == "drivers/crossunit/xu0_helpers.c")
        .expect("helpers unit exists");
    helpers.content = helpers
        .content
        .replace("xu0_put_inner(np);", "np->name = 0;");

    let incr = audit_with_cache(&Project::from_tree(&rev), &cfg, &mut cache);
    assert_eq!(
        incr.cache.parse_misses, 1,
        "only the helpers unit re-parses"
    );
    assert_eq!(
        incr.cache.export_misses, 1,
        "only the helpers unit re-exports"
    );
    assert_eq!(
        incr.cache.check_misses, 2,
        "the helpers unit and its dependent core unit re-check"
    );
    assert_eq!(incr.cache.check_hits, base.files.len() - 2);

    // The incremental result agrees with a from-scratch audit of the
    // revision — which now reports the broken teardown's fallout.
    let scratch = audit(&Project::from_tree(&rev), &cfg);
    assert_eq!(json_lines(&scratch), json_lines(&incr));
}

#[test]
fn summary_neutral_helper_edit_rechecks_only_the_edited_unit() {
    let base = cross_tree();
    let cfg = config(4, false);
    let mut cache = AuditCache::new();
    let cold = audit_with_cache(&Project::from_tree(&base), &cfg, &mut cache);

    // Appending a new helper changes the file's content hash but no
    // existing summary, so dependent units stay cached.
    let mut rev = base.clone();
    let helpers = rev
        .files
        .iter_mut()
        .find(|f| f.path == "drivers/crossunit/xu0_helpers.c")
        .expect("helpers unit exists");
    helpers
        .content
        .push_str("\nint xu0_noop(void)\n{\n        return 0;\n}\n");

    let incr = audit_with_cache(&Project::from_tree(&rev), &cfg, &mut cache);
    assert_eq!(incr.cache.parse_misses, 1);
    assert_eq!(incr.cache.export_misses, 1);
    assert_eq!(
        incr.cache.check_misses, 1,
        "no summary changed, so no dependent re-checks"
    );
    assert_eq!(json_lines(&cold), json_lines(&incr));
}

#[test]
fn config_change_invalidates_check_layer_not_parse_layer() {
    let tree = small_tree();
    let project = Project::from_tree(&tree);
    let mut cache = AuditCache::new();
    audit_with_cache(&project, &config(2, false), &mut cache);

    // Same parse limits, different KB (discovery on) → parse entries
    // stay valid, check entries key on the new KB fingerprint.
    let second = audit_with_cache(&project, &config(2, true), &mut cache);
    assert_eq!(second.cache.parse_misses, 0, "parse layer survives");
    assert!(
        second.cache.check_misses > 0,
        "check layer re-keys on the KB"
    );
}

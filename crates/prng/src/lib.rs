//! # refminer-prng
//!
//! A small, dependency-free deterministic PRNG with a `rand`-like API
//! surface (`Rng`, `SeedableRng`, `ChaCha8Rng`). The workspace must
//! build in hermetic environments with no crates.io access, so the
//! generators the corpus and word2vec crates need are implemented here
//! directly: a real ChaCha stream cipher core (8 rounds) driven as a
//! counter-mode generator.
//!
//! Determinism is the only hard contract: the same seed always yields
//! the same stream, across platforms and releases. The stream is *not*
//! bit-compatible with the `rand_chacha` crate, and makes no
//! cryptographic claims — it exists to make corpus generation and
//! chaos injection reproducible.
//!
//! # Examples
//!
//! ```
//! use refminer_prng::{ChaCha8Rng, Rng, SeedableRng};
//!
//! let mut a = ChaCha8Rng::seed_from_u64(7);
//! let mut b = ChaCha8Rng::seed_from_u64(7);
//! assert_eq!(a.gen::<f64>(), b.gen::<f64>());
//! let x: usize = a.gen_range(0..10);
//! assert!(x < 10);
//! ```

/// The raw entropy source: 32/64-bit outputs.
pub trait RngCore {
    /// The next 32 bits of the stream.
    fn next_u32(&mut self) -> u32;

    /// The next 64 bits of the stream.
    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }
}

/// Seedable construction, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from the full stream (`rng.gen::<T>()`).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Range arguments accepted by [`Rng::gen_range`]: `a..b` and `a..=b`
/// over the primitive integer types.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The user-facing sampling interface, auto-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the full stream.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from `range` (`a..b` or `a..=b`).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_in(self)
    }

    /// Draws `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// A ChaCha stream cipher core (8 double-rounds) run in counter mode.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Cipher input state: constants, key, counter, nonce.
    state: [u32; 16],
    /// Current 16-word output block.
    block: [u32; 16],
    /// Next word to serve from `block` (16 = exhausted).
    index: usize,
}

/// SplitMix64 step, used to expand a 64-bit seed into key material.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut state = [0u32; 16];
        // "expand 32-byte k".
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for i in 0..4 {
            let w = splitmix64(&mut sm);
            state[4 + 2 * i] = w as u32;
            state[5 + 2 * i] = (w >> 32) as u32;
        }
        // Counter and nonce start at zero.
        ChaCha8Rng {
            state,
            block: [0; 16],
            index: 16,
        }
    }
}

impl ChaCha8Rng {
    fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
        s[a] = s[a].wrapping_add(s[b]);
        s[d] = (s[d] ^ s[a]).rotate_left(16);
        s[c] = s[c].wrapping_add(s[d]);
        s[b] = (s[b] ^ s[c]).rotate_left(12);
        s[a] = s[a].wrapping_add(s[b]);
        s[d] = (s[d] ^ s[a]).rotate_left(8);
        s[c] = s[c].wrapping_add(s[d]);
        s[b] = (s[b] ^ s[c]).rotate_left(7);
    }

    fn refill(&mut self) {
        let mut work = self.state;
        for _ in 0..4 {
            // 8 rounds = 4 double-rounds (column + diagonal).
            Self::quarter_round(&mut work, 0, 4, 8, 12);
            Self::quarter_round(&mut work, 1, 5, 9, 13);
            Self::quarter_round(&mut work, 2, 6, 10, 14);
            Self::quarter_round(&mut work, 3, 7, 11, 15);
            Self::quarter_round(&mut work, 0, 5, 10, 15);
            Self::quarter_round(&mut work, 1, 6, 11, 12);
            Self::quarter_round(&mut work, 2, 7, 8, 13);
            Self::quarter_round(&mut work, 3, 4, 9, 14);
        }
        for (i, w) in work.iter().enumerate() {
            self.block[i] = w.wrapping_add(self.state[i]);
        }
        // 64-bit block counter in words 12/13.
        let counter = (self.state[12] as u64 | ((self.state[13] as u64) << 32)).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.index = 0;
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let w = self.block[self.index];
        self.index += 1;
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let va: Vec<u32> = (0..8).map(|_| a.next_u32()).collect();
        let vb: Vec<u32> = (0..8).map(|_| b.next_u32()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = ChaCha8Rng::seed_from_u64(9);
        for _ in 0..1000 {
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
            let g: f32 = r.gen();
            assert!((0.0..1.0).contains(&g));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut r = ChaCha8Rng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..500 {
            let v: usize = r.gen_range(0..10);
            seen[v] = true;
            let w: i32 = r.gen_range(2005..=2007);
            assert!((2005..=2007).contains(&w));
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit in 500 draws");
    }

    #[test]
    fn stream_is_reasonably_uniform() {
        let mut r = ChaCha8Rng::seed_from_u64(0xDEAD);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| r.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn gen_bool_probability() {
        let mut r = ChaCha8Rng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits} hits for p=0.25");
    }
}

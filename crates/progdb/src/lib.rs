//! # refminer-progdb
//!
//! The whole-program function-summary database behind the two-phase
//! audit. Phase 1 extracts a [`UnitExports`] per translation unit — for
//! every function definition, which refcounting effects it applies to
//! which of its parameters (directly, through calls, or by storing them
//! into long-lived locations). The exports are pure data: no ASTs, no
//! graphs, so they serialize into the incremental cache. A barrier then
//! merges all exports into a [`ProgramDb`], resolving calls under
//! **linkage-aware identity**: a `static` helper is visible only inside
//! its own unit, while an external definition is visible tree-wide (the
//! first external definition in unit order wins, mirroring the one-
//! definition rule). Phase 2 checkers query the db through `CheckCtx`,
//! so `InterUnpairedChecker` and `HiddenApiChecker` resolve helpers
//! defined anywhere in the tree.
//!
//! The effect propagation replicates what the old per-unit
//! `HelperSummaries` fixpoint computed — a knowledge-base match on the
//! callee name always shadows helper resolution, release/acquire
//! effects flow from callee parameters to caller parameters through the
//! argument map — and extends it with a `stores` effect (the callee
//! parks the parameter in a field, out-parameter, or global) used for
//! cross-unit escape reasoning.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use refminer_cpg::{FunctionGraph, StoreTarget};
use refminer_rcapi::{ApiKb, RcDir};

/// The refcounting effects one function applies to its parameters.
///
/// Each vector holds 0-based parameter indices; `releases`/`acquires`
/// mean the function decrements/increments the refcounter of that
/// argument on some path, `stores` means it parks the argument in a
/// long-lived location (field, out-parameter or global), i.e. the
/// reference escapes into the callee.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FnSummary {
    /// Parameters whose refcounter the function decrements.
    pub releases: Vec<usize>,
    /// Parameters whose refcounter the function increments.
    pub acquires: Vec<usize>,
    /// Parameters the function stores into a long-lived location.
    pub stores: Vec<usize>,
}

/// One call made by a function, reduced to what summary propagation
/// needs: the callee name and, per argument position, which caller
/// parameter (if any) the argument is rooted in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallSite {
    /// Callee name.
    pub callee: String,
    /// `args[i]` is the caller parameter index the `i`-th argument is
    /// rooted in, or `None` for literals, locals, and globals.
    pub args: Vec<Option<usize>>,
}

/// The exportable digest of one function definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnExport {
    /// Function name.
    pub name: String,
    /// Whether the definition is `static` (unit-local linkage).
    pub is_static: bool,
    /// Every direct call, in CFG-node order.
    pub calls: Vec<CallSite>,
    /// Parameters stored directly into long-lived locations.
    pub stores: Vec<usize>,
}

/// All function exports of one translation unit.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct UnitExports {
    /// Unit path (the identity used for linkage scoping).
    pub path: String,
    /// One export per function definition, in source order.
    pub fns: Vec<FnExport>,
}

fn push_unique(v: &mut Vec<usize>, idx: usize) {
    if !v.contains(&idx) {
        v.push(idx);
    }
}

impl UnitExports {
    /// Extracts the exports of one unit from its function graphs.
    ///
    /// `globals` are the unit's global variable names; a store into one
    /// of them counts as an escape (mirroring the checkers' notion of
    /// "escapes to a long-lived location").
    pub fn extract(path: &str, graphs: &[FunctionGraph], globals: &[String]) -> UnitExports {
        let fns = graphs
            .iter()
            .map(|g| {
                let params: Vec<Option<&str>> =
                    g.func.params.iter().map(|p| p.name.as_deref()).collect();
                let param_index = |root: Option<&str>| -> Option<usize> {
                    let root = root?;
                    params.iter().position(|p| *p == Some(root))
                };
                let mut calls = Vec::new();
                let mut stores = Vec::new();
                for n in g.cfg.node_ids() {
                    for call in &g.facts[n].calls {
                        calls.push(CallSite {
                            callee: call.name.clone(),
                            args: call
                                .args
                                .iter()
                                .map(|a| param_index(a.root.as_deref()))
                                .collect(),
                        });
                    }
                    for assign in &g.facts[n].assigns {
                        let Some(idx) = param_index(assign.rhs_root.as_deref()) else {
                            continue;
                        };
                        let escapes = match &assign.target {
                            StoreTarget::Field { .. } | StoreTarget::Indirect(_) => true,
                            StoreTarget::Var(v) => globals.iter().any(|name| name == v),
                            StoreTarget::Other => false,
                        };
                        if escapes {
                            push_unique(&mut stores, idx);
                        }
                    }
                }
                FnExport {
                    name: g.name().to_string(),
                    is_static: g.func.is_static,
                    calls,
                    stores,
                }
            })
            .collect();
        UnitExports {
            path: path.to_string(),
            fns,
        }
    }
}

struct FnInfo {
    is_static: bool,
    unit: usize,
}

/// Build-time symbol interner: every function, callee, and unit-path
/// name in the merged database shares one allocation per distinct
/// string. Lookups still take `&str` (through `Borrow`), so the delta
/// engine's interprocedural queries — one `summary_of` per call node
/// per seed — never clone a key.
#[derive(Default)]
struct Interner(HashSet<Arc<str>>);

impl Interner {
    fn intern(&mut self, s: &str) -> Arc<str> {
        if let Some(a) = self.0.get(s) {
            return a.clone();
        }
        let a: Arc<str> = Arc::from(s);
        self.0.insert(a.clone());
        a
    }
}

/// The merged whole-program view: every function's effect summary,
/// resolvable by `(unit, name)` under C linkage rules.
#[derive(Default)]
pub struct ProgramDb {
    fns: Vec<FnInfo>,
    summaries: Vec<FnSummary>,
    /// Per unit: first definition of each name (file-scope lookup).
    by_unit: Vec<HashMap<Arc<str>, usize>>,
    /// First non-`static` definition of each name, in unit order.
    extern_first: HashMap<Arc<str>, usize>,
    unit_of_path: HashMap<Arc<str>, usize>,
    /// Unit index → path: the O(1) reverse of `unit_of_path`, so the
    /// deps fingerprint can name a resolution's defining unit without
    /// scanning the forward map.
    unit_paths: Vec<Arc<str>>,
    /// Per unit: sorted, deduplicated callee names (for fingerprints).
    unit_callees: Vec<Vec<Arc<str>>>,
    whole_program: bool,
}

fn resolve(
    by_unit: &[HashMap<Arc<str>, usize>],
    extern_first: &HashMap<Arc<str>, usize>,
    whole_program: bool,
    unit: usize,
    name: &str,
) -> Option<usize> {
    if let Some(&id) = by_unit[unit].get(name) {
        return Some(id);
    }
    if whole_program {
        extern_first.get(name).copied()
    } else {
        None
    }
}

impl ProgramDb {
    /// An empty database: every lookup misses. The neutral element for
    /// tests and for callers with no program context.
    pub fn empty() -> ProgramDb {
        ProgramDb::default()
    }

    /// Builds the database for a single unit (no cross-unit
    /// resolution) — the shape `check_unit` uses when auditing one
    /// translation unit in isolation.
    pub fn local(
        path: &str,
        graphs: &[FunctionGraph],
        globals: &[String],
        kb: &ApiKb,
    ) -> ProgramDb {
        let exports = UnitExports::extract(path, graphs, globals);
        ProgramDb::build(&[&exports], kb, false)
    }

    /// Merges per-unit exports into the whole-program database.
    ///
    /// `units` must be in a deterministic order (the audit uses unit
    /// index order); external resolution picks the first external
    /// definition in that order. With `whole_program == false` every
    /// lookup stays unit-local, reproducing the pre-refactor per-unit
    /// behavior exactly.
    pub fn build(units: &[&UnitExports], kb: &ApiKb, whole_program: bool) -> ProgramDb {
        let mut interner = Interner::default();
        let mut fns = Vec::new();
        let mut by_unit = Vec::with_capacity(units.len());
        let mut extern_first: HashMap<Arc<str>, usize> = HashMap::new();
        let mut unit_of_path = HashMap::new();
        let mut unit_paths = Vec::with_capacity(units.len());
        let mut unit_callees = Vec::with_capacity(units.len());
        for (ui, unit) in units.iter().enumerate() {
            let path = interner.intern(&unit.path);
            unit_paths.push(path.clone());
            unit_of_path.entry(path).or_insert(ui);
            let mut map: HashMap<Arc<str>, usize> = HashMap::new();
            for f in &unit.fns {
                let id = fns.len();
                fns.push(FnInfo {
                    is_static: f.is_static,
                    unit: ui,
                });
                let name = interner.intern(&f.name);
                map.entry(name.clone()).or_insert(id);
                if !f.is_static {
                    extern_first.entry(name).or_insert(id);
                }
            }
            by_unit.push(map);
            let mut names: Vec<Arc<str>> = Vec::new();
            for f in &unit.fns {
                for c in &f.calls {
                    names.push(interner.intern(&c.callee));
                }
            }
            names.sort();
            names.dedup();
            unit_callees.push(names);
        }

        // Effect fixpoint. A knowledge-base match on the callee name
        // always shadows helper resolution; summaries are read from the
        // current state, so effects propagate through helper chains
        // across rounds (and within a round, in definition order). Each
        // round recomputes every summary fresh from a state that only
        // grows, so iterates are monotone over a finite domain (arg
        // indices of the function's own calls): the loop terminates at
        // the least fixed point without an arbitrary round cap. Running
        // to the true fixpoint also makes the result independent of
        // which *other* units are in the database — any subset of units
        // closed under call resolution converges to the same summaries,
        // which the streaming scheduler's per-closure databases rely on.
        let mut summaries = vec![FnSummary::default(); fns.len()];
        loop {
            let mut changed = false;
            let mut id = 0;
            for (ui, unit) in units.iter().enumerate() {
                for f in &unit.fns {
                    let mut summary = FnSummary {
                        stores: f.stores.clone(),
                        ..FnSummary::default()
                    };
                    for call in &f.calls {
                        if let Some(api) = kb.get(&call.callee) {
                            if let Some(obj) = api.object_arg() {
                                if let Some(idx) = call.args.get(obj).copied().flatten() {
                                    match api.dir {
                                        RcDir::Dec => push_unique(&mut summary.releases, idx),
                                        RcDir::Inc => push_unique(&mut summary.acquires, idx),
                                    }
                                }
                            }
                            continue;
                        }
                        let Some(callee_id) =
                            resolve(&by_unit, &extern_first, whole_program, ui, &call.callee)
                        else {
                            continue;
                        };
                        let callee = summaries[callee_id].clone();
                        for &rel in &callee.releases {
                            if let Some(idx) = call.args.get(rel).copied().flatten() {
                                push_unique(&mut summary.releases, idx);
                            }
                        }
                        for &acq in &callee.acquires {
                            if let Some(idx) = call.args.get(acq).copied().flatten() {
                                push_unique(&mut summary.acquires, idx);
                            }
                        }
                        for &st in &callee.stores {
                            if let Some(idx) = call.args.get(st).copied().flatten() {
                                push_unique(&mut summary.stores, idx);
                            }
                        }
                    }
                    if summaries[id] != summary {
                        summaries[id] = summary;
                        changed = true;
                    }
                    id += 1;
                }
            }
            if !changed {
                break;
            }
        }

        ProgramDb {
            fns,
            summaries,
            by_unit,
            extern_first,
            unit_of_path,
            unit_paths,
            unit_callees,
            whole_program,
        }
    }

    fn resolve_from(&self, file: &str, name: &str) -> Option<usize> {
        let ui = *self.unit_of_path.get(file)?;
        resolve(
            &self.by_unit,
            &self.extern_first,
            self.whole_program,
            ui,
            name,
        )
    }

    /// The summary of `name` as visible from `file`, or `None` if the
    /// name does not resolve to a definition from there.
    pub fn summary_of(&self, file: &str, name: &str) -> Option<&FnSummary> {
        self.resolve_from(file, name).map(|id| &self.summaries[id])
    }

    /// Whether calling `callee` from `file` releases a reference held
    /// by argument `arg`.
    pub fn call_releases(&self, file: &str, callee: &str, arg: usize) -> bool {
        self.summary_of(file, callee)
            .is_some_and(|s| s.releases.contains(&arg))
    }

    /// The summary of `callee` *only if* it resolves to a definition in
    /// a different unit than `file` — the gate for every behavior
    /// refinement that must leave single-unit results untouched.
    pub fn cross_unit_summary(&self, file: &str, callee: &str) -> Option<&FnSummary> {
        let ui = *self.unit_of_path.get(file)?;
        let id = resolve(
            &self.by_unit,
            &self.extern_first,
            self.whole_program,
            ui,
            callee,
        )?;
        if self.fns[id].unit == ui {
            return None;
        }
        Some(&self.summaries[id])
    }

    /// Whether `callee`, defined in a *different* unit than `file`,
    /// stores argument `arg` into a long-lived location.
    pub fn cross_unit_stores(&self, file: &str, callee: &str, arg: usize) -> bool {
        self.cross_unit_summary(file, callee)
            .is_some_and(|s| s.stores.contains(&arg))
    }

    /// Whether `callee`, defined in a *different* unit than `file`,
    /// releases any of its first `nargs` parameters.
    pub fn cross_unit_release(&self, file: &str, callee: &str, nargs: usize) -> bool {
        self.cross_unit_summary(file, callee)
            .is_some_and(|s| s.releases.iter().any(|&j| j < nargs))
    }

    /// A fingerprint of everything `file`'s checking consumes from
    /// *other* parts of the database: for each distinct callee name,
    /// where it resolves to and what its merged summary says. Editing a
    /// helper's unit changes this value for exactly the units that call
    /// it, which is what keys their check-layer invalidation.
    pub fn deps_fingerprint(&self, file: &str) -> u64 {
        let Some(&ui) = self.unit_of_path.get(file) else {
            return 0;
        };
        let mut h = FNV_OFFSET;
        for name in &self.unit_callees[ui] {
            h = mix(h, fnv1a(name.as_bytes()));
            match resolve(
                &self.by_unit,
                &self.extern_first,
                self.whole_program,
                ui,
                name,
            ) {
                Some(id) => {
                    let info = &self.fns[id];
                    let def_unit: &str = &self.unit_paths[info.unit];
                    h = mix(h, fnv1a(def_unit.as_bytes()));
                    h = mix(h, info.is_static as u64 + 1);
                    let s = &self.summaries[id];
                    for part in [&s.releases, &s.acquires, &s.stores] {
                        h = mix(h, part.len() as u64 + 1);
                        for &idx in part.iter() {
                            h = mix(h, idx as u64 + 1);
                        }
                    }
                }
                None => h = mix(h, 0),
            }
        }
        h
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x100_0000_01b3;

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

fn mix(h: u64, word: u64) -> u64 {
    let mut h = h;
    for b in word.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use refminer_cparse::parse_str;

    fn exports(path: &str, src: &str) -> UnitExports {
        let tu = parse_str(path, src);
        let graphs = FunctionGraph::build_all(&tu);
        let globals: Vec<String> = tu.globals().map(|g| g.name.clone()).collect();
        UnitExports::extract(path, &graphs, &globals)
    }

    fn local_db(src: &str) -> ProgramDb {
        let ex = exports("t.c", src);
        ProgramDb::build(&[&ex], &ApiKb::builtin(), false)
    }

    #[test]
    fn direct_release_summarized() {
        let db = local_db(
            r#"
static void foo_cleanup(struct device_node *np)
{
        of_node_put(np);
}
"#,
        );
        assert_eq!(
            db.summary_of("t.c", "foo_cleanup").unwrap().releases,
            vec![0]
        );
        assert!(db.call_releases("t.c", "foo_cleanup", 0));
        assert!(!db.call_releases("t.c", "foo_cleanup", 1));
    }

    #[test]
    fn transitive_release_through_helper() {
        let db = local_db(
            r#"
static void inner(struct device_node *np)
{
        of_node_put(np);
}
static void outer(struct device_node *np)
{
        inner(np);
}
"#,
        );
        assert!(db.call_releases("t.c", "inner", 0));
        assert!(db.call_releases("t.c", "outer", 0));
    }

    #[test]
    fn acquire_summarized() {
        let db = local_db(
            r#"
static void pin_node(struct device_node *np)
{
        of_node_get(np);
}
"#,
        );
        assert_eq!(db.summary_of("t.c", "pin_node").unwrap().acquires, vec![0]);
        assert!(!db.call_releases("t.c", "pin_node", 0));
    }

    #[test]
    fn unrelated_helper_has_empty_summary() {
        let db = local_db(
            r#"
static int helper(struct device_node *np)
{
        return np->flags;
}
"#,
        );
        assert_eq!(
            db.summary_of("t.c", "helper").unwrap(),
            &FnSummary::default()
        );
    }

    #[test]
    fn second_parameter_tracked() {
        let db = local_db(
            r#"
static void detach(struct device *dev, struct device_node *np)
{
        of_node_put(np);
}
"#,
        );
        assert_eq!(db.summary_of("t.c", "detach").unwrap().releases, vec![1]);
        assert!(db.call_releases("t.c", "detach", 1));
        assert!(!db.call_releases("t.c", "detach", 0));
    }

    #[test]
    fn static_helpers_with_same_name_do_not_collide() {
        // The latent HelperSummaries bug: summaries keyed by bare name
        // attached unit A's effects to unit B's same-named static.
        let a = exports(
            "a.c",
            r#"
static void foo_put(struct device_node *np)
{
        of_node_put(np);
}
"#,
        );
        let b = exports(
            "b.c",
            r#"
static void foo_put(struct device_node *np)
{
        np->flags = 0;
}
"#,
        );
        for whole_program in [false, true] {
            let db = ProgramDb::build(&[&a, &b], &ApiKb::builtin(), whole_program);
            assert!(db.call_releases("a.c", "foo_put", 0));
            assert!(
                !db.call_releases("b.c", "foo_put", 0),
                "b.c's static foo_put must keep its own (empty) summary \
                 (whole_program={whole_program})"
            );
        }
    }

    #[test]
    fn extern_helper_resolves_cross_unit_only_in_whole_program_mode() {
        let helpers = exports(
            "helpers.c",
            r#"
void lib_release(struct device_node *np)
{
        of_node_put(np);
}
"#,
        );
        let caller = exports(
            "caller.c",
            r#"
static void drop(struct device_node *np)
{
        lib_release(np);
}
"#,
        );
        let on = ProgramDb::build(&[&helpers, &caller], &ApiKb::builtin(), true);
        assert!(on.call_releases("caller.c", "lib_release", 0));
        assert!(on.call_releases("caller.c", "drop", 0), "transitive");
        let off = ProgramDb::build(&[&helpers, &caller], &ApiKb::builtin(), false);
        assert!(!off.call_releases("caller.c", "lib_release", 0));
        assert!(!off.call_releases("caller.c", "drop", 0));
    }

    #[test]
    fn same_unit_definition_shadows_external_one() {
        let lib = exports(
            "lib.c",
            r#"
void reap(struct device_node *np)
{
        of_node_put(np);
}
"#,
        );
        let own = exports(
            "own.c",
            r#"
static void reap(struct device_node *np)
{
        np->flags = 0;
}
static void use_it(struct device_node *np)
{
        reap(np);
}
"#,
        );
        let db = ProgramDb::build(&[&lib, &own], &ApiKb::builtin(), true);
        assert!(!db.call_releases("own.c", "reap", 0));
        assert!(!db.call_releases("own.c", "use_it", 0));
        assert!(db.call_releases("lib.c", "reap", 0));
    }

    #[test]
    fn stores_tracked_directly_and_transitively() {
        let helpers = exports(
            "helpers.c",
            r#"
void stash(struct priv *p, void *cookie)
{
        p->node = cookie;
}
void stash_via(struct priv *p, void *cookie)
{
        stash(p, cookie);
}
"#,
        );
        let caller = exports(
            "caller.c",
            r#"
static void keep(struct priv *p, struct device_node *np)
{
        stash(p, np);
}
"#,
        );
        let db = ProgramDb::build(&[&helpers, &caller], &ApiKb::builtin(), true);
        assert_eq!(db.summary_of("helpers.c", "stash").unwrap().stores, vec![1]);
        assert_eq!(
            db.summary_of("helpers.c", "stash_via").unwrap().stores,
            vec![1]
        );
        // Cross-unit view from the caller: argument 1 escapes.
        assert!(db.cross_unit_stores("caller.c", "stash", 1));
        assert!(!db.cross_unit_stores("caller.c", "stash", 0));
        // Same-unit resolution is never reported as cross-unit.
        assert!(!db.cross_unit_stores("helpers.c", "stash", 1));
    }

    #[test]
    fn cross_unit_release_respects_arity() {
        let helpers = exports(
            "helpers.c",
            r#"
void teardown(struct device *dev, struct device_node *np)
{
        of_node_put(np);
}
"#,
        );
        let caller = exports("caller.c", "static void f(void) { }\n");
        let db = ProgramDb::build(&[&helpers, &caller], &ApiKb::builtin(), true);
        assert!(db.cross_unit_release("caller.c", "teardown", 2));
        assert!(!db.cross_unit_release("caller.c", "teardown", 1));
        assert!(!db.cross_unit_release("helpers.c", "teardown", 2));
    }

    #[test]
    fn deps_fingerprint_tracks_helper_summary_changes() {
        let caller_src = r#"
static void drop(struct device_node *np)
{
        lib_release(np);
}
"#;
        let releasing = exports(
            "helpers.c",
            "void lib_release(struct device_node *np) { of_node_put(np); }\n",
        );
        let inert = exports(
            "helpers.c",
            "void lib_release(struct device_node *np) { np->flags = 0; }\n",
        );
        let caller = exports("caller.c", caller_src);
        let db1 = ProgramDb::build(&[&releasing, &caller], &ApiKb::builtin(), true);
        let db2 = ProgramDb::build(&[&inert, &caller], &ApiKb::builtin(), true);
        let db3 = ProgramDb::build(&[&releasing, &caller], &ApiKb::builtin(), true);
        assert_ne!(
            db1.deps_fingerprint("caller.c"),
            db2.deps_fingerprint("caller.c"),
            "dependent unit's fingerprint must follow the helper's summary"
        );
        assert_eq!(
            db1.deps_fingerprint("caller.c"),
            db3.deps_fingerprint("caller.c"),
            "identical inputs yield identical fingerprints"
        );
        assert_ne!(db1.deps_fingerprint("caller.c"), 0);
    }

    #[test]
    fn kb_names_shadow_helper_definitions() {
        // A unit defining its own `of_node_put` does not override the
        // knowledge base: the KB branch wins, exactly like the old
        // HelperSummaries fixpoint.
        let db = local_db(
            r#"
void of_node_put(struct device_node *np)
{
        np->flags = 0;
}
static void drop(struct device_node *np)
{
        of_node_put(np);
}
"#,
        );
        assert!(db.call_releases("t.c", "drop", 0));
    }

    #[test]
    fn empty_db_misses_everything() {
        let db = ProgramDb::empty();
        assert!(!db.call_releases("t.c", "anything", 0));
        assert!(db.summary_of("t.c", "anything").is_none());
        assert_eq!(db.deps_fingerprint("t.c"), 0);
    }
}

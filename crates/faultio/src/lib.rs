//! Deterministic I/O fault injection for the audit pipeline.
//!
//! Every filesystem operation the pipeline's persistence and scan
//! layers perform goes through the thin wrappers in this crate instead
//! of calling `std::fs` directly. With no plan installed the wrappers
//! delegate with zero behavioral difference — the only cost is one
//! relaxed atomic load. With a [`FaultPlan`] installed (in-process via
//! [`install`], or through the `REFMINER_FAULTS` environment variable
//! for black-box processes), a *seeded, deterministic* schedule decides
//! which calls fail: the `n`-th call of a given operation kind fails
//! exactly when `fnv(seed, kind, n) % rate == 0`, so a failing run can
//! be replayed bit-for-bit by reusing the seed.
//!
//! Three fault shapes:
//!
//! - **Erroring** — the wrapper returns `io::Error` (kind `Other`,
//!   message prefixed `injected fault:`) without touching the
//!   filesystem. Models `EIO`, `ENOSPC`, permission flaps.
//! - **Torn write** — for [`write`] only: the wrapper writes a *prefix*
//!   of the content and then errors, simulating a process killed (or a
//!   disk filled) mid-write. This is what makes the atomic-rename save
//!   path testable without real `kill -9` timing races.
//! - **Stall** — with [`FaultPlan::stall_ms`] set, a scheduled call
//!   *sleeps* that long and then proceeds normally instead of erroring.
//!   Models a hung NFS mount or a disk spinning up: the operation
//!   eventually succeeds, but anything waiting on it without a deadline
//!   hangs with it. The sleep happens outside the plan lock, so other
//!   threads' I/O keeps flowing while one call stalls.
//!
//! The schedule is global to the process (a `Mutex<Option<Plan>>`), so
//! a daemon under test can have faults injected into every layer at
//! once; [`stats`] reports how many faults each operation kind absorbed
//! so tests can assert the harness actually fired.

use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};

/// Operation kinds the injector can fail, in stable order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultOp {
    /// File reads: [`read`], [`read_to_string`].
    Read,
    /// File writes: [`write`] (including the torn-write shape).
    Write,
    /// [`rename`] — the atomic-publish step of cache saves.
    Rename,
    /// Directory creation: [`create_dir_all`].
    Mkdir,
    /// Scan syscalls: [`metadata`], [`read_dir`].
    Scan,
}

impl FaultOp {
    /// Every kind, in stable order (indexes the per-op counters).
    pub fn all() -> [FaultOp; 5] {
        [
            FaultOp::Read,
            FaultOp::Write,
            FaultOp::Rename,
            FaultOp::Mkdir,
            FaultOp::Scan,
        ]
    }

    /// Stable lower-case name, used by `REFMINER_FAULTS` and reports.
    pub fn name(&self) -> &'static str {
        match self {
            FaultOp::Read => "read",
            FaultOp::Write => "write",
            FaultOp::Rename => "rename",
            FaultOp::Mkdir => "mkdir",
            FaultOp::Scan => "scan",
        }
    }

    /// Parses [`FaultOp::name`] back into the kind.
    pub fn from_name(name: &str) -> Option<FaultOp> {
        FaultOp::all().into_iter().find(|o| o.name() == name)
    }

    fn index(&self) -> usize {
        *self as usize
    }
}

/// A deterministic fault schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed mixed into every schedule decision; same seed, same faults.
    pub seed: u64,
    /// Fail roughly one call in `rate`. `0` disables injection (an
    /// installed-but-inert plan), `1` fails every call.
    pub rate: u64,
    /// Which operation kinds the schedule applies to.
    pub ops: Vec<FaultOp>,
    /// Hard cap on total injected failures; `None` is unlimited. Lets a
    /// soak test front-load chaos and then settle into a clean tail.
    pub max_failures: Option<u64>,
    /// When set, a failing [`write`] first writes this fraction of the
    /// content (in per-mille, so `500` = half) before erroring — the
    /// torn-write shape. `0` means fail before writing anything.
    pub torn_write_permille: u16,
    /// When nonzero, a scheduled call sleeps this many milliseconds and
    /// then *proceeds normally* instead of erroring — the stall shape.
    /// Counts toward [`FaultStats::injected`] and `max_failures` like
    /// an erroring fault.
    pub stall_ms: u64,
}

impl FaultPlan {
    /// A plan failing one in `rate` calls of every operation kind.
    pub fn everything(seed: u64, rate: u64) -> FaultPlan {
        FaultPlan {
            seed,
            rate,
            ops: FaultOp::all().to_vec(),
            max_failures: None,
            torn_write_permille: 500,
            stall_ms: 0,
        }
    }

    /// Parses the `REFMINER_FAULTS` syntax:
    /// `seed=N,rate=N[,ops=read+write+rename][,max=N][,torn=N][,stall=N]`.
    /// Unknown keys and malformed values yield `None` — a typo must
    /// never silently run faultless.
    pub fn parse(spec: &str) -> Option<FaultPlan> {
        let mut plan = FaultPlan {
            seed: 0,
            rate: 0,
            ops: FaultOp::all().to_vec(),
            max_failures: None,
            torn_write_permille: 500,
            stall_ms: 0,
        };
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (key, value) = part.split_once('=')?;
            match key.trim() {
                "seed" => plan.seed = value.trim().parse().ok()?,
                "rate" => plan.rate = value.trim().parse().ok()?,
                "max" => plan.max_failures = Some(value.trim().parse().ok()?),
                "torn" => plan.torn_write_permille = value.trim().parse().ok()?,
                "stall" => plan.stall_ms = value.trim().parse().ok()?,
                "ops" => {
                    plan.ops = value
                        .split('+')
                        .map(|o| FaultOp::from_name(o.trim()))
                        .collect::<Option<_>>()?;
                }
                _ => return None,
            }
        }
        Some(plan)
    }
}

/// How many faults each operation kind has absorbed since the plan was
/// installed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Injected failures per [`FaultOp`] (indexed by stable order).
    pub injected: [u64; 5],
    /// Total calls per [`FaultOp`] that consulted the schedule.
    pub calls: [u64; 5],
}

impl FaultStats {
    /// Total injected failures across all operation kinds.
    pub fn total_injected(&self) -> u64 {
        self.injected.iter().sum()
    }
}

#[derive(Debug)]
struct ActivePlan {
    plan: FaultPlan,
    stats: FaultStats,
}

static PLAN: Mutex<Option<ActivePlan>> = Mutex::new(None);
/// Fast path: skip the mutex entirely while no plan is installed.
static ARMED: AtomicBool = AtomicBool::new(false);
static ENV_INIT: OnceLock<()> = OnceLock::new();

/// Installs a fault plan process-wide, resetting counters and stats.
pub fn install(plan: FaultPlan) {
    let mut guard = PLAN.lock().unwrap();
    ARMED.store(plan.rate > 0, Ordering::Relaxed);
    *guard = Some(ActivePlan {
        plan,
        stats: FaultStats::default(),
    });
}

/// Removes any installed plan; subsequent calls are plain `std::fs`.
pub fn clear() {
    let mut guard = PLAN.lock().unwrap();
    ARMED.store(false, Ordering::Relaxed);
    *guard = None;
}

/// Reads `REFMINER_FAULTS` once per process and installs the plan it
/// describes. Called lazily by every wrapper, so a daemon started with
/// the variable set is faulty from its very first I/O; explicit
/// [`install`]/[`clear`] calls still override it afterwards.
fn maybe_init_from_env() {
    ENV_INIT.get_or_init(|| {
        if let Ok(spec) = std::env::var("REFMINER_FAULTS") {
            // An empty value means "no faults", so wrappers can pass
            // the variable through unconditionally.
            if spec.trim().is_empty() {
                return;
            }
            match FaultPlan::parse(&spec) {
                Some(plan) => install(plan),
                None => eprintln!("refminer-faultio: ignoring malformed REFMINER_FAULTS `{spec}`"),
            }
        }
    });
}

/// Current stats, `None` when no plan is installed.
pub fn stats() -> Option<FaultStats> {
    PLAN.lock().unwrap().as_ref().map(|a| a.stats)
}

/// Whether a plan is installed with a nonzero rate.
pub fn is_armed() -> bool {
    maybe_init_from_env();
    ARMED.load(Ordering::Relaxed)
}

const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001b3;

fn fnv_mix(mut h: u64, word: u64) -> u64 {
    for b in word.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// What the schedule decided for one call.
enum Injection {
    /// Return an injected `io::Error` (carries the torn-write permille,
    /// which only [`write`] consults).
    Fail(u16),
    /// Sleep this many milliseconds, then proceed normally.
    Stall(u64),
}

/// Consults the schedule for one call of `op`. The decision is taken
/// under the plan lock; a stall's sleep is performed by the wrapper
/// *after* the lock is released so one stalled call never blocks the
/// schedule for other threads.
fn consult(op: FaultOp) -> Option<Injection> {
    maybe_init_from_env();
    if !ARMED.load(Ordering::Relaxed) {
        return None;
    }
    let mut guard = PLAN.lock().unwrap();
    let active = guard.as_mut()?;
    if !active.plan.ops.contains(&op) || active.plan.rate == 0 {
        return None;
    }
    let i = op.index();
    let n = active.stats.calls[i];
    active.stats.calls[i] += 1;
    if let Some(max) = active.plan.max_failures {
        if active.stats.total_injected() >= max {
            return None;
        }
    }
    let h = fnv_mix(fnv_mix(fnv_mix(FNV_OFFSET, active.plan.seed), i as u64), n);
    if h.is_multiple_of(active.plan.rate) {
        active.stats.injected[i] += 1;
        if active.plan.stall_ms > 0 {
            Some(Injection::Stall(active.plan.stall_ms))
        } else {
            Some(Injection::Fail(active.plan.torn_write_permille))
        }
    } else {
        None
    }
}

/// Consults the schedule for one call of `op`, absorbing any stall
/// in-place. Returns `Some(permille)` exactly when the call must fail.
fn should_fail(op: FaultOp) -> Option<u16> {
    match consult(op)? {
        Injection::Fail(permille) => Some(permille),
        Injection::Stall(ms) => {
            std::thread::sleep(std::time::Duration::from_millis(ms));
            None
        }
    }
}

fn injected(op: FaultOp, path: &Path) -> io::Error {
    io::Error::other(format!("injected fault: {} {}", op.name(), path.display()))
}

/// `std::fs::read` through the fault seam.
pub fn read(path: impl AsRef<Path>) -> io::Result<Vec<u8>> {
    let path = path.as_ref();
    if should_fail(FaultOp::Read).is_some() {
        return Err(injected(FaultOp::Read, path));
    }
    std::fs::read(path)
}

/// `std::fs::read_to_string` through the fault seam.
pub fn read_to_string(path: impl AsRef<Path>) -> io::Result<String> {
    let path = path.as_ref();
    if should_fail(FaultOp::Read).is_some() {
        return Err(injected(FaultOp::Read, path));
    }
    std::fs::read_to_string(path)
}

/// The bytes of a file read through [`read_mapped`]: either a private
/// read-only memory mapping (unmapped on drop) or an owned buffer (the
/// fallback for empty files, mapping failures, and non-Unix targets).
/// Derefs to `[u8]`, so callers index it exactly like a `Vec<u8>`.
///
/// The mapping is `MAP_PRIVATE` + `PROT_READ`: writes to the underlying
/// file after the map is taken may or may not be visible, which is fine
/// for the audit cache's read-validate-index lifecycle — the checksum is
/// verified against the mapped bytes themselves, and a concurrent save
/// publishes via rename (a *new* inode), never by mutating the mapped
/// one in place.
#[derive(Debug)]
pub enum FileBytes {
    /// Bytes held in process memory.
    Owned(Vec<u8>),
    /// A live mapping; `munmap`ped on drop.
    #[cfg(unix)]
    Mapped {
        /// Page-aligned base address returned by `mmap`.
        ptr: *mut u8,
        /// Length of the mapping (the file length at map time).
        len: usize,
    },
}

// A `MAP_PRIVATE|PROT_READ` mapping is immutable shared memory owned
// exclusively by this value; moving or sharing references across
// threads is as safe as for a `Vec<u8>`.
unsafe impl Send for FileBytes {}
unsafe impl Sync for FileBytes {}

impl std::ops::Deref for FileBytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        match self {
            FileBytes::Owned(v) => v,
            #[cfg(unix)]
            FileBytes::Mapped { ptr, len } => unsafe { std::slice::from_raw_parts(*ptr, *len) },
        }
    }
}

impl AsRef<[u8]> for FileBytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl Drop for FileBytes {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let FileBytes::Mapped { ptr, len } = self {
            unsafe {
                mmap_sys::munmap(*ptr as *mut std::ffi::c_void, *len);
            }
        }
    }
}

#[cfg(unix)]
mod mmap_sys {
    use std::ffi::{c_int, c_void};

    pub const PROT_READ: c_int = 1;
    pub const MAP_PRIVATE: c_int = 2;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }
}

/// Reads a whole file through the fault seam like [`read`], but returns
/// the bytes as a memory mapping when the platform supports it instead
/// of copying them into a `Vec`. Consults the same [`FaultOp::Read`]
/// schedule — an injected fault fails the call identically whichever
/// representation would have been used. Empty files and mapping
/// failures degrade silently to an owned read; the caller sees one
/// `FileBytes` either way.
pub fn read_mapped(path: impl AsRef<Path>) -> io::Result<FileBytes> {
    let path = path.as_ref();
    if should_fail(FaultOp::Read).is_some() {
        return Err(injected(FaultOp::Read, path));
    }
    map_file(path)
}

#[cfg(unix)]
fn map_file(path: &Path) -> io::Result<FileBytes> {
    use std::os::unix::io::AsRawFd;
    let file = std::fs::File::open(path)?;
    let len = file.metadata()?.len();
    if len == 0 || len > usize::MAX as u64 {
        // Zero-length maps are an error per POSIX; absurd lengths
        // cannot be addressed. Both fall back to the owned read.
        return std::fs::read(path).map(FileBytes::Owned);
    }
    let len = len as usize;
    let ptr = unsafe {
        mmap_sys::mmap(
            std::ptr::null_mut(),
            len,
            mmap_sys::PROT_READ,
            mmap_sys::MAP_PRIVATE,
            file.as_raw_fd(),
            0,
        )
    };
    if ptr.is_null() || ptr as isize == -1 {
        return std::fs::read(path).map(FileBytes::Owned);
    }
    Ok(FileBytes::Mapped {
        ptr: ptr as *mut u8,
        len,
    })
}

#[cfg(not(unix))]
fn map_file(path: &Path) -> io::Result<FileBytes> {
    std::fs::read(path).map(FileBytes::Owned)
}

/// `std::fs::write` through the fault seam. A scheduled failure with a
/// nonzero torn-write fraction writes that prefix of `contents` first —
/// the on-disk state a mid-write kill leaves behind.
pub fn write(path: impl AsRef<Path>, contents: impl AsRef<[u8]>) -> io::Result<()> {
    let path = path.as_ref();
    let contents = contents.as_ref();
    if let Some(permille) = should_fail(FaultOp::Write) {
        let keep = (contents.len() as u64 * permille as u64 / 1000) as usize;
        if keep > 0 {
            let _ = std::fs::write(path, &contents[..keep]);
        }
        return Err(injected(FaultOp::Write, path));
    }
    std::fs::write(path, contents)
}

/// `std::fs::rename` through the fault seam.
pub fn rename(from: impl AsRef<Path>, to: impl AsRef<Path>) -> io::Result<()> {
    let from = from.as_ref();
    if should_fail(FaultOp::Rename).is_some() {
        return Err(injected(FaultOp::Rename, from));
    }
    std::fs::rename(from, to.as_ref())
}

/// `std::fs::create_dir_all` through the fault seam.
pub fn create_dir_all(path: impl AsRef<Path>) -> io::Result<()> {
    let path = path.as_ref();
    if should_fail(FaultOp::Mkdir).is_some() {
        return Err(injected(FaultOp::Mkdir, path));
    }
    std::fs::create_dir_all(path)
}

/// `std::fs::metadata` through the fault seam (a scan syscall).
pub fn metadata(path: impl AsRef<Path>) -> io::Result<std::fs::Metadata> {
    let path = path.as_ref();
    if should_fail(FaultOp::Scan).is_some() {
        return Err(injected(FaultOp::Scan, path));
    }
    std::fs::metadata(path)
}

/// `std::fs::read_dir` through the fault seam (a scan syscall).
pub fn read_dir(path: impl AsRef<Path>) -> io::Result<std::fs::ReadDir> {
    let path = path.as_ref();
    if should_fail(FaultOp::Scan).is_some() {
        return Err(injected(FaultOp::Scan, path));
    }
    std::fs::read_dir(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use std::sync::{Mutex as StdMutex, MutexGuard, OnceLock as StdOnceLock};

    /// The plan is process-global; tests touching it must not overlap.
    fn lock_plan() -> MutexGuard<'static, ()> {
        static GATE: StdOnceLock<StdMutex<()>> = StdOnceLock::new();
        GATE.get_or_init(|| StdMutex::new(()))
            .lock()
            .unwrap_or_else(|e| e.into_inner())
    }

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("faultio_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn no_plan_is_transparent() {
        let _gate = lock_plan();
        clear();
        let dir = tmp("transparent");
        let p = dir.join("x.txt");
        write(&p, "hello").unwrap();
        assert_eq!(read_to_string(&p).unwrap(), "hello");
        assert_eq!(read(&p).unwrap(), b"hello");
        assert!(metadata(&p).unwrap().is_file());
        assert!(read_dir(&dir).unwrap().count() == 1);
        rename(&p, dir.join("y.txt")).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn schedule_is_deterministic_per_seed() {
        let _gate = lock_plan();
        let dir = tmp("determinism");
        let p = dir.join("x.txt");
        std::fs::write(&p, "x").unwrap();
        let run = |seed: u64| -> Vec<bool> {
            install(FaultPlan {
                seed,
                rate: 3,
                ops: vec![FaultOp::Read],
                max_failures: None,
                torn_write_permille: 0,
                stall_ms: 0,
            });
            (0..32).map(|_| read(&p).is_err()).collect()
        };
        let a = run(7);
        let b = run(7);
        let c = run(8);
        clear();
        assert_eq!(a, b, "same seed, same schedule");
        assert_ne!(a, c, "different seeds diverge");
        assert!(a.iter().any(|&f| f), "rate 3 over 32 calls must fire");
        assert!(!a.iter().all(|&f| f), "rate 3 must not fire every call");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_write_leaves_prefix() {
        let _gate = lock_plan();
        let dir = tmp("torn");
        let p = dir.join("cache.json");
        install(FaultPlan {
            seed: 1,
            rate: 1,
            ops: vec![FaultOp::Write],
            max_failures: None,
            torn_write_permille: 500,
            stall_ms: 0,
        });
        let err = write(&p, "0123456789").unwrap_err();
        clear();
        assert!(err.to_string().contains("injected fault"));
        assert_eq!(std::fs::read_to_string(&p).unwrap(), "01234");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn max_failures_caps_injection() {
        let _gate = lock_plan();
        let dir = tmp("max");
        let p = dir.join("x.txt");
        std::fs::write(&p, "x").unwrap();
        install(FaultPlan {
            seed: 2,
            rate: 1,
            ops: vec![FaultOp::Read],
            max_failures: Some(2),
            torn_write_permille: 0,
            stall_ms: 0,
        });
        let failures = (0..10).filter(|_| read(&p).is_err()).count();
        let stats = stats().unwrap();
        clear();
        assert_eq!(failures, 2);
        assert_eq!(stats.injected[FaultOp::Read as usize], 2);
        assert_eq!(stats.calls[FaultOp::Read as usize], 10);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn parse_env_spec() {
        let plan = FaultPlan::parse("seed=9,rate=5,ops=read+rename,max=3,torn=250").unwrap();
        assert_eq!(plan.seed, 9);
        assert_eq!(plan.rate, 5);
        assert_eq!(plan.ops, vec![FaultOp::Read, FaultOp::Rename]);
        assert_eq!(plan.max_failures, Some(3));
        assert_eq!(plan.torn_write_permille, 250);
        assert_eq!(plan.stall_ms, 0);
        assert_eq!(
            FaultPlan::parse("seed=1,rate=1,stall=40").unwrap().stall_ms,
            40
        );
        assert!(FaultPlan::parse("stall=abc").is_none());
        assert!(FaultPlan::parse("seed=9,bogus=1").is_none());
        assert!(FaultPlan::parse("ops=read+typo").is_none());
        assert!(FaultPlan::parse("rate=abc").is_none());
        // An empty spec is a valid, inert plan.
        assert_eq!(FaultPlan::parse("").unwrap().rate, 0);
    }

    #[test]
    fn read_mapped_round_trips_and_respects_faults() {
        let _gate = lock_plan();
        clear();
        let dir = tmp("mapped");
        let p = dir.join("blob.bin");
        let content: Vec<u8> = (0..8192u32).map(|i| (i % 251) as u8).collect();
        std::fs::write(&p, &content).unwrap();

        let mapped = read_mapped(&p).unwrap();
        assert_eq!(&mapped[..], &content[..], "mapped bytes equal the file");
        #[cfg(unix)]
        assert!(
            matches!(mapped, FileBytes::Mapped { .. }),
            "non-empty file on unix must actually map"
        );
        drop(mapped); // munmap must not crash

        // Empty files degrade to an owned empty buffer.
        let empty = dir.join("empty.bin");
        std::fs::write(&empty, b"").unwrap();
        let fb = read_mapped(&empty).unwrap();
        assert!(fb.is_empty());
        assert!(matches!(fb, FileBytes::Owned(_)));

        // A missing file is a real error, not a panic.
        assert!(read_mapped(dir.join("nope.bin")).is_err());

        // The Read fault schedule applies identically to mapped reads.
        install(FaultPlan {
            seed: 3,
            rate: 1,
            ops: vec![FaultOp::Read],
            max_failures: None,
            torn_write_permille: 0,
            stall_ms: 0,
        });
        let err = read_mapped(&p).unwrap_err();
        clear();
        assert!(err.to_string().contains("injected fault: read"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stall_sleeps_then_proceeds() {
        let _gate = lock_plan();
        let dir = tmp("stall");
        let p = dir.join("x.txt");
        std::fs::write(&p, "slow but fine").unwrap();
        install(FaultPlan {
            seed: 4,
            rate: 1,
            ops: vec![FaultOp::Read],
            max_failures: None,
            torn_write_permille: 0,
            stall_ms: 30,
        });
        let start = std::time::Instant::now();
        let got = read_to_string(&p);
        let elapsed = start.elapsed();
        let stats = stats().unwrap();
        clear();
        // The call succeeds — a stall delays, it does not error.
        assert_eq!(got.unwrap(), "slow but fine");
        assert!(
            elapsed >= std::time::Duration::from_millis(30),
            "stall must actually sleep (took {elapsed:?})"
        );
        // And it is visible in stats like any other injected fault.
        assert_eq!(stats.injected[FaultOp::Read as usize], 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn op_names_round_trip() {
        for op in FaultOp::all() {
            assert_eq!(FaultOp::from_name(op.name()), Some(op));
        }
        assert_eq!(FaultOp::from_name("nope"), None);
    }
}

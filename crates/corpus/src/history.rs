//! Simulated kernel commit history (2005–2022).
//!
//! This is the stand-in for the ~1M-commit Linux git log the paper
//! mines (§3.1). The generator plants refcounting-bug *fixing* commits
//! (plus their introducing commits), keyword-noise candidates that the
//! second filtering stage must reject, wrong-patch/revert pairs
//! (the dcb4b8ad/0a96fa64 case), and bulk neutral commits. Marginal
//! distributions — bug kind (Table 2), subsystem (Figure 2), fix-year
//! growth (Figure 1), lifetime (Figure 3) — are calibrated to the
//! paper; everything downstream (mining, classification, statistics)
//! recovers them from the generated *text*, not from hidden labels.

use refminer_prng::{ChaCha8Rng, Rng, SeedableRng};

use crate::subsystems::HISTORICAL_SUBSYSTEM_WEIGHTS;

/// One simulated commit.
#[derive(Debug, Clone)]
pub struct Commit {
    /// Abbreviated commit hash.
    pub id: String,
    /// Commit year (2005–2022).
    pub year: u32,
    /// Commit month (1–12).
    pub month: u32,
    /// Kernel release the commit landed in (`"v5.10"`).
    pub version: String,
    /// Top-level subsystem touched.
    pub subsystem: String,
    /// Module within the subsystem.
    pub module: String,
    /// Full commit message (summary, body, optional `Fixes:` tag).
    pub message: String,
    /// Unified-diff excerpt (hunk headers plus +/- lines).
    pub diff: String,
}

impl Commit {
    /// The `Fixes:` tag target, if the message carries one.
    pub fn fixes_tag(&self) -> Option<&str> {
        self.message
            .lines()
            .find_map(|l| l.strip_prefix("Fixes: "))
            .map(|rest| rest.split_whitespace().next().unwrap_or(""))
    }
}

/// A generated history, sorted by (year, month).
#[derive(Debug, Clone)]
pub struct History {
    /// All commits in date order.
    pub commits: Vec<Commit>,
}

/// Generation parameters.
#[derive(Debug, Clone)]
pub struct HistoryConfig {
    /// RNG seed.
    pub seed: u64,
    /// Refcounting bug-fix commits to plant (the paper's dataset has
    /// 1,033 after manual confirmation).
    pub n_bugs: usize,
    /// Keyword-noise candidates the second filtering stage rejects
    /// (the paper saw 1,825 candidates for 1,033 bugs).
    pub n_noise: usize,
    /// Wrong-patch + revert pairs (Fixes-tag-based FP removal, §3.1).
    pub n_reverts: usize,
    /// Bulk neutral commits (word2vec corpus volume).
    pub n_neutral: usize,
}

impl Default for HistoryConfig {
    fn default() -> Self {
        HistoryConfig {
            seed: 0x71157041,
            n_bugs: 1033,
            n_noise: 792,
            n_reverts: 12,
            n_neutral: 20_000,
        }
    }
}

/// The taxonomy used for planting (recovered by the miner from text,
/// never read directly by the analyses).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlantedKind {
    MissingDecIntra,
    MissingDecInter,
    LeakOther,
    MisplacedDecUad,
    MisplacedDecOther,
    MisplacedInc,
    MissingIncIntra,
    MissingIncInter,
    UafOther,
}

/// Table 2 weights (out of 1,033).
const KIND_WEIGHTS: &[(PlantedKind, u32)] = &[
    (PlantedKind::MissingDecIntra, 590),
    (PlantedKind::MissingDecInter, 104),
    (PlantedKind::LeakOther, 47),
    (PlantedKind::MisplacedDecUad, 94),
    (PlantedKind::MisplacedDecOther, 25),
    (PlantedKind::MisplacedInc, 25),
    (PlantedKind::MissingIncIntra, 53),
    (PlantedKind::MissingIncInter, 22),
    (PlantedKind::UafOther, 73),
];

/// Figure 1 fix-year growth weights (2005..=2022).
const YEAR_WEIGHTS: &[(u32, u32)] = &[
    (2005, 5),
    (2006, 6),
    (2007, 7),
    (2008, 8),
    (2009, 10),
    (2010, 12),
    (2011, 14),
    (2012, 16),
    (2013, 18),
    (2014, 21),
    (2015, 25),
    (2016, 30),
    (2017, 38),
    (2018, 50),
    (2019, 120),
    (2020, 160),
    (2021, 210),
    (2022, 260),
];

/// Maps a year (plus a within-year fraction) to the kernel release
/// current at that time.
pub fn version_for(year: u32, frac: f64) -> String {
    let half = frac >= 0.5;
    match year {
        2005 => format!("v2.6.{}", if half { 14 } else { 12 }),
        2006 => format!("v2.6.{}", if half { 18 } else { 16 }),
        2007 => format!("v2.6.{}", if half { 23 } else { 21 }),
        2008 => format!("v2.6.{}", if half { 27 } else { 25 }),
        2009 => format!("v2.6.{}", if half { 31 } else { 29 }),
        2010 => format!("v2.6.{}", if half { 36 } else { 34 }),
        2011 => format!("v3.{}", if half { 1 } else { 0 }),
        2012 => format!("v3.{}", if half { 6 } else { 4 }),
        2013 => format!("v3.{}", if half { 11 } else { 9 }),
        2014 => format!("v3.{}", if half { 17 } else { 14 }),
        2015 => format!("v4.{}", if half { 2 } else { 0 }),
        2016 => format!("v4.{}", if half { 8 } else { 5 }),
        2017 => format!("v4.{}", if half { 13 } else { 10 }),
        2018 => format!("v4.{}", if half { 19 } else { 16 }),
        2019 => format!("v5.{}", if half { 3 } else { 0 }),
        2020 => format!("v5.{}", if half { 9 } else { 6 }),
        2021 => format!("v5.{}", if half { 14 } else { 11 }),
        _ => {
            if half {
                "v6.0".to_string()
            } else {
                "v5.17".to_string()
            }
        }
    }
}

/// The major release family of a version string (`"v4.19"` → 4; all
/// v2.6.x map to 2).
pub fn major_of(version: &str) -> u8 {
    version
        .trim_start_matches('v')
        .split('.')
        .next()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

struct Sampler<'a, T: Copy> {
    items: &'a [(T, u32)],
    total: u32,
}

impl<'a, T: Copy> Sampler<'a, T> {
    fn new(items: &'a [(T, u32)]) -> Self {
        Sampler {
            items,
            total: items.iter().map(|(_, w)| w).sum(),
        }
    }

    fn sample(&self, rng: &mut ChaCha8Rng) -> T {
        let mut x = rng.gen_range(0..self.total);
        for (item, w) in self.items {
            if x < *w {
                return *item;
            }
            x -= w;
        }
        self.items[self.items.len() - 1].0
    }
}

/// The inc/dec API families used in planted fixes, per subsystem.
fn api_family(rng: &mut ChaCha8Rng, subsystem: &str) -> (&'static str, &'static str, &'static str) {
    // (find_like_inc, paired_dec, explicit_inc)
    let of_apis: &[(&str, &str, &str)] = &[
        ("of_find_node_by_name", "of_node_put", "of_node_get"),
        ("of_find_compatible_node", "of_node_put", "of_node_get"),
        ("of_find_matching_node", "of_node_put", "of_node_get"),
        ("of_parse_phandle", "of_node_put", "of_node_get"),
        ("of_get_parent", "of_node_put", "of_node_get"),
        ("bus_find_device", "put_device", "get_device"),
        ("class_find_device", "put_device", "get_device"),
        (
            "pm_runtime_get_sync",
            "pm_runtime_put",
            "pm_runtime_get_sync",
        ),
    ];
    let net_apis: &[(&str, &str, &str)] = &[
        ("ip_dev_find", "dev_put", "dev_hold"),
        ("sockfd_lookup", "sockfd_put", "sock_hold"),
        ("tipc_node_find", "tipc_node_put", "sock_hold"),
        ("rxrpc_lookup_peer", "rxrpc_put_peer", "sock_hold"),
    ];
    // NOTE: dec APIs here must carry a refcounting keyword *segment*
    // (`_put`, `_release`, ...) or the paper's stage-1 keyword filter —
    // and ours — cannot see the fix (a real threat-to-validity the
    // paper acknowledges; `bdput`-style names are exactly the kind it
    // misses).
    let fs_apis: &[(&str, &str, &str)] = &[
        ("lookup_bdev", "blkdev_put", "kobject_get"),
        ("afs_alloc_read", "afs_put_read", "kref_get"),
        ("mpol_shared_policy_lookup", "mpol_cond_put", "kref_get"),
    ];
    let pool = match subsystem {
        "net" => net_apis,
        "fs" | "block" => fs_apis,
        _ => of_apis,
    };
    pool[rng.gen_range(0..pool.len())]
}

const MODULES: &[&str] = &[
    "core", "main", "probe", "host", "hub", "bridge", "bus", "port", "dev", "ctl",
];

fn module_for(rng: &mut ChaCha8Rng, subsystem: &str) -> String {
    match subsystem {
        "drivers" => {
            const M: &[&str] = &[
                "clk", "gpu", "soc", "usb", "net", "mmc", "i2c", "iio", "tty", "video", "w1",
                "memory", "media", "pci", "phy",
            ];
            M[rng.gen_range(0..M.len())].to_string()
        }
        "arch" => {
            const M: &[&str] = &["arm", "powerpc", "mips", "sparc", "x86", "sh"];
            M[rng.gen_range(0..M.len())].to_string()
        }
        _ => MODULES[rng.gen_range(0..MODULES.len())].to_string(),
    }
}

fn hex_id(rng: &mut ChaCha8Rng) -> String {
    (0..12)
        .map(|_| "0123456789abcdef".as_bytes()[rng.gen_range(0..16usize)] as char)
        .collect()
}

/// Generates the full history.
///
/// # Examples
///
/// ```
/// use refminer_corpus::{generate_history, HistoryConfig};
///
/// let h = generate_history(&HistoryConfig {
///     n_bugs: 50, n_noise: 30, n_reverts: 2, n_neutral: 100,
///     ..Default::default()
/// });
/// assert!(h.commits.len() >= 180);
/// ```
pub fn generate_history(cfg: &HistoryConfig) -> History {
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let kind_sampler = Sampler::new(KIND_WEIGHTS);
    let year_sampler = Sampler::new(YEAR_WEIGHTS);
    let subsys_sampler = Sampler::new(HISTORICAL_SUBSYSTEM_WEIGHTS);
    let mut commits: Vec<Commit> = Vec::new();

    // ------------------------------------------------------------------
    // Planted bug pairs: introducing commit + fixing commit.
    // ------------------------------------------------------------------
    for i in 0..cfg.n_bugs {
        let kind = kind_sampler.sample(&mut rng);
        let fix_year = year_sampler.sample(&mut rng);
        let subsystem = subsys_sampler.sample(&mut rng).to_string();
        let module = module_for(&mut rng, &subsystem);
        let (find_api, dec_api, inc_api) = api_family(&mut rng, &subsystem);

        // Lifetime model (Findings 4 & 5): ~24% fixed within a year,
        // geometric tail, a slice of "ancient" bugs introduced in the
        // v2.6 era.
        // Lifetime mixture: ~24% fixed within the year, a short
        // geometric bulk, and a long uniform tail that populates the
        // cross-major-release spans of Figure 3 (v3.x → v5.x etc.).
        let ancient = fix_year >= 2019 && rng.gen::<f64>() < 0.045;
        let delta = if ancient {
            fix_year - rng.gen_range(2005u32..=2007)
        } else {
            let roll = rng.gen::<f64>();
            if roll < 0.243 {
                0
            } else if roll < 0.70 {
                let mut d = 1u32;
                while rng.gen::<f64>() < 0.45 && d < 6 {
                    d += 1;
                }
                d
            } else {
                rng.gen_range(4..=9)
            }
        };
        let intro_year = fix_year.saturating_sub(delta).max(2005);
        let has_fixes = rng.gen::<f64>() < (567.0 / 1033.0);

        let intro_id = hex_id(&mut rng);
        let fix_id = hex_id(&mut rng);
        let fn_name = format!("{module}_{}", MODULES[i % MODULES.len()]);
        let var = "np";
        // A slice of the missing-dec bugs are smartloop breaks
        // (Anti-Pattern 3); their fix messages mention the for_each
        // macro, feeding Table 3's `foreach` keyword column.
        let smartloop = kind == PlantedKind::MissingDecIntra
            && dec_api == "of_node_put"
            && rng.gen::<f64>() < 0.18;

        // Introducing commit: neutral-looking feature work. When the
        // acquiring API itself carries a refcounting keyword
        // (`pm_runtime_get_sync`), showing it here would make the
        // *introducing* commit a mining candidate; real introducing
        // commits were feature patches, so keep the shown call neutral
        // in that case.
        let intro_frac = rng.gen::<f64>();
        let intro_call = if refminer_rcapi::name_direction(find_api).is_some() {
            "setup_controller(pdev)".to_string()
        } else {
            format!("{find_api}(NULL, id)")
        };
        commits.push(Commit {
            id: intro_id.clone(),
            year: intro_year,
            month: 1 + (intro_frac * 11.0) as u32,
            version: version_for(intro_year, intro_frac),
            subsystem: subsystem.clone(),
            module: module.clone(),
            message: format!(
                "{subsystem}/{module}: add {fn_name} support\n\nInitial support for the \
                 {module} controller."
            ),
            diff: format!(
                "@@ -0,0 +12,4 @@ {fn_name}\n+\tstruct device_node *{var};\n+\t{var} = \
                 {intro_call};\n+\tsetup({var});\n"
            ),
        });

        // Fixing commit.
        let fix_frac = rng.gen::<f64>();
        let fixes_line = if has_fixes {
            format!("\n\nFixes: {intro_id} (\"{subsystem}/{module}: add {fn_name} support\")")
        } else {
            String::new()
        };
        let (summary, body, diff) = if smartloop {
            (
                format!("{subsystem}/{module}: fix refcount leak in {fn_name}"),
                format!(
                    "Breaking out of for_each_child_of_node() keeps the hidden \
                     reference on the iterator. Add the missing {dec_api}() before \
                     the break to avoid the memory leak."
                ),
                format!(
                    "@@ -44,4 +44,5 @@ {fn_name}\n \tfor_each_child_of_node(parent, {var}) {{\n \
                     \t\tif (found) {{\n+\t\t\t{dec_api}({var});\n \t\t\tbreak;\n"
                ),
            )
        } else {
            let variant = rng.gen_range(0..4usize);
            render_fix(
                kind, &subsystem, &module, &fn_name, find_api, dec_api, inc_api, var, variant,
            )
        };
        commits.push(Commit {
            id: fix_id,
            year: fix_year,
            month: 1 + (fix_frac * 11.0) as u32,
            version: version_for(fix_year, fix_frac),
            subsystem,
            module,
            message: format!("{summary}\n\n{body}{fixes_line}"),
            diff,
        });
    }

    // ------------------------------------------------------------------
    // Keyword noise: stage-1 matches that stage 2 rejects (the APIs are
    // not refcounting APIs).
    // ------------------------------------------------------------------
    const NOISE_APIS: &[(&str, &str)] = &[
        ("clk_get_rate", "read the clock rate"),
        ("gpiod_get_value", "read the gpio level"),
        ("regmap_read", "get the register value"),
        ("snd_soc_component_get_drvdata", "get the component data"),
        ("platform_get_irq", "get the interrupt line"),
        ("devm_kzalloc", "drop the manual release"),
        ("irq_get_irq_data", "get the irq data"),
    ];
    for _ in 0..cfg.n_noise {
        let year = year_sampler.sample(&mut rng);
        let frac = rng.gen::<f64>();
        let subsystem = subsys_sampler.sample(&mut rng).to_string();
        let module = module_for(&mut rng, &subsystem);
        let (api, what) = NOISE_APIS[rng.gen_range(0..NOISE_APIS.len())];
        commits.push(Commit {
            id: hex_id(&mut rng),
            year,
            month: 1 + (frac * 11.0) as u32,
            version: version_for(year, frac),
            subsystem: subsystem.clone(),
            module: module.clone(),
            message: format!(
                "{subsystem}/{module}: get rid of the extra helper\n\nUse {api} to {what} \
                 and drop the open-coded variant."
            ),
            diff: format!(
                "@@ -10,2 +10,2 @@ helper\n-\tval = read_reg(base);\n+\tval = {api}(dev);\n"
            ),
        });
    }

    // ------------------------------------------------------------------
    // Wrong-patch + revert pairs (§3.1's false-positive removal).
    // ------------------------------------------------------------------
    for _ in 0..cfg.n_reverts {
        let year = 2015 + rng.gen_range(0u32..7);
        let frac = rng.gen::<f64>();
        let subsystem = "drivers".to_string();
        let module = module_for(&mut rng, &subsystem);
        let wrong_id = hex_id(&mut rng);
        let fn_name = format!("{module}_probe");
        commits.push(Commit {
            id: wrong_id.clone(),
            year,
            month: 1 + (frac * 11.0) as u32,
            version: version_for(year, frac),
            subsystem: subsystem.clone(),
            module: module.clone(),
            message: format!(
                "{subsystem}/{module}: fix memory leak in {fn_name}\n\nAdd the missing \
                 of_node_put() on the error path."
            ),
            diff: "@@ -20,3 +20,4 @@ probe\n \tnp = of_find_node_by_name(NULL, id);\n+\tof_node_put(np);\n".to_string(),
        });
        let rev_year = (year + 1).min(2022);
        let rev_frac = rng.gen::<f64>();
        commits.push(Commit {
            id: hex_id(&mut rng),
            year: rev_year,
            month: 1 + (rev_frac * 11.0) as u32,
            version: version_for(rev_year, rev_frac),
            subsystem,
            module: module.clone(),
            message: format!(
                "{module}: fix improper handling of refcount in {fn_name}\n\nThe previous \
                 patch added an extra of_node_put() which leads to a premature free.\n\n\
                 Fixes: {wrong_id} (\"fix memory leak in {fn_name}\")"
            ),
            diff: "@@ -20,4 +20,3 @@ probe\n \tnp = of_find_node_by_name(NULL, id);\n-\tof_node_put(np);\n".to_string(),
        });
    }

    // ------------------------------------------------------------------
    // Bulk neutral commits (corpus volume for word2vec; a few mention
    // rare refcounting words so they stay in-vocabulary).
    // ------------------------------------------------------------------
    const NEUTRAL: &[&str] = &[
        "clean up whitespace and comments",
        "convert to devm allocation helpers",
        "update maintainers entry",
        "simplify the probe error messages",
        "switch to generic pm macros",
        "use the common clock framework",
        "refactor the interrupt setup path",
        "document the binding properties",
        "remove dead configuration option",
        "constify the ops tables",
        "unhold the board strap configuration lines early",
        "retain compatibility with legacy boot wrappers",
    ];
    for i in 0..cfg.n_neutral {
        let year = year_sampler.sample(&mut rng);
        let frac = rng.gen::<f64>();
        let subsystem = subsys_sampler.sample(&mut rng).to_string();
        let module = module_for(&mut rng, &subsystem);
        let text = NEUTRAL[i % NEUTRAL.len()];
        commits.push(Commit {
            id: hex_id(&mut rng),
            year,
            month: 1 + (frac * 11.0) as u32,
            version: version_for(year, frac),
            subsystem: subsystem.clone(),
            module,
            message: format!("{subsystem}: {text}"),
            diff: String::new(),
        });
    }

    commits.sort_by_key(|c| (c.year, c.month, c.id.clone()));
    History { commits }
}

/// Renders the fixing commit's (summary, body, diff) for a kind.
#[allow(clippy::too_many_arguments)]
fn render_fix(
    kind: PlantedKind,
    subsystem: &str,
    module: &str,
    fn_name: &str,
    find_api: &str,
    dec_api: &str,
    inc_api: &str,
    var: &str,
    variant: usize,
) -> (String, String, String) {
    use PlantedKind::*;
    match kind {
        MissingDecIntra => (
            format!("{subsystem}/{module}: fix refcount leak in {fn_name}"),
            // Phrasing variants keep the whole refcounting keyword
            // vocabulary (increase/grab/hold/decrease/retain/...) in
            // co-occurrence with the bug-API keywords, as the real
            // commit logs do (Table 3's rows all have data).
            // The find-like APIs internally call the get-named wrappers
            // (§5.2.2 explains Table 3's find~get 0.73 exactly this
            // way), and real fix messages spell that out — so do ours.
            match variant {
                0 => format!(
                    "{find_api}() internally calls {inc_api}() and returns the \
                     node with the refcount increased. Add the missing \
                     {dec_api}() on the error path to avoid the memory leak."
                ),
                1 => format!(
                    "The reference we grab through {find_api}() (which gets the \
                     node via {inc_api}()) is never dropped on the error path; \
                     decrease the refcounter with {dec_api}() to fix the leak."
                ),
                2 => format!(
                    "{find_api}() takes a hold on the returned node. Release it \
                     with {dec_api}() before returning, otherwise we retain the \
                     reference forever and leak the node."
                ),
                _ => format!(
                    "Every call to {find_api}() will increase the refcount of the \
                     node it gets through {inc_api}(). The error path must put \
                     the node with {dec_api}() to avoid the leak."
                ),
            },
            format!(
                "@@ -30,4 +30,5 @@ {fn_name}\n \t{var} = {find_api}(NULL, id);\n \
                 \tif (check({var}))\n+\t\t{dec_api}({var});\n \t\treturn -EINVAL;\n"
            ),
        ),
        MissingDecInter => (
            format!("{subsystem}/{module}: fix refcount leak in {fn_name}_remove"),
            match variant {
                0 | 1 => format!(
                    "The node acquired by {find_api}() in {fn_name}_probe() is never \
                     released. Call {dec_api}() in the remove path to fix the leak."
                ),
                _ => format!(
                    "{fn_name}_probe() will grab and hold a reference through \
                     {find_api}() but {fn_name}_remove() does not decrease the \
                     refcount. Drop it with {dec_api}() on remove."
                ),
            },
            format!(
                "@@ -88,3 +88,4 @@ {fn_name}_remove\n \tdisable_hw(priv);\n+\t{dec_api}(priv->{var});\n \treturn 0;\n"
            ),
        ),
        LeakOther => (
            format!("{subsystem}/{module}: fix possible memory leak in {fn_name}"),
            format!(
                "The object is refcounted; freeing it directly with kfree() leaks \
                 the resources released by {dec_api}()."
            ),
            format!(
                "@@ -61,3 +61,3 @@ {fn_name}\n-\tkfree({var});\n+\t{dec_api}({var});\n"
            ),
        ),
        MisplacedDecUad => (
            format!("{subsystem}/{module}: fix use-after-free in {fn_name}"),
            format!(
                "{dec_api}() may drop the last reference; move it after the final \
                 access to the object to avoid the use-after-free."
            ),
            format!(
                "@@ -42,4 +42,4 @@ {fn_name}\n-\t{dec_api}({var});\n \tfinish({var}->state);\n+\t{dec_api}({var});\n"
            ),
        ),
        MisplacedDecOther => (
            format!("{subsystem}/{module}: fix refcount imbalance in {fn_name}"),
            format!(
                "Move {dec_api}() out of the retry loop; dropping the reference on \
                 every iteration underflows the refcounter."
            ),
            format!(
                "@@ -52,4 +52,4 @@ {fn_name}\n-\t\t{dec_api}({var});\n \t}}\n+\t{dec_api}({var});\n"
            ),
        ),
        MisplacedInc => (
            format!("{subsystem}/{module}: fix use-after-free risk in {fn_name}"),
            format!(
                "Take the reference with {inc_api}() before publishing the pointer, \
                 not after; otherwise a concurrent reader can see a droppable object."
            ),
            format!(
                "@@ -35,4 +35,4 @@ {fn_name}\n-\tpublish({var});\n-\t{inc_api}({var});\n+\t{inc_api}({var});\n+\tpublish({var});\n"
            ),
        ),
        MissingIncIntra => (
            format!("{subsystem}/{module}: fix premature free / use-after-free in {fn_name}"),
            format!(
                "{fn_name}() keeps a long-lived pointer to the node but never takes \
                 a reference. Add the missing {inc_api}() to prevent the use-after-free."
            ),
            format!(
                "@@ -28,3 +28,4 @@ {fn_name}\n \t{var} = {find_api}(NULL, id);\n+\t{inc_api}({var});\n \tpriv->{var} = {var};\n"
            ),
        ),
        MissingIncInter => (
            format!("{subsystem}/{module}: fix use-after-free across open/release in {fn_name}"),
            format!(
                "The release path drops a reference the open path never took. Add \
                 {inc_api}() in {fn_name}_open() to balance it."
            ),
            format!(
                "@@ -70,3 +70,4 @@ {fn_name}_open\n \tpriv->{var} = {var};\n+\t{inc_api}({var});\n \treturn 0;\n"
            ),
        ),
        UafOther => (
            format!("{subsystem}/{module}: fix use-after-free in {fn_name} teardown"),
            format!(
                "Reorder the teardown so the reference held by the worker is dropped \
                 with {dec_api}() only after the queue is flushed."
            ),
            format!(
                "@@ -95,4 +95,4 @@ {fn_name}\n-\t{dec_api}({var});\n \tflush_queue(priv);\n+\t{dec_api}({var});\n"
            ),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> History {
        generate_history(&HistoryConfig {
            n_bugs: 200,
            n_noise: 100,
            n_reverts: 4,
            n_neutral: 300,
            seed: 42,
        })
    }

    #[test]
    fn commit_counts() {
        let h = small();
        // 200 pairs + 100 noise + 8 revert-related + 300 neutral.
        assert_eq!(h.commits.len(), 200 * 2 + 100 + 4 * 2 + 300);
    }

    #[test]
    fn sorted_by_date() {
        let h = small();
        for w in h.commits.windows(2) {
            assert!((w[0].year, w[0].month) <= (w[1].year, w[1].month));
        }
    }

    #[test]
    fn fixes_tags_resolve() {
        let h = small();
        let ids: std::collections::HashSet<&str> =
            h.commits.iter().map(|c| c.id.as_str()).collect();
        let mut tagged = 0;
        for c in &h.commits {
            if let Some(target) = c.fixes_tag() {
                assert!(ids.contains(target), "dangling Fixes tag {target}");
                tagged += 1;
            }
        }
        // Roughly 567/1033 of bug fixes carry tags, plus the reverts.
        assert!(tagged > 80 && tagged < 160, "tagged = {tagged}");
    }

    #[test]
    fn versions_monotone_by_era() {
        assert_eq!(major_of(&version_for(2005, 0.1)), 2);
        assert_eq!(major_of(&version_for(2013, 0.6)), 3);
        assert_eq!(major_of(&version_for(2017, 0.2)), 4);
        assert_eq!(major_of(&version_for(2020, 0.9)), 5);
        assert_eq!(major_of(&version_for(2022, 0.9)), 6);
    }

    #[test]
    fn deterministic() {
        let a = small();
        let b = small();
        assert_eq!(a.commits.len(), b.commits.len());
        assert_eq!(a.commits[17].message, b.commits[17].message);
    }

    #[test]
    fn growth_trend_increases() {
        let h = generate_history(&HistoryConfig {
            n_bugs: 1033,
            n_noise: 0,
            n_reverts: 0,
            n_neutral: 0,
            seed: 7,
        });
        // Count fix commits (the second of each pair has "fix" in the
        // summary) per era.
        let fixes_in = |lo: u32, hi: u32| {
            h.commits
                .iter()
                .filter(|c| {
                    c.year >= lo
                        && c.year <= hi
                        && c.message.lines().next().unwrap_or("").contains("fix")
                })
                .count()
        };
        let early = fixes_in(2005, 2010);
        let late = fixes_in(2017, 2022);
        assert!(late > early * 3, "late {late} should dwarf early {early}");
    }
}

//! Synthetic source-tree assembly: the "latest release" the checkers
//! audit, with ground truth recorded in a manifest.

use refminer_json::{obj, ToJson, Value};
use refminer_prng::{ChaCha8Rng, Rng, SeedableRng};

use refminer_rcapi::ApiKb;

use crate::codegen::{emit_bug, emit_clean, emit_filler, emit_tricky, NameGen};
use crate::subsystems::NEW_BUG_PLAN;

/// One injected bug, as ground truth.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectedBug {
    /// File path within the tree.
    pub path: String,
    /// Function the bug lives in.
    pub function: String,
    /// Anti-pattern number (1..=9).
    pub pattern: u8,
    /// The bug-caused API.
    pub api: String,
    /// Expected impact (`Leak` / `UAF` / `NPD`).
    pub impact: String,
    /// Subsystem and module, for grouping reports.
    pub subsystem: String,
    /// Module within the subsystem.
    pub module: String,
    /// Whether the bug only manifests under whole-program analysis:
    /// the helper whose summary decides the verdict is defined in a
    /// *different* translation unit than the buggy caller.
    pub inter_unit: bool,
}

/// A deterministic non-bug the checkers are *expected* to flag unless
/// they reason about path feasibility: a correlated cleanup branch, a
/// flag-guarded put, a re-checked error code. Recorded in the manifest
/// with `bug: false` so evaluations count any finding on it as a false
/// positive by construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FpTrap {
    /// File path within the tree.
    pub path: String,
    /// Function the trap lives in.
    pub function: String,
    /// The anti-pattern the trap baits (1..=9).
    pub pattern: u8,
    /// Trap family (`correlated_branch`, `flag_guard`, `recheck`,
    /// `const_guard`).
    pub kind: String,
}

/// One member site of a clone group: a function instantiating the
/// group's shared bug shape with different identifiers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CloneMember {
    /// File path within the tree (one file per member, so a partial
    /// fix touches exactly one file).
    pub path: String,
    /// Function the clone site lives in.
    pub function: String,
    /// Whether this member has been repaired (only ever `true` in the
    /// manifests of [`generate_fix_history`] revisions).
    pub fixed: bool,
}

/// A group of injected clones of one bug: the same anti-pattern and
/// API instantiated at several sites with different identifiers — the
/// paper's "one bug, hundreds behind" shape, as measurable ground
/// truth for the propagation-search sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CloneGroup {
    /// Stable group id (`cg0`, `cg1`, ...).
    pub group: String,
    /// The shared anti-pattern (1..=9).
    pub pattern: u8,
    /// The shared bug-caused API.
    pub api: String,
    /// The member sites, in emission order.
    pub members: Vec<CloneMember>,
}

/// The ground-truth record of a generated tree.
#[derive(Debug, Clone, Default)]
pub struct Manifest {
    /// Every injected bug.
    pub bugs: Vec<InjectedBug>,
    /// Correct-but-tricky functions (paper's Listing 5 shapes); any
    /// finding on these counts as a false positive by construction.
    pub tricky: Vec<(String, String)>,
    /// Number of clean functions emitted (denominator for FP rates).
    pub clean_functions: usize,
    /// False-positive traps (see [`FpTrap`]); empty unless the tree was
    /// generated with [`TreeConfig::fp_traps`].
    pub fp_traps: Vec<FpTrap>,
    /// Clone groups (see [`CloneGroup`]); empty unless the tree was
    /// generated with [`TreeConfig::clone_groups`] > 0.
    pub clone_groups: Vec<CloneGroup>,
}

impl ToJson for InjectedBug {
    fn to_json(&self) -> Value {
        obj([
            ("path", self.path.to_json()),
            ("function", self.function.to_json()),
            ("pattern", self.pattern.to_json()),
            ("api", self.api.to_json()),
            ("impact", self.impact.to_json()),
            ("subsystem", self.subsystem.to_json()),
            ("module", self.module.to_json()),
            ("inter_unit", self.inter_unit.to_json()),
        ])
    }
}

impl ToJson for FpTrap {
    fn to_json(&self) -> Value {
        obj([
            ("path", self.path.to_json()),
            ("function", self.function.to_json()),
            ("pattern", self.pattern.to_json()),
            ("kind", self.kind.to_json()),
            ("bug", false.to_json()),
        ])
    }
}

impl ToJson for CloneMember {
    fn to_json(&self) -> Value {
        obj([
            ("path", self.path.to_json()),
            ("function", self.function.to_json()),
            ("fixed", self.fixed.to_json()),
        ])
    }
}

impl ToJson for CloneGroup {
    fn to_json(&self) -> Value {
        obj([
            ("group", self.group.to_json()),
            ("pattern", self.pattern.to_json()),
            ("api", self.api.to_json()),
            ("members", self.members.to_json()),
        ])
    }
}

impl ToJson for Manifest {
    fn to_json(&self) -> Value {
        obj([
            ("bugs", self.bugs.to_json()),
            (
                "tricky",
                Value::Arr(
                    self.tricky
                        .iter()
                        .map(|(p, f)| Value::Arr(vec![p.to_json(), f.to_json()]))
                        .collect(),
                ),
            ),
            ("clean_functions", self.clean_functions.to_json()),
            ("fp_traps", self.fp_traps.to_json()),
            ("clone_groups", self.clone_groups.to_json()),
        ])
    }
}

impl Manifest {
    /// Whether a (path, function, pattern) triple matches an injected
    /// bug.
    pub fn matches(&self, path: &str, function: &str, pattern: u8) -> bool {
        self.bugs
            .iter()
            .any(|b| b.path == path && b.function == function && b.pattern == pattern)
    }

    /// Whether a (path, function) pair is one of the tricky snippets.
    pub fn is_tricky(&self, path: &str, function: &str) -> bool {
        self.tricky.iter().any(|(p, f)| p == path && f == function)
    }

    /// Parses the JSON written by [`SyntheticTree::write_to`] back into
    /// a manifest. Returns `None` on any malformed member — a partially
    /// loaded ground truth would silently skew evaluation scores.
    pub fn from_json(v: &Value) -> Option<Manifest> {
        let bugs = v
            .get("bugs")?
            .as_array()?
            .iter()
            .map(|b| {
                Some(InjectedBug {
                    path: b.get("path")?.as_str()?.to_string(),
                    function: b.get("function")?.as_str()?.to_string(),
                    pattern: b.get("pattern")?.as_u64()? as u8,
                    api: b.get("api")?.as_str()?.to_string(),
                    impact: b.get("impact")?.as_str()?.to_string(),
                    subsystem: b.get("subsystem")?.as_str()?.to_string(),
                    module: b.get("module")?.as_str()?.to_string(),
                    inter_unit: b.get("inter_unit")?.as_bool()?,
                })
            })
            .collect::<Option<Vec<_>>>()?;
        let tricky = v
            .get("tricky")?
            .as_array()?
            .iter()
            .map(|t| {
                let pair = t.as_array()?;
                Some((
                    pair.first()?.as_str()?.to_string(),
                    pair.get(1)?.as_str()?.to_string(),
                ))
            })
            .collect::<Option<Vec<_>>>()?;
        let clean_functions = v.get("clean_functions")?.as_u64()? as usize;
        // Absent in manifests written before the knob existed.
        let fp_traps = match v.get("fp_traps") {
            None => Vec::new(),
            Some(arr) => arr
                .as_array()?
                .iter()
                .map(|t| {
                    Some(FpTrap {
                        path: t.get("path")?.as_str()?.to_string(),
                        function: t.get("function")?.as_str()?.to_string(),
                        pattern: t.get("pattern")?.as_u64()? as u8,
                        kind: t.get("kind")?.as_str()?.to_string(),
                    })
                })
                .collect::<Option<Vec<_>>>()?,
        };
        // Absent in manifests written before the knob existed.
        let clone_groups = match v.get("clone_groups") {
            None => Vec::new(),
            Some(arr) => arr
                .as_array()?
                .iter()
                .map(|g| {
                    Some(CloneGroup {
                        group: g.get("group")?.as_str()?.to_string(),
                        pattern: g.get("pattern")?.as_u64()? as u8,
                        api: g.get("api")?.as_str()?.to_string(),
                        members: g
                            .get("members")?
                            .as_array()?
                            .iter()
                            .map(|m| {
                                Some(CloneMember {
                                    path: m.get("path")?.as_str()?.to_string(),
                                    function: m.get("function")?.as_str()?.to_string(),
                                    fixed: m.get("fixed")?.as_bool()?,
                                })
                            })
                            .collect::<Option<Vec<_>>>()?,
                    })
                })
                .collect::<Option<Vec<_>>>()?,
        };
        Some(Manifest {
            bugs,
            tricky,
            clean_functions,
            fp_traps,
            clone_groups,
        })
    }
}

/// One file of the generated tree.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Tree-relative path.
    pub path: String,
    /// C source text.
    pub content: String,
}

/// A generated tree plus its ground truth.
#[derive(Debug, Clone)]
pub struct SyntheticTree {
    /// All files (headers first, then sources).
    pub files: Vec<SourceFile>,
    /// Ground truth.
    pub manifest: Manifest,
}

/// Generation parameters.
#[derive(Debug, Clone)]
pub struct TreeConfig {
    /// RNG seed; everything is deterministic given it.
    pub seed: u64,
    /// Scale factor on the Table 5 plan counts (1.0 = the paper's 351
    /// instances; 0.1 ≈ 35 for quick tests).
    pub scale: f64,
    /// Buggy functions per generated file.
    pub bugs_per_file: usize,
    /// Clean functions per generated file.
    pub clean_per_file: usize,
    /// Whether to add the Listing 5-style tricky snippets.
    pub include_tricky: bool,
    /// Whether to add the *vendor* module: bugs built on custom
    /// refcounting wrappers and a custom smartloop that only API
    /// discovery (§6.1) can classify — the substrate for the discovery
    /// ablation. Off by default so Table 4's totals stay the paper's.
    pub include_vendor: bool,
    /// Whether to add the *crossunit* module: helper definitions and
    /// their buggy callers split across translation units, so the
    /// verdicts hinge on cross-unit summary resolution. The injected
    /// bugs are tagged `inter_unit: true` in the manifest. Off by
    /// default so Table 4's totals stay the paper's.
    pub cross_unit: bool,
    /// Whether to add the *fptrap* module: deterministic non-bug
    /// functions whose anti-pattern shapes only come apart under
    /// path-feasibility reasoning — correlated cleanup branches,
    /// flag-guarded puts, re-checked error codes, constant-false debug
    /// guards. Recorded in [`Manifest::fp_traps`] with `bug: false`.
    /// Off by default so Table 4's totals stay the paper's.
    pub fp_traps: bool,
    /// Number of clone groups to inject under `drivers/clones/`: each
    /// group is [`CLONE_GROUP_SIZE`] sites instantiating the *same*
    /// bug shape (pattern + API) with different identifiers, one site
    /// per file, recorded in [`Manifest::clone_groups`]. The ground
    /// truth for the propagation-search sweep and the partial-fix
    /// history ([`generate_fix_history`]). 0 (off) by default so
    /// Table 4's totals stay the paper's.
    pub clone_groups: usize,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            seed: 0x54ab1e5,
            scale: 1.0,
            bugs_per_file: 4,
            clean_per_file: 3,
            include_tricky: true,
            include_vendor: false,
            cross_unit: false,
            fp_traps: false,
            clone_groups: 0,
        }
    }
}

/// Per-subsystem quota of P4 instances generated in the missing-increase
/// (UAF) flavour, calibrated so Table 4's impact split (296 leak /
/// 48 UAF / 7 NPD) reproduces.
fn p4_uaf_quota(subsystem: &str) -> u32 {
    match subsystem {
        "arch" => 7,
        "drivers" => 18,
        _ => 0,
    }
}

/// Generates the synthetic tree from the Table 5 plan.
///
/// # Examples
///
/// ```
/// use refminer_corpus::{generate_tree, TreeConfig};
///
/// let tree = generate_tree(&TreeConfig { scale: 0.05, ..Default::default() });
/// assert!(!tree.files.is_empty());
/// assert!(!tree.manifest.bugs.is_empty());
/// ```
pub fn generate_tree(cfg: &TreeConfig) -> SyntheticTree {
    let kb = ApiKb::builtin();
    let mut ng = NameGen::new(ChaCha8Rng::seed_from_u64(cfg.seed));
    let mut files = vec![
        SourceFile {
            path: "include/linux/of.h".to_string(),
            content: OF_HEADER.to_string(),
        },
        SourceFile {
            path: "include/linux/kref.h".to_string(),
            content: KREF_HEADER.to_string(),
        },
        SourceFile {
            path: "drivers/base/core.c".to_string(),
            content: BASE_CORE.to_string(),
        },
    ];
    let mut manifest = Manifest::default();
    let mut uaf_left: Vec<(String, u32)> = Vec::new();

    // Group plan rows by (subsystem, module) so a module's bugs share
    // files.
    let mut module_rows: Vec<((&str, &str), Vec<&crate::subsystems::PlanRow>)> = Vec::new();
    for row in NEW_BUG_PLAN {
        let key = (row.subsystem, row.module);
        match module_rows.iter_mut().find(|(k, _)| *k == key) {
            Some((_, v)) => v.push(row),
            None => module_rows.push((key, vec![row])),
        }
    }

    for ((subsystem, module), rows) in module_rows {
        // Build the instance list for this module.
        let mut instances: Vec<(u8, &str)> = Vec::new();
        for row in rows {
            let scaled = ((row.count as f64) * cfg.scale).ceil() as u32;
            let scaled = scaled
                .min(row.count)
                .max(if cfg.scale > 0.0 { 1 } else { 0 });
            for _ in 0..scaled {
                instances.push((row.pattern, row.api));
            }
        }
        let mut file_idx = 0usize;
        while !instances.is_empty() {
            file_idx += 1;
            // The paper's two include/ bugs live in header files
            // (§6.2: hypervisor.h, trusted_foundation.h).
            let ext = if subsystem == "include" { "h" } else { "c" };
            let path = format!("{subsystem}/{module}/{module}_unit{file_idx}.{ext}");
            let take = cfg.bugs_per_file.min(instances.len());
            let chunk: Vec<(u8, &str)> = instances.drain(..take).collect();
            let mut content = format!(
                "// SPDX-License-Identifier: GPL-2.0\n\
                 // {subsystem}/{module}: generated driver unit {file_idx}.\n\
                 #include <linux/of.h>\n#include <linux/kref.h>\n\n\
                 struct {module}_priv {{\n\tstruct device_node *node;\n\tint ready;\n}};\n\n"
            );
            for (pattern, api) in chunk {
                // The UAF (hidden-decrement) flavour of P4 only exists
                // for APIs that consume their `from` argument.
                let uaf_capable = pattern == 4
                    && kb.get(api).is_some_and(|a| {
                        matches!(a.flow, refminer_rcapi::ObjectFlow::ArgAndReturned(_))
                    });
                let uaf = if uaf_capable {
                    if !uaf_left.iter().any(|(s, _)| s == subsystem) {
                        uaf_left.push((subsystem.to_string(), p4_uaf_quota(subsystem)));
                    }
                    let q = uaf_left
                        .iter_mut()
                        .find(|(s, _)| s == subsystem)
                        .map(|e| &mut e.1)
                        .expect("just inserted");
                    if *q > 0 {
                        *q -= 1;
                        true
                    } else {
                        false
                    }
                } else {
                    false
                };
                let fn_name = ng.ident(&format!("{module}_op"));
                let src = emit_bug(pattern, api, &fn_name, &kb, &mut ng, uaf);
                content.push_str(&src);
                content.push('\n');
                let impact = match (pattern, uaf) {
                    (2, _) => "NPD",
                    (8, _) | (9, _) | (4, true) => "UAF",
                    _ => "Leak",
                };
                let function = if pattern == 6 {
                    format!("{fn_name}_probe")
                } else {
                    fn_name.clone()
                };
                manifest.bugs.push(InjectedBug {
                    path: path.clone(),
                    function,
                    pattern,
                    api: api.to_string(),
                    impact: impact.to_string(),
                    subsystem: subsystem.to_string(),
                    module: module.to_string(),
                    inter_unit: false,
                });
            }
            // Clean twins and neutral filler.
            for i in 0..cfg.clean_per_file {
                let fn_name = ng.ident(&format!("{module}_helper"));
                let src = if i % 2 == 0 {
                    let (pattern, api) = clean_shape_for(i, file_idx);
                    emit_clean(pattern, api, &fn_name, &kb, &mut ng)
                } else {
                    emit_filler(&fn_name, &mut ng)
                };
                content.push_str(&src);
                content.push('\n');
                manifest.clean_functions += 1;
            }
            files.push(SourceFile { path, content });
        }
    }

    if cfg.include_vendor {
        emit_vendor_module(&mut files, &mut manifest);
    }

    if cfg.cross_unit {
        emit_cross_unit_module(&mut files, &mut manifest, cfg.scale);
    }

    if cfg.fp_traps {
        emit_fp_trap_module(&mut files, &mut manifest);
    }

    if cfg.clone_groups > 0 {
        emit_clone_module(&mut files, &mut manifest, cfg, &kb);
    }

    if cfg.include_tricky {
        for i in 0..5 {
            // The paper's five false positives: one in arch, four in
            // drivers (Table 4's #FP column).
            let path = if i == 0 {
                format!("arch/powerpc/tricky_unit{i}.c")
            } else {
                format!("drivers/scsi/tricky_unit{i}.c")
            };
            let fn_name = ng.ident("lpfc_evt");
            let mut content =
                String::from("// SPDX-License-Identifier: GPL-2.0\n#include <linux/of.h>\n\n");
            content.push_str(&emit_tricky(&fn_name, &mut ng));
            manifest.tricky.push((path.clone(), fn_name));
            files.push(SourceFile { path, content });
        }
    }

    SyntheticTree { files, manifest }
}

/// Produces the next revision of a tree: `edits` distinct `.c` files,
/// chosen deterministically from `seed`, each gain one appended
/// finding-neutral helper function. Every other file is byte-identical
/// to the base revision.
///
/// This is the fixture for incremental re-audit tests: a revision
/// changes exactly the returned paths' content hashes, and because the
/// appended helpers are clean the finding set of the tree is unchanged.
/// Returns the edited tree and the edited paths in tree order.
///
/// # Examples
///
/// ```
/// use refminer_corpus::{generate_tree, next_revision, TreeConfig};
///
/// let base = generate_tree(&TreeConfig { scale: 0.05, ..Default::default() });
/// let (rev, edited) = next_revision(&base, 7, 2);
/// assert_eq!(edited.len(), 2);
/// assert_eq!(rev.files.len(), base.files.len());
/// ```
pub fn next_revision(
    base: &SyntheticTree,
    seed: u64,
    edits: usize,
) -> (SyntheticTree, Vec<String>) {
    let mut tree = base.clone();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut ng = NameGen::new(ChaCha8Rng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15));
    let candidates: Vec<usize> = tree
        .files
        .iter()
        .enumerate()
        .filter(|(_, f)| f.path.ends_with(".c"))
        .map(|(i, _)| i)
        .collect();
    let edits = edits.min(candidates.len());
    let mut chosen: Vec<usize> = Vec::new();
    while chosen.len() < edits {
        let i = candidates[rng.gen_range(0..candidates.len())];
        if !chosen.contains(&i) {
            chosen.push(i);
        }
    }
    // Tree order so the edit pass (and the NameGen stream) is
    // independent of the draw order above.
    chosen.sort_unstable();
    let mut edited = Vec::new();
    for i in chosen {
        let fn_name = ng.ident("rev_helper");
        let src = emit_filler(&fn_name, &mut ng);
        let file = &mut tree.files[i];
        file.content.push('\n');
        file.content.push_str(&src);
        tree.manifest.clean_functions += 1;
        edited.push(file.path.clone());
    }
    (tree, edited)
}

/// Emits the vendor module: custom refcounting wrappers implemented on
/// `kref`, a custom find-like API and a custom smartloop macro — all
/// unknown to the builtin knowledge base — plus six bugs using them.
/// Only API/smartloop discovery can give the checkers the vocabulary to
/// find these.
fn emit_vendor_module(files: &mut Vec<SourceFile>, manifest: &mut Manifest) {
    files.push(SourceFile {
        path: "include/vendor/widget.h".to_string(),
        content: r#"/* SPDX-License-Identifier: GPL-2.0 */
#ifndef _VENDOR_WIDGET_H
#define _VENDOR_WIDGET_H

struct vendor_widget {
        struct kref refs;
        const char *label;
        struct vendor_widget *next;
};

extern struct vendor_widget *vendor_widget_get(struct vendor_widget *w);
extern void vendor_widget_put(struct vendor_widget *w);
extern struct vendor_widget *vendor_widget_find_next(struct vendor_pool *pool, struct vendor_widget *from);

#define for_each_vendor_widget(pool, w) \
        for (w = vendor_widget_find_next(pool, NULL); w; \
             w = vendor_widget_find_next(pool, w))

#endif
"#
        .to_string(),
    });
    files.push(SourceFile {
        path: "drivers/vendor/vendor_core.c".to_string(),
        content: r#"// SPDX-License-Identifier: GPL-2.0
#include <vendor/widget.h>

struct vendor_widget *vendor_widget_get(struct vendor_widget *w)
{
        if (w)
                kref_get(&w->refs);
        return w;
}

void vendor_widget_put(struct vendor_widget *w)
{
        if (w)
                kref_put(&w->refs, vendor_widget_release);
}

struct vendor_widget *vendor_widget_find_next(struct vendor_pool *pool, struct vendor_widget *from)
{
        struct vendor_widget *w = pool_next(pool, from);
        if (w)
                kref_get(&w->refs);
        if (from)
                kref_put(&from->refs, vendor_widget_release);
        return w;
}
"#
        .to_string(),
    });
    let bugs_src = r#"// SPDX-License-Identifier: GPL-2.0
#include <vendor/widget.h>

static int vendor_scan_first(struct vendor_pool *pool)
{
        struct vendor_widget *w;
        for_each_vendor_widget(pool, w) {
                if (w->label)
                        break;
        }
        return 0;
}

static int vendor_probe_label(struct vendor_pool *pool)
{
        struct vendor_widget *w = vendor_widget_find_next(pool, NULL);
        if (!w)
                return -ENODEV;
        use_label(w->label);
        return 0;
}

static void vendor_flush(struct vendor_widget *w)
{
        vendor_widget_put(w);
        update_stats(w->label);
}
"#;
    files.push(SourceFile {
        path: "drivers/vendor/vendor_scan.c".to_string(),
        content: bugs_src.to_string(),
    });
    for (function, pattern, api, impact) in [
        ("vendor_scan_first", 3u8, "for_each_vendor_widget", "Leak"),
        ("vendor_probe_label", 4, "vendor_widget_find_next", "Leak"),
        ("vendor_flush", 8, "vendor_widget_put", "UAF"),
    ] {
        manifest.bugs.push(InjectedBug {
            path: "drivers/vendor/vendor_scan.c".to_string(),
            function: function.to_string(),
            pattern,
            api: api.to_string(),
            impact: impact.to_string(),
            subsystem: "drivers".to_string(),
            module: "vendor".to_string(),
            inter_unit: false,
        });
    }
}

/// Emits the crossunit module: helper/caller file pairs under
/// `drivers/crossunit/` in which every helper the callers lean on is
/// defined in the *other* translation unit. A per-unit pipeline sees
/// only opaque call sites; the whole-program summary database resolves
/// the helper bodies, which both *reveals* the injected P4/P6 bugs
/// (cross-unit escapes and pass-to-consumer summaries) and *suppresses*
/// the clean shapes (cross-unit releases). Manifest entries for these
/// bugs carry `inter_unit: true` so evaluations can split single-unit
/// from cross-unit recall.
fn emit_cross_unit_module(files: &mut Vec<SourceFile>, manifest: &mut Manifest, scale: f64) {
    let pairs = ((4.0 * scale).round() as usize).max(1);
    for i in 0..pairs {
        let core_path = format!("drivers/crossunit/xu{i}_core.c");
        files.push(SourceFile {
            path: format!("drivers/crossunit/xu{i}_helpers.c"),
            content: format!(
                r#"// SPDX-License-Identifier: GPL-2.0
// drivers/crossunit: helper library for module xu{i}. The callers
// live in xu{i}_core.c; only whole-program summaries connect these
// bodies to their call sites.
#include <linux/of.h>

struct xu{i}_priv {{
        struct device_node *node;
        int ready;
}};

void xu{i}_stash_node(struct xu{i}_priv *p, void *cookie)
{{
        p->node = cookie;
}}

void xu{i}_put_inner(struct device_node *np)
{{
        of_node_put(np);
}}

void xu{i}_teardown(struct device_node *np)
{{
        xu{i}_put_inner(np);
}}

void xu{i}_register_stats(struct device_node *np)
{{
        update_counter(np->name);
}}
"#
            ),
        });
        files.push(SourceFile {
            path: core_path.clone(),
            content: format!(
                r#"// SPDX-License-Identifier: GPL-2.0
// drivers/crossunit: module xu{i}. Every xu{i}_* helper called below
// is defined in xu{i}_helpers.c.
#include <linux/of.h>

struct xu{i}_priv {{
        struct device_node *node;
        int ready;
}};

static int xu{i}_probe(struct platform_device *pdev)
{{
        struct xu{i}_priv *priv = devm_kzalloc(&pdev->dev, sizeof(*priv), GFP_KERNEL);
        struct device_node *np;

        if (!priv)
                return -ENOMEM;
        np = of_node_get(pdev->dev.of_node);
        xu{i}_stash_node(priv, np);
        return 0;
}}

static int xu{i}_remove(struct platform_device *pdev)
{{
        struct xu{i}_priv *priv = platform_get_drvdata(pdev);

        priv->ready = 0;
        return 0;
}}

static void xu{i}_collect(void)
{{
        struct device_node *np = of_find_node_by_name(NULL, "xu{i}");

        if (!np)
                return;
        xu{i}_register_stats(np);
}}

static void xu{i}_shutdown_path(void)
{{
        struct device_node *np = of_find_node_by_name(NULL, "xu{i}");

        if (!np)
                return;
        xu{i}_teardown(np);
}}

static int xu{i}_open(struct platform_device *pdev)
{{
        struct xu{i}_priv *priv = platform_get_drvdata(pdev);
        struct device_node *np = of_node_get(pdev->dev.of_node);

        if (!np)
                return -ENODEV;
        xu{i}_stash_node(priv, np);
        return 0;
}}

static void xu{i}_release(struct platform_device *pdev)
{{
        struct xu{i}_priv *priv = platform_get_drvdata(pdev);

        xu{i}_teardown(priv->node);
}}

static const struct platform_driver xu{i}_driver = {{
        .probe = xu{i}_probe,
        .remove = xu{i}_remove,
}};
"#
            ),
        });
        for (function, pattern, api) in [
            (format!("xu{i}_probe"), 6u8, "of_node_get"),
            (format!("xu{i}_collect"), 4, "of_find_node_by_name"),
        ] {
            manifest.bugs.push(InjectedBug {
                path: core_path.clone(),
                function,
                pattern,
                api: api.to_string(),
                impact: "Leak".to_string(),
                subsystem: "drivers".to_string(),
                module: "crossunit".to_string(),
                inter_unit: true,
            });
        }
        // shutdown_path/open/release plus the four helpers are clean by
        // construction — any finding on them is a false positive.
        manifest.clean_functions += 7;
    }
}

/// Emits the fptrap module: five deterministic non-bug functions whose
/// control flow *looks* like an anti-pattern but whose "bad" path is
/// unreachable — a correlated error branch tested after the code zeroes
/// it, a constant flag guarding the put, an error code re-checked after
/// it was proven zero, and a deref behind a constant-false debug guard.
/// A checker without path-feasibility reasoning flags every one of
/// them; the manifest records them with `bug: false` so evaluations
/// count those findings as false positives.
fn emit_fp_trap_module(files: &mut Vec<SourceFile>, manifest: &mut Manifest) {
    let path = "drivers/fptrap/fptrap_unit1.c".to_string();
    files.push(SourceFile {
        path: path.clone(),
        content: r#"// SPDX-License-Identifier: GPL-2.0
// drivers/fptrap: feasibility traps. Every function here is correct;
// the anti-pattern path each one exhibits cannot execute.
#include <linux/of.h>

static int fptrap_corr_ret(struct device *dev)
{
        int ret = pm_runtime_get_sync(dev);

        ret = 0;
        if (ret)
                return ret;
        pm_runtime_put(dev);
        return 0;
}

static int fptrap_corr_err(struct platform_device *pdev)
{
        struct device_node *np = of_find_node_by_path("/soc");
        int err;

        if (!np)
                return -ENODEV;
        err = 0;
        if (err)
                goto fail;
        of_node_put(np);
        return 0;
fail:
        disable_hw();
        return err;
}

static int fptrap_flag_guard(struct platform_device *pdev)
{
        struct device_node *np = of_find_node_by_path("/chosen");
        int cleanup = 1;
        int ret;

        if (!np)
                return -ENODEV;
        ret = setup_hw(np);
        if (ret) {
                if (cleanup)
                        of_node_put(np);
                return ret;
        }
        of_node_put(np);
        return 0;
}

static int fptrap_recheck(struct device *unused)
{
        struct device_node *np = of_find_node_by_path("/firmware");
        int ret;

        if (!np)
                return -ENODEV;
        ret = start_hw(np);
        if (ret) {
                of_node_put(np);
                return ret;
        }
        enable_hw(np);
        if (ret)
                goto err;
        of_node_put(np);
        return 0;
err:
        stop_hw();
        return ret;
}

static void fptrap_uad_guard(struct sock *sk)
{
        int debug = 0;

        sock_put(sk);
        if (debug)
                log_state(sk->sk_err);
}
"#
        .to_string(),
    });
    for (function, pattern, kind) in [
        ("fptrap_corr_ret", 1u8, "correlated_branch"),
        ("fptrap_corr_err", 5, "correlated_branch"),
        ("fptrap_flag_guard", 5, "flag_guard"),
        ("fptrap_recheck", 5, "recheck"),
        ("fptrap_uad_guard", 8, "const_guard"),
    ] {
        manifest.fp_traps.push(FpTrap {
            path: path.clone(),
            function: function.to_string(),
            pattern,
            kind: kind.to_string(),
        });
    }
    manifest.clean_functions += 5;
}

/// Sites per clone group (see [`TreeConfig::clone_groups`]).
pub const CLONE_GROUP_SIZE: usize = 4;

/// The bug shapes clone groups rotate over: pattern families whose
/// buggy emitter has a verified clean twin, so a "fix" of one member
/// is a real repair, not a different function.
const CLONE_SHAPES: &[(u8, &str)] = &[
    (1, "pm_runtime_get_sync"),
    (4, "of_find_compatible_node"),
    (5, "of_find_node_by_path"),
    (7, "of_find_node_by_name"),
    (2, "mdesc_grab"),
];

/// Table 4's impact for a clone-shape pattern.
fn clone_impact(pattern: u8) -> &'static str {
    match pattern {
        2 => "NPD",
        8 | 9 => "UAF",
        _ => "Leak",
    }
}

/// Emits one clone-group member file, buggy or fixed. The identifier
/// stream is seeded per `(seed, g, k)` so regenerating one member (to
/// fix it) leaves every other member's file byte-identical, and the
/// fixed variant keeps the member's function name.
fn clone_member_file(
    seed: u64,
    g: usize,
    k: usize,
    pattern: u8,
    api: &str,
    kb: &ApiKb,
    fixed: bool,
) -> (SourceFile, String) {
    let member_seed = seed
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(((g as u64) << 32) | (k as u64 + 1));
    let mut ng = NameGen::new(ChaCha8Rng::seed_from_u64(member_seed));
    let fn_name = format!("cg{g}_site{k}");
    let body = if fixed {
        emit_clean(pattern, api, &fn_name, kb, &mut ng)
    } else {
        emit_bug(pattern, api, &fn_name, kb, &mut ng, false)
    };
    let content = format!(
        "// SPDX-License-Identifier: GPL-2.0\n\
         // drivers/clones/cg{g}: clone-group member {k}.\n\
         #include <linux/of.h>\n#include <linux/kref.h>\n\n\
         struct cg{g}_priv {{\n\tstruct device_node *node;\n\tint ready;\n}};\n\n{body}"
    );
    (
        SourceFile {
            path: format!("drivers/clones/cg{g}_unit{k}.c"),
            content,
        },
        fn_name,
    )
}

/// Emits the clones module: `cfg.clone_groups` groups of
/// [`CLONE_GROUP_SIZE`] sites each instantiating one shared bug shape
/// with per-site identifiers, one site per translation unit. Ground
/// truth lands both in [`Manifest::bugs`] (each site is a real bug)
/// and [`Manifest::clone_groups`] (the sibling structure the sweep is
/// scored against).
fn emit_clone_module(
    files: &mut Vec<SourceFile>,
    manifest: &mut Manifest,
    cfg: &TreeConfig,
    kb: &ApiKb,
) {
    for g in 0..cfg.clone_groups {
        let (pattern, api) = CLONE_SHAPES[g % CLONE_SHAPES.len()];
        let mut members = Vec::new();
        for k in 0..CLONE_GROUP_SIZE {
            let (file, function) = clone_member_file(cfg.seed, g, k, pattern, api, kb, false);
            manifest.bugs.push(InjectedBug {
                path: file.path.clone(),
                function: function.clone(),
                pattern,
                api: api.to_string(),
                impact: clone_impact(pattern).to_string(),
                subsystem: "drivers".to_string(),
                module: "clones".to_string(),
                inter_unit: false,
            });
            members.push(CloneMember {
                path: file.path.clone(),
                function,
                fixed: false,
            });
            files.push(file);
        }
        manifest.clone_groups.push(CloneGroup {
            group: format!("cg{g}"),
            pattern,
            api: api.to_string(),
            members,
        });
    }
}

/// One revision of a simulated partial-fix history (see
/// [`generate_fix_history`]).
#[derive(Debug, Clone)]
pub struct TreeRev {
    /// Stable revision id (`rev0`, `rev1`, ...).
    pub id: String,
    /// Commit-style one-line message.
    pub message: String,
    /// The full tree at this revision, manifest included.
    pub tree: SyntheticTree,
    /// Clone members repaired *by this revision*, as
    /// `(group, path, function)` triples. Empty for the base import
    /// and for neutral churn.
    pub fixed: Vec<(String, String, String)>,
}

/// Generates a partial-fix revision history: a base tree (which must
/// have `cfg.clone_groups > 0` to be interesting), then one commit per
/// clone group that repairs *only the group's first member* — the
/// incomplete-fix shape the sweep's `left_behind` detector exists to
/// catch — and a final finding-neutral churn commit. Each revision's
/// manifest is ground truth for that revision: the repaired member's
/// bug entry is dropped, its `fixed` flag set, and the repaired
/// function counted clean.
///
/// Deterministic given `cfg`; every unrepaired file is byte-identical
/// across consecutive revisions, so an incremental differ re-audits
/// exactly one unit per fix commit.
pub fn generate_fix_history(cfg: &TreeConfig) -> Vec<TreeRev> {
    let kb = ApiKb::builtin();
    let base = generate_tree(cfg);
    let mut revs = vec![TreeRev {
        id: "rev0".to_string(),
        message: "import base tree".to_string(),
        tree: base.clone(),
        fixed: Vec::new(),
    }];
    let mut cur = base;
    for g in 0..cfg.clone_groups {
        let (pattern, api) = CLONE_SHAPES[g % CLONE_SHAPES.len()];
        let (fixed_file, function) = clone_member_file(cfg.seed, g, 0, pattern, api, &kb, true);
        let mut tree = cur.clone();
        let slot = tree
            .files
            .iter_mut()
            .find(|f| f.path == fixed_file.path)
            .expect("clone member file exists in base tree");
        slot.content = fixed_file.content;
        tree.manifest
            .bugs
            .retain(|b| !(b.path == fixed_file.path && b.function == function));
        tree.manifest.clean_functions += 1;
        if let Some(grp) = tree
            .manifest
            .clone_groups
            .iter_mut()
            .find(|c| c.group == format!("cg{g}"))
        {
            if let Some(m) = grp.members.iter_mut().find(|m| m.function == function) {
                m.fixed = true;
            }
        }
        revs.push(TreeRev {
            id: format!("rev{}", revs.len()),
            message: format!("cg{g}: fix {api} refcount bug in {function}"),
            tree: tree.clone(),
            fixed: vec![(format!("cg{g}"), fixed_file.path, function)],
        });
        cur = tree;
    }
    let (neutral, _) = next_revision(&cur, cfg.seed ^ 0x5eed_d1ff, 1);
    revs.push(TreeRev {
        id: format!("rev{}", revs.len()),
        message: "refactor: append helper, no functional change".to_string(),
        tree: neutral,
        fixed: Vec::new(),
    });
    revs
}

/// Rotates clean-twin shapes for variety.
fn clean_shape_for(i: usize, salt: usize) -> (u8, &'static str) {
    const SHAPES: &[(u8, &str)] = &[
        (5, "of_find_node_by_path"),
        (1, "pm_runtime_get_sync"),
        (3, "for_each_child_of_node"),
        (4, "of_find_compatible_node"),
        (7, "of_find_node_by_name"),
        (8, "sock_put"),
        (9, "of_node_get"),
        (2, "mdesc_grab"),
    ];
    SHAPES[(i + salt) % SHAPES.len()]
}

impl SyntheticTree {
    /// Writes the tree to a directory (creating parents), plus the
    /// manifest as `manifest.json` at the root.
    pub fn write_to(&self, dir: &std::path::Path) -> std::io::Result<()> {
        for f in &self.files {
            let full = dir.join(&f.path);
            if let Some(parent) = full.parent() {
                std::fs::create_dir_all(parent)?;
            }
            std::fs::write(full, &f.content)?;
        }
        let manifest = self.manifest.to_json().to_string_pretty();
        std::fs::write(dir.join("manifest.json"), manifest)
    }

    /// Total lines of C code in the tree.
    pub fn total_lines(&self) -> usize {
        self.files.iter().map(|f| f.content.lines().count()).sum()
    }
}

/// The device-tree header: smartloop macros and the `device_node`
/// definition — input for the discovery pipeline.
const OF_HEADER: &str = r#"/* SPDX-License-Identifier: GPL-2.0 */
#ifndef _LINUX_OF_H
#define _LINUX_OF_H

struct device_node {
        const char *name;
        const char *full_name;
        struct kobject kobj;
        struct device_node *parent;
        struct device_node *child;
        struct device_node *sibling;
};

extern struct device_node *of_node_get(struct device_node *node);
extern void of_node_put(struct device_node *node);
extern struct device_node *of_find_node_by_name(struct device_node *from, const char *name);
extern struct device_node *of_find_compatible_node(struct device_node *from, const char *type, const char *compat);
extern struct device_node *of_find_matching_node(struct device_node *from, const struct of_device_id *matches);
extern struct device_node *of_get_next_child(const struct device_node *node, struct device_node *prev);

#define for_each_child_of_node(parent, child) \
        for (child = of_get_next_child(parent, NULL); child != NULL; \
             child = of_get_next_child(parent, child))

#define for_each_matching_node(dn, matches) \
        for (dn = of_find_matching_node(NULL, matches); dn; \
             dn = of_find_matching_node(dn, matches))

#define for_each_node_by_name(dn, name) \
        for (dn = of_find_node_by_name(NULL, name); dn; \
             dn = of_find_node_by_name(dn, name))

#define for_each_compatible_node(dn, type, compatible) \
        for (dn = of_find_compatible_node(NULL, type, compatible); dn; \
             dn = of_find_compatible_node(dn, type, compatible))

#endif
"#;

/// The kref header: the basic refcounted structures.
const KREF_HEADER: &str = r#"/* SPDX-License-Identifier: GPL-2.0 */
#ifndef _LINUX_KREF_H
#define _LINUX_KREF_H

typedef struct refcount_struct {
        int refs;
} refcount_t;

struct kref {
        refcount_t refcount;
};

struct kobject {
        const char *name;
        struct kref kref;
        unsigned int state_initialized;
};

static inline void kref_get(struct kref *kref)
{
        refcount_inc(&kref->refcount);
}

#endif
"#;

/// Reference implementations of the device get/put wrappers; the
/// discovery stage classifies these as Specific APIs.
const BASE_CORE: &str = r#"// SPDX-License-Identifier: GPL-2.0
#include <linux/kref.h>

struct device {
        struct kobject kobj;
        struct device *parent;
        void *driver_data;
};

struct device *get_device(struct device *dev)
{
        if (dev)
                kobject_get(&dev->kobj);
        return dev;
}

void put_device(struct device *dev)
{
        if (dev)
                kobject_put(&dev->kobj);
}
"#;

/// Parameters for [`generate_big_tree`]: a kernel-scale tree stamped
/// out of deterministic replicas of the Table 5 plan.
///
/// Each replica is a full [`generate_tree`] run with a seed derived
/// from `seed` and the replica index, so every replica's identifiers,
/// file contents, and content hashes differ while the bug *mix* (and
/// therefore the per-replica ground truth) stays the paper's. Replica
/// files are nested one directory deeper (`drivers/gpu/r17/...`) so
/// paths never collide, and the three shared preamble files
/// (`include/linux/of.h`, `include/linux/kref.h`,
/// `drivers/base/core.c`) appear exactly once.
#[derive(Debug, Clone)]
pub struct BigTreeConfig {
    /// RNG seed; everything is deterministic given it.
    pub seed: u64,
    /// Number of replicas stamped out. At `scale: 1.0` each replica is
    /// roughly a hundred files, so ~100 replicas ≈ 10k files / ~1 MLoC.
    pub replicas: usize,
    /// Scale within each replica (forwarded to [`TreeConfig::scale`]).
    pub scale: f64,
}

impl Default for BigTreeConfig {
    fn default() -> Self {
        BigTreeConfig {
            seed: 0xb16_c0de,
            replicas: 100,
            scale: 1.0,
        }
    }
}

/// The preamble files every [`generate_tree`] run emits verbatim; kept
/// once in the big tree rather than per replica.
const SHARED_PREAMBLE: [&str; 3] = [
    "include/linux/of.h",
    "include/linux/kref.h",
    "drivers/base/core.c",
];

/// Nests a replica's file one directory deeper, keyed by the replica
/// index: `drivers/gpu/gpu_unit1.c` → `drivers/gpu/r17/gpu_unit1.c`.
/// The subsystem/module prefix is preserved so grouped reporting and
/// `--subsystem` trims behave exactly as on the base tree.
fn replica_path(path: &str, replica: usize) -> String {
    match path.rfind('/') {
        Some(i) => format!("{}/r{}/{}", &path[..i], replica, &path[i + 1..]),
        None => format!("r{replica}/{path}"),
    }
}

/// Generates a kernel-scale synthetic tree: `cfg.replicas` independent
/// stampings of the Table 5 plan, merged into one tree with one
/// combined ground-truth manifest. Deterministic given `cfg`.
pub fn generate_big_tree(cfg: &BigTreeConfig) -> SyntheticTree {
    let mut files: Vec<SourceFile> = Vec::new();
    let mut manifest = Manifest::default();
    for r in 0..cfg.replicas {
        let replica_cfg = TreeConfig {
            seed: cfg
                .seed
                .wrapping_add((r as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
            scale: cfg.scale,
            ..TreeConfig::default()
        };
        let tree = generate_tree(&replica_cfg);
        for f in tree.files {
            if SHARED_PREAMBLE.contains(&f.path.as_str()) {
                if r == 0 {
                    files.push(f);
                }
                continue;
            }
            files.push(SourceFile {
                path: replica_path(&f.path, r),
                content: f.content,
            });
        }
        manifest
            .bugs
            .extend(tree.manifest.bugs.into_iter().map(|mut b| {
                b.path = replica_path(&b.path, r);
                b
            }));
        manifest.tricky.extend(
            tree.manifest
                .tricky
                .into_iter()
                .map(|(path, func)| (replica_path(&path, r), func)),
        );
        manifest.clean_functions += tree.manifest.clean_functions;
        manifest
            .fp_traps
            .extend(tree.manifest.fp_traps.into_iter().map(|mut t| {
                t.path = replica_path(&t.path, r);
                t
            }));
    }
    SyntheticTree { files, manifest }
}

/// Release labels for [`generate_release_history`], spanning the
/// paper's v2.6.12 → v6.x study window (Faults-in-Linux Figure 1).
pub const RELEASE_LADDER: [&str; 10] = [
    "v2.6.12", "v2.6.27", "v3.0", "v3.10", "v4.0", "v4.14", "v5.0", "v5.10", "v6.0", "v6.6",
];

/// Configuration for [`generate_release_history`].
#[derive(Debug, Clone)]
pub struct ReleaseHistoryConfig {
    /// RNG seed; everything is deterministic given it.
    pub seed: u64,
    /// Scale factor forwarded to every stamped [`TreeConfig`].
    pub scale: f64,
    /// Number of releases, the base import included.
    pub releases: usize,
    /// Clone groups injected into the base release (partial fixes
    /// repair one member per release while groups remain).
    pub clone_groups: usize,
}

impl Default for ReleaseHistoryConfig {
    fn default() -> Self {
        ReleaseHistoryConfig {
            seed: 0x6e1ea5e,
            scale: 0.25,
            releases: 5,
            clone_groups: 2,
        }
    }
}

/// One release of a simulated kernel history.
#[derive(Debug, Clone)]
pub struct ReleaseRev {
    /// Version label from [`RELEASE_LADDER`] (`v2.6.12`, …).
    pub version: String,
    /// The full tree at this release, manifest included.
    pub tree: SyntheticTree,
    /// Files this release added over the previous one (LoC growth).
    pub added_files: usize,
    /// Clone members repaired by this release, as
    /// `(group, path, function)` triples.
    pub fixed: Vec<(String, String, String)>,
}

/// The version label for release index `i`: the ladder while it
/// lasts, then synthetic `v6.x` labels beyond it.
pub fn release_version(i: usize) -> String {
    if i < RELEASE_LADDER.len() {
        RELEASE_LADDER[i].to_string()
    } else {
        format!("v6.{}", 6 + 2 * (i - RELEASE_LADDER.len() + 1))
    }
}

/// Generates a seeded v2.6 → v6.x-style release sequence: the base
/// release is a [`generate_tree`] stamping (clone groups included);
/// every later release *grows* the tree by one independently-seeded
/// replica (nested via the big-tree path scheme so earlier files stay
/// byte-identical) and, while unfixed clone groups remain, repairs
/// one group's first member — the incomplete-fix shape. Each
/// release's manifest is ground truth for that release.
///
/// Deterministic given `cfg`; because untouched files are
/// byte-identical across consecutive releases, a shared audit cache
/// re-parses only each release's delta.
pub fn generate_release_history(cfg: &ReleaseHistoryConfig) -> Vec<ReleaseRev> {
    let kb = ApiKb::builtin();
    let base = generate_tree(&TreeConfig {
        seed: cfg.seed,
        scale: cfg.scale,
        clone_groups: cfg.clone_groups,
        ..TreeConfig::default()
    });
    let base_files = base.files.len();
    let mut revs = vec![ReleaseRev {
        version: release_version(0),
        tree: base.clone(),
        added_files: base_files,
        fixed: Vec::new(),
    }];
    let mut cur = base;
    for i in 1..cfg.releases {
        let mut tree = cur.clone();
        let mut fixed = Vec::new();
        // (a) Partial fix: repair the next clone group's first member,
        // exactly like a fix-history commit.
        let g = i - 1;
        if g < cfg.clone_groups {
            let (pattern, api) = CLONE_SHAPES[g % CLONE_SHAPES.len()];
            let (fixed_file, function) = clone_member_file(cfg.seed, g, 0, pattern, api, &kb, true);
            let slot = tree
                .files
                .iter_mut()
                .find(|f| f.path == fixed_file.path)
                .expect("clone member file exists in base release");
            slot.content = fixed_file.content;
            tree.manifest
                .bugs
                .retain(|b| !(b.path == fixed_file.path && b.function == function));
            tree.manifest.clean_functions += 1;
            if let Some(grp) = tree
                .manifest
                .clone_groups
                .iter_mut()
                .find(|c| c.group == format!("cg{g}"))
            {
                if let Some(m) = grp.members.iter_mut().find(|m| m.function == function) {
                    m.fixed = true;
                }
            }
            fixed.push((format!("cg{g}"), fixed_file.path, function));
        }
        // (b) LoC growth: stamp one fresh replica of the Table 5 plan
        // under release-keyed nested paths (shared headers already
        // exist and are kept verbatim).
        let replica_cfg = TreeConfig {
            seed: cfg
                .seed
                .wrapping_add((i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
            scale: cfg.scale,
            ..TreeConfig::default()
        };
        let replica = generate_tree(&replica_cfg);
        let mut added_files = 0usize;
        for f in replica.files {
            if SHARED_PREAMBLE.contains(&f.path.as_str()) {
                continue;
            }
            added_files += 1;
            tree.files.push(SourceFile {
                path: replica_path(&f.path, i),
                content: f.content,
            });
        }
        tree.manifest
            .bugs
            .extend(replica.manifest.bugs.into_iter().map(|mut b| {
                b.path = replica_path(&b.path, i);
                b
            }));
        tree.manifest.tricky.extend(
            replica
                .manifest
                .tricky
                .into_iter()
                .map(|(path, func)| (replica_path(&path, i), func)),
        );
        tree.manifest.clean_functions += replica.manifest.clean_functions;
        tree.manifest
            .fp_traps
            .extend(replica.manifest.fp_traps.into_iter().map(|mut t| {
                t.path = replica_path(&t.path, i);
                t
            }));
        revs.push(ReleaseRev {
            version: release_version(i),
            tree: tree.clone(),
            added_files,
            fixed,
        });
        cur = tree;
    }
    revs
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn release_history_grows_and_stays_deterministic() {
        let cfg = ReleaseHistoryConfig {
            seed: 0xfeed,
            scale: 0.05,
            releases: 4,
            clone_groups: 2,
        };
        let a = generate_release_history(&cfg);
        let b = generate_release_history(&cfg);
        assert_eq!(a.len(), 4);
        assert_eq!(a[0].version, "v2.6.12");
        assert_eq!(a[1].version, "v2.6.27");
        for (ra, rb) in a.iter().zip(&b) {
            assert_eq!(ra.tree.files.len(), rb.tree.files.len());
            for (fa, fb) in ra.tree.files.iter().zip(&rb.tree.files) {
                assert_eq!(fa.path, fb.path);
                assert_eq!(fa.content, fb.content);
            }
        }
        // LoC growth is monotone, and no paths collide.
        for w in a.windows(2) {
            assert!(w[1].tree.total_lines() > w[0].tree.total_lines());
            assert!(w[1].tree.files.len() > w[0].tree.files.len());
        }
        for rel in &a {
            let paths: HashSet<&str> = rel.tree.files.iter().map(|f| f.path.as_str()).collect();
            assert_eq!(paths.len(), rel.tree.files.len(), "paths collide");
        }
    }

    #[test]
    fn release_history_fixes_one_clone_member_per_release() {
        let cfg = ReleaseHistoryConfig {
            seed: 0xfeed,
            scale: 0.05,
            releases: 4,
            clone_groups: 2,
        };
        let revs = generate_release_history(&cfg);
        assert_eq!(revs[0].fixed.len(), 0);
        assert_eq!(revs[1].fixed.len(), 1);
        assert_eq!(revs[1].fixed[0].0, "cg0");
        assert_eq!(revs[2].fixed[0].0, "cg1");
        assert!(revs[3].fixed.is_empty(), "groups exhausted, growth only");
        // The repaired member's bug entry is gone and its flag set.
        let (_, path, function) = &revs[1].fixed[0];
        let m = &revs[1].tree.manifest;
        assert!(!m
            .bugs
            .iter()
            .any(|b| b.path == *path && b.function == *function));
        let member = m
            .clone_groups
            .iter()
            .find(|g| g.group == "cg0")
            .unwrap()
            .members
            .iter()
            .find(|mm| mm.function == *function)
            .unwrap();
        assert!(member.fixed);
        // Untouched base files are byte-identical across releases, so
        // a shared cache re-parses only the delta.
        let base: std::collections::HashMap<&str, &str> = revs[0]
            .tree
            .files
            .iter()
            .map(|f| (f.path.as_str(), f.content.as_str()))
            .collect();
        let changed: Vec<&str> = revs[1]
            .tree
            .files
            .iter()
            .filter(|f| base.get(f.path.as_str()).is_some_and(|c| *c != f.content))
            .map(|f| f.path.as_str())
            .collect();
        assert_eq!(changed, vec![path.as_str()]);
    }

    #[test]
    fn release_version_ladder_extends() {
        assert_eq!(release_version(0), "v2.6.12");
        assert_eq!(release_version(9), "v6.6");
        assert_eq!(release_version(10), "v6.8");
        assert_eq!(release_version(11), "v6.10");
    }

    #[test]
    fn big_tree_is_deterministic_and_collision_free() {
        let cfg = BigTreeConfig {
            seed: 0xfeed,
            replicas: 3,
            scale: 0.05,
        };
        let a = generate_big_tree(&cfg);
        let b = generate_big_tree(&cfg);
        assert_eq!(a.files.len(), b.files.len());
        for (fa, fb) in a.files.iter().zip(&b.files) {
            assert_eq!(fa.path, fb.path);
            assert_eq!(fa.content, fb.content);
        }
        assert_eq!(a.manifest.bugs.len(), b.manifest.bugs.len());

        let paths: HashSet<&str> = a.files.iter().map(|f| f.path.as_str()).collect();
        assert_eq!(paths.len(), a.files.len(), "replica paths collide");
        for shared in SHARED_PREAMBLE {
            assert!(paths.contains(shared));
        }
    }

    #[test]
    fn big_tree_scales_ground_truth_with_replicas() {
        let one = generate_tree(&TreeConfig {
            scale: 0.05,
            ..TreeConfig::default()
        });
        let big = generate_big_tree(&BigTreeConfig {
            seed: 0xfeed,
            replicas: 4,
            scale: 0.05,
        });
        assert_eq!(big.manifest.bugs.len(), 4 * one.manifest.bugs.len());
        assert_eq!(big.manifest.tricky.len(), 4 * one.manifest.tricky.len());
        assert_eq!(
            big.manifest.clean_functions,
            4 * one.manifest.clean_functions
        );
        // Replica files nest one level deeper; every manifest path
        // names a real file.
        let paths: HashSet<&str> = big.files.iter().map(|f| f.path.as_str()).collect();
        for bug in &big.manifest.bugs {
            assert!(paths.contains(bug.path.as_str()), "missing {}", bug.path);
            assert!(bug.path.contains("/r"), "path not replica-nested");
        }
        // Replicas use distinct identifier streams, so their contents
        // (and content hashes) differ.
        let unit0: Vec<&SourceFile> = big
            .files
            .iter()
            .filter(|f| f.path.ends_with("_unit0.c") && f.path.contains("/r0/"))
            .collect();
        let unit1: Vec<&SourceFile> = big
            .files
            .iter()
            .filter(|f| f.path.ends_with("_unit0.c") && f.path.contains("/r1/"))
            .collect();
        assert!(!unit0.is_empty() && unit0.len() == unit1.len());
        assert!(unit0
            .iter()
            .zip(&unit1)
            .all(|(a, b)| a.content != b.content));
    }

    #[test]
    fn full_scale_matches_plan_total() {
        let tree = generate_tree(&TreeConfig::default());
        assert_eq!(tree.manifest.bugs.len(), 351);
        assert_eq!(tree.manifest.tricky.len(), 5);
        assert!(tree.files.len() > 90);
    }

    #[test]
    fn impacts_match_table4() {
        let tree = generate_tree(&TreeConfig::default());
        let count = |imp: &str| {
            tree.manifest
                .bugs
                .iter()
                .filter(|b| b.impact == imp)
                .count()
        };
        assert_eq!(count("Leak"), 296);
        assert_eq!(count("UAF"), 48);
        assert_eq!(count("NPD"), 7);
    }

    #[test]
    fn per_subsystem_counts_match_table4() {
        let tree = generate_tree(&TreeConfig::default());
        let count = |s: &str| {
            tree.manifest
                .bugs
                .iter()
                .filter(|b| b.subsystem == s)
                .count()
        };
        assert_eq!(count("arch"), 156);
        assert_eq!(count("drivers"), 182);
        assert_eq!(count("include"), 2);
        assert_eq!(count("net"), 2);
        assert_eq!(count("sound"), 9);
    }

    #[test]
    fn deterministic_generation() {
        let a = generate_tree(&TreeConfig::default());
        let b = generate_tree(&TreeConfig::default());
        assert_eq!(a.files.len(), b.files.len());
        assert_eq!(a.files[5].content, b.files[5].content);
    }

    #[test]
    fn scaled_generation_shrinks() {
        let tree = generate_tree(&TreeConfig {
            scale: 0.1,
            ..Default::default()
        });
        assert!(tree.manifest.bugs.len() < 150);
        assert!(!tree.manifest.bugs.is_empty());
    }

    #[test]
    fn next_revision_edits_exactly_the_named_files() {
        let base = generate_tree(&TreeConfig {
            scale: 0.05,
            ..Default::default()
        });
        let (rev, edited) = next_revision(&base, 42, 3);
        assert_eq!(edited.len(), 3);
        assert_eq!(rev.files.len(), base.files.len());
        for (a, b) in base.files.iter().zip(&rev.files) {
            assert_eq!(a.path, b.path);
            if edited.contains(&a.path) {
                assert_ne!(a.content, b.content, "{} should have changed", a.path);
                assert!(b.content.starts_with(&a.content), "edits are appends");
            } else {
                assert_eq!(a.content, b.content, "{} should be untouched", a.path);
            }
        }
        assert_eq!(rev.manifest.bugs, base.manifest.bugs);
        assert_eq!(
            rev.manifest.clean_functions,
            base.manifest.clean_functions + 3
        );
    }

    #[test]
    fn next_revision_is_deterministic_and_seed_sensitive() {
        let base = generate_tree(&TreeConfig {
            scale: 0.05,
            ..Default::default()
        });
        let (a, ea) = next_revision(&base, 7, 2);
        let (b, eb) = next_revision(&base, 7, 2);
        assert_eq!(ea, eb);
        assert!(a
            .files
            .iter()
            .zip(&b.files)
            .all(|(x, y)| x.content == y.content));
        let (_, ec) = next_revision(&base, 8, 2);
        assert_ne!(ea, ec, "different seeds pick different files");
    }

    #[test]
    fn next_revision_clamps_to_available_files() {
        let base = generate_tree(&TreeConfig {
            scale: 0.02,
            ..Default::default()
        });
        let c_files = base.files.iter().filter(|f| f.path.ends_with(".c")).count();
        let (_, edited) = next_revision(&base, 1, usize::MAX);
        assert_eq!(edited.len(), c_files);
    }

    #[test]
    fn cross_unit_knob_adds_tagged_pairs() {
        let base = generate_tree(&TreeConfig {
            scale: 0.25,
            ..Default::default()
        });
        let tree = generate_tree(&TreeConfig {
            scale: 0.25,
            cross_unit: true,
            ..Default::default()
        });
        // 4.0 * 0.25 rounds to one helper/caller pair → two files.
        assert_eq!(tree.files.len(), base.files.len() + 2);
        let tagged: Vec<_> = tree.manifest.bugs.iter().filter(|b| b.inter_unit).collect();
        assert_eq!(tagged.len(), 2);
        assert!(tagged
            .iter()
            .all(|b| b.path.starts_with("drivers/crossunit/") && b.module == "crossunit"));
        assert!(tagged.iter().any(|b| b.pattern == 6));
        assert!(tagged.iter().any(|b| b.pattern == 4));
        // The helper definitions live in a different file than every
        // tagged bug — that is the point of the module.
        assert!(tree
            .files
            .iter()
            .any(|f| f.path == "drivers/crossunit/xu0_helpers.c"));
        assert_eq!(
            tree.manifest.clean_functions,
            base.manifest.clean_functions + 7
        );
    }

    #[test]
    fn default_tree_has_no_cross_unit_material() {
        let tree = generate_tree(&TreeConfig::default());
        assert!(tree.manifest.bugs.iter().all(|b| !b.inter_unit));
        assert!(!tree.files.iter().any(|f| f.path.contains("crossunit")));
    }

    #[test]
    fn fp_trap_knob_adds_tagged_non_bugs() {
        let base = generate_tree(&TreeConfig {
            scale: 0.05,
            ..Default::default()
        });
        let tree = generate_tree(&TreeConfig {
            scale: 0.05,
            fp_traps: true,
            ..Default::default()
        });
        assert_eq!(tree.files.len(), base.files.len() + 1);
        assert_eq!(tree.manifest.fp_traps.len(), 5);
        assert_eq!(
            tree.manifest.clean_functions,
            base.manifest.clean_functions + 5
        );
        // Traps are non-bugs: the bug list is untouched.
        assert_eq!(tree.manifest.bugs, base.manifest.bugs);
        assert!(tree
            .manifest
            .fp_traps
            .iter()
            .all(|t| t.path.starts_with("drivers/fptrap/")));
        // At least two distinct anti-patterns are baited.
        let mut patterns: Vec<u8> = tree.manifest.fp_traps.iter().map(|t| t.pattern).collect();
        patterns.sort_unstable();
        patterns.dedup();
        assert!(patterns.len() >= 2, "traps must bait >= 2 patterns");
    }

    #[test]
    fn default_tree_has_no_fp_traps() {
        let tree = generate_tree(&TreeConfig::default());
        assert!(tree.manifest.fp_traps.is_empty());
        assert!(!tree.files.iter().any(|f| f.path.contains("fptrap")));
    }

    #[test]
    fn manifest_round_trips_through_json() {
        let tree = generate_tree(&TreeConfig {
            scale: 0.05,
            fp_traps: true,
            cross_unit: true,
            clone_groups: 2,
            ..Default::default()
        });
        let json = tree.manifest.to_json();
        // Trap records carry the explicit `bug: false` marker.
        assert!(json.to_string().contains("\"bug\":false"));
        let back = Manifest::from_json(&json).expect("round trip");
        assert_eq!(back.bugs, tree.manifest.bugs);
        assert_eq!(back.tricky, tree.manifest.tricky);
        assert_eq!(back.clean_functions, tree.manifest.clean_functions);
        assert_eq!(back.fp_traps, tree.manifest.fp_traps);
        assert_eq!(back.clone_groups, tree.manifest.clone_groups);
    }

    #[test]
    fn clone_groups_knob_injects_sibling_sites() {
        let base = generate_tree(&TreeConfig {
            scale: 0.05,
            ..Default::default()
        });
        let tree = generate_tree(&TreeConfig {
            scale: 0.05,
            clone_groups: 3,
            ..Default::default()
        });
        assert_eq!(tree.files.len(), base.files.len() + 3 * CLONE_GROUP_SIZE);
        assert_eq!(tree.manifest.clone_groups.len(), 3);
        assert_eq!(
            tree.manifest.bugs.len(),
            base.manifest.bugs.len() + 3 * CLONE_GROUP_SIZE
        );
        for grp in &tree.manifest.clone_groups {
            assert_eq!(grp.members.len(), CLONE_GROUP_SIZE);
            // One site per translation unit, so a partial fix touches
            // exactly one file.
            let paths: HashSet<&str> = grp.members.iter().map(|m| m.path.as_str()).collect();
            assert_eq!(paths.len(), CLONE_GROUP_SIZE);
            for m in &grp.members {
                assert!(!m.fixed);
                assert!(tree.manifest.bugs.iter().any(|b| b.path == m.path
                    && b.function == m.function
                    && b.pattern == grp.pattern
                    && b.api == grp.api));
                assert!(tree.files.iter().any(|f| f.path == m.path));
            }
        }
        // Groups rotate over distinct shapes.
        assert_ne!(
            tree.manifest.clone_groups[0].api,
            tree.manifest.clone_groups[1].api
        );
        // Sibling sites use distinct identifier streams.
        let m0 = &tree.manifest.clone_groups[0].members[0];
        let m1 = &tree.manifest.clone_groups[0].members[1];
        let c0 = &tree
            .files
            .iter()
            .find(|f| f.path == m0.path)
            .unwrap()
            .content;
        let c1 = &tree
            .files
            .iter()
            .find(|f| f.path == m1.path)
            .unwrap()
            .content;
        assert_ne!(c0, c1);
    }

    #[test]
    fn default_tree_has_no_clone_groups() {
        let tree = generate_tree(&TreeConfig::default());
        assert!(tree.manifest.clone_groups.is_empty());
        assert!(!tree.files.iter().any(|f| f.path.contains("/clones/")));
    }

    #[test]
    fn fix_history_repairs_one_member_per_commit() {
        let cfg = TreeConfig {
            scale: 0.05,
            clone_groups: 2,
            ..Default::default()
        };
        let revs = generate_fix_history(&cfg);
        // Base import, one partial fix per group, neutral churn.
        assert_eq!(revs.len(), 1 + 2 + 1);
        assert!(revs[0].fixed.is_empty());
        for i in 1..=2 {
            let (prev, rev) = (&revs[i - 1], &revs[i]);
            assert_eq!(rev.fixed.len(), 1);
            let (grp, path, func) = &rev.fixed[0];
            // Exactly one file differs from the previous revision.
            let changed: Vec<&str> = prev
                .tree
                .files
                .iter()
                .zip(&rev.tree.files)
                .filter(|(a, b)| a.content != b.content)
                .map(|(a, _)| a.path.as_str())
                .collect();
            assert_eq!(changed, vec![path.as_str()]);
            // The repaired member's bug entry is gone; its siblings stay.
            assert!(prev
                .tree
                .manifest
                .bugs
                .iter()
                .any(|b| b.path == *path && b.function == *func));
            assert!(!rev
                .tree
                .manifest
                .bugs
                .iter()
                .any(|b| b.path == *path && b.function == *func));
            let g = rev
                .tree
                .manifest
                .clone_groups
                .iter()
                .find(|c| c.group == *grp)
                .unwrap();
            assert_eq!(g.members.iter().filter(|m| m.fixed).count(), 1);
            assert!(
                g.members
                    .iter()
                    .find(|m| m.function == *func)
                    .unwrap()
                    .fixed
            );
            assert_eq!(
                rev.tree.manifest.clean_functions,
                prev.tree.manifest.clean_functions + 1
            );
        }
        // The final churn commit changes no findings-relevant state.
        let last = revs.last().unwrap();
        assert!(last.fixed.is_empty());
        assert_eq!(
            last.tree.manifest.bugs,
            revs[revs.len() - 2].tree.manifest.bugs
        );
        // Deterministic given the config.
        let again = generate_fix_history(&cfg);
        assert_eq!(revs.len(), again.len());
        for (a, b) in revs.iter().zip(&again) {
            assert_eq!(a.message, b.message);
            assert_eq!(a.tree.files.len(), b.tree.files.len());
            for (fa, fb) in a.tree.files.iter().zip(&b.tree.files) {
                assert_eq!(fa.path, fb.path);
                assert_eq!(fa.content, fb.content);
            }
        }
    }

    #[test]
    fn manifest_lookup() {
        let tree = generate_tree(&TreeConfig {
            scale: 0.05,
            ..Default::default()
        });
        let b = &tree.manifest.bugs[0];
        assert!(tree.manifest.matches(&b.path, &b.function, b.pattern));
        assert!(!tree.manifest.matches(&b.path, &b.function, 200));
    }
}

//! Deterministic chaos injection: seeded corruption of synthetic trees.
//!
//! The chaos harness answers one question about the audit pipeline:
//! *does a hostile file stay contained?* Each [`MutationKind`] models a
//! distinct way real input goes wrong — truncated checkouts, bit rot,
//! merge-conflict debris, generated nesting bombs, binary files with a
//! `.c` extension — and [`apply_chaos`] applies them to a seeded subset
//! of a [`SyntheticTree`], recording exactly which files were harmed so
//! tests can check the audit's diagnostics against ground truth.
//!
//! Everything is deterministic given [`ChaosConfig::seed`]: the same
//! seed picks the same victims and produces byte-identical corruption.

use refminer_prng::{ChaCha8Rng, Rng, SeedableRng};

use crate::tree::SyntheticTree;

/// One way to corrupt a source file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum MutationKind {
    /// Cut the file mid-identifier, as in an interrupted checkout.
    TruncateMidToken,
    /// Flip random bytes in place (bit rot / bad disk).
    ByteFlip,
    /// Open a `/*` comment that never closes, swallowing the tail.
    UnterminatedComment,
    /// Open a string literal that never closes.
    UnterminatedString,
    /// Append a function whose expression nests thousands deep.
    DeepNesting,
    /// Append a macro-heavy flood: a define chain plus a call tree
    /// nested far past any reasonable depth.
    MacroBomb,
    /// Insert a run of NUL bytes mid-file.
    NulGarbage,
    /// Insert non-UTF-8 binary garbage mid-file.
    BinaryGarbage,
}

impl MutationKind {
    /// All kinds, in a stable order.
    pub fn all() -> [MutationKind; 8] {
        [
            MutationKind::TruncateMidToken,
            MutationKind::ByteFlip,
            MutationKind::UnterminatedComment,
            MutationKind::UnterminatedString,
            MutationKind::DeepNesting,
            MutationKind::MacroBomb,
            MutationKind::NulGarbage,
            MutationKind::BinaryGarbage,
        ]
    }

    /// Stable lower-snake name, used in manifests and test output.
    pub fn name(&self) -> &'static str {
        match self {
            MutationKind::TruncateMidToken => "truncate_mid_token",
            MutationKind::ByteFlip => "byte_flip",
            MutationKind::UnterminatedComment => "unterminated_comment",
            MutationKind::UnterminatedString => "unterminated_string",
            MutationKind::DeepNesting => "deep_nesting",
            MutationKind::MacroBomb => "macro_bomb",
            MutationKind::NulGarbage => "nul_garbage",
            MutationKind::BinaryGarbage => "binary_garbage",
        }
    }

    /// Parses a [`MutationKind::name`] back into the kind.
    pub fn parse(s: &str) -> Option<MutationKind> {
        MutationKind::all().into_iter().find(|k| k.name() == s)
    }
}

/// Chaos parameters.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Seed for victim selection and mutation content.
    pub seed: u64,
    /// Fraction of files to corrupt, in `0.0..=1.0`. At least one file
    /// is corrupted whenever the ratio is positive and files exist.
    pub ratio: f64,
    /// Kinds to draw from; empty means all of them.
    pub kinds: Vec<MutationKind>,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seed: 0xC4A05,
            ratio: 0.25,
            kinds: Vec::new(),
        }
    }
}

/// Ground truth for one corrupted file.
#[derive(Debug, Clone)]
pub struct ChaosRecord {
    /// Tree-relative path of the victim.
    pub path: String,
    /// What was done to it.
    pub kind: MutationKind,
}

/// A tree after chaos: all files (corrupted ones as raw, possibly
/// non-UTF-8 bytes) plus the record of what was harmed.
#[derive(Debug, Clone)]
pub struct ChaosCorpus {
    /// Every file of the input tree, in order; corrupted entries carry
    /// the mutated bytes.
    pub files: Vec<(String, Vec<u8>)>,
    /// One record per corrupted file, in path order.
    pub records: Vec<ChaosRecord>,
}

impl ChaosCorpus {
    /// The set of corrupted paths.
    pub fn mutated_paths(&self) -> std::collections::BTreeSet<&str> {
        self.records.iter().map(|r| r.path.as_str()).collect()
    }

    /// In-memory sources with non-UTF-8 bytes decoded lossily — the
    /// same decode [`Project::scan`] applies on disk.
    ///
    /// [`Project::scan`]: https://docs.rs/refminer
    pub fn to_sources(&self) -> Vec<(String, String)> {
        self.files
            .iter()
            .map(|(p, b)| (p.clone(), String::from_utf8_lossy(b).into_owned()))
            .collect()
    }

    /// Writes the corpus to `dir`, raw bytes and all, plus a
    /// `chaos.json` ground-truth manifest.
    pub fn write_to(&self, dir: &std::path::Path) -> std::io::Result<()> {
        for (path, bytes) in &self.files {
            let full = dir.join(path);
            if let Some(parent) = full.parent() {
                std::fs::create_dir_all(parent)?;
            }
            std::fs::write(full, bytes)?;
        }
        let mut json = String::from("[\n");
        for (i, r) in self.records.iter().enumerate() {
            if i > 0 {
                json.push_str(",\n");
            }
            json.push_str(&format!(
                "  {{\"path\": \"{}\", \"kind\": \"{}\"}}",
                r.path,
                r.kind.name()
            ));
        }
        json.push_str("\n]\n");
        std::fs::write(dir.join("chaos.json"), json)
    }
}

/// Applies one mutation to a file's bytes, deterministically under
/// `rng`. Always changes the content.
pub fn mutate_bytes(content: &[u8], kind: MutationKind, rng: &mut ChaCha8Rng) -> Vec<u8> {
    let mut out = content.to_vec();
    // A position inside the middle of the file, clamped for tiny files.
    let mid = |rng: &mut ChaCha8Rng, len: usize| -> usize {
        if len < 4 {
            len / 2
        } else {
            rng.gen_range(len / 4..len - len / 4)
        }
    };
    match kind {
        MutationKind::TruncateMidToken => {
            let mut cut = mid(rng, out.len());
            // Walk forward to land inside an identifier/number run so
            // the cut splits a token, not whitespace.
            while cut < out.len() && !out[cut].is_ascii_alphanumeric() {
                cut += 1;
            }
            let cut = if cut >= out.len() {
                out.len() / 2
            } else {
                cut + 1
            };
            out.truncate(cut.max(1));
        }
        MutationKind::ByteFlip => {
            let flips = (out.len() / 200).max(1);
            for _ in 0..flips {
                if out.is_empty() {
                    break;
                }
                let i = rng.gen_range(0..out.len());
                let mask = (rng.gen_range(1u32..256) & 0xFF) as u8;
                out[i] ^= mask.max(1);
            }
        }
        MutationKind::UnterminatedComment => {
            let at = mid(rng, out.len());
            out.truncate(at);
            out.extend_from_slice(b"\n/* chaos: this comment never closes\n");
            out.extend_from_slice(b"int leftover(void) { return 1; }\n");
        }
        MutationKind::UnterminatedString => {
            let at = mid(rng, out.len());
            out.truncate(at);
            out.extend_from_slice(b"\nstatic const char *chaos = \"never closed;\n");
        }
        MutationKind::DeepNesting => {
            let depth = 4000 + rng.gen_range(0usize..1000);
            out.extend_from_slice(b"\nint chaos_nest(void)\n{\n        return ");
            out.extend(std::iter::repeat_n(b'(', depth));
            out.push(b'1');
            out.extend(std::iter::repeat_n(b')', depth));
            out.extend_from_slice(b";\n}\n");
        }
        MutationKind::MacroBomb => {
            let layers = 40 + rng.gen_range(0usize..20);
            out.extend_from_slice(b"\n#define CHAOS_0(x) ((x) + 1)\n");
            for i in 1..layers {
                out.extend_from_slice(
                    format!("#define CHAOS_{i}(x) CHAOS_{}(CHAOS_{}(x))\n", i - 1, i - 1)
                        .as_bytes(),
                );
            }
            // The invocation side: a call tree nested past any sane
            // depth, which is what actually lands on the parser.
            let depth = 3000 + rng.gen_range(0usize..500);
            out.extend_from_slice(b"int chaos_macro(void)\n{\n        return ");
            for _ in 0..depth {
                out.extend_from_slice(b"CHAOS_1(");
            }
            out.push(b'1');
            out.extend(std::iter::repeat_n(b')', depth));
            out.extend_from_slice(b";\n}\n");
        }
        MutationKind::NulGarbage => {
            let at = mid(rng, out.len());
            let run = 16 + rng.gen_range(0usize..64);
            let nuls = vec![0u8; run];
            out.splice(at..at, nuls);
        }
        MutationKind::BinaryGarbage => {
            let at = mid(rng, out.len());
            let run = 64 + rng.gen_range(0usize..192);
            let garbage: Vec<u8> = (0..run)
                .map(|_| (rng.gen_range(0x80u32..0x100) & 0xFF) as u8)
                .collect();
            out.splice(at..at, garbage);
        }
    }
    out
}

/// Corrupts a seeded subset of `tree`'s files.
///
/// Victim selection, kind choice, and mutation content all derive from
/// [`ChaosConfig::seed`], so a given `(tree, config)` pair always
/// yields a byte-identical [`ChaosCorpus`].
///
/// # Examples
///
/// ```
/// use refminer_corpus::{apply_chaos, generate_tree, ChaosConfig, TreeConfig};
///
/// let tree = generate_tree(&TreeConfig { scale: 0.02, ..Default::default() });
/// let chaos = apply_chaos(&tree, &ChaosConfig::default());
/// assert!(!chaos.records.is_empty());
/// assert_eq!(chaos.files.len(), tree.files.len());
/// ```
pub fn apply_chaos(tree: &SyntheticTree, config: &ChaosConfig) -> ChaosCorpus {
    let kinds: Vec<MutationKind> = if config.kinds.is_empty() {
        MutationKind::all().to_vec()
    } else {
        config.kinds.clone()
    };
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let mut files = Vec::with_capacity(tree.files.len());
    let mut records = Vec::new();
    for f in &tree.files {
        let hit = config.ratio > 0.0 && rng.gen::<f64>() < config.ratio;
        if hit {
            let kind = kinds[rng.gen_range(0..kinds.len())];
            let bytes = mutate_bytes(f.content.as_bytes(), kind, &mut rng);
            records.push(ChaosRecord {
                path: f.path.clone(),
                kind,
            });
            files.push((f.path.clone(), bytes));
        } else {
            files.push((f.path.clone(), f.content.clone().into_bytes()));
        }
    }
    // A positive ratio must harm at least one file, or a "chaos" run
    // silently becomes a clean run.
    if records.is_empty() && config.ratio > 0.0 {
        if let Some((path, bytes)) = files.first_mut() {
            let kind = kinds[rng.gen_range(0..kinds.len())];
            let mutated = mutate_bytes(bytes, kind, &mut rng);
            *bytes = mutated;
            records.push(ChaosRecord {
                path: path.clone(),
                kind,
            });
        }
    }
    records.sort_by(|a, b| a.path.cmp(&b.path));
    ChaosCorpus { files, records }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::{generate_tree, TreeConfig};

    fn small_tree() -> SyntheticTree {
        generate_tree(&TreeConfig {
            scale: 0.02,
            ..Default::default()
        })
    }

    #[test]
    fn same_seed_same_corruption() {
        let tree = small_tree();
        let a = apply_chaos(&tree, &ChaosConfig::default());
        let b = apply_chaos(&tree, &ChaosConfig::default());
        assert_eq!(a.files, b.files);
        assert_eq!(a.records.len(), b.records.len());
        for (ra, rb) in a.records.iter().zip(&b.records) {
            assert_eq!(ra.path, rb.path);
            assert_eq!(ra.kind, rb.kind);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let tree = small_tree();
        let a = apply_chaos(&tree, &ChaosConfig::default());
        let b = apply_chaos(
            &tree,
            &ChaosConfig {
                seed: 7,
                ..Default::default()
            },
        );
        assert_ne!(a.files, b.files);
    }

    #[test]
    fn every_mutation_changes_content() {
        let src = b"int f(void)\n{\n        return some_value + 12345;\n}\n";
        for kind in MutationKind::all() {
            let mut rng = ChaCha8Rng::seed_from_u64(1);
            let out = mutate_bytes(src, kind, &mut rng);
            assert_ne!(out, src.to_vec(), "{} left content unchanged", kind.name());
        }
    }

    #[test]
    fn untouched_files_are_byte_identical() {
        let tree = small_tree();
        let chaos = apply_chaos(&tree, &ChaosConfig::default());
        let mutated = chaos.mutated_paths();
        for (f, (path, bytes)) in tree.files.iter().zip(&chaos.files) {
            assert_eq!(&f.path, path);
            if !mutated.contains(path.as_str()) {
                assert_eq!(f.content.as_bytes(), &bytes[..], "{path} drifted");
            }
        }
    }

    #[test]
    fn ratio_one_hits_everything() {
        let tree = small_tree();
        let chaos = apply_chaos(
            &tree,
            &ChaosConfig {
                ratio: 1.0,
                ..Default::default()
            },
        );
        assert_eq!(chaos.records.len(), tree.files.len());
    }

    #[test]
    fn positive_ratio_always_harms_something() {
        let tree = small_tree();
        let chaos = apply_chaos(
            &tree,
            &ChaosConfig {
                ratio: 0.000001,
                ..Default::default()
            },
        );
        assert!(!chaos.records.is_empty());
    }

    #[test]
    fn kind_names_round_trip() {
        for k in MutationKind::all() {
            assert_eq!(MutationKind::parse(k.name()), Some(k));
        }
        assert_eq!(MutationKind::parse("nonsense"), None);
    }

    #[test]
    fn restricted_kinds_are_respected() {
        let tree = small_tree();
        let chaos = apply_chaos(
            &tree,
            &ChaosConfig {
                ratio: 1.0,
                kinds: vec![MutationKind::DeepNesting],
                ..Default::default()
            },
        );
        assert!(chaos
            .records
            .iter()
            .all(|r| r.kind == MutationKind::DeepNesting));
    }
}

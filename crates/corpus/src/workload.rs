//! Deterministic client workloads for the `refminer serve` daemon.
//!
//! The serve robustness tests need many clients hammering the daemon
//! with *interleaved* but *reproducible* operation streams: mostly
//! cheap reads (`query`, `status`) with occasional whole-tree audits
//! and targeted re-audits mixed in. This module generates those
//! streams the same way the tree and history generators work — a
//! seeded [`ChaCha8Rng`], so the same seed yields the same op
//! sequence on every run and every host.
//!
//! The ops are deliberately abstract (no wire format): the serve
//! protocol lives above this crate, and the tests render each op
//! through the protocol's own encoder so there is no second request
//! serializer to drift.

use refminer_prng::{ChaCha8Rng, Rng, SeedableRng};

/// One client operation against the daemon.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkloadOp {
    /// Re-audit the whole tree.
    Audit,
    /// Re-audit the named files (paths relative to the served root).
    Reaudit(Vec<String>),
    /// Read findings from the current snapshot, optionally filtered by
    /// subsystem prefix and/or anti-pattern id (`"P1"`..`"P9"`).
    Query {
        subsystem: Option<String>,
        pattern: Option<String>,
    },
    /// Read the daemon's counters.
    Status,
}

/// Workload shape knobs.
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// RNG seed; same seed, same ops.
    pub seed: u64,
    /// Number of operations to generate.
    pub ops: usize,
    /// File paths `Reaudit` may name (relative to the served root).
    /// With no files, re-audits degrade to whole-tree audits.
    pub files: Vec<String>,
    /// Subsystem prefixes `Query` may filter by.
    pub subsystems: Vec<String>,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            seed: 0x5E4E,
            ops: 32,
            files: Vec::new(),
            subsystems: Vec::new(),
        }
    }
}

/// Generates a deterministic op sequence: roughly 60% queries, 20%
/// status reads, 10% targeted re-audits, 10% whole-tree audits — the
/// read-heavy mix a finding dashboard would produce, with enough
/// writes to keep snapshots churning under the readers.
pub fn generate_workload(cfg: &WorkloadConfig) -> Vec<WorkloadOp> {
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    (0..cfg.ops)
        .map(|_| match rng.gen_range(0..10u32) {
            0..=5 => WorkloadOp::Query {
                subsystem: pick(&mut rng, &cfg.subsystems, 2),
                pattern: if rng.gen_range(0..3u32) == 0 {
                    Some(format!("P{}", rng.gen_range(1..=9u32)))
                } else {
                    None
                },
            },
            6 | 7 => WorkloadOp::Status,
            8 if !cfg.files.is_empty() => {
                let n = rng.gen_range(1..=cfg.files.len().min(3));
                let mut files: Vec<String> = (0..n)
                    .map(|_| cfg.files[rng.gen_range(0..cfg.files.len())].clone())
                    .collect();
                files.dedup();
                WorkloadOp::Reaudit(files)
            }
            _ => WorkloadOp::Audit,
        })
        .collect()
}

/// Picks from `pool` with probability `1/odds` (else `None`).
fn pick(rng: &mut ChaCha8Rng, pool: &[String], odds: u32) -> Option<String> {
    if pool.is_empty() || rng.gen_range(0..odds) != 0 {
        return None;
    }
    Some(pool[rng.gen_range(0..pool.len())].clone())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> WorkloadConfig {
        WorkloadConfig {
            seed: 7,
            ops: 200,
            files: vec!["a/a.c".into(), "b/b.c".into()],
            subsystems: vec!["drivers".into(), "net".into()],
        }
    }

    #[test]
    fn same_seed_same_ops() {
        assert_eq!(generate_workload(&cfg()), generate_workload(&cfg()));
        let other = WorkloadConfig { seed: 8, ..cfg() };
        assert_ne!(generate_workload(&cfg()), generate_workload(&other));
    }

    #[test]
    fn mix_covers_every_op_kind_and_is_read_heavy() {
        let ops = generate_workload(&cfg());
        assert_eq!(ops.len(), 200);
        let queries = ops
            .iter()
            .filter(|o| matches!(o, WorkloadOp::Query { .. }))
            .count();
        let audits = ops
            .iter()
            .filter(|o| matches!(o, WorkloadOp::Audit))
            .count();
        let reaudits = ops
            .iter()
            .filter(|o| matches!(o, WorkloadOp::Reaudit(_)))
            .count();
        let status = ops
            .iter()
            .filter(|o| matches!(o, WorkloadOp::Status))
            .count();
        assert!(queries > audits + reaudits, "workload must be read-heavy");
        assert!(audits > 0 && reaudits > 0 && status > 0);
        for op in &ops {
            if let WorkloadOp::Reaudit(files) = op {
                assert!(!files.is_empty(), "reaudit must name files");
            }
        }
    }

    #[test]
    fn no_files_means_no_targeted_reaudits() {
        let ops = generate_workload(&WorkloadConfig {
            files: Vec::new(),
            ops: 100,
            ..cfg()
        });
        assert!(ops.iter().all(|o| !matches!(o, WorkloadOp::Reaudit(_))));
    }
}

//! C source emitters: buggy and clean kernel-idiom functions.
//!
//! Every anti-pattern gets a generator producing a realistic function
//! around a given bug-caused API, plus a *fixed* twin used as clean
//! filler. The shapes mirror the paper's listings (Listing 1–6).

use refminer_prng::{ChaCha8Rng, Rng};
use refminer_rcapi::ApiKb;

/// Deterministic identifier generator.
pub struct NameGen {
    rng: ChaCha8Rng,
    counter: u32,
}

const STEMS: &[&str] = &[
    "codec", "bridge", "phy", "dma", "pll", "mux", "gate", "port", "lane", "bank", "cell", "ring",
    "queue", "bus", "link", "core", "ctrl", "node", "timer", "clk",
];

impl NameGen {
    /// Creates a generator from an RNG.
    pub fn new(rng: ChaCha8Rng) -> NameGen {
        NameGen { rng, counter: 0 }
    }

    /// A fresh snake_case identifier with the given prefix.
    pub fn ident(&mut self, prefix: &str) -> String {
        let stem = STEMS[self.rng.gen_range(0..STEMS.len())];
        self.counter += 1;
        format!("{prefix}_{stem}{}", self.counter)
    }

    /// A fresh quoted string naming a DT node/compatible.
    pub fn dt_name(&mut self) -> String {
        let stem = STEMS[self.rng.gen_range(0..STEMS.len())];
        self.counter += 1;
        format!("\"vendor,{stem}-{}\"", self.counter)
    }
}

/// How an acquiring API is invoked in generated code: the C expression
/// and the declaration of the result variable.
fn acquire_expr(api: &str, ng: &mut NameGen) -> (String, &'static str) {
    // (call expression with `{}` for nothing, result type)
    match api {
        "of_find_compatible_node" => (
            format!("of_find_compatible_node(NULL, NULL, {})", ng.dt_name()),
            "struct device_node *",
        ),
        "of_find_matching_node" => (
            "of_find_matching_node(NULL, match_tbl)".to_string(),
            "struct device_node *",
        ),
        "of_find_node_by_name" => (
            format!("of_find_node_by_name(NULL, {})", ng.dt_name()),
            "struct device_node *",
        ),
        "of_find_node_by_path" => (
            format!("of_find_node_by_path(\"/soc/{}\")", ng.ident("n")),
            "struct device_node *",
        ),
        "of_find_node_by_phandle" => (
            "of_find_node_by_phandle(ph)".to_string(),
            "struct device_node *",
        ),
        "of_find_node_by_type" => (
            format!("of_find_node_by_type(NULL, {})", ng.dt_name()),
            "struct device_node *",
        ),
        "of_parse_phandle" => (
            format!("of_parse_phandle(pdev->dev.of_node, {}, 0)", ng.dt_name()),
            "struct device_node *",
        ),
        "of_get_parent" => (
            "of_get_parent(pdev->dev.of_node)".to_string(),
            "struct device_node *",
        ),
        "of_get_child_by_name" => (
            format!("of_get_child_by_name(pdev->dev.of_node, {})", ng.dt_name()),
            "struct device_node *",
        ),
        "of_get_node" => (
            "of_get_node(pdev->dev.of_node)".to_string(),
            "struct device_node *",
        ),
        "of_graph_get_port_by_id" => (
            "of_graph_get_port_by_id(pdev->dev.of_node, 0)".to_string(),
            "struct device_node *",
        ),
        "of_graph_get_port_parent" => (
            "of_graph_get_port_parent(ep)".to_string(),
            "struct device_node *",
        ),
        "ip_dev_find" => ("ip_dev_find(net, addr)".to_string(), "struct net_device *"),
        "mdesc_grab" => ("mdesc_grab()".to_string(), "struct mdesc_handle *"),
        "bus_find_device" => (
            "bus_find_device(&platform_bus_type, NULL, np, match_fn)".to_string(),
            "struct device *",
        ),
        _ => (format!("{api}(pdev->dev.of_node)"), "struct device_node *"),
    }
}

/// The decrement API pairing `api` (consults the builtin KB).
fn dec_for(kb: &ApiKb, api: &str) -> String {
    kb.accepted_decs(api)
        .into_iter()
        .next()
        .unwrap_or_else(|| "of_node_put".to_string())
}

/// Emits one buggy function for anti-pattern `pattern` (1..=9) around
/// `api`. Returns the function's C source.
///
/// `uaf_variant` selects the missing-increase (UAF) flavour for P4.
pub fn emit_bug(
    pattern: u8,
    api: &str,
    fn_name: &str,
    kb: &ApiKb,
    ng: &mut NameGen,
    uaf_variant: bool,
) -> String {
    match pattern {
        1 => emit_p1(api, fn_name, ng),
        2 => emit_p2(api, fn_name, kb, ng),
        3 => emit_p3(api, fn_name, kb, ng),
        4 if uaf_variant => emit_p4_uaf(api, fn_name, ng),
        4 => emit_p4(api, fn_name, ng),
        5 => emit_p5(api, fn_name, kb, ng),
        6 => emit_p6(api, fn_name, kb, ng),
        7 => emit_p7(api, fn_name, ng),
        8 => emit_p8(api, fn_name, ng),
        9 => emit_p9(api, fn_name, ng),
        _ => unreachable!("pattern out of range"),
    }
}

/// Emits the clean (fixed) twin of the same shape.
pub fn emit_clean(pattern: u8, api: &str, fn_name: &str, kb: &ApiKb, ng: &mut NameGen) -> String {
    match pattern {
        1 => {
            let helper = ng.ident("cfg");
            format!(
                "static int {fn_name}(struct platform_device *pdev)\n\
                 {{\n\
                 \tint ret = pm_runtime_get_sync(pdev->dev.parent);\n\
                 \tif (ret < 0) {{\n\
                 \t\tpm_runtime_put_noidle(pdev->dev.parent);\n\
                 \t\treturn ret;\n\
                 \t}}\n\
                 \t{helper}(pdev);\n\
                 \tpm_runtime_put(pdev->dev.parent);\n\
                 \treturn 0;\n\
                 }}\n"
            )
        }
        2 => {
            let (expr, ty) = acquire_expr(api, ng);
            let dec = dec_for(kb, api);
            format!(
                "static int {fn_name}(void)\n\
                 {{\n\
                 \t{ty}hp = {expr};\n\
                 \tif (!hp)\n\
                 \t\treturn -ENODEV;\n\
                 \tprocess_version(hp->version);\n\
                 \t{dec}(hp);\n\
                 \treturn 0;\n\
                 }}\n"
            )
        }
        3 => {
            let sl = kb.smartloop(api);
            let dec = sl
                .map(|s| s.dec_name.clone())
                .unwrap_or("of_node_put".into());
            let (head, iter) = smartloop_head(api, kb, ng);
            format!(
                "static int {fn_name}(struct platform_device *pdev)\n\
                 {{\n\
                 \tstruct device_node *{iter};\n\
                 \t{head} {{\n\
                 \t\tif (want_node({iter})) {{\n\
                 \t\t\t{dec}({iter});\n\
                 \t\t\tbreak;\n\
                 \t\t}}\n\
                 \t}}\n\
                 \treturn 0;\n\
                 }}\n"
            )
        }
        5 | 4 => {
            let (expr, ty) = acquire_expr(api, ng);
            let dec = dec_for(kb, api);
            let helper = ng.ident("setup");
            format!(
                "static int {fn_name}(struct platform_device *pdev)\n\
                 {{\n\
                 \t{ty}np = {expr};\n\
                 \tint ret;\n\
                 \tif (!np)\n\
                 \t\treturn -ENODEV;\n\
                 \tret = {helper}(np);\n\
                 \tif (ret)\n\
                 \t\tgoto err_put;\n\
                 \t{dec}(np);\n\
                 \treturn 0;\n\
                 err_put:\n\
                 \t{dec}(np);\n\
                 \treturn ret;\n\
                 }}\n"
            )
        }
        6 => {
            // Clean ops pair is emitted by the P6 generator directly;
            // standalone clean filler reuses the P4/P5 clean shape.
            emit_clean(5, api, fn_name, kb, ng)
        }
        7 => {
            let (expr, ty) = acquire_expr(api, ng);
            let dec = dec_for(kb, api);
            format!(
                "static void {fn_name}(struct platform_device *pdev)\n\
                 {{\n\
                 \t{ty}np = {expr};\n\
                 \tif (!np)\n\
                 \t\treturn;\n\
                 \t{dec}(np);\n\
                 }}\n"
            )
        }
        8 => {
            let obj = ng.ident("st");
            format!(
                "static void {fn_name}(struct sock *{obj})\n\
                 {{\n\
                 \t{obj}->sk_state = 0;\n\
                 \tupdate_stats({obj}->sk_prot);\n\
                 \tsock_put({obj});\n\
                 }}\n"
            )
        }
        9 => {
            format!(
                "static void {fn_name}(struct foo_priv *priv, struct device_node *np)\n\
                 {{\n\
                 \tof_node_get(np);\n\
                 \tpriv->node = np;\n\
                 }}\n"
            )
        }
        _ => unreachable!("pattern out of range"),
    }
}

/// Emits a neutral helper that exercises no refcounting at all. Every
/// third filler is wrapped in a `#ifdef` block, as kernel code would
/// be, exercising the preprocessor-skipping path of the pipeline.
pub fn emit_filler(fn_name: &str, ng: &mut NameGen) -> String {
    let reg = ng.ident("reg");
    let mask = ng.ident("mask");
    let body = format!(
        "static u32 {fn_name}(u32 {reg}, u32 {mask})\n\
         {{\n\
         \tu32 val = {reg} & {mask};\n\
         \tif (val > 16)\n\
         \t\tval = val >> 2;\n\
         \telse\n\
         \t\tval = val << 1;\n\
         \treturn val ^ {mask};\n\
         }}\n"
    );
    if fn_name.len().is_multiple_of(3) {
        format!(
            "#ifdef CONFIG_{}\n{body}#endif\n",
            fn_name.to_ascii_uppercase()
        )
    } else {
        body
    }
}

fn emit_p1(_api: &str, fn_name: &str, ng: &mut NameGen) -> String {
    // Listing 3's shape: inc-on-error API, early return on failure.
    let helper = ng.ident("cfg");
    format!(
        "static int {fn_name}(struct platform_device *pdev)\n\
         {{\n\
         \tint ret = pm_runtime_get_sync(pdev->dev.parent);\n\
         \tif (ret < 0)\n\
         \t\treturn ret;\n\
         \t{helper}(pdev);\n\
         \tpm_runtime_put(pdev->dev.parent);\n\
         \treturn 0;\n\
         }}\n"
    )
}

fn emit_p2(api: &str, fn_name: &str, kb: &ApiKb, ng: &mut NameGen) -> String {
    let (expr, ty) = acquire_expr(api, ng);
    let dec = dec_for(kb, api);
    format!(
        "static int {fn_name}(void)\n\
         {{\n\
         \t{ty}hp = {expr};\n\
         \tprocess_version(hp->version);\n\
         \t{dec}(hp);\n\
         \treturn 0;\n\
         }}\n"
    )
}

/// Builds the smartloop header line and iterator name for a loop macro.
fn smartloop_head(api: &str, kb: &ApiKb, ng: &mut NameGen) -> (String, String) {
    let iter = ng.ident("dn");
    let sl = kb.smartloop(api);
    let iter_arg = sl.map(|s| s.iter_arg).unwrap_or(0);
    let head = match api {
        "for_each_child_of_node"
        | "for_each_available_child_of_node"
        | "device_for_each_child_node"
        | "fwnode_for_each_child_node" => {
            // (parent, child).
            debug_assert_eq!(iter_arg, 1);
            format!("{api}(pdev->dev.of_node, {iter})")
        }
        "for_each_compatible_node" => format!("{api}({iter}, NULL, \"vendor,x\")"),
        "for_each_matching_node" => format!("{api}({iter}, match_tbl)"),
        "for_each_node_by_name" => format!("{api}({iter}, \"port\")"),
        "for_each_cpu_node" => format!("{api}({iter})"),
        _ => format!("{api}({iter})"),
    };
    (head, iter)
}

fn emit_p3(api: &str, fn_name: &str, kb: &ApiKb, ng: &mut NameGen) -> String {
    // Listing 4's shape: break out of a smartloop without the put.
    let (head, iter) = smartloop_head(api, kb, ng);
    format!(
        "static int {fn_name}(struct platform_device *pdev)\n\
         {{\n\
         \tstruct device_node *{iter};\n\
         \tint found = 0;\n\
         \t{head} {{\n\
         \t\tif (want_node({iter})) {{\n\
         \t\t\tfound = 1;\n\
         \t\t\tbreak;\n\
         \t\t}}\n\
         \t}}\n\
         \treturn found ? 0 : -ENODEV;\n\
         }}\n"
    )
}

fn emit_p4(api: &str, fn_name: &str, ng: &mut NameGen) -> String {
    // Listing 1's shape: find-like acquisition, never released.
    let (expr, ty) = acquire_expr(api, ng);
    let helper = ng.ident("read");
    format!(
        "static int {fn_name}(struct platform_device *pdev)\n\
         {{\n\
         \t{ty}np = {expr};\n\
         \tu32 val;\n\
         \tif (!np)\n\
         \t\treturn -ENODEV;\n\
         \tif ({helper}(np, &val))\n\
         \t\treturn -EIO;\n\
         \twriteback(pdev, val);\n\
         \treturn 0;\n\
         }}\n"
    )
}

fn emit_p4_uaf(api: &str, fn_name: &str, ng: &mut NameGen) -> String {
    // The hidden-decrement flavour (§5.2.2): `from` is borrowed but the
    // find API puts it.
    let from = ng.ident("from");
    let call = match api {
        "of_find_compatible_node" => {
            format!("of_find_compatible_node({from}, NULL, \"vendor,x\")")
        }
        "of_find_matching_node" => format!("of_find_matching_node({from}, match_tbl)"),
        "of_find_node_by_name" => format!("of_find_node_by_name({from}, \"port\")"),
        "of_find_node_by_type" => format!("of_find_node_by_type({from}, \"cpu\")"),
        _ => format!("{api}({from}, NULL, \"vendor,x\")"),
    };
    format!(
        "static struct device_node *{fn_name}(struct device_node *{from})\n\
         {{\n\
         \tstruct device_node *np = {call};\n\
         \treturn np;\n\
         }}\n"
    )
}

fn emit_p5(api: &str, fn_name: &str, kb: &ApiKb, ng: &mut NameGen) -> String {
    // Paired on the success path, missed in the error label.
    let (expr, ty) = acquire_expr(api, ng);
    let dec = dec_for(kb, api);
    let helper = ng.ident("setup");
    format!(
        "static int {fn_name}(struct platform_device *pdev)\n\
         {{\n\
         \t{ty}np = {expr};\n\
         \tint ret;\n\
         \tif (!np)\n\
         \t\treturn -ENODEV;\n\
         \tret = {helper}(np);\n\
         \tif (ret)\n\
         \t\tgoto err_unmap;\n\
         \t{dec}(np);\n\
         \treturn 0;\n\
         err_unmap:\n\
         \tunmap_resources(pdev);\n\
         \treturn ret;\n\
         }}\n"
    )
}

fn emit_p6(api: &str, base: &str, kb: &ApiKb, ng: &mut NameGen) -> String {
    // An ops-table pair whose remove side forgets the put.
    let (expr, _ty) = acquire_expr(api, ng);
    let _ = dec_for(kb, api);
    format!(
        "static int {base}_probe(struct platform_device *pdev)\n\
         {{\n\
         \tstruct {base}_priv *priv = devm_kzalloc(&pdev->dev, sizeof(*priv), GFP_KERNEL);\n\
         \tif (!priv)\n\
         \t\treturn -ENOMEM;\n\
         \tpriv->node = {expr};\n\
         \tplatform_set_drvdata(pdev, priv);\n\
         \treturn 0;\n\
         }}\n\
         \n\
         static int {base}_remove(struct platform_device *pdev)\n\
         {{\n\
         \tstruct {base}_priv *priv = platform_get_drvdata(pdev);\n\
         \tdisable_hw(priv);\n\
         \treturn 0;\n\
         }}\n\
         \n\
         static const struct platform_driver {base}_driver = {{\n\
         \t.probe = {base}_probe,\n\
         \t.remove = {base}_remove,\n\
         }};\n"
    )
}

fn emit_p7(api: &str, fn_name: &str, ng: &mut NameGen) -> String {
    // Direct kfree of a refcounted object (§5.3.3).
    let (expr, ty) = acquire_expr(api, ng);
    format!(
        "static void {fn_name}(struct platform_device *pdev)\n\
         {{\n\
         \t{ty}np = {expr};\n\
         \tif (!np)\n\
         \t\treturn;\n\
         \tkfree(np);\n\
         }}\n"
    )
}

fn emit_p8(api: &str, fn_name: &str, ng: &mut NameGen) -> String {
    // UAD (Listing 6's shape), parameterized by the dec API.
    let obj = ng.ident("obj");
    let (param_ty, deref) = match api {
        "sock_put" => ("struct sock *", "sk_prot"),
        "usb_serial_put" => ("struct usb_serial *", "disc_mutex"),
        "nvmet_fc_tgt_q_put" => ("struct nvmet_fc_tgt_queue *", "fod_lock"),
        "of_node_put" => ("struct device_node *", "name"),
        _ => ("struct device_node *", "name"),
    };
    format!(
        "static void {fn_name}({param_ty}{obj})\n\
         {{\n\
         \t{api}({obj});\n\
         \tupdate_stats({obj}->{deref});\n\
         }}\n"
    )
}

fn emit_p9(_api: &str, fn_name: &str, ng: &mut NameGen) -> String {
    // Borrowed reference escaping into long-lived state (§5.4.2).
    let field = ng.ident("slot");
    format!(
        "static void {fn_name}(struct foo_priv *priv, struct device_node *np)\n\
         {{\n\
         \tpriv->{field} = np;\n\
         \tpriv->ready = 1;\n\
         }}\n"
    )
}

/// A correct-but-tricky snippet reproducing the paper's false-positive
/// root cause (§6.4): the release is semantically guaranteed but
/// syntactically invisible to the checker — here, hidden inside an
/// extern helper whose implementation lives in another file. The
/// code is correct; the checkers are expected to flag it anyway.
pub fn emit_tricky(fn_name: &str, ng: &mut NameGen) -> String {
    let helper = ng.ident("ctx_teardown");
    format!(
        "extern void {helper}(struct device_node *np);\n\
         \n\
         static int {fn_name}(struct platform_device *pdev)\n\
         {{\n\
         \tstruct device_node *np = of_find_node_by_name(NULL, \"ports\");\n\
         \tif (!np)\n\
         \t\treturn -ENODEV;\n\
         \tif (setup_hw(np) < 0) {{\n\
         \t\t/* {helper}() drops the node reference internally. */\n\
         \t\t{helper}(np);\n\
         \t\treturn -EIO;\n\
         \t}}\n\
         \t{helper}(np);\n\
         \treturn 0;\n\
         }}\n"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use refminer_checkers::{check_unit, AntiPattern};
    use refminer_cparse::parse_str;
    use refminer_prng::SeedableRng;

    fn ng() -> NameGen {
        NameGen::new(ChaCha8Rng::seed_from_u64(7))
    }

    fn kb() -> ApiKb {
        ApiKb::builtin()
    }

    fn pattern_of(n: u8) -> AntiPattern {
        AntiPattern::all()[(n - 1) as usize]
    }

    /// Every buggy emitter must trigger exactly its checker; every
    /// clean emitter must trigger none.
    #[test]
    fn emitted_bugs_trigger_their_checker() {
        let kb = kb();
        let mut ng = ng();
        let cases: &[(u8, &str)] = &[
            (1, "pm_runtime_get_sync"),
            (2, "mdesc_grab"),
            (3, "for_each_child_of_node"),
            (3, "for_each_compatible_node"),
            (3, "for_each_matching_node"),
            (4, "of_find_compatible_node"),
            (4, "of_parse_phandle"),
            (4, "of_get_parent"),
            (5, "of_find_node_by_path"),
            (6, "of_find_node_by_name"),
            (7, "of_find_node_by_name"),
            (8, "sock_put"),
            (8, "of_node_put"),
            (9, "of_node_get"),
        ];
        for (pattern, api) in cases {
            let src = emit_bug(*pattern, api, "test_fn", &kb, &mut ng, false);
            let tu = parse_str("drivers/test/gen.c", &src);
            let findings = check_unit(&tu, &kb);
            assert!(
                findings.iter().any(|f| f.pattern == pattern_of(*pattern)),
                "P{pattern} via {api} not detected; findings={findings:?}\nsrc:\n{src}"
            );
        }
    }

    #[test]
    fn p4_uaf_variant_triggers_uaf() {
        let kb = kb();
        let mut ng = ng();
        let src = emit_bug(4, "of_find_matching_node", "next_one", &kb, &mut ng, true);
        let tu = parse_str("t.c", &src);
        let findings = check_unit(&tu, &kb);
        assert!(findings
            .iter()
            .any(|f| f.pattern == AntiPattern::P4 && f.impact == refminer_checkers::Impact::Uaf));
    }

    #[test]
    fn clean_twins_are_clean() {
        let kb = kb();
        let mut ng = ng();
        for (pattern, api) in [
            (1u8, "pm_runtime_get_sync"),
            (2, "mdesc_grab"),
            (3, "for_each_child_of_node"),
            (4, "of_find_compatible_node"),
            (5, "of_find_node_by_path"),
            (7, "of_find_node_by_name"),
            (8, "sock_put"),
            (9, "of_node_get"),
        ] {
            let src = emit_clean(pattern, api, "clean_fn", &kb, &mut ng);
            let tu = parse_str("t.c", &src);
            let findings = check_unit(&tu, &kb);
            assert!(
                findings.is_empty(),
                "clean P{pattern} flagged: {findings:?}\nsrc:\n{src}"
            );
        }
    }

    #[test]
    fn filler_is_clean() {
        let kb = kb();
        let mut ng = ng();
        let src = emit_filler("mask_helper", &mut ng);
        let tu = parse_str("t.c", &src);
        assert!(check_unit(&tu, &kb).is_empty());
    }

    #[test]
    fn names_are_unique() {
        let mut ng = ng();
        let a = ng.ident("x");
        let b = ng.ident("x");
        assert_ne!(a, b);
    }
}

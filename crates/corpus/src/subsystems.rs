//! The subsystem/module taxonomy and the paper-calibrated marginals.
//!
//! Two calibration tables live here:
//!
//! - [`HISTORICAL_SUBSYSTEM_WEIGHTS`] — where the 1,033 historical bugs
//!   sit (Figure 2's left chart: drivers 56.9%, top-3 82.4%);
//! - [`NEW_BUG_PLAN`] — the per-module anti-pattern instance counts of
//!   Table 5 (351 new bugs across arch/drivers/include/net/sound).
//!
//! The corpus generator consumes these so that the regenerated figures
//! and tables have the paper's shape while every pipeline stage still
//! computes its numbers from generated artifacts.

/// Per-subsystem weight of historical refcounting bugs (Figure 2,
/// left). Weights are bug counts out of 1,033.
pub const HISTORICAL_SUBSYSTEM_WEIGHTS: &[(&str, u32)] = &[
    ("drivers", 588),
    ("net", 152),
    ("fs", 111),
    ("arch", 60),
    ("sound", 45),
    ("block", 18),
    ("kernel", 17),
    ("mm", 12),
    ("crypto", 10),
    ("security", 8),
    ("ipc", 6),
    ("init", 4),
    ("lib", 2),
];

/// Approximate code size per subsystem in KLOC (Figure 2, right —
/// densities). `block` is deliberately small (65 KLOC) so it has the
/// highest bug density, matching the paper's observation.
pub const SUBSYSTEM_KLOC: &[(&str, u32)] = &[
    ("drivers", 12_000),
    ("net", 1_200),
    ("fs", 1_300),
    ("arch", 1_800),
    ("sound", 900),
    ("block", 65),
    ("kernel", 380),
    ("mm", 170),
    ("crypto", 120),
    ("security", 110),
    ("ipc", 40),
    ("init", 30),
    ("lib", 160),
];

/// One row of the Table 5 plan: module location, anti-pattern id
/// (1..=9), instance count, and the dominant bug-caused API.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanRow {
    /// Top-level subsystem (`arch`, `drivers`, ...).
    pub subsystem: &'static str,
    /// Module within the subsystem (`arm`, `clk`, ...).
    pub module: &'static str,
    /// Anti-pattern number, 1..=9.
    pub pattern: u8,
    /// How many instances to inject.
    pub count: u32,
    /// The API to build the buggy code around.
    pub api: &'static str,
}

const fn row(
    subsystem: &'static str,
    module: &'static str,
    pattern: u8,
    count: u32,
    api: &'static str,
) -> PlanRow {
    PlanRow {
        subsystem,
        module,
        pattern,
        count,
        api,
    }
}

/// The Table 5 injection plan: every `#Anti-Pattern Instance` cell of
/// the paper's Table 5, with the module's top bug-caused API attached.
pub const NEW_BUG_PLAN: &[PlanRow] = &[
    // arch. NOTE: the paper's Table 5 row for `arm` lists P4[42], but
    // the per-subsystem totals of Table 4 (arch = 156, grand total 351)
    // only close with 41 — the table over-counts by one. We follow the
    // Table 4 totals.
    row("arch", "arm", 4, 41, "of_find_compatible_node"),
    row("arch", "arm", 6, 2, "of_find_matching_node"),
    row("arch", "arm", 7, 2, "of_find_compatible_node"),
    row("arch", "arm", 9, 4, "of_find_matching_node"),
    row("arch", "microblaze", 4, 1, "of_find_matching_node"),
    row("arch", "mips", 4, 17, "of_find_compatible_node"),
    row("arch", "powerpc", 3, 8, "for_each_compatible_node"),
    row("arch", "powerpc", 4, 48, "of_find_compatible_node"),
    row("arch", "powerpc", 5, 1, "of_find_node_by_path"),
    row("arch", "powerpc", 6, 2, "of_find_node_by_path"),
    row("arch", "powerpc", 8, 1, "of_node_put"),
    row("arch", "powerpc", 9, 5, "of_find_node_by_path"),
    row("arch", "sh", 4, 1, "of_find_compatible_node"),
    row("arch", "sparc", 2, 3, "mdesc_grab"),
    row("arch", "sparc", 3, 4, "for_each_node_by_name"),
    row("arch", "sparc", 4, 10, "of_find_node_by_name"),
    row("arch", "sparc", 7, 1, "of_find_node_by_name"),
    row("arch", "sparc", 9, 1, "of_find_node_by_name"),
    row("arch", "x86", 4, 2, "of_find_compatible_node"),
    row("arch", "xtensa", 4, 2, "of_find_compatible_node"),
    // drivers.
    row("drivers", "block", 2, 1, "mdesc_grab"),
    row("drivers", "bus", 3, 1, "for_each_child_of_node"),
    row("drivers", "bus", 4, 7, "of_find_matching_node"),
    row("drivers", "clk", 4, 37, "of_get_node"),
    row("drivers", "clocksource", 4, 1, "of_find_compatible_node"),
    row("drivers", "cpufreq", 4, 4, "of_find_node_by_name"),
    row("drivers", "crypto", 4, 4, "of_find_compatible_node"),
    row("drivers", "dma", 3, 1, "for_each_child_of_node"),
    row("drivers", "dma", 5, 1, "of_parse_phandle"),
    row("drivers", "edac", 4, 1, "of_find_compatible_node"),
    row("drivers", "firmware", 4, 1, "of_find_compatible_node"),
    row("drivers", "gpio", 4, 2, "of_get_parent"),
    row("drivers", "gpio", 6, 1, "of_node_get"),
    row("drivers", "gpio", 9, 1, "of_node_get"),
    row("drivers", "gpu", 3, 3, "for_each_child_of_node"),
    row("drivers", "gpu", 4, 5, "of_graph_get_port_by_id"),
    row("drivers", "gpu", 5, 3, "of_graph_get_port_by_id"),
    row("drivers", "gpu", 6, 2, "of_get_node"),
    row("drivers", "gpu", 8, 2, "of_node_put"),
    row("drivers", "gpu", 9, 2, "of_get_node"),
    row("drivers", "hwmon", 4, 2, "of_find_compatible_node"),
    row("drivers", "i2c", 3, 2, "device_for_each_child_node"),
    row("drivers", "iio", 3, 1, "device_for_each_child_node"),
    row("drivers", "iio", 4, 1, "of_find_node_by_name"),
    row("drivers", "input", 4, 2, "of_find_node_by_path"),
    row("drivers", "iommu", 3, 1, "for_each_child_of_node"),
    row("drivers", "irqchip", 4, 3, "of_find_matching_node"),
    row("drivers", "leds", 3, 1, "fwnode_for_each_child_node"),
    row("drivers", "macintosh", 4, 2, "of_find_compatible_node"),
    row("drivers", "macintosh", 6, 1, "of_node_get"),
    row("drivers", "media", 3, 2, "for_each_compatible_node"),
    row("drivers", "memory", 3, 4, "for_each_child_of_node"),
    row("drivers", "memory", 4, 2, "of_find_node_by_name"),
    row("drivers", "mfd", 1, 1, "pm_runtime_get_sync"),
    row("drivers", "mmc", 3, 3, "for_each_child_of_node"),
    row("drivers", "mmc", 4, 1, "of_find_compatible_node"),
    row("drivers", "net", 2, 2, "mdesc_grab"),
    row("drivers", "net", 3, 5, "for_each_child_of_node"),
    row("drivers", "net", 4, 12, "of_find_compatible_node"),
    row("drivers", "nvme", 8, 1, "nvmet_fc_tgt_q_put"),
    row("drivers", "of", 4, 1, "of_parse_phandle"),
    row("drivers", "opp", 9, 2, "of_node_get"),
    row("drivers", "pci", 4, 2, "of_parse_phandle"),
    row("drivers", "pci", 5, 1, "of_find_matching_node"),
    row("drivers", "perf", 3, 1, "for_each_cpu_node"),
    row("drivers", "phy", 3, 1, "for_each_child_of_node"),
    row("drivers", "phy", 4, 2, "of_parse_phandle"),
    row("drivers", "pinctrl", 4, 1, "of_find_node_by_phandle"),
    row("drivers", "platform", 3, 3, "device_for_each_child_node"),
    row("drivers", "powerpc", 4, 1, "of_find_compatible_node"),
    row("drivers", "regulator", 4, 2, "of_find_node_by_name"),
    row("drivers", "sbus", 4, 2, "of_find_node_by_path"),
    row("drivers", "soc", 3, 3, "for_each_child_of_node"),
    row("drivers", "soc", 4, 7, "of_find_compatible_node"),
    row("drivers", "soc", 5, 1, "of_get_parent"),
    row("drivers", "soc", 6, 1, "of_get_parent"),
    row("drivers", "soc", 9, 1, "of_find_compatible_node"),
    row("drivers", "thermal", 6, 1, "of_node_get"),
    row("drivers", "thermal", 9, 1, "of_node_get"),
    row("drivers", "tty", 2, 1, "mdesc_grab"),
    row("drivers", "tty", 4, 2, "of_find_node_by_type"),
    row("drivers", "tty", 6, 1, "of_find_node_by_type"),
    row("drivers", "ufs", 4, 1, "of_parse_phandle"),
    row("drivers", "usb", 4, 6, "of_find_node_by_name"),
    row("drivers", "usb", 8, 1, "usb_serial_put"),
    row("drivers", "video", 4, 3, "of_find_compatible_node"),
    row("drivers", "w1", 4, 3, "of_find_matching_node"),
    row("drivers", "w1", 5, 1, "of_find_matching_node"),
    // include.
    row("include", "linux", 4, 2, "of_find_compatible_node"),
    // net.
    row("net", "appletalk", 4, 1, "ip_dev_find"),
    row("net", "ipv4", 8, 1, "sock_put"),
    // sound.
    row("sound", "soc", 4, 8, "of_find_compatible_node"),
    row("sound", "soc", 5, 1, "of_graph_get_port_parent"),
];

/// Total instances in the Table 5 plan.
pub fn plan_total() -> u32 {
    NEW_BUG_PLAN.iter().map(|r| r.count).sum()
}

/// Instances per subsystem, in plan order.
pub fn plan_by_subsystem() -> Vec<(&'static str, u32)> {
    let mut out: Vec<(&'static str, u32)> = Vec::new();
    for r in NEW_BUG_PLAN {
        match out.iter_mut().find(|(s, _)| *s == r.subsystem) {
            Some((_, c)) => *c += r.count,
            None => out.push((r.subsystem, r.count)),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_matches_table4_totals() {
        // Table 4: arch 156, drivers 182, include 2, net 2, sound 9,
        // total 351.
        let by = plan_by_subsystem();
        let get = |s: &str| by.iter().find(|(n, _)| *n == s).map(|(_, c)| *c).unwrap();
        assert_eq!(get("arch"), 156);
        assert_eq!(get("drivers"), 182);
        assert_eq!(get("include"), 2);
        assert_eq!(get("net"), 2);
        assert_eq!(get("sound"), 9);
        assert_eq!(plan_total(), 351);
    }

    #[test]
    fn historical_weights_match_findings() {
        let total: u32 = HISTORICAL_SUBSYSTEM_WEIGHTS.iter().map(|(_, c)| c).sum();
        assert_eq!(total, 1033);
        let get = |s: &str| {
            HISTORICAL_SUBSYSTEM_WEIGHTS
                .iter()
                .find(|(n, _)| *n == s)
                .map(|(_, c)| *c)
                .unwrap()
        };
        // Finding 3: drivers alone 56.9%, top-3 82.4%.
        assert_eq!(get("drivers"), 588);
        let top3 = get("drivers") + get("net") + get("fs");
        assert_eq!(top3, 851);
        // Block density is the highest (Figure 2 right).
        let density = |s: &str| {
            let kloc = SUBSYSTEM_KLOC
                .iter()
                .find(|(n, _)| *n == s)
                .map(|(_, k)| *k)
                .unwrap();
            get(s) as f64 / kloc as f64
        };
        for (s, _) in HISTORICAL_SUBSYSTEM_WEIGHTS {
            if *s != "block" && *s != "ipc" && *s != "init" {
                assert!(density("block") > density(s), "block must out-dense {s}");
            }
        }
    }

    #[test]
    fn plan_patterns_in_range() {
        for r in NEW_BUG_PLAN {
            assert!((1..=9).contains(&r.pattern), "bad pattern {}", r.pattern);
            assert!(r.count > 0);
        }
    }
}

//! # refminer-corpus
//!
//! The simulated substrates the paper's pipelines run on:
//!
//! - [`generate_tree`] — a synthetic Linux-like source tree (real C
//!   code in kernel idiom) with anti-pattern bug instances injected per
//!   the paper's Table 5 plan and recorded in a ground-truth
//!   [`Manifest`]; the input for the checker experiments (Tables 4, 5).
//! - [`generate_history`] — a simulated 2005–2022 commit stream with
//!   planted bug-fix commits, keyword noise, wrong-patch/revert pairs
//!   and bulk neutral commits; the input for the mining pipeline
//!   (Figures 1–3, Tables 2–3).
//! - [`apply_chaos`] — seeded corruption of a generated tree
//!   (truncation, bit flips, nesting bombs, binary garbage) with a
//!   ground-truth record of the victims; the input for the audit
//!   pipeline's fault-isolation tests.
//! - [`generate_workload`] — a seeded stream of daemon client
//!   operations (query/status/audit/reaudit mixes); the input for the
//!   `refminer serve` concurrency and robustness tests.
//!
//! Both generators are deterministic given their seeds, and both are
//! *calibrated* to the paper's reported marginals — see DESIGN.md for
//! the substitution rationale. Downstream code recovers every statistic
//! from the generated artifacts (source text, commit text), never from
//! hidden labels.

mod chaos;
mod codegen;
mod history;
mod subsystems;
mod tree;
mod workload;

pub use chaos::{apply_chaos, mutate_bytes, ChaosConfig, ChaosCorpus, ChaosRecord, MutationKind};
pub use codegen::{emit_bug, emit_clean, emit_filler, emit_tricky, NameGen};
pub use history::{
    generate_history, major_of, version_for, Commit, History, HistoryConfig, PlantedKind,
};
pub use subsystems::{
    plan_by_subsystem, plan_total, PlanRow, HISTORICAL_SUBSYSTEM_WEIGHTS, NEW_BUG_PLAN,
    SUBSYSTEM_KLOC,
};
pub use tree::{
    generate_big_tree, generate_fix_history, generate_release_history, generate_tree,
    next_revision, release_version, BigTreeConfig, CloneGroup, CloneMember, FpTrap, InjectedBug,
    Manifest, ReleaseHistoryConfig, ReleaseRev, SourceFile, SyntheticTree, TreeConfig, TreeRev,
    CLONE_GROUP_SIZE, RELEASE_LADDER,
};
pub use workload::{generate_workload, WorkloadConfig, WorkloadOp};

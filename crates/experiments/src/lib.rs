//! # refminer-experiments
//!
//! One binary per table and figure of the paper, each regenerating its
//! rows/series from the simulated substrates and printing a
//! paper-vs-measured comparison. Run them all with
//! `cargo run -p refminer-experiments --bin all`.
//!
//! | Binary   | Reproduces |
//! |----------|------------|
//! | `fig1`   | Figure 1 — growth trend of refcounting bugs 2005–2022 |
//! | `fig2`   | Figure 2 — subsystem distribution and bug density |
//! | `fig3`   | Figure 3 — bug lifetimes across releases (Findings 4–5) |
//! | `table1` | Table 1 — semantic templates for Listings 1 & 2 |
//! | `table2` | Table 2 — bug-kind percentages (Findings 1–2) |
//! | `table3` | Table 3 — word2vec keyword similarities |
//! | `table4` | Table 4 — new bugs per subsystem, impacts, status |
//! | `table5` | Table 5 — per-module details |
//! | `table6` | Table 6 — error-prone API inventory |

use refminer::corpus::{
    generate_history, generate_tree, History, HistoryConfig, SyntheticTree, TreeConfig,
};
use refminer::dataset::{classify_history, HistBug};
use refminer::rcapi::ApiKb;
use refminer::{audit, AuditConfig, AuditReport, Project};

/// The standard simulated history used by the historical-study
/// experiments (Figures 1–3, Tables 2–3). One seed, shared everywhere,
/// so the experiments agree with each other.
pub fn standard_history() -> History {
    generate_history(&HistoryConfig::default())
}

/// A smaller history for quick runs (`--quick`).
pub fn quick_history() -> History {
    generate_history(&HistoryConfig {
        n_bugs: 300,
        n_noise: 200,
        n_reverts: 6,
        n_neutral: 3_000,
        ..Default::default()
    })
}

/// Mines and classifies the standard history.
pub fn standard_bugs() -> Vec<HistBug> {
    let h = standard_history();
    classify_history(&h.commits, &ApiKb::builtin())
}

/// The standard "latest release" tree used by the checker experiments
/// (Tables 4–6).
pub fn standard_tree() -> SyntheticTree {
    generate_tree(&TreeConfig::default())
}

/// Audits the standard tree.
pub fn standard_audit() -> (SyntheticTree, AuditReport) {
    let tree = standard_tree();
    let project = Project::from_tree(&tree);
    let report = audit(&project, &AuditConfig::default());
    (tree, report)
}

/// Prints a section header.
pub fn header(title: &str) {
    println!("\n{}", "=".repeat(72));
    println!("{title}");
    println!("{}", "=".repeat(72));
}

/// Whether `--quick` was passed on the command line.
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
}

//! Table 6 — the error-prone API inventory: the built-in Appendix A
//! knowledge, plus whatever API/smartloop discovery finds in the
//! synthetic tree (§6.1's lexer-parsing stage in action).

use refminer::rcapi::{ApiKb, RcClass, RcDir};
use refminer::report::Table;
use refminer_experiments::{header, standard_audit};

fn main() {
    header("Table 6: error-prone APIs");
    let (_tree, report) = standard_audit();
    let kb = &report.kb;

    let mut table = Table::new(vec!["Bug Type", "APIs"]);
    let join = |mut names: Vec<String>| {
        names.sort();
        names.join(", ")
    };

    let return_error: Vec<String> = kb
        .apis()
        .filter(|a| a.inc_on_error)
        .map(|a| a.name.clone())
        .collect();
    table.row(vec!["ID / Return-Error".into(), join(return_error)]);

    let return_null: Vec<String> = kb
        .apis()
        .filter(|a| a.may_return_null)
        .map(|a| a.name.clone())
        .collect();
    table.row(vec!["ID / Return-NULL".into(), join(return_null)]);
    table.rule();

    let smartloops: Vec<String> = kb.smartloops().map(|s| s.name.clone()).collect();
    table.row(vec![
        "H / Complete-Hidden (smartloops)".into(),
        join(smartloops),
    ]);

    let hidden: Vec<String> = kb
        .apis()
        .filter(|a| a.class == RcClass::Embedded && a.dir == RcDir::Inc && !a.may_return_null)
        .map(|a| a.name.clone())
        .collect();
    table.row(vec![
        "H / Inc.-/Dec.-Hidden (find-like)".into(),
        join(hidden),
    ]);
    print!("{}", table.render());

    // Show what discovery added beyond the builtin seed.
    header("APIs and smartloops added by discovery over the tree");
    let builtin = ApiKb::builtin();
    let mut added: Vec<String> = kb
        .apis()
        .filter(|a| builtin.get(&a.name).is_none())
        .map(|a| format!("{} ({:?}/{:?})", a.name, a.class, a.dir))
        .collect();
    added.sort();
    if added.is_empty() {
        println!("(none — the tree only uses seeded APIs)");
    }
    for a in added {
        println!("  {a}");
    }
    let mut loops_added: Vec<String> = kb
        .smartloops()
        .filter(|s| builtin.smartloop(&s.name).is_none())
        .map(|s| format!("{} (iter arg {}, dec {})", s.name, s.iter_arg, s.dec_name))
        .collect();
    loops_added.sort();
    for l in loops_added {
        println!("  smartloop {l}");
    }
}

//! Runs every table/figure experiment in sequence (the full
//! reproduction pass recorded in EXPERIMENTS.md).

use std::process::Command;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let exe = std::env::current_exe().expect("current exe");
    let dir = exe.parent().expect("bin dir");
    for name in [
        "fig1", "fig2", "fig3", "table1", "table2", "table3", "table4", "table5", "table6",
        "ablation",
    ] {
        let mut cmd = Command::new(dir.join(name));
        if quick {
            cmd.arg("--quick");
        }
        let status = cmd.status().unwrap_or_else(|e| {
            panic!("failed to launch {name}: {e} (build with `cargo build -p refminer-experiments --bins`)")
        });
        assert!(status.success(), "{name} failed");
    }
    println!("\nall experiments completed.");
}

//! Figure 2 — distribution of refcounting bugs over subsystems (left)
//! and bug density in bugs/KLOC (right). Finding 3: long-tailed, top-3
//! subsystems hold 82.4%, drivers alone 56.9%; `block` is the densest.

use refminer::dataset::{compare, DistributionStats, PAPER};
use refminer::report::bar_chart;
use refminer_experiments::{header, standard_bugs};

fn main() {
    let bugs = standard_bugs();
    let dist = DistributionStats::compute(&bugs);

    header("Figure 2 (left): bugs per subsystem");
    let counts: Vec<(String, f64)> = dist
        .counts
        .iter()
        .map(|(s, c)| (s.clone(), *c as f64))
        .collect();
    print!("{}", bar_chart(&counts, 50));

    header("Figure 2 (right): bug density (bugs per KLOC)");
    let dens: Vec<(String, f64)> = dist
        .density
        .iter()
        .map(|(s, d)| (s.clone(), (*d * 1000.0).round() / 1000.0))
        .collect();
    print!("{}", bar_chart(&dens, 50));

    header("Finding 3 comparison");
    let total: usize = dist.counts.iter().map(|(_, c)| c).sum();
    let drivers = dist
        .counts
        .iter()
        .find(|(s, _)| s == "drivers")
        .map(|(_, c)| *c)
        .unwrap_or(0);
    println!(
        "{}",
        compare(
            "drivers share (%)",
            PAPER.drivers_pct,
            100.0 * drivers as f64 / total as f64
        )
    );
    println!(
        "{}",
        compare("top-3 share (%)", PAPER.top3_pct, 100.0 * dist.top_share(3))
    );
    println!(
        "densest subsystem: {} (paper: block)",
        dist.density.first().map(|(s, _)| s.as_str()).unwrap_or("?")
    );
}

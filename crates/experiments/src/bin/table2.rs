//! Table 2 — the percentage of different kinds of refcounting bugs
//! (Findings 1 & 2), recovered by mining and classifying the simulated
//! history.

use refminer::dataset::{compare, BugKind, HistImpact, ImpactStats, PAPER};
use refminer::report::Table;
use refminer_experiments::{header, standard_bugs};

fn main() {
    header("Table 2: kinds of refcounting bugs (mined dataset)");
    let bugs = standard_bugs();
    let stats = ImpactStats::compute(&bugs);

    let mut t = Table::new(vec!["Impact", "Refcounting Bug", "Share"]).numeric();
    let pct = |k: BugKind| format!("{:.1}%", stats.pct(stats.count(k)));
    let leak_pct = format!("{:.1}%", stats.pct(stats.leaks));
    let uaf_pct = format!("{:.1}%", stats.pct(stats.uafs));
    t.row(vec![
        format!("Leak ({leak_pct})"),
        "1.1 Intra-Unpaired (missing dec)".into(),
        pct(BugKind::MissingDecIntra),
    ]);
    t.row(vec![
        String::new(),
        "1.2 Inter-Unpaired (missing dec)".into(),
        pct(BugKind::MissingDecInter),
    ]);
    t.row(vec![
        String::new(),
        "2.  Others".into(),
        pct(BugKind::LeakOther),
    ]);
    t.rule();
    t.row(vec![
        format!("UAF ({uaf_pct})"),
        "3.1 Misplacing-Dec (UAD)".into(),
        pct(BugKind::MisplacedDecUad),
    ]);
    t.row(vec![
        String::new(),
        "3.1 Misplacing-Dec (other)".into(),
        pct(BugKind::MisplacedDecOther),
    ]);
    t.row(vec![
        String::new(),
        "3.2 Misplacing-Inc".into(),
        pct(BugKind::MisplacedInc),
    ]);
    t.row(vec![
        String::new(),
        "4.1 Intra-Unpaired (missing inc)".into(),
        pct(BugKind::MissingIncIntra),
    ]);
    t.row(vec![
        String::new(),
        "4.2 Inter-Unpaired (missing inc)".into(),
        pct(BugKind::MissingIncInter),
    ]);
    t.row(vec![
        String::new(),
        "5.  Others".into(),
        pct(BugKind::UafOther),
    ]);
    print!("{}", t.render());

    header("Findings 1 & 2 comparison");
    println!(
        "{}",
        compare("total bugs", PAPER.total_bugs as f64, stats.total as f64)
    );
    println!(
        "{}",
        compare("leak share (%)", PAPER.leak_pct, stats.pct(stats.leaks))
    );
    println!(
        "{}",
        compare("UAF share (%)", PAPER.uaf_pct, stats.pct(stats.uafs))
    );
    println!(
        "{}",
        compare(
            "intra-unpaired dec (%)",
            PAPER.intra_unpaired_pct,
            stats.pct(stats.count(BugKind::MissingDecIntra))
        )
    );
    println!(
        "{}",
        compare(
            "inter-unpaired dec (%)",
            PAPER.inter_unpaired_pct,
            stats.pct(stats.count(BugKind::MissingDecInter))
        )
    );
    println!(
        "{}",
        compare(
            "UAD (%)",
            PAPER.uad_pct,
            stats.pct(stats.count(BugKind::MisplacedDecUad))
        )
    );
    // Sanity: every bug has exactly one impact.
    let check = bugs
        .iter()
        .filter(|b| matches!(b.impact, HistImpact::Leak | HistImpact::Uaf))
        .count();
    assert_eq!(check, bugs.len());
}

//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! 1. **Leave-one-checker-out** — how much of the 351-bug plan each
//!    anti-pattern checker is uniquely responsible for (and how much
//!    cross-coverage exists between checkers);
//! 2. **API discovery on/off** — what §6.1's lexer-parsing stage buys
//!    on code using project-specific refcounting wrappers;
//! 3. **Tricky snippets** — the measured precision cost of the paper's
//!    false-positive root cause.

use refminer::checkers::{check_unit_with_checkers, default_checkers, AntiPattern};
use refminer::corpus::{generate_tree, TreeConfig};
use refminer::cparse::parse_str;
use refminer::cpg::FunctionGraph;
use refminer::dataset::triage;
use refminer::report::Table;
use refminer::{audit, AuditConfig, Project};
use refminer_experiments::header;

fn main() {
    leave_one_out();
    discovery_ablation();
    tricky_ablation();
}

/// Runs the audit with one checker removed and reports the recall drop.
fn leave_one_out() {
    header("Ablation 1: leave-one-checker-out (full 351-bug plan)");
    let tree = generate_tree(&TreeConfig {
        include_tricky: false,
        ..Default::default()
    });
    // Pre-parse once; re-running nine audits on fresh parses would be
    // needlessly slow.
    let tus: Vec<_> = tree
        .files
        .iter()
        .map(|f| parse_str(&f.path, &f.content))
        .collect();
    let graphs: Vec<_> = tus.iter().map(FunctionGraph::build_all).collect();
    let kb = {
        // Same KB the full audit would use.
        audit(&Project::from_tree(&tree), &AuditConfig::default()).kb
    };

    let recall_with = |skip: Option<AntiPattern>| -> (usize, usize) {
        let checkers: Vec<_> = default_checkers()
            .into_iter()
            .filter(|c| Some(c.pattern()) != skip)
            .collect();
        let mut findings = Vec::new();
        for (tu, gs) in tus.iter().zip(&graphs) {
            findings.extend(check_unit_with_checkers(tu, &kb, gs, &checkers));
        }
        let t = triage(&findings, &tree.manifest);
        let found = tree
            .manifest
            .bugs
            .iter()
            .filter(|b| {
                t.rows.iter().any(|r| {
                    r.true_positive && r.finding.file == b.path && r.finding.function == b.function
                })
            })
            .count();
        (found, findings.len())
    };

    let (baseline_found, _) = recall_with(None);
    let total = tree.manifest.bugs.len();
    println!("baseline: {baseline_found}/{total} injected bugs found\n");

    let mut table = Table::new(vec![
        "Removed checker",
        "Bugs found",
        "Missed vs baseline",
        "Cross-covered",
    ])
    .numeric();
    for pattern in AntiPattern::all() {
        let planned: usize = tree
            .manifest
            .bugs
            .iter()
            .filter(|b| b.pattern == pattern_num(pattern))
            .count();
        let (found, _) = recall_with(Some(pattern));
        let missed = baseline_found - found;
        // Bugs of this pattern still found by *other* checkers.
        let cross = planned.saturating_sub(missed);
        table.row(vec![
            format!("{pattern} ({} planned)", planned),
            found.to_string(),
            missed.to_string(),
            cross.to_string(),
        ]);
    }
    print!("{}", table.render());
    println!(
        "\nreading: `Missed` is each checker's unique contribution; \
         `Cross-covered` counts its planned bugs that another checker still reports."
    );
}

/// Audits the vendor module (custom wrappers + custom smartloop) with
/// discovery on and off.
fn discovery_ablation() {
    header("Ablation 2: API/smartloop discovery (vendor-wrapper module)");
    let tree = generate_tree(&TreeConfig {
        scale: 0.0,
        include_tricky: false,
        include_vendor: true,
        ..Default::default()
    });
    let project = Project::from_tree(&tree);
    let vendor_bugs = tree
        .manifest
        .bugs
        .iter()
        .filter(|b| b.module == "vendor")
        .count();
    for discover in [true, false] {
        let report = audit(
            &project,
            &AuditConfig {
                discover_apis: discover,
                ..Default::default()
            },
        );
        let found = tree
            .manifest
            .bugs
            .iter()
            .filter(|b| {
                report
                    .findings
                    .iter()
                    .any(|f| f.file == b.path && f.function == b.function)
            })
            .count();
        println!(
            "discovery {}: {found}/{vendor_bugs} vendor bugs found (KB size {})",
            if discover { "ON " } else { "OFF" },
            report.kb.len()
        );
    }
    println!(
        "\nreading: without §6.1's discovery stage the checkers have no \
         vocabulary for project-specific wrappers — exactly the paper's \
         motivation for the lexer-parsing front end."
    );
}

/// Measures the precision cost of the deliberately-correct tricky code.
fn tricky_ablation() {
    header("Ablation 3: precision with/without the Listing-5-style snippets");
    for tricky in [false, true] {
        let tree = generate_tree(&TreeConfig {
            include_tricky: tricky,
            ..Default::default()
        });
        let report = audit(&Project::from_tree(&tree), &AuditConfig::default());
        let t = triage(&report.findings, &tree.manifest);
        println!(
            "tricky snippets {}: precision {:.3}, recall {:.3}, {} false positive(s)",
            if tricky { "ON " } else { "OFF" },
            t.precision(),
            t.recall(&tree.manifest),
            t.totals().false_positives
        );
    }
    println!(
        "\nreading: the only false positives come from semantics the \
         intra-procedural checkers cannot see (release hidden in an \
         extern helper) — the same root cause as the paper's five FPs (§6.4)."
    );
}

fn pattern_num(p: AntiPattern) -> u8 {
    AntiPattern::all().iter().position(|&q| q == p).unwrap() as u8 + 1
}

//! Table 1 — semantic templates describing the two motivating bugs
//! (Listings 1 & 2), rendered in the paper's notation and matched
//! against the listing code itself.

use refminer::cparse::parse_str;
use refminer::cpg::FunctionGraph;
use refminer::rcapi::ApiKb;
use refminer::template::{parse_template, pretty, TemplateMatcher};
use refminer_experiments::header;

const LISTING1: &str = r#"
struct nvmem_device *__nvmem_device_get(struct device_node *np)
{
        struct device *dev;
        dev = bus_find_device(&nvmem_bus_type, NULL, np, of_nvmem_match);
        if (!dev)
                return ERR_PTR(-EPROBE_DEFER);
        return to_nvmem_device(dev);
}
"#;

const LISTING2: &str = r#"
static int usb_console_setup(struct usb_serial *serial)
{
        usb_serial_put(serial);
        mutex_unlock(&serial->disc_mutex);
        return 0;
}
"#;

fn main() {
    header("Table 1: semantic templates for the two listed bugs");
    let kb = ApiKb::builtin();
    let matcher = TemplateMatcher::new(&kb);

    // Listing 1: Entry → S_G → B_error → Exit.
    let t1 = parse_template("F_start -> S_G -> B_error -> F_end").expect("valid");
    println!("Listing 1 (missing-refcounting, drivers/nvmem/core.c):");
    println!("  ASCII:  {t1}");
    println!("  paper:  {}", pretty(&t1));
    let tu = parse_str("drivers/nvmem/core.c", LISTING1);
    let g = FunctionGraph::build(tu.function("__nvmem_device_get").expect("parsed"));
    let matches = matcher.find(&t1, &g);
    println!(
        "  match against the listing: {} witness path(s) — {}",
        matches.len(),
        if matches.is_empty() {
            "NOT reproduced"
        } else {
            "bug shape reproduced"
        }
    );

    // Listing 2: Entry → S_P(p0) → S_{U∘D}(p0) → Exit.
    let t2 = parse_template("F_start -> S_P(p0) -> S_{U.D}(p0) -> F_end").expect("valid");
    println!("\nListing 2 (misplacing-refcounting, drivers/usb/serial/console.c):");
    println!("  ASCII:  {t2}");
    println!("  paper:  {}", pretty(&t2));
    let tu = parse_str("drivers/usb/serial/console.c", LISTING2);
    let g = FunctionGraph::build(tu.function("usb_console_setup").expect("parsed"));
    let matches = matcher.find(&t2, &g);
    for m in &matches {
        println!(
            "  match with binding {} = `{}`",
            m.bindings[0].0, m.bindings[0].1
        );
    }
    println!(
        "  match against the listing: {} witness path(s) — {}",
        matches.len(),
        if matches.is_empty() {
            "NOT reproduced"
        } else {
            "bug shape reproduced"
        }
    );
}

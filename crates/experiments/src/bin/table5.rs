//! Table 5 — the per-module detail of the new bugs: top bug-caused
//! APIs, anti-pattern instance counts, and confirmations.

use std::collections::BTreeMap;

use refminer::dataset::{triage, PatchStatus};
use refminer::report::Table;
use refminer::AntiPattern;
use refminer_experiments::{header, standard_audit};

fn main() {
    header("Table 5: per-module details of the new bugs");
    let (tree, report) = standard_audit();
    let t = triage(&report.findings, &tree.manifest);

    // Group true positives by (subsystem, module).
    #[derive(Default)]
    struct ModuleRow {
        apis: BTreeMap<String, usize>,
        patterns: BTreeMap<AntiPattern, usize>,
        bugs: usize,
        confirmed: usize,
        rejected: usize,
    }
    let mut modules: BTreeMap<(String, String), ModuleRow> = BTreeMap::new();
    for row in &t.rows {
        if !row.true_positive {
            continue;
        }
        let mut parts = row.finding.file.split('/');
        let subsystem = parts.next().unwrap_or("").to_string();
        let module = parts.next().unwrap_or("").to_string();
        let e = modules.entry((subsystem, module)).or_default();
        e.bugs += 1;
        if !row.finding.api.is_empty() {
            *e.apis.entry(row.finding.api.clone()).or_default() += 1;
        }
        *e.patterns.entry(row.finding.pattern).or_default() += 1;
        match row.status {
            PatchStatus::Confirmed => e.confirmed += 1,
            PatchStatus::Rejected => e.rejected += 1,
            _ => {}
        }
    }

    let mut table = Table::new(vec![
        "Subsystem",
        "Module",
        "Bug-Caused API (Top-2)",
        "#Anti-Pattern Instance",
        "#Bug",
        "Confirm",
    ]);
    for ((subsystem, module), row) in &modules {
        // Top-2 APIs by count.
        let mut apis: Vec<(&String, &usize)> = row.apis.iter().collect();
        apis.sort_by(|a, b| b.1.cmp(a.1).then(a.0.cmp(b.0)));
        let top2 = apis
            .iter()
            .take(2)
            .map(|(a, c)| format!("{a}[{c}]"))
            .collect::<Vec<_>>()
            .join(", ");
        let patterns = row
            .patterns
            .iter()
            .map(|(p, c)| format!("{p}[{c}]"))
            .collect::<Vec<_>>()
            .join(", ");
        let confirm = if row.rejected > 0 && row.confirmed == 0 {
            "PR".to_string()
        } else if row.confirmed == 0 {
            "NR".to_string()
        } else {
            row.confirmed.to_string()
        };
        table.row(vec![
            subsystem.clone(),
            module.clone(),
            top2,
            patterns,
            row.bugs.to_string(),
            confirm,
        ]);
    }
    print!("{}", table.render());
    println!(
        "\nmodules: {}; long-tail check: largest module holds {} of {} bugs",
        modules.len(),
        modules.values().map(|r| r.bugs).max().unwrap_or(0),
        modules.values().map(|r| r.bugs).sum::<usize>()
    );
}

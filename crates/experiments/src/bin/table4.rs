//! Table 4 — the new refcounting bugs detected by the nine checkers on
//! the synthetic "latest release" tree, with impacts, patch status and
//! false positives, plus measured precision/recall against the
//! injection ground truth (something the paper could not measure).

use refminer::dataset::{compare, triage, PAPER};
use refminer::report::Table;
use refminer_experiments::{header, standard_audit};

fn main() {
    header("Table 4: new refcounting bugs (checker audit of the synthetic tree)");
    let (tree, report) = standard_audit();
    println!(
        "audited {} files / {} functions / {} lines; KB holds {} APIs",
        report.files,
        report.functions,
        report.lines,
        report.kb.len()
    );
    let t = triage(&report.findings, &tree.manifest);

    let mut table = Table::new(vec![
        "Subsystem",
        "New Bugs",
        "Leak",
        "UAF",
        "NPD",
        "#CFM",
        "#PR",
        "#FP",
    ])
    .numeric();
    for (subsystem, row) in t.by_subsystem() {
        table.row(vec![
            subsystem,
            row.bugs.to_string(),
            row.leak.to_string(),
            row.uaf.to_string(),
            row.npd.to_string(),
            row.confirmed.to_string(),
            row.rejected.to_string(),
            row.false_positives.to_string(),
        ]);
    }
    table.rule();
    let tot = t.totals();
    table.row(vec![
        "Total".into(),
        tot.bugs.to_string(),
        tot.leak.to_string(),
        tot.uaf.to_string(),
        tot.npd.to_string(),
        tot.confirmed.to_string(),
        tot.rejected.to_string(),
        tot.false_positives.to_string(),
    ]);
    print!("{}", table.render());

    header("Paper comparison + ground-truth measurement");
    println!(
        "{}",
        compare("new bugs", PAPER.new_bugs as f64, tot.bugs as f64)
    );
    println!(
        "{}",
        compare("leak impact", PAPER.new_leak as f64, tot.leak as f64)
    );
    println!(
        "{}",
        compare("UAF impact", PAPER.new_uaf as f64, tot.uaf as f64)
    );
    println!(
        "{}",
        compare("NPD impact", PAPER.new_npd as f64, tot.npd as f64)
    );
    println!(
        "{}",
        compare("confirmed", PAPER.confirmed as f64, tot.confirmed as f64)
    );
    println!(
        "{}",
        compare("rejected", PAPER.rejected as f64, tot.rejected as f64)
    );
    println!(
        "{}",
        compare(
            "false positives",
            PAPER.false_positives as f64,
            tot.false_positives as f64
        )
    );
    println!(
        "\nground truth (unavailable to the paper): recall {:.3}, precision {:.3}",
        t.recall(&tree.manifest),
        t.precision()
    );
}

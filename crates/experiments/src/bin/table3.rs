//! Table 3 — word2vec (CBOW) semantic similarities between the key
//! words of refcounting API names and the key words of bug-caused API
//! names, trained on the simulated commit logs.

use refminer::dataset::{PAPER_TABLE3, TABLE3_COLUMNS};
use refminer::report::Table;
use refminer::w2v::{W2vConfig, Word2Vec};
use refminer_experiments::{header, quick_history, quick_mode, standard_history};

const RC_KEYWORDS: [&str; 11] = [
    "refcount", "increase", "get", "hold", "grab", "retain", "decrease", "put", "unhold", "drop",
    "release",
];

fn main() {
    header("Table 3: keyword similarities (word2vec/CBOW on commit logs)");
    let history = if quick_mode() {
        quick_history()
    } else {
        standard_history()
    };
    // One sentence per commit: summary + body text + patch code — the
    // paper trains on "more than one million of the historical commit
    // logs, including the code and comment text" (§5.2.2).
    let corpus: String = history
        .commits
        .iter()
        .map(|c| {
            format!(
                "{} {}",
                c.message.replace('\n', " "),
                c.diff.replace('\n', " ")
            )
        })
        .collect::<Vec<_>>()
        .join("\n");
    let cfg = W2vConfig {
        dim: 64,
        window: 6,
        epochs: if quick_mode() { 3 } else { 8 },
        min_count: 3,
        subsample: 5e-3,
        ..Default::default()
    };
    println!(
        "training CBOW (dim {}, window {}, epochs {}) on {} commit logs ...",
        cfg.dim,
        cfg.window,
        cfg.epochs,
        history.commits.len()
    );
    let model = Word2Vec::train_text(&corpus, &cfg);
    println!("vocabulary: {} words\n", model.vocab().len());

    let mut t = Table::new(vec![
        "RC keyword",
        "foreach",
        "find",
        "parse",
        "open",
        "probe",
        "register",
    ])
    .numeric();
    for rc in RC_KEYWORDS {
        let mut row = vec![rc.to_string()];
        for bug in TABLE3_COLUMNS {
            let cell = match model.similarity(rc, bug) {
                Some(s) => format!("{s:.2}"),
                None => "oov".to_string(),
            };
            row.push(cell);
        }
        t.row(row);
    }
    print!("{}", t.render());

    header("Paper's Table 3 (for comparison)");
    let mut p = Table::new(vec![
        "RC keyword",
        "foreach",
        "find",
        "parse",
        "open",
        "probe",
        "register",
    ])
    .numeric();
    for (rc, vals) in PAPER_TABLE3 {
        let mut row = vec![rc.to_string()];
        row.extend(vals.iter().map(|v| format!("{v:.2}")));
        p.row(row);
    }
    print!("{}", p.render());

    header("Shape checks (§5.2.2)");
    let sim = |a: &str, b: &str| model.similarity(a, b).unwrap_or(0.0);
    let find_get = sim("find", "get");
    let find_put = sim("find", "put");
    let foreach_get = sim("foreach", "get");
    let unhold_find = sim("unhold", "find");
    println!(
        "find~get   = {find_get:.2}  (paper 0.73; expected high — find-like APIs pair with gets)"
    );
    println!("find~put   = {find_put:.2}  (paper 0.58; expected high — fixes add puts for finds)");
    println!("foreach~get= {foreach_get:.2}  (paper 0.32; expected lower than find~get)");
    println!("unhold~find= {unhold_find:.2}  (paper 0.10; expected near zero — barely used)");
    println!(
        "\nordering reproduced: find~get > foreach~get: {}; find~put > unhold~find: {}",
        find_get > foreach_get,
        find_put > unhold_find
    );
}

//! Figure 1 — growth trend of refcounting bugs in Linux kernels,
//! 2005–2022. The miner recovers the per-year fix counts from the
//! simulated history; the paper's figure shows the same monotone
//! growth on the real git log.

use refminer::dataset::growth_by_year;
use refminer::report::bar_chart;
use refminer_experiments::{header, standard_bugs};

fn main() {
    header("Figure 1: growth trend of refcounting bugs (2005-2022)");
    let bugs = standard_bugs();
    let growth = growth_by_year(&bugs);
    let data: Vec<(String, f64)> = growth
        .iter()
        .map(|(y, c)| (y.to_string(), *c as f64))
        .collect();
    print!("{}", bar_chart(&data, 50));
    println!("\ntotal mined bugs: {}", bugs.len());
    let first = growth.first().map(|&(_, c)| c).unwrap_or(0);
    let last = growth.last().map(|&(_, c)| c).unwrap_or(0);
    println!(
        "shape check: {first} bugs in {} vs {last} in {} — {}",
        growth.first().map(|&(y, _)| y).unwrap_or(0),
        growth.last().map(|&(y, _)| y).unwrap_or(0),
        if last > first * 5 {
            "monotone growth reproduced (paper: steady rise to >120/yr by 2022)"
        } else {
            "UNEXPECTED: growth not reproduced"
        }
    );
}

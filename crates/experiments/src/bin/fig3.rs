//! Figure 3 — the lifetime of refcounting bugs: introduced-version to
//! fixed-version lines, sorted by introduction time, plus Findings 4–5
//! (75.7% need over a year; 19 live >10 years; 23 span v2.6 → v5/v6).

use refminer::dataset::{compare, LifetimeStats, PAPER};
use refminer::report::series_plot;
use refminer_experiments::{header, standard_bugs};

fn main() {
    let bugs = standard_bugs();
    let life = LifetimeStats::compute(&bugs);

    header("Figure 3: bug lifetimes (x = bug index sorted by intro year; y = year)");
    let intro: Vec<(f64, f64)> = life
        .lines
        .iter()
        .enumerate()
        .map(|(i, &(iy, _))| (i as f64, iy as f64))
        .collect();
    let fixed: Vec<(f64, f64)> = life
        .lines
        .iter()
        .enumerate()
        .map(|(i, &(_, fy))| (i as f64, fy as f64))
        .collect();
    print!(
        "{}",
        series_plot(&[("introduced", intro), ("fixed", fixed)], 64, 16)
    );

    header("Findings 4 & 5 comparison (Fixes-tagged subset)");
    println!(
        "{}",
        compare("tagged bugs", PAPER.tagged as f64, life.tagged as f64)
    );
    println!(
        "{}",
        compare(
            "fixed after >1 year",
            PAPER.over_one_year as f64,
            life.over_one_year as f64
        )
    );
    println!(
        "{}",
        compare(
            "lived >10 years",
            PAPER.over_ten_years as f64,
            life.over_ten_years as f64
        )
    );
    println!(
        "{}",
        compare(
            "v2.6-era bugs alive in v5/v6",
            PAPER.ancient as f64,
            life.ancient as f64
        )
    );
    println!(
        "{}",
        compare(
            "span v4.x -> v5.x",
            PAPER.span_v4_v5 as f64,
            life.span(4, 5) as f64
        )
    );
    println!(
        "{}",
        compare(
            "span v3.x -> v5.x",
            PAPER.span_v3_v5 as f64,
            life.span(3, 5) as f64
        )
    );
    println!(
        "{}",
        compare(
            "within v5.x",
            PAPER.within_v5 as f64,
            life.span(5, 5) as f64
        )
    );
}

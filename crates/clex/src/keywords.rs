//! The C keyword table, extended with a handful of kernel ubiquities.

/// Reserved words recognized by the lexer.
///
/// Besides ISO C keywords this includes a few words that appear so often
/// in kernel sources that treating them as plain identifiers would burden
/// every downstream consumer (`inline`, `__inline__`, `typeof`, ...).
/// GCC attribute spellings are deliberately *not* keywords; the parser
/// skips `__attribute__((..))` groups syntactically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Keyword {
    Auto,
    Break,
    Case,
    Char,
    Const,
    Continue,
    Default,
    Do,
    Double,
    Else,
    Enum,
    Extern,
    Float,
    For,
    Goto,
    If,
    Inline,
    Int,
    Long,
    Register,
    Restrict,
    Return,
    Short,
    Signed,
    Sizeof,
    Static,
    Struct,
    Switch,
    Typedef,
    Typeof,
    Union,
    Unsigned,
    Void,
    Volatile,
    While,
    /// `_Bool` / `bool`.
    Bool,
}

impl Keyword {
    /// Looks up an identifier in the keyword table.
    ///
    /// Not the `FromStr` trait: lookup failure is an ordinary outcome
    /// (the identifier is just not a keyword), not an error.
    #[allow(clippy::should_implement_trait)]
    pub fn from_str(s: &str) -> Option<Keyword> {
        use Keyword::*;
        Some(match s {
            "auto" => Auto,
            "break" => Break,
            "case" => Case,
            "char" => Char,
            "const" | "__const" | "__const__" => Const,
            "continue" => Continue,
            "default" => Default,
            "do" => Do,
            "double" => Double,
            "else" => Else,
            "enum" => Enum,
            "extern" => Extern,
            "float" => Float,
            "for" => For,
            "goto" => Goto,
            "if" => If,
            "inline" | "__inline" | "__inline__" | "__always_inline" => Inline,
            "int" => Int,
            "long" => Long,
            "register" => Register,
            "restrict" | "__restrict" | "__restrict__" => Restrict,
            "return" => Return,
            "short" => Short,
            "signed" | "__signed__" => Signed,
            "sizeof" => Sizeof,
            "static" => Static,
            "struct" => Struct,
            "switch" => Switch,
            "typedef" => Typedef,
            "typeof" | "__typeof__" | "__typeof" => Typeof,
            "union" => Union,
            "unsigned" => Unsigned,
            "void" => Void,
            "volatile" | "__volatile__" => Volatile,
            "while" => While,
            "_Bool" | "bool" => Bool,
            _ => return None,
        })
    }

    /// Whether the keyword can begin a type name.
    pub fn is_type_start(&self) -> bool {
        use Keyword::*;
        matches!(
            self,
            Char | Const
                | Double
                | Enum
                | Float
                | Int
                | Long
                | Short
                | Signed
                | Struct
                | Typeof
                | Union
                | Unsigned
                | Void
                | Volatile
                | Bool
        )
    }

    /// Whether the keyword is a declaration specifier (storage class or
    /// qualifier) that can precede a type.
    pub fn is_decl_specifier(&self) -> bool {
        use Keyword::*;
        self.is_type_start()
            || matches!(
                self,
                Auto | Extern | Inline | Register | Restrict | Static | Typedef
            )
    }

    /// Canonical spelling (the ISO one, not the gcc aliases).
    pub fn as_str(&self) -> &'static str {
        use Keyword::*;
        match self {
            Auto => "auto",
            Break => "break",
            Case => "case",
            Char => "char",
            Const => "const",
            Continue => "continue",
            Default => "default",
            Do => "do",
            Double => "double",
            Else => "else",
            Enum => "enum",
            Extern => "extern",
            Float => "float",
            For => "for",
            Goto => "goto",
            If => "if",
            Inline => "inline",
            Int => "int",
            Long => "long",
            Register => "register",
            Restrict => "restrict",
            Return => "return",
            Short => "short",
            Signed => "signed",
            Sizeof => "sizeof",
            Static => "static",
            Struct => "struct",
            Switch => "switch",
            Typedef => "typedef",
            Typeof => "typeof",
            Union => "union",
            Unsigned => "unsigned",
            Void => "void",
            Volatile => "volatile",
            While => "while",
            Bool => "bool",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recognizes_iso_keywords() {
        assert_eq!(Keyword::from_str("return"), Some(Keyword::Return));
        assert_eq!(Keyword::from_str("while"), Some(Keyword::While));
        assert_eq!(Keyword::from_str("not_a_keyword"), None);
    }

    #[test]
    fn recognizes_gcc_aliases() {
        assert_eq!(Keyword::from_str("__inline__"), Some(Keyword::Inline));
        assert_eq!(Keyword::from_str("__typeof__"), Some(Keyword::Typeof));
        assert_eq!(Keyword::from_str("__const"), Some(Keyword::Const));
    }

    #[test]
    fn type_start_classification() {
        assert!(Keyword::Struct.is_type_start());
        assert!(Keyword::Unsigned.is_type_start());
        assert!(!Keyword::Return.is_type_start());
        assert!(Keyword::Static.is_decl_specifier());
        assert!(!Keyword::Break.is_decl_specifier());
    }
}

//! # refminer-clex
//!
//! A lossless, error-tolerant lexer for kernel-style C.
//!
//! This is the bottom layer of the `refminer` static-analysis stack
//! (reproducing the SOSP '23 refcounting-bug study). The paper's checkers
//! process the entire Linux tree *without* compiling it — so this lexer
//! never requires include resolution or a working preprocessor: it keeps
//! directives as opaque logical lines, recovers from stray bytes, and
//! tracks exact source spans on every token.
//!
//! Three pieces make up the public surface:
//!
//! - [`Lexer`] — the token stream itself;
//! - [`Token`]/[`TokenKind`]/[`Punct`]/[`Keyword`] — the token model;
//! - [`scan_defines`]/[`MacroDef`] — structured `#define` scanning used
//!   to discover smartloop macros (`for_each_*`) per the paper's §6.1.
//!
//! # Examples
//!
//! ```
//! use refminer_clex::{Lexer, TokenKind};
//!
//! let toks = Lexer::new("ret = pm_runtime_get_sync(dev);").tokenize();
//! let names: Vec<_> = toks.iter().filter_map(|t| t.ident()).collect();
//! assert!(names.contains(&"pm_runtime_get_sync"));
//! ```

mod defines;
mod error;
mod keywords;
mod lexer;
mod token;

pub use defines::{scan_defines, MacroDef};
pub use error::LexError;
pub use keywords::Keyword;
pub use lexer::{LexOptions, Lexer};
pub use token::{PpKind, Punct, Span, Symbol, Token, TokenKind};

//! Recoverable lexing errors.

use std::fmt;

/// An error encountered while lexing.
///
/// The lexer never aborts on these; it records them and continues, so a
/// single stray byte in a 20-MLoC tree does not lose a whole file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LexError {
    /// A byte that cannot begin any token.
    UnexpectedByte {
        /// The offending byte.
        byte: u8,
        /// 1-based line.
        line: u32,
        /// 1-based column.
        col: u32,
    },
    /// A `/* ... ` comment missing its closing `*/`.
    UnterminatedComment {
        /// 1-based line.
        line: u32,
        /// 1-based column.
        col: u32,
    },
    /// A string literal missing its closing quote.
    UnterminatedString {
        /// 1-based line.
        line: u32,
        /// 1-based column.
        col: u32,
    },
    /// A character literal missing its closing quote.
    UnterminatedChar {
        /// 1-based line.
        line: u32,
        /// 1-based column.
        col: u32,
    },
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LexError::UnexpectedByte { byte, line, col } => {
                write!(f, "{line}:{col}: unexpected byte 0x{byte:02x}")
            }
            LexError::UnterminatedComment { line, col } => {
                write!(f, "{line}:{col}: unterminated block comment")
            }
            LexError::UnterminatedString { line, col } => {
                write!(f, "{line}:{col}: unterminated string literal")
            }
            LexError::UnterminatedChar { line, col } => {
                write!(f, "{line}:{col}: unterminated character literal")
            }
        }
    }
}

impl std::error::Error for LexError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_position() {
        let e = LexError::UnexpectedByte {
            byte: b'@',
            line: 3,
            col: 7,
        };
        assert_eq!(e.to_string(), "3:7: unexpected byte 0x40");
    }
}

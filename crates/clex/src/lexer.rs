//! The lexer proper: turns C source text into a token stream.

use std::collections::HashSet;

use crate::error::LexError;
use crate::keywords::Keyword;
use crate::token::{PpKind, Punct, Span, Symbol, Token, TokenKind};

/// Configuration for a [`Lexer`].
#[derive(Debug, Clone, Copy)]
pub struct LexOptions {
    /// Emit [`TokenKind::Comment`] tokens instead of discarding comments.
    pub keep_comments: bool,
    /// Emit [`TokenKind::PpDirective`] tokens instead of discarding
    /// preprocessor lines.
    pub keep_preprocessor: bool,
}

impl Default for LexOptions {
    fn default() -> Self {
        LexOptions {
            keep_comments: false,
            keep_preprocessor: true,
        }
    }
}

/// A streaming lexer over a single source file.
///
/// The lexer is lossless with respect to positions: every token carries a
/// [`Span`] into the original text. It never fails hard — unexpected bytes
/// are reported through [`Lexer::errors`] and skipped, so downstream
/// consumers always receive a best-effort token stream (the same
/// error-tolerance philosophy the paper needed to process a tree that
/// cannot be compiled whole).
///
/// # Examples
///
/// ```
/// use refminer_clex::{Lexer, TokenKind};
///
/// let tokens = Lexer::new("int x = 42;").tokenize();
/// assert_eq!(tokens.len(), 5);
/// assert!(matches!(tokens[0].kind, TokenKind::Keyword(_)));
/// ```
pub struct Lexer<'a> {
    src: &'a [u8],
    text: &'a str,
    pos: usize,
    line: u32,
    col: u32,
    opts: LexOptions,
    errors: Vec<LexError>,
    /// Per-file identifier interner: one allocation per distinct
    /// spelling; every further occurrence is a refcount bump.
    interner: HashSet<Symbol>,
}

impl<'a> Lexer<'a> {
    /// Creates a lexer with default options.
    pub fn new(text: &'a str) -> Self {
        Self::with_options(text, LexOptions::default())
    }

    /// Creates a lexer with explicit options.
    pub fn with_options(text: &'a str, opts: LexOptions) -> Self {
        Lexer {
            src: text.as_bytes(),
            text,
            pos: 0,
            line: 1,
            col: 1,
            opts,
            errors: Vec::new(),
            interner: HashSet::new(),
        }
    }

    /// Returns the interned form of `text`, allocating only on the
    /// first occurrence per file.
    fn intern(&mut self, text: &str) -> Symbol {
        if let Some(s) = self.interner.get(text) {
            s.clone()
        } else {
            let s: Symbol = Symbol::from(text);
            self.interner.insert(s.clone());
            s
        }
    }

    /// Lexes the whole input, returning the tokens.
    pub fn tokenize(mut self) -> Vec<Token> {
        let mut out = Vec::new();
        while let Some(tok) = self.next_token() {
            out.push(tok);
        }
        out
    }

    /// Lexes the whole input, returning tokens and any recovered errors.
    pub fn tokenize_with_errors(mut self) -> (Vec<Token>, Vec<LexError>) {
        let mut out = Vec::new();
        while let Some(tok) = self.next_token() {
            out.push(tok);
        }
        (out, self.errors)
    }

    /// Lexes at most `max_tokens` tokens — the resource guard the audit
    /// pipeline uses against pathological inputs (macro bombs, binary
    /// garbage that lexes to endless one-byte tokens). The final `bool`
    /// reports whether the input was truncated at the cap.
    pub fn tokenize_limited(mut self, max_tokens: usize) -> (Vec<Token>, Vec<LexError>, bool) {
        let mut out = Vec::new();
        while let Some(tok) = self.next_token() {
            out.push(tok);
            if out.len() >= max_tokens {
                let truncated = {
                    // Anything left beyond whitespace means we cut off.
                    self.skip_whitespace();
                    self.peek().is_some()
                };
                return (out, self.errors, truncated);
            }
        }
        (out, self.errors, false)
    }

    /// Errors recovered so far.
    pub fn errors(&self) -> &[LexError] {
        &self.errors
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek_at(&self, off: usize) -> Option<u8> {
        self.src.get(self.pos + off).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn span_from(&self, start: usize, line: u32, col: u32) -> Span {
        Span {
            start: start as u32,
            end: self.pos as u32,
            line,
            col,
        }
    }

    fn skip_whitespace(&mut self) {
        while let Some(b) = self.peek() {
            match b {
                b' ' | b'\t' | b'\r' | b'\n' | 0x0b | 0x0c => {
                    self.bump();
                }
                // A lone backslash-newline (line continuation outside a
                // directive) is whitespace for our purposes.
                b'\\' if matches!(self.peek_at(1), Some(b'\n') | Some(b'\r')) => {
                    self.bump();
                    if self.peek() == Some(b'\r') {
                        self.bump();
                    }
                    if self.peek() == Some(b'\n') {
                        self.bump();
                    }
                }
                _ => break,
            }
        }
    }

    /// Returns the next token, or `None` at end of input.
    pub fn next_token(&mut self) -> Option<Token> {
        loop {
            self.skip_whitespace();
            let start = self.pos;
            let (line, col) = (self.line, self.col);
            let b = self.peek()?;

            // Comments.
            if b == b'/' && self.peek_at(1) == Some(b'/') {
                while let Some(c) = self.peek() {
                    if c == b'\n' {
                        break;
                    }
                    self.bump();
                }
                if self.opts.keep_comments {
                    let text = self.text[start..self.pos].to_string();
                    return Some(Token {
                        kind: TokenKind::Comment(text),
                        span: self.span_from(start, line, col),
                    });
                }
                continue;
            }
            if b == b'/' && self.peek_at(1) == Some(b'*') {
                self.bump();
                self.bump();
                loop {
                    match self.peek() {
                        None => {
                            self.errors
                                .push(LexError::UnterminatedComment { line, col });
                            break;
                        }
                        Some(b'*') if self.peek_at(1) == Some(b'/') => {
                            self.bump();
                            self.bump();
                            break;
                        }
                        _ => {
                            self.bump();
                        }
                    }
                }
                if self.opts.keep_comments {
                    let text = self.text[start..self.pos].to_string();
                    return Some(Token {
                        kind: TokenKind::Comment(text),
                        span: self.span_from(start, line, col),
                    });
                }
                continue;
            }

            // Preprocessor directives (only when `#` is the first
            // non-whitespace byte of the line, which `col` tracks after
            // whitespace skipping well enough for kernel style).
            if b == b'#' {
                let tok = self.lex_pp_line(start, line, col);
                if self.opts.keep_preprocessor {
                    return Some(tok);
                }
                continue;
            }

            match self.lex_normal(start, line, col) {
                Some(tok) => return Some(tok),
                // A stray byte was consumed and recorded; keep scanning
                // from the next byte (loop, not recursion, so a run of
                // garbage bytes cannot overflow the stack).
                None => continue,
            }
        }
    }

    /// Consumes a whole preprocessor logical line (splicing backslash
    /// continuations) and classifies the directive.
    fn lex_pp_line(&mut self, start: usize, line: u32, col: u32) -> Token {
        let mut raw = String::new();
        loop {
            match self.peek() {
                None => break,
                Some(b'\\') => {
                    // Continuation: splice out backslash-newline.
                    if matches!(self.peek_at(1), Some(b'\n') | Some(b'\r')) {
                        self.bump();
                        if self.peek() == Some(b'\r') {
                            self.bump();
                        }
                        if self.peek() == Some(b'\n') {
                            self.bump();
                        }
                        raw.push(' ');
                    } else {
                        raw.push('\\');
                        self.bump();
                    }
                }
                Some(b'\n') => break,
                // Block comment inside a directive: skip it so `raw`
                // stays a clean logical line.
                Some(b'/') if self.peek_at(1) == Some(b'*') => {
                    self.bump();
                    self.bump();
                    while let Some(c) = self.peek() {
                        if c == b'*' && self.peek_at(1) == Some(b'/') {
                            self.bump();
                            self.bump();
                            break;
                        }
                        self.bump();
                    }
                    raw.push(' ');
                }
                Some(b'/') if self.peek_at(1) == Some(b'/') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some(c) => {
                    raw.push(c as char);
                    self.bump();
                }
            }
        }
        let body = raw.trim_start_matches('#').trim_start();
        let kind = if body.starts_with("include") {
            PpKind::Include
        } else if body.starts_with("define") {
            PpKind::Define
        } else if body.starts_with("undef") {
            PpKind::Undef
        } else if body.starts_with("if") {
            PpKind::If
        } else if body.starts_with("el") {
            PpKind::Else
        } else if body.starts_with("endif") {
            PpKind::Endif
        } else if body.starts_with("pragma") {
            PpKind::Pragma
        } else {
            PpKind::Other
        };
        Token {
            kind: TokenKind::PpDirective { kind, raw },
            span: self.span_from(start, line, col),
        }
    }

    /// Lexes one non-directive token. Returns `None` after consuming a
    /// stray byte (recorded in `errors`) so the caller's loop retries.
    fn lex_normal(&mut self, start: usize, line: u32, col: u32) -> Option<Token> {
        let b = self.peek()?;
        // Wide string/char literals must be checked before identifiers,
        // since `L` is also a valid identifier start.
        if (b == b'L' || b == b'u' || b == b'U')
            && matches!(self.peek_at(1), Some(b'"') | Some(b'\''))
        {
            self.bump();
            return Some(if self.peek() == Some(b'"') {
                self.lex_string(start, line, col)
            } else {
                self.lex_char(start, line, col)
            });
        }
        if b.is_ascii_alphabetic() || b == b'_' || b == b'$' {
            return Some(self.lex_ident(start, line, col));
        }
        if b.is_ascii_digit() || (b == b'.' && self.peek_at(1).is_some_and(|c| c.is_ascii_digit()))
        {
            return Some(self.lex_number(start, line, col));
        }
        if b == b'"' {
            return Some(self.lex_string(start, line, col));
        }
        if b == b'\'' {
            return Some(self.lex_char(start, line, col));
        }
        self.lex_punct(start, line, col)
    }

    fn lex_ident(&mut self, start: usize, line: u32, col: u32) -> Token {
        while let Some(b) = self.peek() {
            if b.is_ascii_alphanumeric() || b == b'_' || b == b'$' {
                self.bump();
            } else {
                break;
            }
        }
        // `self.text` is a `&'a str`; copying the reference out lets
        // the slice outlive the `&mut self` call into the interner.
        let full: &str = self.text;
        let text = &full[start..self.pos];
        let kind = match Keyword::from_str(text) {
            Some(k) => TokenKind::Keyword(k),
            None => TokenKind::Ident(self.intern(text)),
        };
        Token {
            kind,
            span: self.span_from(start, line, col),
        }
    }

    fn lex_number(&mut self, start: usize, line: u32, col: u32) -> Token {
        let mut is_float = false;
        // Hex / binary / octal prefix.
        if self.peek() == Some(b'0')
            && matches!(
                self.peek_at(1),
                Some(b'x') | Some(b'X') | Some(b'b') | Some(b'B')
            )
        {
            self.bump();
            self.bump();
            while let Some(b) = self.peek() {
                if b.is_ascii_hexdigit() {
                    self.bump();
                } else {
                    break;
                }
            }
        } else {
            while let Some(b) = self.peek() {
                match b {
                    b'0'..=b'9' => {
                        self.bump();
                    }
                    b'.' => {
                        is_float = true;
                        self.bump();
                    }
                    b'e' | b'E' => {
                        // Exponent only if followed by digit or sign.
                        match self.peek_at(1) {
                            Some(c) if c.is_ascii_digit() || c == b'+' || c == b'-' => {
                                is_float = true;
                                self.bump();
                                self.bump();
                            }
                            _ => break,
                        }
                    }
                    _ => break,
                }
            }
        }
        // Suffixes: u, l, ll, f, ull, etc.
        while let Some(b) = self.peek() {
            match b {
                b'u' | b'U' | b'l' | b'L' => {
                    self.bump();
                }
                b'f' | b'F' if is_float => {
                    self.bump();
                }
                _ => break,
            }
        }
        let raw = self.text[start..self.pos].to_string();
        let span = self.span_from(start, line, col);
        if is_float {
            return Token {
                kind: TokenKind::FloatLit(raw),
                span,
            };
        }
        let digits = raw.trim_end_matches(['u', 'U', 'l', 'L']);
        let value = if let Some(hex) = digits
            .strip_prefix("0x")
            .or_else(|| digits.strip_prefix("0X"))
        {
            i64::from_str_radix(hex, 16).unwrap_or(i64::MAX)
        } else if let Some(bin) = digits
            .strip_prefix("0b")
            .or_else(|| digits.strip_prefix("0B"))
        {
            i64::from_str_radix(bin, 2).unwrap_or(i64::MAX)
        } else if digits.len() > 1 && digits.starts_with('0') {
            i64::from_str_radix(&digits[1..], 8).unwrap_or(i64::MAX)
        } else {
            digits.parse::<i64>().unwrap_or(i64::MAX)
        };
        Token {
            kind: TokenKind::IntLit { value, raw },
            span,
        }
    }

    fn lex_string(&mut self, start: usize, line: u32, col: u32) -> Token {
        self.bump(); // Opening quote.
        let body_start = self.pos;
        loop {
            match self.peek() {
                None | Some(b'\n') => {
                    self.errors.push(LexError::UnterminatedString { line, col });
                    break;
                }
                Some(b'\\') => {
                    self.bump();
                    self.bump();
                }
                Some(b'"') => break,
                _ => {
                    self.bump();
                }
            }
        }
        let body = self.text[body_start..self.pos].to_string();
        if self.peek() == Some(b'"') {
            self.bump();
        }
        Token {
            kind: TokenKind::StrLit(body),
            span: self.span_from(start, line, col),
        }
    }

    fn lex_char(&mut self, start: usize, line: u32, col: u32) -> Token {
        self.bump(); // Opening quote.
        let body_start = self.pos;
        loop {
            match self.peek() {
                None | Some(b'\n') => {
                    self.errors.push(LexError::UnterminatedChar { line, col });
                    break;
                }
                Some(b'\\') => {
                    self.bump();
                    self.bump();
                }
                Some(b'\'') => break,
                _ => {
                    self.bump();
                }
            }
        }
        let body = self.text[body_start..self.pos].to_string();
        if self.peek() == Some(b'\'') {
            self.bump();
        }
        Token {
            kind: TokenKind::CharLit(body),
            span: self.span_from(start, line, col),
        }
    }

    fn lex_punct(&mut self, start: usize, line: u32, col: u32) -> Option<Token> {
        use Punct::*;
        let b = self.bump()?;
        let b1 = self.peek();
        let b2 = self.peek_at(1);
        let mut take = |n: usize, p: Punct| {
            for _ in 0..n {
                self.bump();
            }
            p
        };
        let p = match b {
            b'(' => LParen,
            b')' => RParen,
            b'{' => LBrace,
            b'}' => RBrace,
            b'[' => LBracket,
            b']' => RBracket,
            b';' => Semi,
            b',' => Comma,
            b'?' => Question,
            b':' => Colon,
            b'~' => Tilde,
            b'.' => {
                if b1 == Some(b'.') && b2 == Some(b'.') {
                    take(2, Ellipsis)
                } else {
                    Dot
                }
            }
            b'-' => match b1 {
                Some(b'>') => take(1, Arrow),
                Some(b'-') => take(1, Dec),
                Some(b'=') => take(1, MinusAssign),
                _ => Minus,
            },
            b'+' => match b1 {
                Some(b'+') => take(1, Inc),
                Some(b'=') => take(1, PlusAssign),
                _ => Plus,
            },
            b'*' => match b1 {
                Some(b'=') => take(1, StarAssign),
                _ => Star,
            },
            b'/' => match b1 {
                Some(b'=') => take(1, SlashAssign),
                _ => Slash,
            },
            b'%' => match b1 {
                Some(b'=') => take(1, PercentAssign),
                _ => Percent,
            },
            b'=' => match b1 {
                Some(b'=') => take(1, Eq),
                _ => Assign,
            },
            b'!' => match b1 {
                Some(b'=') => take(1, Ne),
                _ => Not,
            },
            b'<' => match (b1, b2) {
                (Some(b'<'), Some(b'=')) => take(2, ShlAssign),
                (Some(b'<'), _) => take(1, Shl),
                (Some(b'='), _) => take(1, Le),
                _ => Lt,
            },
            b'>' => match (b1, b2) {
                (Some(b'>'), Some(b'=')) => take(2, ShrAssign),
                (Some(b'>'), _) => take(1, Shr),
                (Some(b'='), _) => take(1, Ge),
                _ => Gt,
            },
            b'&' => match b1 {
                Some(b'&') => take(1, AndAnd),
                Some(b'=') => take(1, AmpAssign),
                _ => Amp,
            },
            b'|' => match b1 {
                Some(b'|') => take(1, OrOr),
                Some(b'=') => take(1, PipeAssign),
                _ => Pipe,
            },
            b'^' => match b1 {
                Some(b'=') => take(1, CaretAssign),
                _ => Caret,
            },
            other => {
                self.errors.push(LexError::UnexpectedByte {
                    byte: other,
                    line,
                    col,
                });
                // The byte is already consumed; tell the caller to keep
                // scanning. (This used to recurse into `next_token`,
                // which let a long run of garbage bytes overflow the
                // stack.)
                return None;
            }
        };
        Some(Token {
            kind: TokenKind::Punct(p),
            span: self.span_from(start, line, col),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        Lexer::new(src)
            .tokenize()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn lexes_simple_declaration() {
        let k = kinds("int x = 42;");
        assert_eq!(k.len(), 5);
        assert!(k[0].is_keyword(Keyword::Int));
        assert_eq!(k[1].ident(), Some("x"));
        assert!(k[2].is_punct(Punct::Assign));
        assert!(matches!(k[3], TokenKind::IntLit { value: 42, .. }));
        assert!(k[4].is_punct(Punct::Semi));
    }

    #[test]
    fn lexes_arrow_and_deref() {
        let k = kinds("dev->refcount");
        assert_eq!(k.len(), 3);
        assert!(k[1].is_punct(Punct::Arrow));
    }

    #[test]
    fn skips_comments_by_default() {
        let k = kinds("a /* comment */ b // trailing\nc");
        assert_eq!(k.len(), 3);
        assert_eq!(k[0].ident(), Some("a"));
        assert_eq!(k[2].ident(), Some("c"));
    }

    #[test]
    fn keeps_comments_when_asked() {
        let opts = LexOptions {
            keep_comments: true,
            keep_preprocessor: true,
        };
        let toks = Lexer::with_options("a /* c */ b", opts).tokenize();
        assert_eq!(toks.len(), 3);
        assert!(matches!(toks[1].kind, TokenKind::Comment(_)));
    }

    #[test]
    fn lexes_hex_and_octal() {
        let k = kinds("0x1f 017 0b101");
        assert!(matches!(k[0], TokenKind::IntLit { value: 31, .. }));
        assert!(matches!(k[1], TokenKind::IntLit { value: 15, .. }));
        assert!(matches!(k[2], TokenKind::IntLit { value: 5, .. }));
    }

    #[test]
    fn lexes_suffixed_integers() {
        let k = kinds("10UL 3ull");
        assert!(matches!(k[0], TokenKind::IntLit { value: 10, .. }));
        assert!(matches!(k[1], TokenKind::IntLit { value: 3, .. }));
    }

    #[test]
    fn lexes_floats() {
        let k = kinds("1.5 2e10 .25f");
        assert!(matches!(k[0], TokenKind::FloatLit(_)));
        assert!(matches!(k[1], TokenKind::FloatLit(_)));
        assert!(matches!(k[2], TokenKind::FloatLit(_)));
    }

    #[test]
    fn lexes_strings_with_escapes() {
        let k = kinds(r#""hello \"world\"""#);
        match &k[0] {
            TokenKind::StrLit(s) => assert_eq!(s, r#"hello \"world\""#),
            other => panic!("expected string, got {other:?}"),
        }
    }

    #[test]
    fn lexes_char_literals() {
        let k = kinds(r"'a' '\n'");
        assert!(matches!(&k[0], TokenKind::CharLit(s) if s == "a"));
        assert!(matches!(&k[1], TokenKind::CharLit(s) if s == r"\n"));
    }

    #[test]
    fn pp_define_with_continuation_is_one_token() {
        let src = "#define for_each_node(n) \\\n  for (n = first(); n; n = next(n))\nint x;";
        let toks = Lexer::new(src).tokenize();
        match &toks[0].kind {
            TokenKind::PpDirective { kind, raw } => {
                assert_eq!(*kind, PpKind::Define);
                assert!(raw.contains("for_each_node"));
                assert!(raw.contains("next(n)"));
                assert!(!raw.contains('\\'));
            }
            other => panic!("expected directive, got {other:?}"),
        }
        assert!(toks[1].kind.is_keyword(Keyword::Int));
    }

    #[test]
    fn pp_kinds_classified() {
        let classify = |src: &str| match &Lexer::new(src).tokenize()[0].kind {
            TokenKind::PpDirective { kind, .. } => *kind,
            _ => panic!("not a directive"),
        };
        assert_eq!(classify("#include <linux/of.h>"), PpKind::Include);
        assert_eq!(classify("#ifdef CONFIG_OF"), PpKind::If);
        assert_eq!(classify("#else"), PpKind::Else);
        assert_eq!(classify("#endif"), PpKind::Endif);
        assert_eq!(classify("#pragma once"), PpKind::Pragma);
    }

    #[test]
    fn spans_track_lines() {
        let toks = Lexer::new("a\n  b").tokenize();
        assert_eq!(toks[0].span.line, 1);
        assert_eq!(toks[1].span.line, 2);
        assert_eq!(toks[1].span.col, 3);
    }

    #[test]
    fn three_char_operators() {
        let k = kinds("a <<= b >>= c");
        assert!(k[1].is_punct(Punct::ShlAssign));
        assert!(k[3].is_punct(Punct::ShrAssign));
    }

    #[test]
    fn ellipsis_vs_dot() {
        let k = kinds("f(a, ...) s.x");
        assert!(k.iter().any(|t| t.is_punct(Punct::Ellipsis)));
        assert!(k.iter().any(|t| t.is_punct(Punct::Dot)));
    }

    #[test]
    fn recovers_from_stray_bytes() {
        let (toks, errs) = Lexer::new("int @ x;").tokenize_with_errors();
        assert_eq!(errs.len(), 1);
        assert_eq!(toks.len(), 3);
        assert_eq!(toks[1].ident(), Some("x"));
    }

    #[test]
    fn long_garbage_runs_lex_without_overflow() {
        // A run of stray bytes used to recurse once per byte; 1 MiB of
        // them must now lex flat (loop) with one error per byte.
        let src = "@".repeat(1 << 20);
        let (toks, errs) = Lexer::new(&src).tokenize_with_errors();
        assert!(toks.is_empty());
        assert_eq!(errs.len(), 1 << 20);
    }

    #[test]
    fn token_cap_truncates_and_reports() {
        let src = "a b c d e f g h";
        let (toks, _errs, truncated) = Lexer::new(src).tokenize_limited(3);
        assert_eq!(toks.len(), 3);
        assert!(truncated);
        let (toks, _errs, truncated) = Lexer::new(src).tokenize_limited(100);
        assert_eq!(toks.len(), 8);
        assert!(!truncated);
    }

    #[test]
    fn unterminated_string_reports_error() {
        let (_, errs) = Lexer::new("\"abc\nint x;").tokenize_with_errors();
        assert!(matches!(errs[0], LexError::UnterminatedString { .. }));
    }

    #[test]
    fn wide_string_literal() {
        let k = kinds("L\"wide\"");
        assert!(matches!(&k[0], TokenKind::StrLit(s) if s == "wide"));
    }

    #[test]
    fn kernel_snippet_round_trip() {
        let src = r#"
static int stm32_crc_remove(struct platform_device *pdev)
{
        int ret = pm_runtime_get_sync(crc->dev);
        if (ret < 0)
                return ret;
}
"#;
        let toks = Lexer::new(src).tokenize();
        assert!(toks
            .iter()
            .any(|t| t.ident() == Some("pm_runtime_get_sync")));
        assert!(toks.iter().any(|t| t.kind.is_keyword(Keyword::Return)));
    }
}

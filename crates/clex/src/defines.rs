//! Structured scanning of `#define` directives.
//!
//! The paper's "lexer parsing" stage (§6.1) extracts macro-defined
//! *smartloops* — `for_each_*` macros whose expansion hides refcounting
//! operations — directly from preprocessor lines, without expanding them.
//! This module provides that capability: it parses a `#define` logical
//! line into name, parameter list and body text.

use crate::token::{PpKind, TokenKind};
use crate::Lexer;

/// A parsed `#define` directive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MacroDef {
    /// The macro name.
    pub name: String,
    /// Parameter names for function-like macros; `None` for object-like.
    pub params: Option<Vec<String>>,
    /// The replacement text, whitespace-normalized.
    pub body: String,
    /// 1-based line where the directive starts.
    pub line: u32,
}

impl MacroDef {
    /// Parses the raw text of a `#define` logical line.
    ///
    /// Returns `None` if the line is not a well-formed define.
    ///
    /// # Examples
    ///
    /// ```
    /// use refminer_clex::MacroDef;
    ///
    /// let m = MacroDef::parse("#define MAX(a, b) ((a) > (b) ? (a) : (b))", 1).unwrap();
    /// assert_eq!(m.name, "MAX");
    /// assert_eq!(m.params.as_deref(), Some(&["a".to_string(), "b".to_string()][..]));
    /// ```
    pub fn parse(raw: &str, line: u32) -> Option<MacroDef> {
        let rest = raw.trim_start().strip_prefix('#')?.trim_start();
        let rest = rest.strip_prefix("define")?;
        // Require whitespace after `define` so `#defined` is rejected.
        let rest = rest.strip_prefix(|c: char| c.is_whitespace())?.trim_start();
        let name_end = rest
            .find(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
            .unwrap_or(rest.len());
        if name_end == 0 {
            return None;
        }
        let name = rest[..name_end].to_string();
        let after = &rest[name_end..];
        // Function-like only when `(` immediately follows the name.
        if let Some(parm_text) = after.strip_prefix('(') {
            let close = find_matching_paren(parm_text)?;
            let params: Vec<String> = parm_text[..close]
                .split(',')
                .map(|p| p.trim().to_string())
                .filter(|p| !p.is_empty())
                .collect();
            let body = normalize_ws(&parm_text[close + 1..]);
            Some(MacroDef {
                name,
                params: Some(params),
                body,
                line,
            })
        } else {
            Some(MacroDef {
                name,
                params: None,
                body: normalize_ws(after),
                line,
            })
        }
    }

    /// Whether the macro looks like an iteration macro ("smartloop"):
    /// a function-like macro whose name contains a `for_each` stem and
    /// whose body begins with a `for` loop.
    pub fn is_loop_macro(&self) -> bool {
        if self.params.is_none() {
            return false;
        }
        let name_says_loop = self.name.contains("for_each") || self.name.starts_with("foreach");
        let body_is_for = self.body.starts_with("for ") || self.body.starts_with("for(");
        name_says_loop && body_is_for
    }

    /// Function names called inside the macro body, in textual order.
    ///
    /// Used by the discovery stage to see which (possibly refcounting)
    /// APIs a smartloop expansion invokes.
    pub fn called_functions(&self) -> Vec<String> {
        let toks = Lexer::new(&self.body).tokenize();
        let mut out = Vec::new();
        for w in toks.windows(2) {
            if let (TokenKind::Ident(name), kind) = (&w[0].kind, &w[1].kind) {
                if kind.is_punct(crate::Punct::LParen) {
                    out.push(name.to_string());
                }
            }
        }
        out
    }
}

/// Scans a whole source text for `#define` directives.
///
/// # Examples
///
/// ```
/// use refminer_clex::scan_defines;
///
/// let src = "#define A 1\nint x;\n#define F(y) (y+1)\n";
/// let defs = scan_defines(src);
/// assert_eq!(defs.len(), 2);
/// assert_eq!(defs[1].name, "F");
/// ```
pub fn scan_defines(src: &str) -> Vec<MacroDef> {
    let toks = Lexer::new(src).tokenize();
    let mut out = Vec::new();
    for t in toks {
        if let TokenKind::PpDirective {
            kind: PpKind::Define,
            raw,
        } = &t.kind
        {
            if let Some(def) = MacroDef::parse(raw, t.span.line) {
                out.push(def);
            }
        }
    }
    out
}

/// Finds the index of the `)` matching the `(` that precedes `text`.
fn find_matching_paren(text: &str) -> Option<usize> {
    let mut depth = 1usize;
    for (i, c) in text.char_indices() {
        match c {
            '(' => depth += 1,
            ')' => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

/// Collapses runs of whitespace to single spaces and trims the ends.
fn normalize_ws(s: &str) -> String {
    s.split_whitespace().collect::<Vec<_>>().join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_object_like() {
        let m = MacroDef::parse("#define PAGE_SIZE 4096", 1).unwrap();
        assert_eq!(m.name, "PAGE_SIZE");
        assert!(m.params.is_none());
        assert_eq!(m.body, "4096");
    }

    #[test]
    fn parses_function_like() {
        let m = MacroDef::parse("#define MIN(a,b) ((a)<(b)?(a):(b))", 1).unwrap();
        assert_eq!(m.params.as_ref().unwrap().len(), 2);
    }

    #[test]
    fn parses_zero_arg_function_like() {
        let m = MacroDef::parse("#define NOW() jiffies", 1).unwrap();
        assert_eq!(m.params.as_deref(), Some(&[][..]));
    }

    #[test]
    fn rejects_non_define() {
        assert!(MacroDef::parse("#include <x.h>", 1).is_none());
        assert!(MacroDef::parse("not a directive", 1).is_none());
    }

    #[test]
    fn space_before_paren_means_object_like() {
        let m = MacroDef::parse("#define X (1+2)", 1).unwrap();
        assert!(m.params.is_none());
        assert_eq!(m.body, "(1+2)");
    }

    #[test]
    fn detects_smartloop() {
        let m = MacroDef::parse(
            "#define for_each_matching_node(dn, matches) \
             for (dn = of_find_matching_node(NULL, matches); dn; \
             dn = of_find_matching_node(dn, matches))",
            1,
        )
        .unwrap();
        assert!(m.is_loop_macro());
        let calls = m.called_functions();
        assert_eq!(calls[0], "of_find_matching_node");
    }

    #[test]
    fn non_loop_function_macro_is_not_smartloop() {
        let m = MacroDef::parse("#define GET(x) get_device(x)", 1).unwrap();
        assert!(!m.is_loop_macro());
        assert_eq!(m.called_functions(), vec!["get_device".to_string()]);
    }

    #[test]
    fn scan_over_multiline_source() {
        let src = "\
#define for_each_child_of_node(parent, child) \\
\tfor (child = of_get_next_child(parent, NULL); child != NULL; \\
\t     child = of_get_next_child(parent, child))
struct device_node;
";
        let defs = scan_defines(src);
        assert_eq!(defs.len(), 1);
        assert!(defs[0].is_loop_macro());
        assert!(defs[0]
            .called_functions()
            .contains(&"of_get_next_child".to_string()));
    }
}

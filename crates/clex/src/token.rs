//! Token and source-position types produced by the lexer.

use std::fmt;
use std::sync::Arc;

use crate::keywords::Keyword;

/// Interned identifier text.
///
/// Identifiers repeat heavily in C source (`dev`, `ret`, `np`, type
/// and field names), so the lexer interns them per file: one
/// allocation per *distinct* spelling instead of one per token.
/// Cloning a `Symbol` is a reference-count bump, which also makes
/// tokens cheap to copy around and safe to share across the audit
/// pipeline's worker threads. Keywords and punctuators never allocate
/// at all — they are enums with `&'static str` spellings.
pub type Symbol = Arc<str>;

/// A half-open byte range into the original source, with 1-based line and
/// column of the first byte.
///
/// Spans are cheap to copy and order naturally by start offset, which the
/// downstream graph layers use as a stand-in for execution order (the same
/// trick the paper uses with line numbers embedded in CPG nodes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Span {
    /// Byte offset of the first byte of the token.
    pub start: u32,
    /// Byte offset one past the last byte of the token.
    pub end: u32,
    /// 1-based line number of the first byte.
    pub line: u32,
    /// 1-based column (in bytes) of the first byte.
    pub col: u32,
}

impl Span {
    /// Returns a span covering both `self` and `other`.
    ///
    /// The resulting line/column are taken from whichever span starts
    /// first.
    pub fn join(self, other: Span) -> Span {
        let (first, _) = if self.start <= other.start {
            (self, other)
        } else {
            (other, self)
        };
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
            line: first.line,
            col: first.col,
        }
    }

    /// Length of the span in bytes.
    pub fn len(&self) -> usize {
        (self.end - self.start) as usize
    }

    /// Whether the span covers no bytes.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Punctuators and operators of the C language.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Punct {
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `->`
    Arrow,
    /// `...`
    Ellipsis,
    /// `?`
    Question,
    /// `:`
    Colon,
    /// `=`
    Assign,
    /// `+=`
    PlusAssign,
    /// `-=`
    MinusAssign,
    /// `*=`
    StarAssign,
    /// `/=`
    SlashAssign,
    /// `%=`
    PercentAssign,
    /// `&=`
    AmpAssign,
    /// `|=`
    PipeAssign,
    /// `^=`
    CaretAssign,
    /// `<<=`
    ShlAssign,
    /// `>>=`
    ShrAssign,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `++`
    Inc,
    /// `--`
    Dec,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `!`
    Not,
    /// `&`
    Amp,
    /// `|`
    Pipe,
    /// `^`
    Caret,
    /// `~`
    Tilde,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
}

impl Punct {
    /// The exact source text of this punctuator.
    pub fn as_str(&self) -> &'static str {
        use Punct::*;
        match self {
            LParen => "(",
            RParen => ")",
            LBrace => "{",
            RBrace => "}",
            LBracket => "[",
            RBracket => "]",
            Semi => ";",
            Comma => ",",
            Dot => ".",
            Arrow => "->",
            Ellipsis => "...",
            Question => "?",
            Colon => ":",
            Assign => "=",
            PlusAssign => "+=",
            MinusAssign => "-=",
            StarAssign => "*=",
            SlashAssign => "/=",
            PercentAssign => "%=",
            AmpAssign => "&=",
            PipeAssign => "|=",
            CaretAssign => "^=",
            ShlAssign => "<<=",
            ShrAssign => ">>=",
            Plus => "+",
            Minus => "-",
            Star => "*",
            Slash => "/",
            Percent => "%",
            Inc => "++",
            Dec => "--",
            Eq => "==",
            Ne => "!=",
            Lt => "<",
            Gt => ">",
            Le => "<=",
            Ge => ">=",
            AndAnd => "&&",
            OrOr => "||",
            Not => "!",
            Amp => "&",
            Pipe => "|",
            Caret => "^",
            Tilde => "~",
            Shl => "<<",
            Shr => ">>",
        }
    }
}

/// The different kinds of preprocessor directive the lexer recognizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PpKind {
    /// `#include`
    Include,
    /// `#define`
    Define,
    /// `#undef`
    Undef,
    /// `#if` / `#ifdef` / `#ifndef`
    If,
    /// `#elif` / `#else`
    Else,
    /// `#endif`
    Endif,
    /// `#pragma`
    Pragma,
    /// Any other directive (`#error`, `#line`, ...).
    Other,
}

/// The payload of a single token.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// An identifier that is not a keyword (interned; see [`Symbol`]).
    Ident(Symbol),
    /// A reserved word of C (plus a few ubiquitous kernel extensions).
    Keyword(Keyword),
    /// An integer literal; the raw text is kept alongside the decoded
    /// value so error codes like `0x80000000` survive faithfully.
    IntLit {
        /// Decoded value (saturating on overflow).
        value: i64,
        /// Raw source text, including any base prefix and suffixes.
        raw: String,
    },
    /// A floating-point literal (kept raw; the analyses never need the
    /// numeric value).
    FloatLit(String),
    /// A string literal, *without* the surrounding quotes and with escape
    /// sequences left as written.
    StrLit(String),
    /// A character literal, without the surrounding quotes.
    CharLit(String),
    /// A punctuator or operator.
    Punct(Punct),
    /// A whole preprocessor directive line (including continuations).
    ///
    /// The `raw` field holds the full logical line with the backslash
    /// continuations spliced out.
    PpDirective {
        /// Which directive this is.
        kind: PpKind,
        /// The full text of the logical line, `#` included.
        raw: String,
    },
    /// A comment (only produced when [`LexOptions::keep_comments`] is set).
    ///
    /// [`LexOptions::keep_comments`]: crate::lexer::LexOptions::keep_comments
    Comment(String),
}

impl TokenKind {
    /// Returns the identifier text if this token is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match self {
            TokenKind::Ident(s) => Some(&**s),
            _ => None,
        }
    }

    /// Whether this token is the given punctuator.
    pub fn is_punct(&self, p: Punct) -> bool {
        matches!(self, TokenKind::Punct(q) if *q == p)
    }

    /// Whether this token is the given keyword.
    pub fn is_keyword(&self, k: Keyword) -> bool {
        matches!(self, TokenKind::Keyword(q) if *q == k)
    }
}

/// A single lexed token with its source location.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What the token is.
    pub kind: TokenKind,
    /// Where the token came from.
    pub span: Span,
}

impl Token {
    /// Convenience accessor for identifier tokens.
    pub fn ident(&self) -> Option<&str> {
        self.kind.ident()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_join_orders_by_start() {
        let a = Span {
            start: 10,
            end: 12,
            line: 2,
            col: 1,
        };
        let b = Span {
            start: 4,
            end: 8,
            line: 1,
            col: 5,
        };
        let j = a.join(b);
        assert_eq!(j.start, 4);
        assert_eq!(j.end, 12);
        assert_eq!(j.line, 1);
        assert_eq!(j.col, 5);
    }

    #[test]
    fn punct_round_trips_text() {
        assert_eq!(Punct::Arrow.as_str(), "->");
        assert_eq!(Punct::ShlAssign.as_str(), "<<=");
    }

    #[test]
    fn token_kind_helpers() {
        let t = TokenKind::Ident("dev".into());
        assert_eq!(t.ident(), Some("dev"));
        assert!(TokenKind::Punct(Punct::Semi).is_punct(Punct::Semi));
        assert!(!TokenKind::Punct(Punct::Semi).is_punct(Punct::Comma));
    }
}

//! # refminer-dataset
//!
//! The empirical-study half of the reproduction: mining refcounting-bug
//! fixes out of a commit history with the paper's two-level filtering
//! (§3.1), classifying them into the Table 2 taxonomy, computing the
//! statistics behind Findings 1–5 and Figures 1–3, and triaging checker
//! findings into Table 4's shape.

mod classify;
mod mine;
mod paper;
mod stats;
mod triage;

pub use classify::{classify, classify_history, BugKind, HistBug, HistImpact};
pub use mine::{diff_calls, keyword_match, mine, DiffCall, MineResult};
pub use paper::{compare, PaperNumbers, PAPER, PAPER_TABLE3, TABLE3_COLUMNS};
pub use stats::{growth_by_year, top_apis, DistributionStats, ImpactStats, LifetimeStats};
pub use triage::{triage, PatchStatus, Table4Row, Triage, TriagedFinding};

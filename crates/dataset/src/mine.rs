//! The two-level bug-mining pipeline (§3.1).
//!
//! Stage 1 filters commits whose diffs add/delete/move calls to APIs
//! whose names carry refcounting keywords ("get", "put", "hold", ...).
//! Stage 2 confirms the APIs against the knowledge base (the paper
//! checks the API *implementations*; the KB is the product of that
//! check). Finally, candidates that other commits point at with
//! `Fixes:` tags are dropped as wrong patches (the dcb4b8ad case).

use std::collections::HashSet;

use refminer_corpus::Commit;
use refminer_rcapi::{name_direction, ApiKb};

/// A call extracted from one diff line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiffCall {
    /// Callee name.
    pub api: String,
    /// `+` added, `-` removed, ` ` context.
    pub sign: char,
    /// The enclosing function per the hunk header, if known.
    pub hunk_fn: Option<String>,
}

/// Extracts function calls from a unified-diff excerpt.
pub fn diff_calls(diff: &str) -> Vec<DiffCall> {
    let mut out = Vec::new();
    let mut hunk_fn: Option<String> = None;
    for line in diff.lines() {
        if let Some(rest) = line.strip_prefix("@@") {
            // `@@ -a,b +c,d @@ fn_name` — take the trailing context.
            let ctx = rest.rsplit("@@").next().unwrap_or("").trim();
            hunk_fn = ctx
                .split_whitespace()
                .last()
                .filter(|s| !s.is_empty())
                .map(str::to_string);
            continue;
        }
        let (sign, body) = match line.chars().next() {
            Some(c @ ('+' | '-' | ' ')) => (c, &line[1..]),
            _ => continue,
        };
        for api in calls_in_line(body) {
            out.push(DiffCall {
                api,
                sign,
                hunk_fn: hunk_fn.clone(),
            });
        }
    }
    out
}

/// Function-call names appearing in one source line.
fn calls_in_line(line: &str) -> Vec<String> {
    let bytes = line.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i].is_ascii_alphabetic() || bytes[i] == b'_' {
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                i += 1;
            }
            // A call if immediately followed by `(`.
            let mut j = i;
            while j < bytes.len() && bytes[j] == b' ' {
                j += 1;
            }
            if j < bytes.len() && bytes[j] == b'(' {
                out.push(line[start..i].to_string());
            }
        } else {
            i += 1;
        }
    }
    out
}

/// Whether an API name passes the keyword filter (stage 1).
pub fn keyword_match(api: &str) -> bool {
    name_direction(api).is_some()
}

/// The result of mining a history.
#[derive(Debug, Clone)]
pub struct MineResult<'a> {
    /// Stage-1 candidates (indices into the input commits).
    pub candidates: Vec<&'a Commit>,
    /// Stage-2 confirmed refcounting-bug fixes, wrong patches removed.
    pub confirmed: Vec<&'a Commit>,
    /// Candidates dropped by the Fixes-tag wrong-patch rule.
    pub reverted: Vec<&'a Commit>,
}

/// Runs the two-level filtering over a commit list.
///
/// # Examples
///
/// ```
/// use refminer_corpus::{generate_history, HistoryConfig};
/// use refminer_dataset::mine;
/// use refminer_rcapi::ApiKb;
///
/// let h = generate_history(&HistoryConfig {
///     n_bugs: 30, n_noise: 20, n_reverts: 2, n_neutral: 50,
///     ..Default::default()
/// });
/// let r = mine(&h.commits, &ApiKb::builtin());
/// assert!(r.confirmed.len() >= 30);
/// assert!(r.candidates.len() > r.confirmed.len());
/// ```
pub fn mine<'a>(commits: &'a [Commit], kb: &ApiKb) -> MineResult<'a> {
    // The wrong-patch rule: any commit id that is the target of some
    // other commit's Fixes tag *and* whose own summary reads like a
    // refcount fix is a reverted (wrong) patch.
    let fix_targets: HashSet<&str> = commits.iter().filter_map(|c| c.fixes_tag()).collect();

    let mut candidates = Vec::new();
    let mut confirmed = Vec::new();
    let mut reverted = Vec::new();
    for c in commits {
        let calls = diff_calls(&c.diff);
        // Stage 1: the diff must add/delete a keyword-bearing call.
        let stage1 = calls
            .iter()
            .any(|dc| dc.sign != ' ' && keyword_match(&dc.api));
        if !stage1 {
            continue;
        }
        candidates.push(c);
        // Stage 2: at least one touched keyword API is a *confirmed*
        // refcounting API (implementation-checked → in the KB).
        let stage2 = calls
            .iter()
            .any(|dc| dc.sign != ' ' && kb.get(&dc.api).is_some());
        if !stage2 {
            continue;
        }
        if fix_targets.contains(c.id.as_str()) {
            reverted.push(c);
            continue;
        }
        confirmed.push(c);
    }
    MineResult {
        candidates,
        confirmed,
        reverted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use refminer_corpus::{generate_history, HistoryConfig};

    fn history() -> refminer_corpus::History {
        generate_history(&HistoryConfig {
            n_bugs: 150,
            n_noise: 120,
            n_reverts: 5,
            n_neutral: 200,
            seed: 99,
        })
    }

    #[test]
    fn diff_call_extraction() {
        let diff = "@@ -30,4 +30,5 @@ foo_probe\n \tnp = of_find_node_by_name(NULL, id);\n+\tof_node_put(np);\n-\tkfree(np);\n";
        let calls = diff_calls(diff);
        assert_eq!(calls.len(), 3);
        assert_eq!(calls[0].api, "of_find_node_by_name");
        assert_eq!(calls[0].sign, ' ');
        assert_eq!(calls[1].api, "of_node_put");
        assert_eq!(calls[1].sign, '+');
        assert_eq!(calls[2].api, "kfree");
        assert_eq!(calls[2].sign, '-');
        assert_eq!(calls[0].hunk_fn.as_deref(), Some("foo_probe"));
    }

    #[test]
    fn keyword_filter() {
        assert!(keyword_match("of_node_put"));
        assert!(keyword_match("pm_runtime_get_sync"));
        assert!(keyword_match("clk_get_rate")); // Stage-1 noise.
        assert!(!keyword_match("regmap_read"));
        assert!(!keyword_match("of_find_node_by_name"));
    }

    #[test]
    fn noise_rejected_at_stage2() {
        let h = history();
        let kb = ApiKb::builtin();
        let r = mine(&h.commits, &kb);
        // All 150 planted fixes confirmed (minus none); wrong patches
        // confirmed-then-removed.
        assert!(r.confirmed.len() >= 150, "confirmed {}", r.confirmed.len());
        // Noise inflates candidates beyond confirmed.
        assert!(r.candidates.len() > r.confirmed.len() + 40);
        // Stage-2 rejects never appear in confirmed.
        for c in &r.confirmed {
            assert!(!c.message.contains("get rid of the extra helper"));
        }
    }

    #[test]
    fn wrong_patches_removed() {
        let h = history();
        let kb = ApiKb::builtin();
        let r = mine(&h.commits, &kb);
        assert_eq!(r.reverted.len(), 5);
        for c in &r.reverted {
            assert!(c.message.contains("fix memory leak"));
        }
        // The reverting commits themselves remain confirmed (they are
        // real refcount fixes).
        assert!(r
            .confirmed
            .iter()
            .any(|c| c.message.contains("improper handling of refcount")));
    }

    #[test]
    fn neutral_commits_ignored() {
        let h = history();
        let kb = ApiKb::builtin();
        let r = mine(&h.commits, &kb);
        for c in &r.candidates {
            assert!(!c.diff.is_empty());
        }
    }
}

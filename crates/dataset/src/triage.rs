//! Triage of checker findings against ground truth, plus the
//! developer-response model behind Table 4's Status columns.
//!
//! Matching a finding against the injection manifest is a *measurement*
//! (precision against ground truth — something the paper could not do
//! on the real kernel). The confirmed/rejected/no-response statuses are
//! a *simulation* of the LKML patch-review loop, calibrated to the
//! paper's reported outcomes (240 confirmed, 3 rejected, 111 without
//! response); DESIGN.md documents this substitution.

use refminer_checkers::{AntiPattern, Finding};
use refminer_corpus::Manifest;

/// Outcome of submitting a patch for a finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PatchStatus {
    /// Maintainer confirmed and applied the fix.
    Confirmed,
    /// Maintainer rejected the patch (disputed bug).
    Rejected,
    /// No response at paper-writing time.
    NoResponse,
    /// Not submitted: the finding is a false positive.
    FalsePositive,
}

/// One triaged finding.
#[derive(Debug, Clone)]
pub struct TriagedFinding {
    /// The underlying finding.
    pub finding: Finding,
    /// Whether it matches an injected bug (ground truth).
    pub true_positive: bool,
    /// Whether it landed on a deliberately tricky correct function.
    pub on_tricky: bool,
    /// Simulated review outcome.
    pub status: PatchStatus,
}

/// The triage result for one audit run.
#[derive(Debug, Clone, Default)]
pub struct Triage {
    /// All findings with their verdicts.
    pub rows: Vec<TriagedFinding>,
}

/// Per-subsystem confirmation quotas from Table 4 (arch 91,
/// drivers 137, include 2, net 1, sound 9 = 240).
fn confirm_quota(subsystem: &str) -> usize {
    match subsystem {
        "arch" => 91,
        "drivers" => 137,
        "include" => 2,
        "net" => 1,
        "sound" => 9,
        _ => 0,
    }
}

/// Per-subsystem rejection quotas from Table 4 (drivers 2, net 1 = 3),
/// preferring UAD findings — the paper's rejects were disputed UAD
/// reports (§6.4, Listing 6).
fn reject_quota(subsystem: &str) -> usize {
    match subsystem {
        "drivers" => 2,
        "net" => 1,
        _ => 0,
    }
}

/// Subsystem of a finding (first path segment).
fn subsystem_of(f: &Finding) -> &str {
    f.file.split('/').next().unwrap_or("")
}

/// Module of a finding (second path segment).
fn module_of(f: &Finding) -> &str {
    f.file.split('/').nth(1).unwrap_or("")
}

/// Triages findings against the manifest and applies the response
/// model.
///
/// # Examples
///
/// ```
/// use refminer_corpus::{generate_tree, TreeConfig};
/// use refminer_dataset::triage;
///
/// let tree = generate_tree(&TreeConfig { scale: 0.03, ..Default::default() });
/// // (normally the findings come from running the checkers)
/// let t = triage(&[], &tree.manifest);
/// assert!(t.rows.is_empty());
/// ```
pub fn triage(findings: &[Finding], manifest: &Manifest) -> Triage {
    let mut rows: Vec<TriagedFinding> = findings
        .iter()
        .map(|f| {
            let tp = manifest.matches(&f.file, &f.function, pattern_num(f.pattern));
            let tricky = manifest.is_tricky(&f.file, &f.function);
            TriagedFinding {
                finding: f.clone(),
                true_positive: tp,
                on_tricky: tricky,
                status: if tp {
                    PatchStatus::NoResponse // Refined below.
                } else {
                    PatchStatus::FalsePositive
                },
            }
        })
        .collect();

    // Deterministic response model: per subsystem, rejections go to
    // the first UAD (P8) true positives, confirmations fill from the
    // front, the remainder stays unanswered.
    let subsystems: Vec<String> = {
        let mut v: Vec<String> = rows
            .iter()
            .filter(|r| r.true_positive)
            .map(|r| subsystem_of(&r.finding).to_string())
            .collect();
        v.sort();
        v.dedup();
        v
    };
    for subsystem in subsystems {
        let mut rejects = reject_quota(&subsystem);
        let mut confirms = confirm_quota(&subsystem);
        // Pass 1: rejections on UAD findings.
        for r in rows.iter_mut() {
            if rejects == 0 {
                break;
            }
            if r.true_positive
                && subsystem_of(&r.finding) == subsystem
                && r.finding.pattern == AntiPattern::P8
            {
                r.status = PatchStatus::Rejected;
                rejects -= 1;
            }
        }
        // Pass 2: confirmations, distributed round-robin across the
        // subsystem's modules so every module sees some maintainer
        // response (matching Table 5's spread of Confirm values).
        let mut modules: Vec<String> = rows
            .iter()
            .filter(|r| r.true_positive && subsystem_of(&r.finding) == subsystem)
            .map(|r| module_of(&r.finding).to_string())
            .collect();
        modules.sort();
        modules.dedup();
        'outer: loop {
            let mut progressed = false;
            for module in &modules {
                if confirms == 0 {
                    break 'outer;
                }
                if let Some(r) = rows.iter_mut().find(|r| {
                    r.true_positive
                        && subsystem_of(&r.finding) == subsystem
                        && module_of(&r.finding) == module
                        && r.status == PatchStatus::NoResponse
                }) {
                    r.status = PatchStatus::Confirmed;
                    confirms -= 1;
                    progressed = true;
                }
            }
            if !progressed {
                break;
            }
        }
    }
    Triage { rows }
}

fn pattern_num(p: AntiPattern) -> u8 {
    AntiPattern::all().iter().position(|&q| q == p).unwrap() as u8 + 1
}

/// Aggregated Table 4 row.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Table4Row {
    /// True-positive findings ("new bugs").
    pub bugs: usize,
    /// Leak / UAF / NPD split.
    pub leak: usize,
    /// UAF-impact findings.
    pub uaf: usize,
    /// NPD-impact findings.
    pub npd: usize,
    /// Confirmed patches.
    pub confirmed: usize,
    /// Rejected patches.
    pub rejected: usize,
    /// False positives (not counted into `bugs`).
    pub false_positives: usize,
}

impl Triage {
    /// Aggregates per subsystem (Table 4's rows).
    pub fn by_subsystem(&self) -> Vec<(String, Table4Row)> {
        let mut out: Vec<(String, Table4Row)> = Vec::new();
        for r in &self.rows {
            let subsystem = subsystem_of(&r.finding).to_string();
            let entry = match out.iter_mut().find(|(s, _)| *s == subsystem) {
                Some((_, e)) => e,
                None => {
                    out.push((subsystem, Table4Row::default()));
                    &mut out.last_mut().expect("just pushed").1
                }
            };
            if !r.true_positive {
                entry.false_positives += 1;
                continue;
            }
            entry.bugs += 1;
            match r.finding.impact {
                refminer_checkers::Impact::Leak => entry.leak += 1,
                refminer_checkers::Impact::Uaf => entry.uaf += 1,
                refminer_checkers::Impact::Npd => entry.npd += 1,
            }
            match r.status {
                PatchStatus::Confirmed => entry.confirmed += 1,
                PatchStatus::Rejected => entry.rejected += 1,
                _ => {}
            }
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// The grand-total row.
    pub fn totals(&self) -> Table4Row {
        let mut t = Table4Row::default();
        for (_, row) in self.by_subsystem() {
            t.bugs += row.bugs;
            t.leak += row.leak;
            t.uaf += row.uaf;
            t.npd += row.npd;
            t.confirmed += row.confirmed;
            t.rejected += row.rejected;
            t.false_positives += row.false_positives;
        }
        t
    }

    /// Recall against the manifest: found bugs / injected bugs.
    pub fn recall(&self, manifest: &Manifest) -> f64 {
        if manifest.bugs.is_empty() {
            return 1.0;
        }
        let found = manifest
            .bugs
            .iter()
            .filter(|b| {
                self.rows.iter().any(|r| {
                    r.true_positive && r.finding.file == b.path && r.finding.function == b.function
                })
            })
            .count();
        found as f64 / manifest.bugs.len() as f64
    }

    /// Precision: true positives / all findings.
    pub fn precision(&self) -> f64 {
        if self.rows.is_empty() {
            return 1.0;
        }
        let tp = self.rows.iter().filter(|r| r.true_positive).count();
        tp as f64 / self.rows.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use refminer_checkers::Impact;

    fn fake_finding(file: &str, function: &str, pattern: AntiPattern, impact: Impact) -> Finding {
        Finding {
            pattern,
            impact,
            file: file.into(),
            function: function.into(),
            line: 1,
            api: "x".into(),
            object: None,
            message: String::new(),
            feasibility: refminer_checkers::Feasibility::Assumed,
            checkers: Vec::new(),
            engines: Vec::new(),
        }
    }

    #[test]
    fn matches_manifest() {
        let mut manifest = Manifest::default();
        manifest.bugs.push(refminer_corpus::InjectedBug {
            path: "drivers/clk/clk_unit1.c".into(),
            function: "clk_op_pll1".into(),
            pattern: 4,
            api: "of_get_node".into(),
            impact: "Leak".into(),
            subsystem: "drivers".into(),
            module: "clk".into(),
            inter_unit: false,
        });
        let findings = vec![
            fake_finding(
                "drivers/clk/clk_unit1.c",
                "clk_op_pll1",
                AntiPattern::P4,
                Impact::Leak,
            ),
            fake_finding(
                "drivers/clk/clk_unit1.c",
                "other_fn",
                AntiPattern::P4,
                Impact::Leak,
            ),
        ];
        let t = triage(&findings, &manifest);
        assert!(t.rows[0].true_positive);
        assert!(!t.rows[1].true_positive);
        assert_eq!(t.rows[1].status, PatchStatus::FalsePositive);
        assert!((t.precision() - 0.5).abs() < 1e-9);
        assert!((t.recall(&manifest) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn response_model_quotas() {
        let mut manifest = Manifest::default();
        let mut findings = Vec::new();
        for i in 0..5 {
            let f = format!("net/ipv4/u{i}.c");
            let func = format!("fn{i}");
            manifest.bugs.push(refminer_corpus::InjectedBug {
                path: f.clone(),
                function: func.clone(),
                pattern: 8,
                api: "sock_put".into(),
                impact: "UAF".into(),
                subsystem: "net".into(),
                module: "ipv4".into(),
                inter_unit: false,
            });
            findings.push(fake_finding(&f, &func, AntiPattern::P8, Impact::Uaf));
        }
        let t = triage(&findings, &manifest);
        let rejected = t
            .rows
            .iter()
            .filter(|r| r.status == PatchStatus::Rejected)
            .count();
        let confirmed = t
            .rows
            .iter()
            .filter(|r| r.status == PatchStatus::Confirmed)
            .count();
        // net quota: 1 reject, 1 confirm; the rest get no response.
        assert_eq!(rejected, 1);
        assert_eq!(confirmed, 1);
    }

    #[test]
    fn totals_aggregate() {
        let mut manifest = Manifest::default();
        manifest.bugs.push(refminer_corpus::InjectedBug {
            path: "sound/soc/u.c".into(),
            function: "f".into(),
            pattern: 4,
            api: "x".into(),
            impact: "Leak".into(),
            subsystem: "sound".into(),
            module: "soc".into(),
            inter_unit: false,
        });
        let findings = vec![fake_finding(
            "sound/soc/u.c",
            "f",
            AntiPattern::P4,
            Impact::Leak,
        )];
        let t = triage(&findings, &manifest);
        let tot = t.totals();
        assert_eq!(tot.bugs, 1);
        assert_eq!(tot.leak, 1);
        assert_eq!(tot.confirmed, 1);
        assert_eq!(tot.false_positives, 0);
    }
}

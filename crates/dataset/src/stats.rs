//! Statistics over the classified dataset: Findings 1–5 and the data
//! behind Figures 1–3 and Table 2.

use std::collections::BTreeMap;

use refminer_corpus::{major_of, SUBSYSTEM_KLOC};

use crate::classify::{BugKind, HistBug, HistImpact};

/// Table 2: counts and percentages per taxonomy bucket.
#[derive(Debug, Clone)]
pub struct ImpactStats {
    /// Total bugs.
    pub total: usize,
    /// Leak-impact bugs.
    pub leaks: usize,
    /// UAF-impact bugs.
    pub uafs: usize,
    /// Count per taxonomy bucket.
    pub kinds: Vec<(BugKind, usize)>,
}

impl ImpactStats {
    /// Computes the stats.
    pub fn compute(bugs: &[HistBug]) -> ImpactStats {
        let mut kinds: BTreeMap<&'static str, (BugKind, usize)> = BTreeMap::new();
        for kind in [
            BugKind::MissingDecIntra,
            BugKind::MissingDecInter,
            BugKind::LeakOther,
            BugKind::MisplacedDecUad,
            BugKind::MisplacedDecOther,
            BugKind::MisplacedInc,
            BugKind::MissingIncIntra,
            BugKind::MissingIncInter,
            BugKind::UafOther,
        ] {
            kinds.insert(kind.label(), (kind, 0));
        }
        for b in bugs {
            if let Some(e) = kinds.get_mut(b.kind.label()) {
                e.1 += 1;
            }
        }
        ImpactStats {
            total: bugs.len(),
            leaks: bugs.iter().filter(|b| b.impact == HistImpact::Leak).count(),
            uafs: bugs.iter().filter(|b| b.impact == HistImpact::Uaf).count(),
            kinds: kinds.into_values().collect(),
        }
    }

    /// Percentage of a count against the total.
    pub fn pct(&self, count: usize) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            100.0 * count as f64 / self.total as f64
        }
    }

    /// The count for one bucket.
    pub fn count(&self, kind: BugKind) -> usize {
        self.kinds
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|(_, c)| *c)
            .unwrap_or(0)
    }
}

/// Figure 2: per-subsystem counts and densities.
#[derive(Debug, Clone)]
pub struct DistributionStats {
    /// (subsystem, bug count), descending.
    pub counts: Vec<(String, usize)>,
    /// (subsystem, bugs per KLOC), descending.
    pub density: Vec<(String, f64)>,
}

impl DistributionStats {
    /// Computes the distribution.
    pub fn compute(bugs: &[HistBug]) -> DistributionStats {
        let mut map: BTreeMap<&str, usize> = BTreeMap::new();
        for b in bugs {
            *map.entry(b.subsystem.as_str()).or_default() += 1;
        }
        let mut counts: Vec<(String, usize)> =
            map.iter().map(|(s, c)| (s.to_string(), *c)).collect();
        counts.sort_by_key(|(_, c)| std::cmp::Reverse(*c));
        // Densities are only meaningful with a statistical floor; the
        // paper's Figure 2 likewise plots the major subsystems only.
        let mut density: Vec<(String, f64)> = map
            .iter()
            .filter(|(_, c)| **c >= 12)
            .filter_map(|(s, c)| {
                let kloc = SUBSYSTEM_KLOC
                    .iter()
                    .find(|(n, _)| n == s)
                    .map(|(_, k)| *k)?;
                Some((s.to_string(), *c as f64 / kloc as f64))
            })
            .collect();
        density.sort_by(|a, b| b.1.total_cmp(&a.1));
        DistributionStats { counts, density }
    }

    /// Share of the top `n` subsystems (Finding 3's 82.4%).
    pub fn top_share(&self, n: usize) -> f64 {
        let total: usize = self.counts.iter().map(|(_, c)| c).sum();
        let top: usize = self.counts.iter().take(n).map(|(_, c)| c).sum();
        if total == 0 {
            0.0
        } else {
            top as f64 / total as f64
        }
    }
}

/// Figure 1: fix-year histogram.
pub fn growth_by_year(bugs: &[HistBug]) -> Vec<(u32, usize)> {
    let mut map: BTreeMap<u32, usize> = BTreeMap::new();
    for b in bugs {
        *map.entry(b.fix_year).or_default() += 1;
    }
    map.into_iter().collect()
}

/// Figure 3 / Findings 4–5: lifetime statistics over the Fixes-tagged
/// subset.
#[derive(Debug, Clone)]
pub struct LifetimeStats {
    /// Bugs carrying a resolvable `Fixes:` tag.
    pub tagged: usize,
    /// Of those, fixed more than one year after introduction.
    pub over_one_year: usize,
    /// Over ten years.
    pub over_ten_years: usize,
    /// Introduced in the v2.6 era and fixed in v5.x/v6.x (Finding 5's
    /// 23 "ancient" bugs).
    pub ancient: usize,
    /// (intro major, fix major) → count.
    pub version_spans: BTreeMap<(u8, u8), usize>,
    /// (intro year, fix year) pairs for plotting Figure 3.
    pub lines: Vec<(u32, u32)>,
}

impl LifetimeStats {
    /// Computes lifetime statistics.
    pub fn compute(bugs: &[HistBug]) -> LifetimeStats {
        let mut s = LifetimeStats {
            tagged: 0,
            over_one_year: 0,
            over_ten_years: 0,
            ancient: 0,
            version_spans: BTreeMap::new(),
            lines: Vec::new(),
        };
        for b in bugs {
            let (Some(iy), Some(iv)) = (b.intro_year, b.intro_version.as_deref()) else {
                continue;
            };
            s.tagged += 1;
            let life = b.fix_year.saturating_sub(iy);
            // Year granularity: a bug introduced in year Y and fixed in
            // year Y+1 or later took "more than one year" in the
            // paper's sense (release-to-release distance).
            if life >= 1 {
                s.over_one_year += 1;
            }
            if life > 10 {
                s.over_ten_years += 1;
            }
            let im = major_of(iv);
            let fm = major_of(&b.fix_version);
            if im == 2 && fm >= 5 {
                s.ancient += 1;
            }
            *s.version_spans.entry((im, fm)).or_default() += 1;
            s.lines.push((iy, b.fix_year));
        }
        s.lines.sort();
        s
    }

    /// Count of bugs spanning from major `from` to major `to`.
    pub fn span(&self, from: u8, to: u8) -> usize {
        self.version_spans.get(&(from, to)).copied().unwrap_or(0)
    }
}

/// The bug-caused API leaderboard (Table 5's "Bug-Caused API" flavour,
/// over the historical dataset).
pub fn top_apis(bugs: &[HistBug], n: usize) -> Vec<(String, usize)> {
    let mut map: BTreeMap<&str, usize> = BTreeMap::new();
    for b in bugs {
        for api in &b.apis {
            *map.entry(api.as_str()).or_default() += 1;
        }
    }
    let mut v: Vec<(String, usize)> = map.into_iter().map(|(a, c)| (a.to_string(), c)).collect();
    v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    v.truncate(n);
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::classify_history;
    use refminer_corpus::{generate_history, HistoryConfig};
    use refminer_rcapi::ApiKb;

    fn bugs() -> Vec<HistBug> {
        let h = generate_history(&HistoryConfig {
            n_bugs: 1033,
            n_noise: 200,
            n_reverts: 5,
            n_neutral: 100,
            seed: 11,
        });
        classify_history(&h.commits, &ApiKb::builtin())
    }

    #[test]
    fn impact_stats_sum() {
        let b = bugs();
        let s = ImpactStats::compute(&b);
        assert_eq!(s.leaks + s.uafs, s.total);
        let kinds_sum: usize = s.kinds.iter().map(|(_, c)| c).sum();
        assert_eq!(kinds_sum, s.total);
        // Finding 1: missing-dec dominates.
        assert!(s.count(BugKind::MissingDecIntra) > s.total / 2);
    }

    #[test]
    fn distribution_drivers_first_block_densest() {
        let b = bugs();
        let d = DistributionStats::compute(&b);
        assert_eq!(d.counts[0].0, "drivers");
        // Finding 3: top-3 hold the overwhelming share.
        assert!(d.top_share(3) > 0.75, "top3 = {}", d.top_share(3));
        // Figure 2 right: block is densest.
        assert_eq!(d.density[0].0, "block");
    }

    #[test]
    fn growth_increases() {
        let b = bugs();
        let g = growth_by_year(&b);
        let first = g.first().unwrap().1;
        let last = g.last().unwrap().1;
        assert!(last > first * 5, "{first} → {last}");
    }

    #[test]
    fn lifetimes_shape() {
        let b = bugs();
        let s = LifetimeStats::compute(&b);
        assert!(s.tagged > 480 && s.tagged < 640, "tagged {}", s.tagged);
        // Finding 4: most take over a year.
        let frac = s.over_one_year as f64 / s.tagged as f64;
        assert!(frac > 0.55, "over-one-year share {frac}");
        assert!(s.over_ten_years >= 5);
        // Finding 5: ancient bugs exist.
        assert!(s.ancient >= 8, "ancient {}", s.ancient);
        // Version spans include v4→v5 and within-v5 populations.
        assert!(s.span(4, 5) > 20);
        assert!(s.span(5, 5) > 50);
    }

    #[test]
    fn top_apis_non_empty() {
        let b = bugs();
        let t = top_apis(&b, 5);
        assert_eq!(t.len(), 5);
        assert!(t[0].1 >= t[4].1);
        assert!(t.iter().any(|(a, _)| a == "of_node_put"));
    }
}

//! Classification of confirmed bug-fix commits into the Table 2
//! taxonomy, working purely from commit text (message + diff).

use refminer_corpus::Commit;
use refminer_rcapi::{ApiKb, RcDir};

use crate::mine::diff_calls;

/// The Table 2 taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BugKind {
    /// 1.1 — missing decrement, pairable within one function.
    MissingDecIntra,
    /// 1.2 — missing decrement across paired functions.
    MissingDecInter,
    /// 2 — other leak causes (e.g. direct-free).
    LeakOther,
    /// 3.1 (UAD) — decrement misplaced before the last access.
    MisplacedDecUad,
    /// 3.1 (other) — decrement misplaced elsewhere.
    MisplacedDecOther,
    /// 3.2 — increment misplaced.
    MisplacedInc,
    /// 4.1 — missing increment, intra-function.
    MissingIncIntra,
    /// 4.2 — missing increment, inter-function.
    MissingIncInter,
    /// 5 — other UAF causes.
    UafOther,
}

impl BugKind {
    /// Human-readable label used in tables.
    pub fn label(&self) -> &'static str {
        match self {
            BugKind::MissingDecIntra => "1.1 Intra-Unpaired (missing dec)",
            BugKind::MissingDecInter => "1.2 Inter-Unpaired (missing dec)",
            BugKind::LeakOther => "2. Others (leak)",
            BugKind::MisplacedDecUad => "3.1 Misplacing dec (UAD)",
            BugKind::MisplacedDecOther => "3.1 Misplacing dec (other)",
            BugKind::MisplacedInc => "3.2 Misplacing inc",
            BugKind::MissingIncIntra => "4.1 Intra-Unpaired (missing inc)",
            BugKind::MissingIncInter => "4.2 Inter-Unpaired (missing inc)",
            BugKind::UafOther => "5. Others (UAF)",
        }
    }
}

/// Security impact of a historical bug.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HistImpact {
    /// Memory leak.
    Leak,
    /// Use-after-free.
    Uaf,
}

/// A classified historical bug.
#[derive(Debug, Clone)]
pub struct HistBug {
    /// Fixing commit id.
    pub commit_id: String,
    /// Subsystem and module.
    pub subsystem: String,
    /// Module within the subsystem.
    pub module: String,
    /// Taxonomy bucket.
    pub kind: BugKind,
    /// Projected impact.
    pub impact: HistImpact,
    /// Year and release of the fix.
    pub fix_year: u32,
    /// Kernel release of the fix.
    pub fix_version: String,
    /// Year the bug was introduced (via the `Fixes:` tag), if tagged.
    pub intro_year: Option<u32>,
    /// Release the bug was introduced in, if tagged.
    pub intro_version: Option<String>,
    /// The refcounting APIs touched by the fix.
    pub apis: Vec<String>,
}

impl HistBug {
    /// Bug lifetime in years, when the introduction is known.
    pub fn lifetime_years(&self) -> Option<u32> {
        self.intro_year.map(|iy| self.fix_year.saturating_sub(iy))
    }
}

/// Classifies one confirmed fixing commit.
///
/// `intro_lookup` resolves a `Fixes:` target id to the introducing
/// commit's (year, version).
pub fn classify(
    commit: &Commit,
    kb: &ApiKb,
    intro_lookup: &dyn Fn(&str) -> Option<(u32, String)>,
) -> HistBug {
    let msg = commit.message.to_ascii_lowercase();
    let calls = diff_calls(&commit.diff);

    let mut added_dec = Vec::new();
    let mut removed_dec = Vec::new();
    let mut added_inc = Vec::new();
    let mut removed_inc = Vec::new();
    let mut removed_free = false;
    let mut context_has_inc = false;
    let mut apis = Vec::new();
    for dc in &calls {
        let dir = kb.get(&dc.api).map(|a| a.dir);
        match (dc.sign, dir) {
            ('+', Some(RcDir::Dec)) => added_dec.push(dc.api.clone()),
            ('-', Some(RcDir::Dec)) => removed_dec.push(dc.api.clone()),
            ('+', Some(RcDir::Inc)) => added_inc.push(dc.api.clone()),
            ('-', Some(RcDir::Inc)) => removed_inc.push(dc.api.clone()),
            ('-', None) if dc.api == "kfree" || dc.api == "kvfree" => removed_free = true,
            (' ', Some(RcDir::Inc)) => context_has_inc = true,
            // A smartloop in the context is an (embedded) increment
            // site too: its fix pairs within the same function.
            (' ', None) if kb.smartloop(&dc.api).is_some() => context_has_inc = true,
            _ => {}
        }
        if dir.is_some() && !apis.contains(&dc.api) {
            apis.push(dc.api.clone());
        }
    }

    let mentions_uaf = msg.contains("use-after-free")
        || msg.contains("use after free")
        || msg.contains("uaf")
        || msg.contains("premature");
    let mentions_leak = msg.contains("leak") || msg.contains("out of memory");

    let kind = if removed_free && !added_dec.is_empty() {
        BugKind::LeakOther
    } else if !added_dec.is_empty() && !removed_dec.is_empty() {
        // A moved decrement.
        if mentions_uaf && msg.contains("last reference") {
            BugKind::MisplacedDecUad
        } else if mentions_uaf {
            BugKind::UafOther
        } else {
            BugKind::MisplacedDecOther
        }
    } else if !added_inc.is_empty() && !removed_inc.is_empty() {
        BugKind::MisplacedInc
    } else if !added_dec.is_empty() {
        if context_has_inc {
            BugKind::MissingDecIntra
        } else {
            BugKind::MissingDecInter
        }
    } else if !added_inc.is_empty() {
        if context_has_inc {
            BugKind::MissingIncIntra
        } else {
            BugKind::MissingIncInter
        }
    } else if mentions_uaf {
        BugKind::UafOther
    } else {
        BugKind::LeakOther
    };

    // Impact: the message keywords decide (§4.1); the taxonomy bucket
    // breaks ties.
    let impact = if mentions_leak && !mentions_uaf {
        HistImpact::Leak
    } else if mentions_uaf {
        HistImpact::Uaf
    } else {
        match kind {
            BugKind::MissingDecIntra | BugKind::MissingDecInter | BugKind::LeakOther => {
                HistImpact::Leak
            }
            _ => HistImpact::Uaf,
        }
    };

    let (intro_year, intro_version) = match commit.fixes_tag().and_then(intro_lookup) {
        Some((y, v)) => (Some(y), Some(v)),
        None => (None, None),
    };

    HistBug {
        commit_id: commit.id.clone(),
        subsystem: commit.subsystem.clone(),
        module: commit.module.clone(),
        kind,
        impact,
        fix_year: commit.year,
        fix_version: commit.version.clone(),
        intro_year,
        intro_version,
        apis,
    }
}

/// Mines and classifies a whole history in one call.
pub fn classify_history(commits: &[Commit], kb: &ApiKb) -> Vec<HistBug> {
    let result = crate::mine::mine(commits, kb);
    let index: std::collections::HashMap<&str, (u32, String)> = commits
        .iter()
        .map(|c| (c.id.as_str(), (c.year, c.version.clone())))
        .collect();
    let lookup = |id: &str| index.get(id).cloned();
    result
        .confirmed
        .iter()
        .map(|c| classify(c, kb, &lookup))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use refminer_corpus::{generate_history, HistoryConfig};

    fn bugs() -> Vec<HistBug> {
        let h = generate_history(&HistoryConfig {
            n_bugs: 1033,
            n_noise: 300,
            n_reverts: 6,
            n_neutral: 500,
            seed: 5,
        });
        classify_history(&h.commits, &ApiKb::builtin())
    }

    #[test]
    fn taxonomy_proportions_match_table2() {
        let bugs = bugs();
        let n = bugs.len() as f64;
        assert!(n >= 1000.0, "confirmed {n}");
        let frac = |k: BugKind| bugs.iter().filter(|b| b.kind == k).count() as f64 / n;
        // Paper: intra missing-dec 57.1%, inter 10.1%, UAD 9.1%.
        let intra = frac(BugKind::MissingDecIntra);
        assert!((intra - 0.571).abs() < 0.05, "intra = {intra}");
        let inter = frac(BugKind::MissingDecInter);
        assert!((inter - 0.101).abs() < 0.03, "inter = {inter}");
        let uad = frac(BugKind::MisplacedDecUad);
        assert!((uad - 0.091).abs() < 0.03, "uad = {uad}");
    }

    #[test]
    fn impact_split_matches_finding1() {
        let bugs = bugs();
        let n = bugs.len() as f64;
        let leak = bugs.iter().filter(|b| b.impact == HistImpact::Leak).count() as f64 / n;
        // Paper: 71.7% leaks.
        assert!((leak - 0.717).abs() < 0.05, "leak = {leak}");
    }

    #[test]
    fn lifetimes_present_for_tagged() {
        let bugs = bugs();
        let tagged = bugs.iter().filter(|b| b.intro_year.is_some()).count();
        // ~567/1033 tagged.
        let frac = tagged as f64 / bugs.len() as f64;
        assert!((frac - 0.549).abs() < 0.06, "tagged = {frac}");
        for b in &bugs {
            if let Some(l) = b.lifetime_years() {
                assert!(l <= 17);
            }
        }
    }

    #[test]
    fn apis_recorded() {
        let bugs = bugs();
        assert!(bugs.iter().all(|b| !b.apis.is_empty()));
        assert!(bugs
            .iter()
            .any(|b| b.apis.iter().any(|a| a == "of_node_put")));
    }

    #[test]
    fn direct_free_classified_leak_other() {
        let bugs = bugs();
        let lo: Vec<_> = bugs
            .iter()
            .filter(|b| b.kind == BugKind::LeakOther)
            .collect();
        assert!(!lo.is_empty());
        assert!(lo.iter().all(|b| b.impact == HistImpact::Leak));
    }
}

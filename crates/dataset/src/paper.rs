//! The paper's reported numbers, embedded for paper-vs-measured
//! comparison in the experiment harness and EXPERIMENTS.md.

/// Headline numbers of the study.
#[derive(Debug, Clone, Copy)]
pub struct PaperNumbers {
    /// Historical bugs in the dataset (§3.1).
    pub total_bugs: usize,
    /// Candidates before manual confirmation (§3.1).
    pub candidates: usize,
    /// Kernel versions covered.
    pub versions: usize,
    /// Leak share (Finding 1), percent.
    pub leak_pct: f64,
    /// Missing-decrease share, percent.
    pub missing_dec_pct: f64,
    /// Intra-unpaired share, percent.
    pub intra_unpaired_pct: f64,
    /// Inter-unpaired share, percent.
    pub inter_unpaired_pct: f64,
    /// UAF share (Finding 2), percent.
    pub uaf_pct: f64,
    /// UAD share, percent.
    pub uad_pct: f64,
    /// Top-3 subsystem share (Finding 3), percent.
    pub top3_pct: f64,
    /// Drivers share, percent.
    pub drivers_pct: f64,
    /// Fixes-tagged bugs (Finding 4 denominator).
    pub tagged: usize,
    /// Over-one-year lifetimes among tagged.
    pub over_one_year: usize,
    /// Over-ten-year lifetimes.
    pub over_ten_years: usize,
    /// v2.6-era bugs alive into v5/v6 (Finding 5).
    pub ancient: usize,
    /// Bugs spanning v4.x → v5.x.
    pub span_v4_v5: usize,
    /// Bugs spanning v3.x → v5.x.
    pub span_v3_v5: usize,
    /// Bugs introduced and fixed within v5.x.
    pub within_v5: usize,
    /// New bugs found by the checkers (Table 4).
    pub new_bugs: usize,
    /// New-bug impacts.
    pub new_leak: usize,
    /// New-bug UAF count.
    pub new_uaf: usize,
    /// New-bug NPD count.
    pub new_npd: usize,
    /// Confirmed patches.
    pub confirmed: usize,
    /// Rejected patches.
    pub rejected: usize,
    /// False positives.
    pub false_positives: usize,
}

/// The values as printed in the paper.
pub const PAPER: PaperNumbers = PaperNumbers {
    total_bugs: 1033,
    candidates: 1825,
    versions: 753,
    leak_pct: 71.7,
    missing_dec_pct: 67.2,
    intra_unpaired_pct: 57.1,
    inter_unpaired_pct: 10.1,
    uaf_pct: 28.3,
    uad_pct: 9.1,
    top3_pct: 82.4,
    drivers_pct: 56.9,
    tagged: 567,
    over_one_year: 429,
    over_ten_years: 19,
    ancient: 23,
    span_v4_v5: 135,
    span_v3_v5: 80,
    within_v5: 189,
    new_bugs: 351,
    new_leak: 296,
    new_uaf: 48,
    new_npd: 7,
    confirmed: 240,
    rejected: 3,
    false_positives: 5,
};

/// Table 3 as printed: similarity of RC keywords (rows) and
/// bug-caused-API keywords (columns `foreach find parse open probe
/// register`).
pub const PAPER_TABLE3: &[(&str, [f64; 6])] = &[
    ("refcount", [0.19, 0.33, 0.16, 0.30, 0.28, 0.19]),
    ("increase", [0.22, 0.35, 0.29, 0.23, 0.25, 0.24]),
    ("get", [0.32, 0.73, 0.61, 0.43, 0.46, 0.48]),
    ("hold", [0.29, 0.43, 0.28, 0.32, 0.23, 0.30]),
    ("grab", [0.27, 0.52, 0.33, 0.36, 0.28, 0.29]),
    ("retain", [0.14, 0.32, 0.28, 0.17, 0.09, 0.25]),
    ("decrease", [0.21, 0.39, 0.27, 0.26, 0.27, 0.15]),
    ("put", [0.38, 0.58, 0.48, 0.46, 0.39, 0.36]),
    ("unhold", [-0.13, 0.10, -0.02, 0.07, -0.03, -0.14]),
    ("drop", [0.22, 0.33, 0.38, 0.22, 0.25, 0.30]),
    ("release", [0.33, 0.53, 0.43, 0.48, 0.49, 0.37]),
];

/// Table 3 column headers.
pub const TABLE3_COLUMNS: [&str; 6] = ["foreach", "find", "parse", "open", "probe", "register"];

/// Formats a paper-vs-measured comparison line.
pub fn compare(label: &str, paper: f64, measured: f64) -> String {
    let delta = measured - paper;
    format!("{label:<38} paper {paper:>8.1}   measured {measured:>8.1}   Δ {delta:>+7.1}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn internal_consistency() {
        assert_eq!(
            PAPER.new_leak + PAPER.new_uaf + PAPER.new_npd,
            PAPER.new_bugs
        );
        assert!((PAPER.leak_pct + PAPER.uaf_pct - 100.0).abs() < 0.1);
        assert_eq!(PAPER_TABLE3.len(), 11);
    }

    #[test]
    fn compare_formats() {
        let s = compare("leak share (%)", 71.7, 70.2);
        assert!(s.contains("71.7"));
        assert!(s.contains("70.2"));
        assert!(s.contains("-1.5"));
    }
}

//! Discovery of refcounting structures, APIs and smartloops from source.
//!
//! This reproduces the paper's "Lexer Parsing (𝒢, 𝒫, 𝑀_SL)" stage
//! (§6.1): refcounting-related structures confirm refcounting APIs
//! (functions that operate a refcounter embedded in a parameter or
//! returned object), and `#define`d loop macros whose bodies call
//! find-like APIs become smartloops.

use std::collections::{BTreeMap, BTreeSet};

use refminer_clex::MacroDef;
use refminer_cparse::{Expr, FunctionDef, StmtKind, TranslationUnit};

use crate::kb::ApiKb;
use crate::keywords::name_direction;
use crate::model::{ObjectFlow, RcApi, RcClass, RcDir, SmartLoop, RC_STRUCTS};

/// The output of a discovery run.
#[derive(Debug, Clone, Default)]
pub struct Discovery {
    /// Struct tags found to be refcounted (directly or by nesting).
    pub rc_structs: BTreeSet<String>,
    /// APIs discovered from implementations (not in the seed KB).
    pub apis: Vec<RcApi>,
    /// Smartloops discovered from `#define`s.
    pub smartloops: Vec<SmartLoop>,
}

impl Discovery {
    /// Folds the discovery results into a knowledge base.
    pub fn into_kb(self, mut base: ApiKb) -> ApiKb {
        for api in self.apis {
            if base.get(&api.name).is_none() {
                base.insert(api);
            }
        }
        for sl in self.smartloops {
            if base.smartloop(&sl.name).is_none() {
                base.insert_loop(sl);
            }
        }
        base
    }
}

/// Configuration for discovery.
#[derive(Debug, Clone)]
pub struct DiscoverConfig {
    /// How many levels of struct nesting to follow when deciding
    /// whether a structure is refcounted (the paper's structure-parser
    /// threshold, §6.1).
    pub nesting_threshold: usize,
}

impl Default for DiscoverConfig {
    fn default() -> Self {
        DiscoverConfig {
            nesting_threshold: 3,
        }
    }
}

/// One struct declaration's refcounting-relevant shape, as seen in a
/// single unit: whether it embeds a known refcounter by value, and
/// which other struct tags it embeds by value. These are the raw inputs
/// the cross-unit nesting propagation folds together.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructFact {
    /// The struct tag.
    pub tag: String,
    /// Embeds one of [`RC_STRUCTS`] by value.
    pub direct: bool,
    /// By-value member struct tags (from non-refcounter fields).
    pub embeds: Vec<String>,
}

/// The per-unit slice of discovery: serializable facts that
/// [`merge_discoveries`] folds into a whole-program [`Discovery`]
/// without re-touching any AST.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct UnitDiscovery {
    /// Struct shapes declared in the unit.
    pub structs: Vec<StructFact>,
    /// APIs classified from this unit's function definitions.
    pub apis: Vec<RcApi>,
}

/// Extracts the discovery facts of one translation unit.
///
/// Classification only consults the *seed* knowledge base, so the
/// result is independent of every other unit — the property that lets
/// the audit cache it per unit and merge later.
pub fn discover_unit(tu: &TranslationUnit, seed: &ApiKb) -> UnitDiscovery {
    let mut structs = Vec::new();
    for s in tu.structs() {
        let Some(tag) = &s.name else { continue };
        let mut direct = false;
        let mut embeds = Vec::new();
        for f in &s.fields {
            if f.ty.is_pointer() {
                // A *pointer* to a refcounted object does not make
                // the containing object refcounted.
                continue;
            }
            let base = f.ty.base.as_str();
            if RC_STRUCTS
                .iter()
                .any(|rc| base == *rc || base == format!("struct {rc}").as_str())
            {
                direct = true;
            } else if let Some(member_tag) = f.ty.struct_tag() {
                embeds.push(member_tag.to_string());
            }
        }
        structs.push(StructFact {
            tag: tag.clone(),
            direct,
            embeds,
        });
    }
    // `classify_function` uses the rc-struct set only inside
    // `returns_rc_ptr || ret.is_pointer()`, where the first disjunct
    // implies the second — so classifying against the empty set is
    // exactly equivalent and keeps the unit pass self-contained.
    let empty = BTreeSet::new();
    let mut apis = Vec::new();
    for f in tu.functions() {
        if seed.get(&f.name).is_some() {
            continue;
        }
        if let Some(api) = classify_function(f, seed, &empty) {
            apis.push(api);
        }
    }
    UnitDiscovery { structs, apis }
}

/// Folds per-unit discovery facts into the whole-program [`Discovery`].
///
/// `units` must be in a deterministic order (the audit uses unit index
/// order); the output is identical to running [`discover`] over the
/// same units' ASTs.
pub fn merge_discoveries(
    units: &[&UnitDiscovery],
    defines: &[MacroDef],
    seed: &ApiKb,
    config: &DiscoverConfig,
) -> Discovery {
    // tag → by-value member struct tags, concatenated in unit order.
    let mut embeds: BTreeMap<String, Vec<String>> = BTreeMap::new();
    let mut marked: BTreeSet<String> = BTreeSet::new();
    for unit in units {
        for s in &unit.structs {
            if s.direct {
                marked.insert(s.tag.clone());
            }
            if !s.embeds.is_empty() {
                embeds
                    .entry(s.tag.clone())
                    .or_default()
                    .extend(s.embeds.iter().cloned());
            }
        }
    }
    propagate_nesting(&embeds, &mut marked, config.nesting_threshold);
    let apis: Vec<RcApi> = units.iter().flat_map(|u| u.apis.iter().cloned()).collect();
    // Smartloop discovery may reference freshly discovered APIs too.
    let mut extended = seed.clone();
    for api in &apis {
        extended.insert(api.clone());
    }
    let smartloops = discover_smartloops(defines, &extended);
    Discovery {
        rc_structs: marked,
        apis,
        smartloops,
    }
}

/// Runs discovery over parsed translation units and raw macro defines.
///
/// `seed` supplies the general APIs used to recognize wrappers; pass
/// [`ApiKb::builtin`] in normal use.
///
/// # Examples
///
/// ```
/// use refminer_cparse::parse_str;
/// use refminer_rcapi::{discover, ApiKb, DiscoverConfig, RcDir};
///
/// let tu = parse_str("t.c", r#"
/// struct widget { struct kref refs; int id; };
/// void widget_get(struct widget *w) { kref_get(&w->refs); }
/// void widget_put(struct widget *w) { kref_put(&w->refs, widget_free); }
/// "#);
/// let d = discover(&[&tu], &[], &ApiKb::builtin(), &DiscoverConfig::default());
/// assert!(d.rc_structs.contains("widget"));
/// assert!(d.apis.iter().any(|a| a.name == "widget_get" && a.dir == RcDir::Inc));
/// ```
///
/// Units are taken by reference (`&[&TranslationUnit]`) so the audit
/// pipeline can run the cross-unit pass over ASTs it already holds —
/// no wholesale cloning of every parsed unit. This is now a thin
/// composition of [`discover_unit`] + [`merge_discoveries`], the split
/// the two-phase audit uses to cache the unit pass.
pub fn discover(
    tus: &[&TranslationUnit],
    defines: &[MacroDef],
    seed: &ApiKb,
    config: &DiscoverConfig,
) -> Discovery {
    let units: Vec<UnitDiscovery> = tus.iter().map(|tu| discover_unit(tu, seed)).collect();
    let refs: Vec<&UnitDiscovery> = units.iter().collect();
    merge_discoveries(&refs, defines, seed, config)
}

/// Finds struct tags that embed a refcounter, directly or through up to
/// `threshold` levels of (by-value) struct nesting.
pub fn discover_rc_structs(tus: &[&TranslationUnit], threshold: usize) -> BTreeSet<String> {
    // tag → by-value member struct tags.
    let mut embeds: BTreeMap<String, Vec<String>> = BTreeMap::new();
    let mut marked: BTreeSet<String> = BTreeSet::new();
    for tu in tus {
        for s in tu.structs() {
            let Some(tag) = &s.name else { continue };
            for f in &s.fields {
                if f.ty.is_pointer() {
                    // A *pointer* to a refcounted object does not make
                    // the containing object refcounted.
                    continue;
                }
                let base = f.ty.base.as_str();
                let direct = RC_STRUCTS
                    .iter()
                    .any(|rc| base == *rc || base == format!("struct {rc}").as_str());
                if direct {
                    marked.insert(tag.clone());
                } else if let Some(member_tag) = f.ty.struct_tag() {
                    embeds
                        .entry(tag.clone())
                        .or_default()
                        .push(member_tag.to_string());
                }
            }
        }
    }
    propagate_nesting(&embeds, &mut marked, threshold);
    marked
}

/// Propagates refcounted-ness through by-value nesting, bounded by the
/// threshold.
fn propagate_nesting(
    embeds: &BTreeMap<String, Vec<String>>,
    marked: &mut BTreeSet<String>,
    threshold: usize,
) {
    for _ in 0..threshold {
        let mut added = Vec::new();
        for (tag, members) in embeds {
            if !marked.contains(tag) && members.iter().any(|m| marked.contains(m)) {
                added.push(tag.clone());
            }
        }
        if added.is_empty() {
            break;
        }
        marked.extend(added);
    }
}

/// Direct calls in a function body, with their first-argument root.
fn body_calls(f: &FunctionDef) -> Vec<(String, Option<String>)> {
    let mut calls = Vec::new();
    for s in &f.body.stmts {
        s.walk_exprs(&mut |e: &Expr| {
            if let Some((name, args)) = e.as_direct_call() {
                calls.push((
                    name.to_string(),
                    args.first().and_then(|a| a.root_var()).map(str::to_string),
                ));
            }
        });
    }
    calls
}

fn returns_of(f: &FunctionDef) -> (bool, bool, Vec<String>) {
    // (has_return_null, has_error_return, returned_vars)
    let mut has_null = false;
    let mut has_err = false;
    let mut vars = Vec::new();
    for s in &f.body.stmts {
        s.walk(&mut |s| {
            if let StmtKind::Return(Some(v)) = &s.kind {
                match &v.kind {
                    refminer_cparse::ExprKind::Ident(n) if n == "NULL" => has_null = true,
                    refminer_cparse::ExprKind::Unary {
                        op: refminer_cparse::UnOp::Neg,
                        ..
                    } => has_err = true,
                    refminer_cparse::ExprKind::IntLit(x) if *x < 0 => has_err = true,
                    _ => {}
                }
                if let Some(r) = v.root_var() {
                    vars.push(r.to_string());
                }
            }
        });
    }
    (has_null, has_err, vars)
}

fn classify_function(
    f: &FunctionDef,
    seed: &ApiKb,
    rc_structs: &BTreeSet<String>,
) -> Option<RcApi> {
    let calls = body_calls(f);
    // Which known inc/dec APIs does the body invoke, and on what?
    let mut inc_on: Vec<Option<String>> = Vec::new();
    let mut dec_on: Vec<(String, Option<String>)> = Vec::new();
    for (name, arg_root) in &calls {
        match seed.direction_of(name).filter(|_| seed.get(name).is_some()) {
            Some(RcDir::Inc) => inc_on.push(arg_root.clone()),
            Some(RcDir::Dec) => dec_on.push((name.clone(), arg_root.clone())),
            None => {}
        }
    }
    if inc_on.is_empty() && dec_on.is_empty() {
        return None;
    }
    let param_index = |root: &Option<String>| -> Option<usize> {
        let root = root.as_deref()?;
        f.params
            .iter()
            .position(|p| p.name.as_deref() == Some(root))
    };
    let (has_null, has_err, ret_vars) = returns_of(f);
    let returns_rc_ptr = f.ret.is_pointer()
        && f.ret
            .struct_tag()
            .is_some_and(|t| rc_structs.contains(t) || t.ends_with("_node") || t == "device");

    // Decrement wrapper: body decs a parameter and does not inc.
    if inc_on.is_empty() {
        if let Some(idx) = dec_on.iter().find_map(|(_, root)| param_index(root)) {
            return Some(RcApi::dec(&f.name, RcClass::Specific, ObjectFlow::Arg(idx)));
        }
        return None;
    }

    // Increment wrapper on a parameter.
    if let Some(idx) = inc_on.iter().find_map(param_index) {
        let class = if name_direction(&f.name) == Some(RcDir::Inc) {
            RcClass::Specific
        } else {
            RcClass::Embedded
        };
        let flow = if ret_vars
            .iter()
            .any(|v| f.params.get(idx).and_then(|p| p.name.as_deref()) == Some(v.as_str()))
        {
            ObjectFlow::ArgAndReturned(idx)
        } else {
            ObjectFlow::Arg(idx)
        };
        let mut api = RcApi::inc(&f.name, class, flow, &[]);
        api.dec_names = seed.accepted_decs(&f.name);
        if f.ret.base.contains("int") && !f.ret.is_pointer() && has_err {
            api = api.with_inc_on_error();
        }
        return Some(api);
    }

    // Find-like: incs a local (or iterates) and returns an object
    // pointer.
    if returns_rc_ptr || f.ret.is_pointer() {
        let class = RcClass::Embedded;
        let mut api = RcApi::inc(&f.name, class, ObjectFlow::Returned, &[]);
        // Pair with the dec used internally (find-like APIs put the
        // `from` argument with the same family's dec).
        if let Some((dec_name, _)) = dec_on.first() {
            api.dec_names = vec![dec_name.clone()];
        } else {
            api.dec_names = seed.accepted_decs(&f.name);
        }
        if has_null {
            api = api.with_may_return_null();
        }
        return Some(api);
    }

    // Inc on a non-parameter without returning an object: possibly an
    // int-returning helper with the inc-on-error deviation.
    if f.ret.base.contains("int") && has_err {
        let mut api = RcApi::inc(&f.name, RcClass::Specific, ObjectFlow::Arg(0), &[]);
        api.dec_names = seed.accepted_decs(&f.name);
        return Some(api.with_inc_on_error());
    }
    None
}

/// Finds smartloops among macro definitions: function-like loop macros
/// whose body calls a known increment (find-like) API.
pub fn discover_smartloops(defines: &[MacroDef], kb: &ApiKb) -> Vec<SmartLoop> {
    let mut out = Vec::new();
    for def in defines {
        if !def.is_loop_macro() || kb.smartloop(&def.name).is_some() {
            continue;
        }
        let Some(params) = &def.params else { continue };
        let called = def.called_functions();
        let Some(embedded) = called.iter().find(|c| kb.is_inc(c)) else {
            continue;
        };
        let dec_name = kb
            .accepted_decs(embedded)
            .into_iter()
            .next()
            .unwrap_or_else(|| "of_node_put".to_string());
        // The iterator is the macro parameter assigned from the
        // embedded call in the body (`child = of_get_next_child(..)`).
        let iter_arg = params
            .iter()
            .position(|p| {
                def.body.contains(&format!("{p} =")) || def.body.contains(&format!("{p}="))
            })
            .unwrap_or(0);
        out.push(SmartLoop::new(
            &def.name,
            iter_arg,
            dec_name,
            Some(embedded),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use refminer_clex::scan_defines;
    use refminer_cparse::parse_str;

    #[test]
    fn rc_struct_direct_and_nested() {
        let tu = parse_str(
            "t.h",
            r#"
struct kobj_holder { struct kobject kobj; };
struct device_node { struct kobj_holder holder; const char *name; };
struct unrelated { int x; };
struct ptr_only { struct kobject *remote; };
"#,
        );
        let rc = discover_rc_structs(&[&tu], 3);
        assert!(rc.contains("kobj_holder"));
        assert!(rc.contains("device_node"));
        assert!(!rc.contains("unrelated"));
        // Pointer members do not transfer refcounted-ness.
        assert!(!rc.contains("ptr_only"));
    }

    #[test]
    fn nesting_threshold_limits_propagation() {
        let tu = parse_str(
            "t.h",
            r#"
struct l0 { struct kref r; };
struct l1 { struct l0 inner; };
struct l2 { struct l1 inner; };
struct l3 { struct l2 inner; };
"#,
        );
        let rc = discover_rc_structs(&[&tu], 1);
        assert!(rc.contains("l1"));
        assert!(!rc.contains("l3"));
        let rc = discover_rc_structs(&[&tu], 5);
        assert!(rc.contains("l3"));
    }

    #[test]
    fn specific_wrapper_discovered() {
        let tu = parse_str(
            "t.c",
            r#"
struct widget { struct kref refs; };
struct widget *widget_get(struct widget *w)
{
        kref_get(&w->refs);
        return w;
}
void widget_put(struct widget *w)
{
        kref_put(&w->refs, widget_free);
}
"#,
        );
        let d = discover(&[&tu], &[], &ApiKb::builtin(), &DiscoverConfig::default());
        let get = d.apis.iter().find(|a| a.name == "widget_get").unwrap();
        assert_eq!(get.dir, RcDir::Inc);
        assert_eq!(get.class, RcClass::Specific);
        assert_eq!(get.flow, ObjectFlow::ArgAndReturned(0));
        assert_eq!(get.dec_names, vec!["widget_put"]);
        let put = d.apis.iter().find(|a| a.name == "widget_put").unwrap();
        assert_eq!(put.dir, RcDir::Dec);
    }

    #[test]
    fn findlike_discovered_with_null_deviation() {
        let tu = parse_str(
            "t.c",
            r#"
struct widget { struct kref refs; };
struct widget *widget_find(const char *name)
{
        struct widget *w = table_lookup(name);
        if (!w)
                return NULL;
        kref_get(&w->refs);
        return w;
}
"#,
        );
        let d = discover(&[&tu], &[], &ApiKb::builtin(), &DiscoverConfig::default());
        let find = d.apis.iter().find(|a| a.name == "widget_find").unwrap();
        assert_eq!(find.class, RcClass::Embedded);
        assert!(find.returns_object());
        assert!(find.may_return_null);
    }

    #[test]
    fn inc_on_error_deviation_discovered() {
        let tu = parse_str(
            "t.c",
            r#"
int my_pm_get_sync(struct device *dev)
{
        atomic_inc(&dev->power.usage_count);
        if (rpm_resume(dev) < 0)
                return -EAGAIN;
        return 0;
}
"#,
        );
        let d = discover(&[&tu], &[], &ApiKb::builtin(), &DiscoverConfig::default());
        let api = d.apis.iter().find(|a| a.name == "my_pm_get_sync").unwrap();
        assert!(api.inc_on_error);
    }

    #[test]
    fn smartloop_discovered_from_define() {
        let src = "\
#define for_each_widget(pool, w) \\
\tfor (w = widget_find_next(pool, NULL); w; w = widget_find_next(pool, w))
";
        let defines = scan_defines(src);
        let mut kb = ApiKb::builtin();
        kb.insert(RcApi::inc(
            "widget_find_next",
            RcClass::Embedded,
            ObjectFlow::ArgAndReturned(1),
            &["widget_put"],
        ));
        let loops = discover_smartloops(&defines, &kb);
        assert_eq!(loops.len(), 1);
        assert_eq!(loops[0].name, "for_each_widget");
        assert_eq!(loops[0].iter_arg, 1);
        assert_eq!(loops[0].dec_name, "widget_put");
        assert_eq!(loops[0].embedded_api.as_deref(), Some("widget_find_next"));
    }

    #[test]
    fn non_rc_loop_macro_ignored() {
        let src = "\
#define for_each_bit(b, mask) \\
\tfor (b = first_bit(mask); b >= 0; b = next_bit(mask, b))
";
        let defines = scan_defines(src);
        let loops = discover_smartloops(&defines, &ApiKb::builtin());
        assert!(loops.is_empty());
    }

    #[test]
    fn per_unit_discovery_merges_like_the_global_pass() {
        // The structs span units (the nested member lives in another
        // file than the refcounter), so the merge must fold struct
        // facts across units before propagating.
        let header = parse_str(
            "w.h",
            r#"
struct widget { struct kref refs; };
struct widget_holder { struct widget w; };
"#,
        );
        let code = parse_str(
            "w.c",
            r#"
void widget_put(struct widget *w) { kref_put(&w->refs, widget_free); }
"#,
        );
        let seed = ApiKb::builtin();
        let cfg = DiscoverConfig::default();
        let global = discover(&[&header, &code], &[], &seed, &cfg);
        let units = [discover_unit(&header, &seed), discover_unit(&code, &seed)];
        let merged = merge_discoveries(&[&units[0], &units[1]], &[], &seed, &cfg);
        assert_eq!(merged.rc_structs, global.rc_structs);
        assert_eq!(merged.apis, global.apis);
        assert!(merged.rc_structs.contains("widget_holder"));
        assert!(merged.apis.iter().any(|a| a.name == "widget_put"));
    }

    #[test]
    fn discovery_merges_into_kb() {
        let tu = parse_str(
            "t.c",
            r#"
struct widget { struct kref refs; };
void widget_put(struct widget *w) { kref_put(&w->refs, widget_free); }
"#,
        );
        let d = discover(&[&tu], &[], &ApiKb::builtin(), &DiscoverConfig::default());
        let kb = d.into_kb(ApiKb::builtin());
        assert!(kb.is_dec("widget_put"));
    }
}

//! # refminer-rcapi
//!
//! The refcounting API model of the SOSP '23 study: the three API
//! categories of §5 (General / Specific / Refcounting-Embedded), the
//! implementation deviations of §5.1 (inc-on-error, may-return-NULL),
//! smartloop macros (§5.2.1), a built-in knowledge base seeded with the
//! paper's Appendix A error-prone API list (Table 6), and a discovery
//! engine that infers all of the above from source (§6.1's lexer-parsing
//! stage).
//!
//! # Examples
//!
//! ```
//! use refminer_rcapi::ApiKb;
//!
//! let kb = ApiKb::builtin();
//! assert!(kb.pairs_with("bus_find_device", "put_device"));
//! assert!(kb.get("pm_runtime_get_sync").unwrap().inc_on_error);
//! ```

mod discover;
mod kb;
mod keywords;
mod model;

pub use discover::{
    discover, discover_rc_structs, discover_smartloops, discover_unit, merge_discoveries,
    DiscoverConfig, Discovery, StructFact, UnitDiscovery,
};
pub use kb::ApiKb;
pub use keywords::{
    is_findlike_name, name_direction, name_words, paired_dec_name, BUG_API_WORDS, DEC_WORDS,
    INC_WORDS,
};
pub use model::{ObjectFlow, RcApi, RcClass, RcDir, SmartLoop, RC_STRUCTS};

//! The API knowledge base: lookup tables binding call names to their
//! refcounting meaning, pre-seeded with the paper's Appendix A
//! (Table 6) plus the ubiquitous general/specific pairs.

use std::collections::HashMap;

use crate::keywords::{name_direction, paired_dec_name};
use crate::model::{ObjectFlow, RcApi, RcClass, RcDir, SmartLoop};

/// The queryable knowledge base.
///
/// # Examples
///
/// ```
/// use refminer_rcapi::{ApiKb, RcDir};
///
/// let kb = ApiKb::builtin();
/// let api = kb.get("of_find_matching_node").unwrap();
/// assert_eq!(api.dir, RcDir::Inc);
/// assert!(api.returns_object());
/// assert!(kb.smartloop("for_each_child_of_node").is_some());
/// ```
#[derive(Debug, Clone, Default)]
pub struct ApiKb {
    apis: HashMap<String, RcApi>,
    loops: HashMap<String, SmartLoop>,
}

impl ApiKb {
    /// An empty knowledge base.
    pub fn new() -> ApiKb {
        ApiKb::default()
    }

    /// The built-in knowledge base with the paper's error-prone APIs.
    pub fn builtin() -> ApiKb {
        let mut kb = ApiKb::new();
        kb.seed_general();
        kb.seed_specific();
        kb.seed_embedded();
        kb.seed_smartloops();
        kb
    }

    fn seed_general(&mut self) {
        use ObjectFlow::Arg;
        use RcClass::General;
        for (inc, dec) in [
            ("refcount_inc", "refcount_dec"),
            ("refcount_inc_not_zero", "refcount_dec"),
            ("kref_get", "kref_put"),
            ("kobject_get", "kobject_put"),
            ("atomic_inc", "atomic_dec"),
        ] {
            self.insert(RcApi::inc(inc, General, Arg(0), &[dec]));
            self.insert(RcApi::dec(dec, General, Arg(0)));
        }
        // kobject_init_and_add: general-object helper with the
        // inc-on-error deviation (§5.1.1).
        self.insert(
            RcApi::inc("kobject_init_and_add", General, Arg(0), &["kobject_put"])
                .with_inc_on_error(),
        );
    }

    fn seed_specific(&mut self) {
        use ObjectFlow::{Arg, ArgAndReturned};
        use RcClass::Specific;
        self.insert(RcApi::inc(
            "of_node_get",
            Specific,
            ArgAndReturned(0),
            &["of_node_put"],
        ));
        self.insert(RcApi::dec("of_node_put", Specific, Arg(0)));
        self.insert(RcApi::inc(
            "get_device",
            Specific,
            ArgAndReturned(0),
            &["put_device"],
        ));
        self.insert(RcApi::dec("put_device", Specific, Arg(0)));
        self.insert(RcApi::inc(
            "usb_serial_get",
            Specific,
            ArgAndReturned(0),
            &["usb_serial_put"],
        ));
        self.insert(RcApi::dec("usb_serial_put", Specific, Arg(0)));
        self.insert(RcApi::inc("dev_hold", Specific, Arg(0), &["dev_put"]));
        self.insert(RcApi::dec("dev_put", Specific, Arg(0)));
        self.insert(RcApi::inc("sock_hold", Specific, Arg(0), &["sock_put"]));
        self.insert(RcApi::dec("sock_put", Specific, Arg(0)));
        self.insert(RcApi::inc(
            "fwnode_handle_get",
            Specific,
            ArgAndReturned(0),
            &["fwnode_handle_put"],
        ));
        self.insert(RcApi::dec("fwnode_handle_put", Specific, Arg(0)));
        self.insert(RcApi::inc(
            "try_module_get",
            Specific,
            Arg(0),
            &["module_put"],
        ));
        self.insert(RcApi::dec("module_put", Specific, Arg(0)));
        self.insert(RcApi::dec("mdesc_release", Specific, Arg(0)));
        self.insert(RcApi::dec("sockfd_put", Specific, Arg(0)));
        self.insert(RcApi::dec("fput", Specific, Arg(0)));
        self.insert(RcApi::dec("nvmet_fc_tgt_q_put", Specific, Arg(0)));
        self.insert(RcApi::dec("lpfc_bsg_event_unref", Specific, Arg(0)));
        self.insert(RcApi::inc(
            "lpfc_bsg_event_ref",
            Specific,
            Arg(0),
            &["lpfc_bsg_event_unref"],
        ));
        // The Return-Error deviation family (§5.1.1): increments the PM
        // usage counter even when resume fails.
        self.insert(
            RcApi::inc(
                "pm_runtime_get_sync",
                Specific,
                Arg(0),
                &[
                    "pm_runtime_put",
                    "pm_runtime_put_sync",
                    "pm_runtime_put_autosuspend",
                    "pm_runtime_put_noidle",
                ],
            )
            .with_inc_on_error(),
        );
        for dec in [
            "pm_runtime_put",
            "pm_runtime_put_sync",
            "pm_runtime_put_autosuspend",
            "pm_runtime_put_noidle",
        ] {
            self.insert(RcApi::dec(dec, Specific, Arg(0)));
        }
        self.insert(RcApi::inc(
            "device_initialize",
            Specific,
            Arg(0),
            &["put_device"],
        ));
    }

    fn seed_embedded(&mut self) {
        use ObjectFlow::{ArgAndReturned, Returned};
        use RcClass::Embedded;
        // The of_* find family: every one returns a device_node with an
        // extra reference; the ones taking a `from` node also put it.
        for name in [
            "of_find_compatible_node",
            "of_find_matching_node",
            "of_find_matching_node_and_match",
            "of_find_node_by_name",
            "of_find_node_by_type",
        ] {
            self.insert(RcApi::inc(
                name,
                Embedded,
                ArgAndReturned(0),
                &["of_node_put"],
            ));
        }
        for name in [
            "of_find_node_by_path",
            "of_find_node_by_phandle",
            "of_parse_phandle",
            "of_get_parent",
            "of_get_child_by_name",
            "of_get_next_child",
            "of_graph_get_port_by_id",
            "of_graph_get_port_parent",
            "of_graph_get_remote_node",
            "of_get_node",
        ] {
            self.insert(RcApi::inc(name, Embedded, Returned, &["of_node_put"]));
        }
        self.insert(RcApi::inc(
            "bus_find_device",
            Embedded,
            Returned,
            &["put_device"],
        ));
        self.insert(RcApi::inc(
            "class_find_device",
            Embedded,
            Returned,
            &["put_device"],
        ));
        self.insert(RcApi::inc(
            "device_find_child",
            Embedded,
            Returned,
            &["put_device"],
        ));
        self.insert(RcApi::inc("ip_dev_find", Embedded, Returned, &["dev_put"]));
        self.insert(RcApi::inc(
            "sockfd_lookup",
            Embedded,
            Returned,
            &["sockfd_put", "fput"],
        ));
        self.insert(RcApi::inc(
            "tipc_node_find",
            Embedded,
            Returned,
            &["tipc_node_put"],
        ));
        self.insert(RcApi::dec(
            "tipc_node_put",
            RcClass::Specific,
            ObjectFlow::Arg(0),
        ));
        self.insert(RcApi::inc(
            "fc_rport_lookup",
            Embedded,
            Returned,
            &["kref_put"],
        ));
        self.insert(RcApi::inc(
            "rxrpc_lookup_peer",
            Embedded,
            Returned,
            &["rxrpc_put_peer"],
        ));
        self.insert(RcApi::dec(
            "rxrpc_put_peer",
            RcClass::Specific,
            ObjectFlow::Arg(0),
        ));
        self.insert(RcApi::inc(
            "lookup_bdev",
            Embedded,
            Returned,
            &["bdput", "blkdev_put"],
        ));
        self.insert(RcApi::dec("bdput", RcClass::Specific, ObjectFlow::Arg(0)));
        self.insert(RcApi::dec(
            "blkdev_put",
            RcClass::Specific,
            ObjectFlow::Arg(0),
        ));
        self.insert(RcApi::inc(
            "ipv4_neigh_lookup",
            Embedded,
            Returned,
            &["neigh_release"],
        ));
        self.insert(RcApi::dec(
            "neigh_release",
            RcClass::Specific,
            ObjectFlow::Arg(0),
        ));
        self.insert(RcApi::inc(
            "mpol_shared_policy_lookup",
            Embedded,
            Returned,
            &["mpol_cond_put"],
        ));
        self.insert(RcApi::dec(
            "mpol_cond_put",
            RcClass::Specific,
            ObjectFlow::Arg(0),
        ));
        self.insert(RcApi::inc(
            "tcp_ulp_find_autoload",
            Embedded,
            Returned,
            &["module_put"],
        ));
        self.insert(RcApi::inc(
            "gfs2_glock_nq_init",
            Embedded,
            ObjectFlow::Arg(0),
            &["gfs2_glock_dq_uninit"],
        ));
        self.insert(RcApi::dec(
            "gfs2_glock_dq_uninit",
            RcClass::Specific,
            ObjectFlow::Arg(0),
        ));
        self.insert(RcApi::inc(
            "usb_anchor_urb",
            Embedded,
            ObjectFlow::Arg(0),
            &["usb_unanchor_urb"],
        ));
        self.insert(RcApi::dec(
            "usb_unanchor_urb",
            RcClass::Specific,
            ObjectFlow::Arg(0),
        ));
        self.insert(RcApi::inc(
            "afs_alloc_read",
            Embedded,
            Returned,
            &["afs_put_read"],
        ));
        self.insert(RcApi::dec(
            "afs_put_read",
            RcClass::Specific,
            ObjectFlow::Arg(0),
        ));
        self.insert(RcApi::inc(
            "perf_cpu_map__new",
            Embedded,
            Returned,
            &["perf_cpu_map__put"],
        ));
        self.insert(RcApi::dec(
            "perf_cpu_map__put",
            RcClass::Specific,
            ObjectFlow::Arg(0),
        ));
        self.insert(RcApi::inc(
            "setup_find_cpu_node",
            Embedded,
            Returned,
            &["of_node_put"],
        ));
        self.insert(RcApi::inc(
            "tomoyo_mount_acl",
            Embedded,
            Returned,
            &["tomoyo_put_name"],
        ));
        // The Return-NULL deviants (§5.1.2, Table 6 "ID / Return-NULL").
        self.insert(
            RcApi::inc("mdesc_grab", Embedded, Returned, &["mdesc_release"]).with_may_return_null(),
        );
        self.insert(
            RcApi::inc(
                "amdgpu_device_ip_init",
                Embedded,
                Returned,
                &["amdgpu_device_ip_fini"],
            )
            .with_may_return_null(),
        );
        self.insert(RcApi::dec(
            "amdgpu_device_ip_fini",
            RcClass::Specific,
            ObjectFlow::Arg(0),
        ));
    }

    fn seed_smartloops(&mut self) {
        for sl in [
            SmartLoop::new(
                "for_each_child_of_node",
                1,
                "of_node_put",
                Some("of_get_next_child"),
            ),
            SmartLoop::new(
                "for_each_available_child_of_node",
                1,
                "of_node_put",
                Some("of_get_next_available_child"),
            ),
            SmartLoop::new(
                "for_each_endpoint_of_node",
                1,
                "of_node_put",
                Some("of_graph_get_next_endpoint"),
            ),
            SmartLoop::new(
                "for_each_node_by_name",
                0,
                "of_node_put",
                Some("of_find_node_by_name"),
            ),
            SmartLoop::new(
                "for_each_node_by_type",
                0,
                "of_node_put",
                Some("of_find_node_by_type"),
            ),
            SmartLoop::new(
                "for_each_compatible_node",
                0,
                "of_node_put",
                Some("of_find_compatible_node"),
            ),
            SmartLoop::new(
                "for_each_matching_node",
                0,
                "of_node_put",
                Some("of_find_matching_node"),
            ),
            SmartLoop::new(
                "for_each_matching_node_and_match",
                0,
                "of_node_put",
                Some("of_find_matching_node_and_match"),
            ),
            SmartLoop::new(
                "device_for_each_child_node",
                1,
                "fwnode_handle_put",
                Some("device_get_next_child_node"),
            ),
            SmartLoop::new(
                "fwnode_for_each_child_node",
                1,
                "fwnode_handle_put",
                Some("fwnode_get_next_child_node"),
            ),
            SmartLoop::new(
                "fwnode_for_each_parent_node",
                1,
                "fwnode_handle_put",
                Some("fwnode_get_parent"),
            ),
            SmartLoop::new("for_each_cpu_node", 0, "of_node_put", None),
        ] {
            self.insert_loop(sl);
        }
    }

    /// Adds (or replaces) an API.
    pub fn insert(&mut self, api: RcApi) {
        self.apis.insert(api.name.clone(), api);
    }

    /// Adds (or replaces) a smartloop.
    pub fn insert_loop(&mut self, sl: SmartLoop) {
        self.loops.insert(sl.name.clone(), sl);
    }

    /// Looks up an API by exact name.
    pub fn get(&self, name: &str) -> Option<&RcApi> {
        self.apis.get(name)
    }

    /// Looks up a smartloop by macro name.
    pub fn smartloop(&self, name: &str) -> Option<&SmartLoop> {
        self.loops.get(name)
    }

    /// Whether `name` is a known increment API.
    pub fn is_inc(&self, name: &str) -> bool {
        self.get(name).is_some_and(|a| a.dir == RcDir::Inc)
    }

    /// Whether `name` is a known decrement API.
    pub fn is_dec(&self, name: &str) -> bool {
        self.get(name).is_some_and(|a| a.dir == RcDir::Dec)
    }

    /// The decrement names accepted as pairing `inc_name`, falling back
    /// to keyword substitution for unknown APIs.
    pub fn accepted_decs(&self, inc_name: &str) -> Vec<String> {
        if let Some(api) = self.get(inc_name) {
            if !api.dec_names.is_empty() {
                return api.dec_names.clone();
            }
        }
        paired_dec_name(inc_name).into_iter().collect()
    }

    /// Whether `dec_name` is an accepted pairing for `inc_name`.
    pub fn pairs_with(&self, inc_name: &str, dec_name: &str) -> bool {
        self.accepted_decs(inc_name).iter().any(|d| d == dec_name)
    }

    /// Direction of a call, consulting the KB first and name keywords
    /// second.
    pub fn direction_of(&self, name: &str) -> Option<RcDir> {
        self.get(name)
            .map(|a| a.dir)
            .or_else(|| name_direction(name))
    }

    /// Iterates all known APIs.
    pub fn apis(&self) -> impl Iterator<Item = &RcApi> {
        self.apis.values()
    }

    /// Iterates all known smartloops.
    pub fn smartloops(&self) -> impl Iterator<Item = &SmartLoop> {
        self.loops.values()
    }

    /// Merges another knowledge base into this one (other wins on
    /// conflicts).
    pub fn merge(&mut self, other: ApiKb) {
        self.apis.extend(other.apis);
        self.loops.extend(other.loops);
    }

    /// Number of known APIs.
    pub fn len(&self) -> usize {
        self.apis.len()
    }

    /// Whether no APIs are known.
    pub fn is_empty(&self) -> bool {
        self.apis.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_covers_table6_families() {
        let kb = ApiKb::builtin();
        // Return-Error.
        assert!(kb.get("pm_runtime_get_sync").unwrap().inc_on_error);
        assert!(kb.get("kobject_init_and_add").unwrap().inc_on_error);
        // Return-NULL.
        assert!(kb.get("mdesc_grab").unwrap().may_return_null);
        // Hidden find family.
        assert!(kb.is_inc("of_find_compatible_node"));
        assert!(kb.is_inc("of_parse_phandle"));
        assert!(kb.is_inc("sockfd_lookup"));
        // Complete-hidden smartloops.
        for name in [
            "for_each_child_of_node",
            "for_each_node_by_name",
            "for_each_compatible_node",
            "device_for_each_child_node",
            "fwnode_for_each_parent_node",
        ] {
            assert!(kb.smartloop(name).is_some(), "{name} missing");
        }
    }

    #[test]
    fn pairing_lookup() {
        let kb = ApiKb::builtin();
        assert!(kb.pairs_with("of_find_node_by_name", "of_node_put"));
        assert!(kb.pairs_with("pm_runtime_get_sync", "pm_runtime_put_noidle"));
        assert!(!kb.pairs_with("of_find_node_by_name", "put_device"));
    }

    #[test]
    fn fallback_pairing_by_keywords() {
        let kb = ApiKb::builtin();
        // Unknown API: keyword substitution kicks in.
        assert_eq!(kb.accepted_decs("foo_widget_get"), vec!["foo_widget_put"]);
    }

    #[test]
    fn smartloop_iterators() {
        let kb = ApiKb::builtin();
        assert_eq!(kb.smartloop("for_each_child_of_node").unwrap().iter_arg, 1);
        assert_eq!(kb.smartloop("for_each_matching_node").unwrap().iter_arg, 0);
    }

    #[test]
    fn merge_overrides() {
        let mut kb = ApiKb::builtin();
        let before = kb.len();
        let mut extra = ApiKb::new();
        extra.insert(RcApi::dec(
            "my_custom_put",
            RcClass::Specific,
            ObjectFlow::Arg(0),
        ));
        kb.merge(extra);
        assert_eq!(kb.len(), before + 1);
        assert!(kb.is_dec("my_custom_put"));
    }

    #[test]
    fn direction_consults_kb_then_keywords() {
        let kb = ApiKb::builtin();
        // `of_find_matching_node` has no inc keyword but the KB knows.
        assert_eq!(kb.direction_of("of_find_matching_node"), Some(RcDir::Inc));
        // Unknown but keyworded.
        assert_eq!(kb.direction_of("snd_card_hold"), Some(RcDir::Inc));
        assert_eq!(kb.direction_of("unrelated_fn"), None);
    }
}

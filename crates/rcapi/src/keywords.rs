//! Name-keyword heuristics for refcounting APIs.
//!
//! The paper's first mining stage (§3.1) filters commits by the key
//! words of refcounting API names; Table 3 measures the semantic
//! distance between those keywords and the names of bug-causing APIs.
//! This module is the shared keyword vocabulary.

use crate::model::RcDir;

/// Keywords signalling a refcount *increment* in an API name.
pub const INC_WORDS: &[&str] = &[
    "get", "take", "hold", "grab", "ref", "inc", "acquire", "pin", "retain",
];

/// Keywords signalling a refcount *decrement* in an API name.
pub const DEC_WORDS: &[&str] = &[
    "put", "drop", "unhold", "release", "dec", "unref", "unpin", "free",
];

/// Keywords of the bug-causing (refcounting-embedded) API families the
/// paper analyzes in Table 3.
pub const BUG_API_WORDS: &[&str] = &["foreach", "find", "parse", "open", "probe", "register"];

/// Splits a C identifier into lowercase words (snake_case segments,
/// with `for_each` fused into `foreach` to match the paper's keyword).
pub fn name_words(name: &str) -> Vec<String> {
    let lowered = name.to_ascii_lowercase();
    let fused = lowered.replace("for_each", "foreach");
    fused
        .split('_')
        .filter(|w| !w.is_empty())
        .map(str::to_string)
        .collect()
}

/// Guesses the refcounting direction of an API from its name alone.
///
/// Returns `None` when the name carries no (or conflicting) signals.
///
/// # Examples
///
/// ```
/// use refminer_rcapi::{name_direction, RcDir};
///
/// assert_eq!(name_direction("of_node_get"), Some(RcDir::Inc));
/// assert_eq!(name_direction("usb_serial_put"), Some(RcDir::Dec));
/// assert_eq!(name_direction("of_find_matching_node"), None);
/// ```
pub fn name_direction(name: &str) -> Option<RcDir> {
    let words = name_words(name);
    let inc = words.iter().any(|w| INC_WORDS.contains(&w.as_str()));
    let dec = words.iter().any(|w| DEC_WORDS.contains(&w.as_str()));
    match (inc, dec) {
        (true, false) => Some(RcDir::Inc),
        (false, true) => Some(RcDir::Dec),
        _ => None,
    }
}

/// Derives the conventional paired decrement name for an increment API
/// by keyword substitution (`of_node_get` → `of_node_put`).
pub fn paired_dec_name(inc_name: &str) -> Option<String> {
    const PAIRS: &[(&str, &str)] = &[
        ("get", "put"),
        ("take", "put"),
        ("hold", "put"),
        ("grab", "release"),
        ("acquire", "release"),
        ("pin", "unpin"),
        ("ref", "unref"),
        ("inc", "dec"),
        ("retain", "release"),
    ];
    for (inc, dec) in PAIRS {
        // Substitute only whole snake_case segments.
        let segs: Vec<&str> = inc_name.split('_').collect();
        if segs.iter().any(|s| s == inc) {
            let replaced: Vec<String> = segs
                .iter()
                .map(|s| {
                    if s == inc {
                        dec.to_string()
                    } else {
                        s.to_string()
                    }
                })
                .collect();
            return Some(replaced.join("_"));
        }
    }
    None
}

/// Whether a name looks like a *find*-like / iteration API (the
/// hidden-refcounting families of §5.2).
pub fn is_findlike_name(name: &str) -> bool {
    let words = name_words(name);
    words.iter().any(|w| {
        matches!(
            w.as_str(),
            "find" | "foreach" | "lookup" | "parse" | "match" | "search"
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_names() {
        assert_eq!(name_words("of_node_get"), vec!["of", "node", "get"]);
        assert_eq!(
            name_words("for_each_child_of_node"),
            vec!["foreach", "child", "of", "node"]
        );
    }

    #[test]
    fn directions() {
        assert_eq!(name_direction("kref_get"), Some(RcDir::Inc));
        assert_eq!(name_direction("kref_put"), Some(RcDir::Dec));
        assert_eq!(name_direction("dev_hold"), Some(RcDir::Inc));
        assert_eq!(name_direction("dev_put"), Some(RcDir::Dec));
        assert_eq!(name_direction("mdesc_grab"), Some(RcDir::Inc));
        // `sockfd_lookup` has neither word.
        assert_eq!(name_direction("sockfd_lookup"), None);
        // `get_put_thing` is conflicting.
        assert_eq!(name_direction("get_put_thing"), None);
    }

    #[test]
    fn pairing() {
        assert_eq!(
            paired_dec_name("of_node_get").as_deref(),
            Some("of_node_put")
        );
        assert_eq!(paired_dec_name("dev_hold").as_deref(), Some("dev_put"));
        assert_eq!(
            paired_dec_name("mdesc_grab").as_deref(),
            Some("mdesc_release")
        );
        assert_eq!(paired_dec_name("plain_name"), None);
    }

    #[test]
    fn segment_substitution_is_whole_word() {
        // `target` contains "get" as a substring but not a segment.
        assert_eq!(paired_dec_name("set_target"), None);
    }

    #[test]
    fn findlike_names() {
        assert!(is_findlike_name("of_find_matching_node"));
        assert!(is_findlike_name("for_each_child_of_node"));
        assert!(is_findlike_name("sockfd_lookup"));
        assert!(is_findlike_name("of_parse_phandle"));
        assert!(!is_findlike_name("of_node_put"));
    }
}

//! The refcounting API model: the paper's three API categories (§5) and
//! their deviation flags (§5.1).

/// The paper's API taxonomy (§5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RcClass {
    /// Operates basic refcounted structures directly
    /// (`refcount_inc`, `kref_put`, `kobject_get`, ...).
    General,
    /// Wraps a general API for one specific object type
    /// (`of_node_get`/`of_node_put` for `struct device_node`).
    Specific,
    /// Performs a non-refcounting task (usually *find*) with an
    /// embedded refcount operation (`bus_find_device`,
    /// `of_find_matching_node`, ...). The category responsible for
    /// hundreds of missing-refcounting bugs.
    Embedded,
}

/// Whether an API increments or decrements the refcounter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RcDir {
    /// Increases the refcounter (the paper's 𝒢 operator).
    Inc,
    /// Decreases the refcounter (the paper's 𝒫 operator).
    Dec,
}

/// Where the refcounted object flows through the API.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ObjectFlow {
    /// The object is argument `i` (0-based).
    Arg(usize),
    /// The object is the return value (find-like APIs).
    Returned,
    /// Both: argument `i` is consumed and a new object is returned
    /// (`of_find_matching_node(from, ..)` puts `from` and returns the
    /// next node with an extra reference).
    ArgAndReturned(usize),
}

/// One refcounting API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RcApi {
    /// Function name.
    pub name: String,
    /// Which of the paper's categories it falls in.
    pub class: RcClass,
    /// Increment or decrement.
    pub dir: RcDir,
    /// How the object flows through the call.
    pub flow: ObjectFlow,
    /// For increments: the names accepted as the paired decrement.
    pub dec_names: Vec<String>,
    /// Deviation (§5.1.1): increments the refcounter even when the call
    /// fails and returns an error code (`pm_runtime_get_sync`), so the
    /// caller must decrement on *every* path.
    pub inc_on_error: bool,
    /// Deviation (§5.1.2): may return NULL instead of the object, so
    /// the result needs a NULL check before any dereference.
    pub may_return_null: bool,
    /// For decrements: also releases attached resources when the count
    /// hits zero, so replacing it with a bare `kfree` leaks (§5.3.3).
    pub releases_resources: bool,
}

impl RcApi {
    /// A plain increment API with the given paired decrements.
    pub fn inc(
        name: impl Into<String>,
        class: RcClass,
        flow: ObjectFlow,
        dec_names: &[&str],
    ) -> RcApi {
        RcApi {
            name: name.into(),
            class,
            dir: RcDir::Inc,
            flow,
            dec_names: dec_names.iter().map(|s| s.to_string()).collect(),
            inc_on_error: false,
            may_return_null: false,
            releases_resources: false,
        }
    }

    /// A plain decrement API.
    pub fn dec(name: impl Into<String>, class: RcClass, flow: ObjectFlow) -> RcApi {
        RcApi {
            name: name.into(),
            class,
            dir: RcDir::Dec,
            flow,
            dec_names: Vec::new(),
            inc_on_error: false,
            may_return_null: false,
            releases_resources: true,
        }
    }

    /// Marks the increment as incrementing even on error return (𝒢_E).
    pub fn with_inc_on_error(mut self) -> RcApi {
        self.inc_on_error = true;
        self
    }

    /// Marks the increment as possibly returning NULL (𝒢_N).
    pub fn with_may_return_null(mut self) -> RcApi {
        self.may_return_null = true;
        self
    }

    /// Whether the object (with its new reference) is handed back via
    /// the return value.
    pub fn returns_object(&self) -> bool {
        matches!(
            self.flow,
            ObjectFlow::Returned | ObjectFlow::ArgAndReturned(_)
        )
    }

    /// The argument index carrying the object, if any.
    pub fn object_arg(&self) -> Option<usize> {
        match self.flow {
            ObjectFlow::Arg(i) | ObjectFlow::ArgAndReturned(i) => Some(i),
            ObjectFlow::Returned => None,
        }
    }
}

/// A macro-defined iteration construct with embedded refcounting — the
/// paper's *smartloop* (§5.2.1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmartLoop {
    /// Macro name, e.g. `for_each_child_of_node`.
    pub name: String,
    /// Index of the macro argument that is the iterator object (whose
    /// refcount is raised each iteration).
    pub iter_arg: usize,
    /// The decrement API that must be applied to the iterator when the
    /// loop is left early.
    pub dec_name: String,
    /// The embedded find-like API the macro expands to, if known.
    pub embedded_api: Option<String>,
}

impl SmartLoop {
    /// Creates a smartloop description.
    pub fn new(
        name: impl Into<String>,
        iter_arg: usize,
        dec_name: impl Into<String>,
        embedded_api: Option<&str>,
    ) -> SmartLoop {
        SmartLoop {
            name: name.into(),
            iter_arg,
            dec_name: dec_name.into(),
            embedded_api: embedded_api.map(str::to_string),
        }
    }
}

/// Structures whose embedded counters make a containing object
/// refcounted.
pub const RC_STRUCTS: &[&str] = &["kref", "kobject", "refcount_t", "atomic_t"];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inc_builder_defaults() {
        let api = RcApi::inc(
            "of_node_get",
            RcClass::Specific,
            ObjectFlow::ArgAndReturned(0),
            &["of_node_put"],
        );
        assert_eq!(api.dir, RcDir::Inc);
        assert!(!api.inc_on_error);
        assert!(api.returns_object());
        assert_eq!(api.object_arg(), Some(0));
        assert_eq!(api.dec_names, vec!["of_node_put"]);
    }

    #[test]
    fn deviation_flags() {
        let api = RcApi::inc(
            "pm_runtime_get_sync",
            RcClass::Specific,
            ObjectFlow::Arg(0),
            &["pm_runtime_put"],
        )
        .with_inc_on_error();
        assert!(api.inc_on_error);
        assert!(!api.returns_object());
    }

    #[test]
    fn returned_flow_has_no_arg() {
        let api = RcApi::inc(
            "bus_find_device",
            RcClass::Embedded,
            ObjectFlow::Returned,
            &["put_device"],
        );
        assert_eq!(api.object_arg(), None);
        assert!(api.returns_object());
    }
}

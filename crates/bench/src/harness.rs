//! A minimal benchmarking harness with a criterion-shaped API surface
//! (`Criterion`, `benchmark_group`, `Bencher::iter`, `Throughput`), so
//! the bench targets read conventionally while building offline.
//!
//! Measurement model: each benchmark is warmed up briefly, then timed
//! over enough iterations to fill a fixed measurement window; the
//! reported figure is mean wall-clock time per iteration. Good enough
//! to spot order-of-magnitude regressions, which is what the tier-1
//! suite cares about.

use std::time::{Duration, Instant};

/// Target measurement window per benchmark.
const MEASURE_WINDOW: Duration = Duration::from_millis(300);
/// Warm-up window per benchmark.
const WARMUP_WINDOW: Duration = Duration::from_millis(50);

/// Declared throughput of a benchmark, echoed in the report.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier (criterion-compatible constructor).
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Builds an id from a parameter's display form.
    pub fn from_parameter<T: std::fmt::Display>(p: T) -> Self {
        BenchmarkId(p.to_string())
    }

    /// Builds an id from a name and a parameter.
    pub fn new<T: std::fmt::Display>(name: &str, p: T) -> Self {
        BenchmarkId(format!("{name}/{p}"))
    }
}

/// The per-benchmark timing driver passed to `iter` closures.
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `f`, first warming up, then measuring for a fixed window.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        // Warm-up (also primes caches and the lazy fixtures).
        let warm_start = Instant::now();
        while warm_start.elapsed() < WARMUP_WINDOW {
            std::hint::black_box(f());
        }
        // Measurement.
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < MEASURE_WINDOW {
            std::hint::black_box(f());
            iters += 1;
        }
        self.elapsed = start.elapsed();
        self.iters = iters.max(1);
    }
}

/// One finished measurement.
struct Record {
    name: String,
    per_iter: Duration,
    throughput: Option<Throughput>,
}

/// The top-level harness: collects measurements, prints a report.
#[derive(Default)]
pub struct Criterion {
    records: Vec<Record>,
}

impl Criterion {
    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: 1,
        };
        f(&mut b);
        self.push(name.to_string(), &b, None);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            c: self,
            name: name.to_string(),
            throughput: None,
        }
    }

    fn push(&mut self, name: String, b: &Bencher, throughput: Option<Throughput>) {
        let per_iter = if b.iters > 0 {
            b.elapsed / (b.iters as u32)
        } else {
            Duration::ZERO
        };
        self.records.push(Record {
            name,
            per_iter,
            throughput,
        });
    }

    /// Prints the collected measurements to stdout.
    pub fn report(&self) {
        let width = self.records.iter().map(|r| r.name.len()).max().unwrap_or(0);
        for r in &self.records {
            let rate = match r.throughput {
                Some(Throughput::Bytes(n)) if !r.per_iter.is_zero() => {
                    let mbps = n as f64 / r.per_iter.as_secs_f64() / 1.0e6;
                    format!("  ({mbps:.1} MB/s)")
                }
                Some(Throughput::Elements(n)) if !r.per_iter.is_zero() => {
                    let eps = n as f64 / r.per_iter.as_secs_f64();
                    format!("  ({eps:.0} elem/s)")
                }
                _ => String::new(),
            };
            println!(
                "{:<width$}  {:>12}{}",
                r.name,
                fmt_duration(r.per_iter),
                rate
            );
        }
    }
}

/// A group of benchmarks sharing a name prefix and throughput setting.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares the throughput used for the rate column.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Accepted for criterion compatibility; the fixed measurement
    /// window makes a sample count irrelevant here.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: 1,
        };
        f(&mut b);
        let full = format!("{}/{}", self.name, name);
        self.c.push(full, &b, self.throughput);
        self
    }

    /// Runs one parameterized benchmark within the group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: 1,
        };
        f(&mut b, input);
        let full = format!("{}/{}", self.name, id.0);
        self.c.push(full, &b, self.throughput);
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1.0e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1.0e6)
    } else {
        format!("{:.2} s", ns as f64 / 1.0e9)
    }
}

/// Groups benchmark functions under one callable, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($f:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::harness::Criterion) {
            $( $f(c); )+
        }
    };
}

/// Entry point running each group then printing the report.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::harness::Criterion::default();
            $( $group(&mut c); )+
            c.report();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        assert_eq!(c.records.len(), 1);
        assert!(c.records[0].per_iter < Duration::from_millis(1));
    }

    #[test]
    fn group_names_compose() {
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("g");
            g.throughput(Throughput::Bytes(100));
            g.bench_function("inner", |b| b.iter(|| 2 * 2));
            g.finish();
        }
        assert_eq!(c.records[0].name, "g/inner");
    }
}

//! # refminer-bench
//!
//! Benchmarks for the refminer pipeline, driven by a small
//! self-contained harness ([`harness`]) so the workspace builds with no
//! external benchmarking framework. Fixtures shared by the bench
//! targets live here.

pub mod harness;

use refminer::corpus::{generate_tree, SyntheticTree, TreeConfig};

/// A mid-sized fixture tree (~10% of the Table 5 plan) reused across
/// benches so they measure analysis cost, not generation cost.
pub fn fixture_tree() -> SyntheticTree {
    generate_tree(&TreeConfig {
        scale: 0.1,
        include_tricky: false,
        ..Default::default()
    })
}

/// A representative single source file from the fixture (a few bugs,
/// some clean code).
pub fn fixture_file() -> (String, String) {
    let tree = fixture_tree();
    let f = tree
        .files
        .iter()
        .find(|f| f.path.ends_with(".c") && f.content.len() > 800)
        .expect("fixture has sources");
    (f.path.clone(), f.content.clone())
}

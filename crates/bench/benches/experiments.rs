//! One benchmark per paper table/figure: the cost of regenerating each
//! artifact from its substrate (scaled-down substrates keep wall time
//! sane; the computation per element is the real thing).

use refminer_bench::harness::Criterion;
use refminer_bench::{criterion_group, criterion_main};

use refminer::corpus::{generate_history, generate_tree, HistoryConfig, TreeConfig};
use refminer::cparse::parse_str;
use refminer::cpg::FunctionGraph;
use refminer::dataset::{
    classify_history, growth_by_year, triage, DistributionStats, ImpactStats, LifetimeStats,
};
use refminer::rcapi::ApiKb;
use refminer::template::{parse_template, TemplateMatcher};
use refminer::w2v::{W2vConfig, Word2Vec};
use refminer::{audit, AuditConfig, Project};

fn small_history() -> refminer::corpus::History {
    generate_history(&HistoryConfig {
        n_bugs: 150,
        n_noise: 100,
        n_reverts: 4,
        n_neutral: 500,
        ..Default::default()
    })
}

/// Figure 1: mining + growth histogram.
fn bench_fig1(c: &mut Criterion) {
    let h = small_history();
    let kb = ApiKb::builtin();
    c.bench_function("fig1/growth_trend", |b| {
        b.iter(|| {
            let bugs = classify_history(&h.commits, &kb);
            growth_by_year(&bugs).len()
        })
    });
}

/// Figure 2: distribution + density.
fn bench_fig2(c: &mut Criterion) {
    let h = small_history();
    let kb = ApiKb::builtin();
    let bugs = classify_history(&h.commits, &kb);
    c.bench_function("fig2/distribution", |b| {
        b.iter(|| DistributionStats::compute(&bugs).counts.len())
    });
}

/// Figure 3: lifetime statistics.
fn bench_fig3(c: &mut Criterion) {
    let h = small_history();
    let kb = ApiKb::builtin();
    let bugs = classify_history(&h.commits, &kb);
    c.bench_function("fig3/lifetimes", |b| {
        b.iter(|| LifetimeStats::compute(&bugs).tagged)
    });
}

/// Table 1: template parsing + matching against the listings.
fn bench_table1(c: &mut Criterion) {
    let kb = ApiKb::builtin();
    let tu = parse_str(
        "l2.c",
        "static int setup(struct usb_serial *serial) { usb_serial_put(serial); mutex_unlock(&serial->disc_mutex); return 0; }",
    );
    let g = FunctionGraph::build(tu.functions().next().unwrap());
    c.bench_function("table1/template_match", |b| {
        b.iter(|| {
            let t = parse_template("F_start -> S_P(p0) -> S_{U.D}(p0) -> F_end").unwrap();
            TemplateMatcher::new(&kb).find(&t, &g).len()
        })
    });
}

/// Table 2: taxonomy statistics.
fn bench_table2(c: &mut Criterion) {
    let h = small_history();
    let kb = ApiKb::builtin();
    let bugs = classify_history(&h.commits, &kb);
    c.bench_function("table2/impact_stats", |b| {
        b.iter(|| ImpactStats::compute(&bugs).total)
    });
}

/// Table 3: CBOW training on a small corpus.
fn bench_table3(c: &mut Criterion) {
    let h = small_history();
    let corpus: String = h
        .commits
        .iter()
        .map(|c| c.message.replace('\n', " "))
        .collect::<Vec<_>>()
        .join("\n");
    let cfg = W2vConfig {
        dim: 32,
        epochs: 2,
        min_count: 2,
        ..Default::default()
    };
    let mut g = c.benchmark_group("table3");
    g.sample_size(10);
    g.bench_function("w2v_train", |b| {
        b.iter(|| Word2Vec::train_text(&corpus, &cfg).vocab().len())
    });
    g.finish();
}

/// Tables 4 & 5: the checker audit + triage.
fn bench_table4_5(c: &mut Criterion) {
    let tree = generate_tree(&TreeConfig {
        scale: 0.1,
        ..Default::default()
    });
    let project = Project::from_tree(&tree);
    let mut g = c.benchmark_group("table4_5");
    g.sample_size(20);
    g.bench_function("audit_and_triage", |b| {
        b.iter(|| {
            let report = audit(&project, &AuditConfig::default());
            triage(&report.findings, &tree.manifest).totals().bugs
        })
    });
    g.finish();
}

/// Table 6: API discovery over the tree.
fn bench_table6(c: &mut Criterion) {
    let tree = generate_tree(&TreeConfig {
        scale: 0.1,
        ..Default::default()
    });
    let project = Project::from_tree(&tree);
    c.bench_function("table6/kb_after_discovery", |b| {
        b.iter(|| audit(&project, &AuditConfig::default()).kb.len())
    });
}

criterion_group!(
    benches,
    bench_fig1,
    bench_fig2,
    bench_fig3,
    bench_table1,
    bench_table2,
    bench_table3,
    bench_table4_5,
    bench_table6
);
criterion_main!(benches);

//! Per-checker benchmarks: the cost of each of the nine anti-pattern
//! detectors over the same fixture functions.

use refminer_bench::harness::Criterion;
use refminer_bench::{criterion_group, criterion_main};

use refminer::checkers::{default_checkers, CheckCtx};
use refminer::cparse::parse_str;
use refminer::cpg::FunctionGraph;
use refminer::rcapi::ApiKb;
use refminer_bench::fixture_tree;

fn bench_each_checker(c: &mut Criterion) {
    let tree = fixture_tree();
    // Parse a handful of representative files.
    let tus: Vec<_> = tree
        .files
        .iter()
        .filter(|f| f.path.ends_with(".c"))
        .take(12)
        .map(|f| parse_str(&f.path, &f.content))
        .collect();
    let graphs: Vec<Vec<FunctionGraph>> = tus.iter().map(FunctionGraph::build_all).collect();
    let kb = ApiKb::builtin();

    let db = refminer_checkers::ProgramDb::empty();
    let mut g = c.benchmark_group("checker");
    for checker in default_checkers() {
        g.bench_function(checker.pattern().id(), |b| {
            b.iter(|| {
                let mut findings = 0usize;
                for (tu, gs) in tus.iter().zip(&graphs) {
                    for graph in gs {
                        let ctx = CheckCtx {
                            file: &tu.path,
                            graph,
                            kb: &kb,
                            unit: tu,
                            all_graphs: gs,
                            program: &db,
                            trace: refminer_trace::TraceHandle::disabled(),
                        };
                        findings += checker.check(&ctx).len();
                    }
                }
                findings
            })
        });
    }
    g.finish();
}

fn bench_graph_construction(c: &mut Criterion) {
    let tree = fixture_tree();
    let tus: Vec<_> = tree
        .files
        .iter()
        .filter(|f| f.path.ends_with(".c"))
        .take(12)
        .map(|f| parse_str(&f.path, &f.content))
        .collect();
    c.bench_function("checker/graph_construction_12_files", |b| {
        b.iter(|| {
            tus.iter()
                .map(|tu| FunctionGraph::build_all(tu).len())
                .sum::<usize>()
        })
    });
}

criterion_group!(benches, bench_each_checker, bench_graph_construction);
criterion_main!(benches);

//! Stage-by-stage pipeline benchmarks: lexing, parsing, CPG
//! construction, discovery, and the end-to-end audit.

use refminer_bench::harness::{BenchmarkId, Criterion, Throughput};
use refminer_bench::{criterion_group, criterion_main};

use refminer::clex::{scan_defines, Lexer};
use refminer::corpus::{apply_chaos, generate_tree, ChaosConfig, TreeConfig};
use refminer::cparse::parse_str;
use refminer::cpg::FunctionGraph;
use refminer::rcapi::{discover, ApiKb, DiscoverConfig};
use refminer::{audit, audit_with_cache, AuditCache, AuditConfig, Project};
use refminer_bench::fixture_file;

fn bench_lexer(c: &mut Criterion) {
    let (_, src) = fixture_file();
    let mut g = c.benchmark_group("lexer");
    g.throughput(Throughput::Bytes(src.len() as u64));
    g.bench_function("tokenize", |b| b.iter(|| Lexer::new(&src).tokenize().len()));
    g.bench_function("scan_defines", |b| b.iter(|| scan_defines(&src).len()));
    g.finish();
}

fn bench_parser(c: &mut Criterion) {
    let (path, src) = fixture_file();
    let mut g = c.benchmark_group("parser");
    g.throughput(Throughput::Bytes(src.len() as u64));
    g.bench_function("parse_file", |b| {
        b.iter(|| parse_str(&path, &src).items.len())
    });
    g.finish();
}

fn bench_cpg(c: &mut Criterion) {
    let (path, src) = fixture_file();
    let tu = parse_str(&path, &src);
    c.bench_function("cpg/build_all_functions", |b| {
        b.iter(|| FunctionGraph::build_all(&tu).len())
    });
}

fn bench_discovery(c: &mut Criterion) {
    let tree = generate_tree(&TreeConfig {
        scale: 0.05,
        include_tricky: false,
        ..Default::default()
    });
    let tus: Vec<_> = tree
        .files
        .iter()
        .map(|f| parse_str(&f.path, &f.content))
        .collect();
    let tu_refs: Vec<&_> = tus.iter().collect();
    let defines: Vec<_> = tree
        .files
        .iter()
        .flat_map(|f| scan_defines(&f.content))
        .collect();
    c.bench_function("discovery/apis_and_smartloops", |b| {
        b.iter(|| {
            discover(
                &tu_refs,
                &defines,
                &ApiKb::builtin(),
                &DiscoverConfig::default(),
            )
            .apis
            .len()
        })
    });
}

fn bench_audit_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("audit_end_to_end");
    g.sample_size(20);
    for scale in [0.05f64, 0.1, 0.25] {
        let tree = generate_tree(&TreeConfig {
            scale,
            include_tricky: false,
            ..Default::default()
        });
        let project = Project::from_tree(&tree);
        g.throughput(Throughput::Elements(tree.manifest.bugs.len() as u64));
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("scale_{scale}")),
            &project,
            |b, project| b.iter(|| audit(project, &AuditConfig::default()).findings.len()),
        );
    }
    g.finish();
}

fn bench_chaos_audit(c: &mut Criterion) {
    // The cost of fault isolation: a quarter of the tree corrupted,
    // audited under the same default limits as the clean runs above.
    let tree = generate_tree(&TreeConfig {
        scale: 0.05,
        include_tricky: false,
        ..Default::default()
    });
    let chaos = apply_chaos(&tree, &ChaosConfig::default());
    let project = Project::from_sources(chaos.to_sources());
    let mut g = c.benchmark_group("audit_chaos");
    g.sample_size(20);
    g.throughput(Throughput::Elements(tree.files.len() as u64));
    g.bench_function("scale_0.05_ratio_0.25", |b| {
        b.iter(|| {
            let report = audit(&project, &AuditConfig::default());
            (report.findings.len(), report.diagnostics.degraded)
        })
    });
    g.finish();
}

fn bench_parallel_audit(c: &mut Criterion) {
    // Sequential vs work-stealing workers on the same tree. On a
    // single-core host the two are expected to tie (modulo scheduling
    // overhead); the jobs=auto row is the one to watch on real metal.
    let tree = generate_tree(&TreeConfig {
        scale: 0.1,
        include_tricky: false,
        ..Default::default()
    });
    let project = Project::from_tree(&tree);
    let mut g = c.benchmark_group("audit_parallel");
    g.sample_size(20);
    g.throughput(Throughput::Elements(tree.files.len() as u64));
    for (label, jobs) in [("jobs_1", 1usize), ("jobs_auto", 0)] {
        g.bench_with_input(BenchmarkId::from_parameter(label), &jobs, |b, &jobs| {
            b.iter(|| {
                audit(
                    &project,
                    &AuditConfig {
                        jobs,
                        ..Default::default()
                    },
                )
                .findings
                .len()
            })
        });
    }
    g.finish();
}

fn bench_cache_replay(c: &mut Criterion) {
    // The incremental cache's two extremes: a fully warm replay of an
    // unchanged tree, and the cold run that seeds it.
    let tree = generate_tree(&TreeConfig {
        scale: 0.1,
        include_tricky: false,
        ..Default::default()
    });
    let project = Project::from_tree(&tree);
    let cfg = AuditConfig::default();
    let mut g = c.benchmark_group("audit_cache");
    g.sample_size(20);
    g.throughput(Throughput::Elements(tree.files.len() as u64));
    g.bench_function("cold", |b| {
        b.iter(|| {
            let mut cache = AuditCache::new();
            audit_with_cache(&project, &cfg, &mut cache).findings.len()
        })
    });
    g.bench_function("warm_replay", |b| {
        let mut cache = AuditCache::new();
        audit_with_cache(&project, &cfg, &mut cache);
        b.iter(|| audit_with_cache(&project, &cfg, &mut cache).findings.len())
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_lexer,
    bench_parser,
    bench_cpg,
    bench_discovery,
    bench_audit_scaling,
    bench_chaos_audit,
    bench_parallel_audit,
    bench_cache_replay
);
criterion_main!(benches);

//! Seeded fuzz regression tests for the JSON parser and writer.
//!
//! The parser runs on input-derived text everywhere in the pipeline —
//! persisted caches, ground-truth manifests, benchmark reports — so a
//! reachable panic here is a crash a corrupt file can trigger at will.
//! These tests drive the parser with deterministic (ChaCha8-seeded)
//! garbage, mutated valid documents, and generated values, asserting it
//! always returns `Ok`/`Err` instead of panicking and that the
//! writer/parser pair round-trips.

use std::panic::{catch_unwind, AssertUnwindSafe};

use refminer_json::Value;
use refminer_prng::{ChaCha8Rng, Rng, SeedableRng};

/// Characters the generators draw from: JSON structure, escapes,
/// digits, exponent/sign marks, whitespace, multi-byte unicode, and a
/// control character — everything the parser special-cases.
const PALETTE: &[char] = &[
    '{', '}', '[', ']', ':', ',', '"', '\\', '/', 'a', 'z', 'A', '0', '1', '9', '.', '-', '+', 'e',
    'E', 't', 'r', 'u', 'n', 'f', 'l', 's', ' ', '\t', '\n', '\r', 'é', '✓', '\u{0}', '\u{7f}',
    '𝄞',
];

fn gen_text(rng: &mut ChaCha8Rng, max_len: usize) -> String {
    let len = rng.gen_range(0..=max_len);
    (0..len)
        .map(|_| PALETTE[rng.gen_range(0..PALETTE.len())])
        .collect()
}

/// Parses under `catch_unwind`, failing the test with the offending
/// input on panic — the input is the whole bug report.
fn parse_must_not_panic(input: &str) -> Result<Value, refminer_json::ParseJsonError> {
    catch_unwind(AssertUnwindSafe(|| Value::parse(input)))
        .unwrap_or_else(|_| panic!("Value::parse panicked on {input:?}"))
}

#[test]
fn parser_survives_random_garbage() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x5EED_0001);
    for _ in 0..4000 {
        let text = gen_text(&mut rng, 64);
        let _ = parse_must_not_panic(&text);
    }
}

#[test]
fn parser_survives_mutated_valid_documents() {
    let seeds = [
        r#"{"version":3,"runs":{"warm":{"secs":0.25,"hits":[1,2,3]}}}"#,
        r#"[null,true,false,-1.5e-3,"a\"b\\cé",{"k":[{}]}]"#,
        r#"{"findings":[{"file":"a.c","line":12,"msg":"x ✓"}]}"#,
    ];
    let mut rng = ChaCha8Rng::seed_from_u64(0x5EED_0002);
    for _ in 0..3000 {
        let base = seeds[rng.gen_range(0..seeds.len())];
        let mut chars: Vec<char> = base.chars().collect();
        for _ in 0..rng.gen_range(1..=4usize) {
            let at = rng.gen_range(0..chars.len());
            chars[at] = PALETTE[rng.gen_range(0..PALETTE.len())];
        }
        let mutated: String = chars.into_iter().collect();
        let _ = parse_must_not_panic(&mutated);
    }
}

fn gen_value(rng: &mut ChaCha8Rng, depth: usize) -> Value {
    match rng.gen_range(0..6u32) {
        0 => Value::Null,
        1 => Value::Bool(rng.gen::<bool>()),
        // Integral doubles round-trip exactly through the writer.
        2 => Value::Num(rng.gen_range(-1_000_000_000i64..1_000_000_000) as f64),
        3 => Value::Str(gen_text(rng, 12)),
        4 if depth < 3 => {
            let n = rng.gen_range(0..4usize);
            Value::Arr((0..n).map(|_| gen_value(rng, depth + 1)).collect())
        }
        5 if depth < 3 => {
            let n = rng.gen_range(0..4usize);
            Value::Obj(
                (0..n)
                    .map(|i| {
                        (
                            format!("k{i}_{}", gen_text(rng, 4)),
                            gen_value(rng, depth + 1),
                        )
                    })
                    .collect(),
            )
        }
        _ => Value::Null,
    }
}

#[test]
fn generated_values_round_trip() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x5EED_0003);
    for _ in 0..1000 {
        let v = gen_value(&mut rng, 0);
        let text = v.to_string();
        let back = parse_must_not_panic(&text)
            .unwrap_or_else(|e| panic!("writer emitted unparseable JSON {text:?}: {e:?}"));
        assert_eq!(back, v, "round trip diverged through {text:?}");
        // A second trip is a fixpoint: print(parse(print(v))) == print(v).
        assert_eq!(back.to_string(), text);
    }
}

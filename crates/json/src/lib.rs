//! # refminer-json
//!
//! A minimal JSON document model with a depth-capped parser and a
//! writer, plus a [`ToJson`] trait the rest of the workspace uses for
//! report serialization. Replaces `serde`/`serde_json` so the
//! workspace builds with no network access.
//!
//! Object member order is preserved (members are a `Vec`), which keeps
//! CLI output stable and testable.
//!
//! # Examples
//!
//! ```
//! use refminer_json::{Value, ToJson};
//!
//! let v = Value::parse("{\"a\": [1, 2], \"b\": \"x\"}").unwrap();
//! assert_eq!(v.get("a").and_then(|a| a.as_array()).map(|a| a.len()), Some(2));
//! assert_eq!(v.get("b").and_then(|b| b.as_str()), Some("x"));
//!
//! let out = vec![1u32, 2, 3].to_json().to_string();
//! assert_eq!(out, "[1,2,3]");
//! ```

use std::fmt;

/// Maximum nesting depth the parser accepts; deeper input is rejected
/// rather than risking a stack overflow.
pub const MAX_PARSE_DEPTH: usize = 128;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; member order is preserved.
    Obj(Vec<(String, Value)>),
}

/// A parse failure with a byte offset into the input.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseJsonError {
    /// Byte offset where the error was detected.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseJsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "json parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseJsonError {}

impl Value {
    /// Parses a JSON document. Trailing whitespace is allowed; any
    /// other trailing content is an error.
    pub fn parse(input: &str) -> Result<Value, ParseJsonError> {
        let mut p = JsonParser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.parse_value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing content after document"));
        }
        Ok(v)
    }

    /// Object member lookup; `None` for non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload truncated to `u64`, if this is a number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The member list, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(members) => Some(members),
            _ => None,
        }
    }

    /// Pretty serialization with two-space indentation. The compact
    /// form (no whitespace) is `Display`, i.e. `to_string()`.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        write_value_pretty(self, &mut out, 0);
        out
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        write_value(self, &mut out);
        f.write_str(&out)
    }
}

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> JsonParser<'a> {
    fn err(&self, message: &str) -> ParseJsonError {
        ParseJsonError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_literal(&mut self, lit: &str) -> Result<(), ParseJsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<Value, ParseJsonError> {
        if depth > MAX_PARSE_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.parse_object(depth),
            Some(b'[') => self.parse_array(depth),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b't') => {
                self.expect_literal("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.expect_literal("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'n') => {
                self.expect_literal("null")?;
                Ok(Value::Null)
            }
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_object(&mut self, depth: usize) -> Result<Value, ParseJsonError> {
        self.pos += 1; // `{`
        let mut members = Vec::new();
        self.skip_ws();
        if self.eat(b'}') {
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.err("expected object key"));
            }
            let key = self.parse_string()?;
            self.skip_ws();
            if !self.eat(b':') {
                return Err(self.err("expected `:`"));
            }
            self.skip_ws();
            let value = self.parse_value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            if self.eat(b',') {
                continue;
            }
            if self.eat(b'}') {
                return Ok(Value::Obj(members));
            }
            return Err(self.err("expected `,` or `}`"));
        }
    }

    fn parse_array(&mut self, depth: usize) -> Result<Value, ParseJsonError> {
        self.pos += 1; // `[`
        let mut items = Vec::new();
        self.skip_ws();
        if self.eat(b']') {
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value(depth + 1)?);
            self.skip_ws();
            if self.eat(b',') {
                continue;
            }
            if self.eat(b']') {
                return Ok(Value::Arr(items));
            }
            return Err(self.err("expected `,` or `]`"));
        }
    }

    fn parse_string(&mut self) -> Result<String, ParseJsonError> {
        self.pos += 1; // opening quote
        let mut out = String::new();
        loop {
            let b = self.peek().ok_or_else(|| self.err("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.parse_hex4()?;
                            if (0xD800..0xDC00).contains(&cp) {
                                // High surrogate: require the pair.
                                if self.eat(b'\\') && self.eat(b'u') {
                                    let lo = self.parse_hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    out.push(
                                        char::from_u32(c)
                                            .ok_or_else(|| self.err("invalid surrogate pair"))?,
                                    );
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else if (0xDC00..0xE000).contains(&cp) {
                                return Err(self.err("lone low surrogate"));
                            } else {
                                out.push(
                                    char::from_u32(cp)
                                        .ok_or_else(|| self.err("invalid code point"))?,
                                );
                            }
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                _ => {
                    // Re-decode UTF-8 from the raw bytes: back up and
                    // take the whole scalar.
                    let start = self.pos - 1;
                    let rest = &self.bytes[start..];
                    let s = std::str::from_utf8(&rest[..utf8_len(b).min(rest.len())])
                        .map_err(|_| self.err("invalid utf-8 in string"))?;
                    let ch = s.chars().next().ok_or_else(|| self.err("empty scalar"))?;
                    out.push(ch);
                    self.pos = start + ch.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, ParseJsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(cp)
    }

    fn parse_number(&mut self) -> Result<Value, ParseJsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.eat(b'.') {
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

/// Escapes and quotes `s` per JSON string rules into `out`.
pub fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{0008}' => out.push_str("\\b"),
            '\u{000C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_num(n: f64, out: &mut String) {
    if !n.is_finite() {
        // JSON has no NaN/Inf; null is the conventional degradation.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9.0e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Num(n) => write_num(*n, out),
        Value::Str(s) => write_escaped(s, out),
        Value::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Obj(members) => {
            out.push('{');
            for (i, (k, val)) in members.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(k, out);
                out.push(':');
                write_value(val, out);
            }
            out.push('}');
        }
    }
}

fn write_value_pretty(v: &Value, out: &mut String, indent: usize) {
    let pad = "  ".repeat(indent);
    let pad_in = "  ".repeat(indent + 1);
    match v {
        Value::Arr(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                out.push_str(&pad_in);
                write_value_pretty(item, out, indent + 1);
                if i + 1 < items.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&pad);
            out.push(']');
        }
        Value::Obj(members) if !members.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in members.iter().enumerate() {
                out.push_str(&pad_in);
                write_escaped(k, out);
                out.push_str(": ");
                write_value_pretty(val, out, indent + 1);
                if i + 1 < members.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&pad);
            out.push('}');
        }
        other => write_value(other, out),
    }
}

/// Conversion into the JSON document model. The workspace implements
/// this for its report types instead of deriving `serde::Serialize`.
pub trait ToJson {
    /// Converts `self` into a [`Value`].
    fn to_json(&self) -> Value;
}

impl ToJson for Value {
    fn to_json(&self) -> Value {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Value {
        Value::Bool(*self)
    }
}

impl ToJson for str {
    fn to_json(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Value {
        Value::Num(*self)
    }
}

impl ToJson for f32 {
    fn to_json(&self) -> Value {
        Value::Num(*self as f64)
    }
}

macro_rules! impl_tojson_int {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Value {
                Value::Num(*self as f64)
            }
        }
    )*};
}

impl_tojson_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Value {
        match self {
            Some(v) => v.to_json(),
            None => Value::Null,
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Value {
        Value::Arr(self.iter().map(|v| v.to_json()).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Value {
        Value::Arr(self.iter().map(|v| v.to_json()).collect())
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Value {
        (*self).to_json()
    }
}

/// Convenience builder for object values in declaration order.
///
/// ```
/// use refminer_json::obj;
/// let v = obj([("a", 1u32.into()), ("b", "x".into())]);
/// assert_eq!(v.to_string(), "{\"a\":1,\"b\":\"x\"}");
/// ```
pub fn obj<const N: usize>(members: [(&str, Value); N]) -> Value {
    Value::Obj(
        members
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::Str(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::Str(s)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

macro_rules! impl_from_num {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(n: $t) -> Value {
                Value::Num(n as f64)
            }
        }
    )*};
}

impl_from_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_compact() {
        let src = r#"{"name":"p1","count":3,"ok":true,"tags":["a","b"],"none":null}"#;
        let v = Value::parse(src).unwrap();
        assert_eq!(v.to_string(), src);
    }

    #[test]
    fn preserves_member_order() {
        let v = Value::parse(r#"{"z":1,"a":2,"m":3}"#).unwrap();
        let keys: Vec<&str> = v
            .as_object()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, ["z", "a", "m"]);
    }

    #[test]
    fn escapes_strings() {
        let v = Value::Str("a\"b\\c\nd\u{1}".to_string());
        assert_eq!(v.to_string(), "\"a\\\"b\\\\c\\nd\\u0001\"");
        let back = Value::parse(&v.to_string()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn parses_numbers() {
        assert_eq!(Value::parse("-12.5e2").unwrap().as_f64(), Some(-1250.0));
        assert_eq!(Value::parse("42").unwrap().as_u64(), Some(42));
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(Value::parse("{} x").is_err());
        assert!(Value::parse("tru").is_err());
        assert!(Value::parse("[1,]").is_err());
    }

    #[test]
    fn depth_cap_blocks_bombs() {
        let bomb = "[".repeat(MAX_PARSE_DEPTH + 10) + &"]".repeat(MAX_PARSE_DEPTH + 10);
        assert!(Value::parse(&bomb).is_err());
    }

    #[test]
    fn unicode_escapes() {
        let v = Value::parse(r#""é😀""#).unwrap();
        assert_eq!(v.as_str(), Some("é😀"));
    }

    #[test]
    fn pretty_output_shape() {
        let v = obj([("a", Value::Arr(vec![1u32.into()])), ("b", "x".into())]);
        let pretty = v.to_string_pretty();
        assert!(pretty.contains("{\n  \"a\": [\n    1\n  ],\n  \"b\": \"x\"\n}"));
    }
}

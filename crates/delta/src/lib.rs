//! # refminer-delta
//!
//! The ownership-delta dataflow engine: the second analysis engine of
//! the two-engine audit core, cross-validating the semantic-template
//! checkers with an independent abstraction.
//!
//! Where the template engine pattern-matches the paper's nine
//! anti-pattern shapes, this engine *counts*. For every acquisition
//! site it runs a forward dataflow over the function's CFG with an
//! interval abstract domain: each node carries the possible net
//! refcount delta the function still owes on the acquired object,
//! as an interval `[lo, hi]` saturated at ±[`CAP`]. Transfer effects
//! come from the same substrate the checkers use — paired decrements
//! (including alias- and helper-resolved ones through the
//! [`ProgramDb`] effect summaries, which makes the engine
//! interprocedural), further increments, hidden decrements of
//! `ArgAndReturned` find-APIs, and helper acquires. Ownership
//! transfers (return, escape, consumer hand-off, reassignment, direct
//! free) kill the path: the delta is no longer this function's debt.
//! Branch edges on which the object is known NULL propagate nothing —
//! no reference is held there.
//!
//! A site whose interval still admits a positive delta at the function
//! exit (`hi > 0`) leaks on some path. The engine then *refines* the
//! candidate with the shared path machinery — the same witness queries
//! and feasibility classification the templates use — so corroborated
//! findings land on the same line with the same verdict, and the
//! cross-validation layer can union them. A candidate whose delta is
//! positive on **every** exit path (`lo > 0`) but which no template
//! query witnesses (e.g. a double-get with a single put on straight-
//! line code) is reported structurally: that is the delta engine's own
//! territory.
//!
//! The over-put direction mirrors P8: a decrement of an object the
//! function never acquired drives the interval negative; a subsequent
//! dereference on some path is a use-after-decrease.

use refminer_checkers::{
    has_any_paired_dec, inc_sites, AnalysisEngine, AntiPattern, CheckCtx, EngineId, Finding, Impact,
};
use refminer_cpg::{null_guard_nodes, Feasibility, NodeId, NodeKind, PathQuery, Step};
use refminer_rcapi::{ObjectFlow, RcApi, RcClass, RcDir};

/// Bump when the delta engine's logic changes: the value keys cached
/// check entries through the engine-set fingerprint.
///
/// v1: interval dataflow with template-query witness refinement and
/// the structural net-positive fallback.
pub const DELTA_LOGIC_VERSION: u64 = 1;

/// The checker-style name stamped into delta findings' `checkers`
/// list, so reports and eval can tell which analysis stood up a site.
pub const DELTA_CHECKER_NAME: &str = "DeltaEngine";

/// Interval saturation bound: deltas beyond ±3 carry no extra signal.
const CAP: i8 = 3;

/// A saturated refcount-delta interval `[lo, hi]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// Smallest possible net delta.
    pub lo: i8,
    /// Largest possible net delta.
    pub hi: i8,
}

impl Interval {
    /// The exact interval `[d, d]`.
    pub fn exact(d: i8) -> Interval {
        Interval { lo: d, hi: d }
    }

    /// Shifts both bounds by `d`, saturating at ±[`CAP`].
    pub fn shift(self, d: i8) -> Interval {
        Interval {
            lo: (self.lo + d).clamp(-CAP, CAP),
            hi: (self.hi + d).clamp(-CAP, CAP),
        }
    }

    /// The least interval containing both operands.
    pub fn join(self, other: Interval) -> Interval {
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }
}

/// The ownership-delta dataflow engine behind the [`AnalysisEngine`]
/// trait. Scope it with [`DeltaEngine::for_patterns`] to honor
/// `--only` audits; findings outside the scope are dropped after the
/// analysis (the dataflow itself is pattern-agnostic).
#[derive(Default)]
pub struct DeltaEngine {
    only: Option<Vec<AntiPattern>>,
}

impl DeltaEngine {
    /// The engine over all anti-patterns it can attribute.
    pub fn new() -> DeltaEngine {
        DeltaEngine::default()
    }

    /// The engine restricted to `patterns` (the `--only` audit scope).
    pub fn for_patterns(patterns: &[AntiPattern]) -> DeltaEngine {
        DeltaEngine {
            only: Some(patterns.to_vec()),
        }
    }
}

impl AnalysisEngine for DeltaEngine {
    fn id(&self) -> EngineId {
        EngineId::Delta
    }

    fn analyze(&self, ctx: &CheckCtx<'_>) -> Vec<Finding> {
        let mut out = leak_findings(ctx);
        out.extend(overput_findings(ctx));
        if let Some(only) = &self.only {
            out.retain(|f| only.contains(&f.pattern));
        }
        out
    }
}

/// A fingerprint of the delta engine's logic, mixed into the check
/// cache key whenever the engine is enabled.
pub fn delta_fingerprint() -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in b"refminer-delta" {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    for b in DELTA_LOGIC_VERSION.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// One acquisition the dataflow tracks: like the checkers' inc sites,
/// but with arg-rooted objects recovered for bare `get(obj)` calls of
/// `ArgAndReturned` APIs (which the template site extraction leaves
/// object-less).
struct Seed<'a> {
    node: NodeId,
    api: &'a RcApi,
    object: String,
}

fn seeds<'a>(ctx: &'a CheckCtx<'_>) -> Vec<Seed<'a>> {
    let graph = ctx.graph;
    let mut out = Vec::new();
    for n in graph.cfg.node_ids() {
        // Smartloop iterator references are P3's hidden protocol, not
        // a per-site delta; skip the loop-head acquisitions entirely.
        if matches!(graph.cfg.nodes[n].kind, NodeKind::MacroLoopHead { .. }) {
            continue;
        }
        for call in &graph.facts[n].calls {
            let Some(api) = ctx.kb.get(&call.name) else {
                continue;
            };
            if api.dir != RcDir::Inc {
                continue;
            }
            let assigned = graph.facts[n]
                .assigns
                .iter()
                .find(|a| a.rhs_call.as_deref() == Some(api.name.as_str()))
                .and_then(|a| match &a.target {
                    refminer_cpg::StoreTarget::Var(v) => Some(v.clone()),
                    _ => None,
                });
            let object = if api.returns_object() {
                assigned.or_else(|| {
                    // A bare `of_node_get(np)`-style call: the reference
                    // lands back on the argument itself. Only for the
                    // non-Embedded `ArgAndReturned` APIs — the embedded
                    // find-family's argument is the search *start*,
                    // which the call puts rather than acquires.
                    if api.class == RcClass::Embedded {
                        return None;
                    }
                    api.object_arg()
                        .and_then(|i| call.arg_root(i))
                        .map(str::to_string)
                })
            } else {
                api.object_arg()
                    .and_then(|i| call.arg_root(i))
                    .map(str::to_string)
            };
            let Some(object) = object else {
                // Discarded result: the template's P4 discard shape
                // owns it; a delta over a nameless object is moot.
                continue;
            };
            out.push(Seed {
                node: n,
                api,
                object,
            });
        }
    }
    out
}

/// The net refcount effect node `n` applies to `obj` (excluding the
/// seed's own acquisition, which is seeded directly).
fn node_effect(ctx: &CheckCtx<'_>, seed: &Seed<'_>, n: NodeId) -> i8 {
    let graph = ctx.graph;
    let obj = seed.object.as_str();
    let mut e: i8 = 0;
    // Any paired decrement — direct, alias-resolved, or a helper whose
    // ProgramDb summary releases the argument.
    if ctx.is_paired_dec(n, seed.api, obj) {
        e -= 1;
    }
    let mut inc = false;
    let mut hidden_dec = false;
    let mut helper_acq = false;
    for call in &graph.facts[n].calls {
        match ctx.kb.get(&call.name) {
            Some(api) if api.dir == RcDir::Inc => {
                if n != seed.node
                    && api
                        .object_arg()
                        .and_then(|i| call.arg_root(i))
                        .is_some_and(|r| r == obj)
                {
                    inc = true;
                }
                // Embedded find-APIs put their `from` argument (the
                // hidden-decrement of §5.2.2) even while acquiring a
                // new reference on their result.
                if api.class == RcClass::Embedded {
                    if let ObjectFlow::ArgAndReturned(i) = api.flow {
                        let null_from = call.args.get(i).is_some_and(|a| a.is_null);
                        if !null_from && call.arg_root(i) == Some(obj) {
                            hidden_dec = true;
                        }
                    }
                }
            }
            Some(_) => {}
            None => {
                // Helper acquires resolve through the same program
                // database as helper releases.
                if call.args.iter().enumerate().any(|(i, a)| {
                    a.root.as_deref() == Some(obj)
                        && ctx
                            .program
                            .summary_of(ctx.file, &call.name)
                            .is_some_and(|s| s.acquires.contains(&i))
                }) {
                    helper_acq = true;
                }
            }
        }
    }
    if inc {
        e += 1;
    }
    if helper_acq {
        e += 1;
    }
    if hidden_dec {
        e -= 1;
    }
    e
}

/// Whether node `n` transfers ownership of the object out of the
/// function — return, escape, consumer hand-off, reassignment, or a
/// direct free (P7's territory). The path dies for delta purposes.
fn transfers(ctx: &CheckCtx<'_>, obj: &str, n: NodeId) -> bool {
    ctx.returns_object(n, obj)
        || ctx.escapes_object(n, obj)
        || ctx.passes_to_consumer(n, obj)
        || ctx.reassigns_object(n, obj)
        || ctx.graph.facts[n].calls.iter().any(|c| {
            matches!(
                c.name.as_str(),
                "kfree" | "kvfree" | "kfree_sensitive" | "vfree"
            ) && c.arg_root(0) == Some(obj)
        })
}

/// Forward interval dataflow from the seed. Returns the interval at
/// the function exit, or `None` when every path transfers ownership
/// (nothing is owed at exit).
fn exit_interval(ctx: &CheckCtx<'_>, seed: &Seed<'_>) -> Option<Interval> {
    let graph = ctx.graph;
    let cfg = &graph.cfg;
    let null_edge = ctx.null_branch_of(&seed.object);
    // out[n]: delta interval after n executes, on live paths.
    let mut out: Vec<Option<Interval>> = vec![None; cfg.nodes.len()];
    out[seed.node] = Some(Interval::exact(1));
    let mut work: Vec<NodeId> = vec![seed.node];
    while let Some(n) = work.pop() {
        let Some(cur) = out[n] else { continue };
        for &(m, kind) in cfg.succs(n) {
            if null_edge(n, m, kind) {
                // The object is NULL on this branch: no reference held.
                continue;
            }
            if transfers(ctx, &seed.object, m) {
                continue;
            }
            let next = cur.shift(node_effect(ctx, seed, m));
            let joined = match out[m] {
                Some(prev) => prev.join(next),
                None => next,
            };
            if out[m] != Some(joined) {
                out[m] = Some(joined);
                work.push(m);
            }
        }
    }
    out[cfg.exit]
}

/// The leak direction: candidates with a possibly-positive exit delta,
/// refined through the template witness queries for line and
/// feasibility parity, with the structural net-positive fallback.
fn leak_findings(ctx: &CheckCtx<'_>) -> Vec<Finding> {
    let graph = ctx.graph;
    let mut out = Vec::new();
    for seed in seeds(ctx) {
        let Some(iv) = exit_interval(ctx, &seed) else {
            continue;
        };
        if iv.hi <= 0 {
            continue;
        }
        let obj = seed.object.clone();
        let api = seed.api;
        let exit = graph.cfg.exit;
        let null_guard = null_guard_nodes(&graph.cfg, &graph.facts, &obj);
        if api.inc_on_error {
            // P1's shape: the increment survives even the failure path.
            let ng = null_guard.clone();
            let (o1, o2) = (obj.clone(), obj.clone());
            let q = PathQuery::new(vec![
                Step::new(move |n| graph.is_error_node(n) && !ng.contains(&n))
                    .avoiding(move |n| ctx.is_paired_dec(n, api, &o1)),
                Step::new(move |n| n == exit).avoiding(move |n| ctx.is_paired_dec(n, api, &o2)),
            ]);
            if q.search(&graph.cfg, seed.node).is_some() {
                out.push(delta_finding(
                    ctx,
                    AntiPattern::P1,
                    Impact::Leak,
                    graph.line_of(seed.node),
                    &seed,
                    format!(
                        "net refcount delta after {} stays positive through the \
                         error path (interval [{}, {}] at exit)",
                        api.name, iv.lo, iv.hi
                    ),
                    graph.feas.classify(&q, &graph.cfg, seed.node),
                ));
            }
            continue;
        }
        if has_any_paired_dec(ctx, api, &obj) {
            // P5's shape: paired on the common paths, an error path
            // slips out. Identical query → identical witness line and
            // feasibility verdict as the template's ErrorPathChecker.
            let ng = null_guard.clone();
            let (o1, o2) = (obj.clone(), obj.clone());
            let q = PathQuery::new(vec![
                Step::new(move |n| graph.is_error_node(n) && !ng.contains(&n)).avoiding(move |n| {
                    ctx.is_paired_dec(n, api, &o1)
                        || ctx.returns_object(n, &o1)
                        || ctx.escapes_object(n, &o1)
                        || ctx.reassigns_object(n, &o1)
                }),
                Step::new(move |n| n == exit).avoiding(move |n| {
                    ctx.is_paired_dec(n, api, &o2)
                        || ctx.returns_object(n, &o2)
                        || ctx.escapes_object(n, &o2)
                }),
            ])
            .without_back_edges();
            if let Some(witness) = q.search(&graph.cfg, seed.node) {
                out.push(delta_finding(
                    ctx,
                    AntiPattern::P5,
                    Impact::Leak,
                    graph.line_of(witness[0]),
                    &seed,
                    format!(
                        "path with net refcount delta in [{}, {}] at exit misses \
                         the decrement other paths perform",
                        iv.lo, iv.hi
                    ),
                    graph.feas.classify(&q, &graph.cfg, seed.node),
                ));
            } else if iv.lo > 0 {
                // No template query witnesses it, yet the delta is
                // positive on *every* live path — e.g. two gets paired
                // by a single put on straight-line code. The delta
                // engine's own finding.
                out.push(delta_finding(
                    ctx,
                    AntiPattern::P5,
                    Impact::Leak,
                    graph.line_of(seed.node),
                    &seed,
                    format!(
                        "{} leaves a net refcount delta of at least +{} on every \
                         path to exit despite a paired decrement",
                        api.name, iv.lo
                    ),
                    Feasibility::Assumed,
                ));
            }
            continue;
        }
        // Never paired at all: the hidden-API leak, for the find-like
        // APIs whose reference the caller plausibly missed. Identical
        // query → identical site line and verdict as HiddenApiChecker.
        if api.class == RcClass::Embedded && api.returns_object() {
            let o = obj.clone();
            let ng = null_guard.clone();
            let q = PathQuery::new(vec![Step::new(move |n| n == exit)
                .avoiding(move |n| {
                    ng.contains(&n)
                        || ctx.is_paired_dec(n, api, &o)
                        || ctx.returns_object(n, &o)
                        || ctx.escapes_object(n, &o)
                        || ctx.passes_to_consumer(n, &o)
                        || ctx.graph.facts[n].calls.iter().any(|c| {
                            matches!(
                                c.name.as_str(),
                                "kfree" | "kvfree" | "kfree_sensitive" | "vfree"
                            ) && c.arg_root(0) == Some(o.as_str())
                        })
                })
                .avoiding_edges(ctx.null_branch_of(&obj))])
            .without_back_edges();
            if q.search(&graph.cfg, seed.node).is_some() {
                out.push(delta_finding(
                    ctx,
                    AntiPattern::P4,
                    Impact::Leak,
                    graph.line_of(seed.node),
                    &seed,
                    format!(
                        "hidden reference from {} is never paired: net delta \
                         interval [{}, {}] at exit",
                        api.name, iv.lo, iv.hi
                    ),
                    graph.feas.classify(&q, &graph.cfg, seed.node),
                ));
            }
        }
    }
    out
}

/// The over-put direction: decrementing an object this function never
/// acquired drives the delta negative; a subsequent dereference is a
/// use-after-decrease. The witness query mirrors the template's
/// UadChecker, restricted to the never-acquired (net-negative) case.
fn overput_findings(ctx: &CheckCtx<'_>) -> Vec<Finding> {
    let graph = ctx.graph;
    let acquired: Vec<String> = inc_sites(ctx)
        .into_iter()
        .filter_map(|s| s.object)
        .collect();
    let mut out = Vec::new();
    for n in graph.cfg.node_ids() {
        for call in &graph.facts[n].calls {
            let Some(api) = ctx.kb.get(&call.name) else {
                continue;
            };
            if api.dir != RcDir::Dec {
                continue;
            }
            let Some(obj) = api
                .object_arg()
                .and_then(|i| call.arg_root(i))
                .map(str::to_string)
            else {
                continue;
            };
            if acquired.iter().any(|a| a == &obj) {
                // The function owns a reference; the plain P8 checker
                // covers the use-after-put there.
                continue;
            }
            let (o1, o2, o3) = (obj.clone(), obj.clone(), obj.clone());
            let dec_node = n;
            let q = PathQuery::new(vec![Step::new(move |m| {
                m != dec_node && graph.facts[m].derefs_var(&o1)
            })
            .avoiding(move |m| {
                ctx.reassigns_object(m, &o2)
                    || graph.facts[m].calls.iter().any(|c| {
                        ctx.kb
                            .get(&c.name)
                            .filter(|a| a.dir == RcDir::Inc)
                            .and_then(|a| a.object_arg())
                            .and_then(|i| c.arg_root(i))
                            == Some(&o3)
                    })
            })]);
            if let Some(witness) = q.search(&graph.cfg, n) {
                let deref_node = witness[0];
                out.push(Finding {
                    pattern: AntiPattern::P8,
                    impact: Impact::Uaf,
                    file: ctx.file.to_string(),
                    function: graph.name().to_string(),
                    line: graph.line_of(deref_node),
                    api: call.name.clone(),
                    object: Some(obj.clone()),
                    message: format!(
                        "net refcount delta on {obj} goes negative at {}({obj}) \
                         and the object is used afterwards",
                        call.name
                    ),
                    feasibility: graph.feas.classify(&q, &graph.cfg, n),
                    checkers: vec![DELTA_CHECKER_NAME.to_string()],
                    engines: Vec::new(),
                });
            }
        }
    }
    out
}

fn delta_finding(
    ctx: &CheckCtx<'_>,
    pattern: AntiPattern,
    impact: Impact,
    line: u32,
    seed: &Seed<'_>,
    message: String,
    feasibility: Feasibility,
) -> Finding {
    Finding {
        pattern,
        impact,
        file: ctx.file.to_string(),
        function: ctx.graph.name().to_string(),
        line,
        api: seed.api.name.clone(),
        object: Some(seed.object.clone()),
        message,
        feasibility,
        checkers: vec![DELTA_CHECKER_NAME.to_string()],
        engines: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use refminer_checkers::Confidence;
    use refminer_cparse::parse_str;
    use refminer_cpg::FunctionGraph;
    use refminer_progdb::ProgramDb;
    use refminer_rcapi::ApiKb;

    fn run(src: &str) -> Vec<Finding> {
        run_engine(&DeltaEngine::new(), src)
    }

    fn run_engine(engine: &DeltaEngine, src: &str) -> Vec<Finding> {
        let tu = parse_str("t.c", src);
        let graphs = FunctionGraph::build_all(&tu);
        let kb = ApiKb::builtin();
        let globals: Vec<String> = tu.globals().map(|g| g.name.clone()).collect();
        let db = ProgramDb::local(&tu.path, &graphs, &globals, &kb);
        let mut out = Vec::new();
        for graph in &graphs {
            let ctx = CheckCtx {
                file: "t.c",
                graph,
                kb: &kb,
                unit: &tu,
                all_graphs: &graphs,
                program: &db,
                trace: refminer_trace::TraceHandle::disabled(),
            };
            out.extend(engine.analyze(&ctx));
        }
        out
    }

    #[test]
    fn interval_arithmetic_saturates() {
        let iv = Interval::exact(1).shift(5);
        assert_eq!(iv, Interval { lo: 3, hi: 3 });
        let iv = Interval::exact(-1).shift(-5);
        assert_eq!(iv, Interval { lo: -3, hi: -3 });
        assert_eq!(
            Interval::exact(0).join(Interval::exact(1)),
            Interval { lo: 0, hi: 1 }
        );
    }

    #[test]
    fn finds_error_path_leak_on_template_line() {
        let findings = run(r#"
int probe(struct platform_device *pdev)
{
        struct device_node *np = of_find_node_by_path("/soc");
        int ret;
        if (!np)
                return -ENODEV;
        ret = setup_hw(np);
        if (ret)
                goto err_disable;
        of_node_put(np);
        return 0;
err_disable:
        disable_hw();
        return ret;
}
"#);
        assert_eq!(findings.len(), 1, "got {findings:?}");
        assert_eq!(findings[0].pattern, AntiPattern::P5);
        assert_eq!(findings[0].checkers, vec![DELTA_CHECKER_NAME.to_string()]);
    }

    #[test]
    fn finds_inc_on_error_leak() {
        let findings = run(r#"
static int stm32_crc_remove(struct platform_device *pdev)
{
        struct stm32_crc *crc = platform_get_drvdata(pdev);
        int ret = pm_runtime_get_sync(crc->dev);
        if (ret < 0)
                return ret;
        pm_runtime_put(crc->dev);
        return 0;
}
"#);
        assert_eq!(findings.len(), 1, "got {findings:?}");
        assert_eq!(findings[0].pattern, AntiPattern::P1);
    }

    #[test]
    fn finds_never_paired_hidden_reference() {
        let findings = run(r#"
struct nvmem_device *__nvmem_device_get(struct device_node *np)
{
        struct device *dev;
        dev = bus_find_device(&nvmem_bus_type, NULL, np, of_nvmem_match);
        if (!dev)
                return ERR_PTR(-EPROBE_DEFER);
        return ERR_PTR(-EINVAL);
}
"#);
        assert_eq!(findings.len(), 1, "got {findings:?}");
        assert_eq!(findings[0].pattern, AntiPattern::P4);
    }

    #[test]
    fn finds_use_after_decrease() {
        let findings = run(r#"
void ping_unhash(struct sock *sk)
{
        sock_put(sk);
        sock_prot_inuse_add(net, sk->sk_prot, -1);
}
"#);
        assert_eq!(findings.len(), 1, "got {findings:?}");
        assert_eq!(findings[0].pattern, AntiPattern::P8);
        assert_eq!(findings[0].impact, Impact::Uaf);
    }

    #[test]
    fn silent_on_fully_paired_code() {
        let findings = run(r#"
int probe(struct platform_device *pdev)
{
        struct device_node *np = of_find_node_by_path("/soc");
        int ret;
        if (!np)
                return -ENODEV;
        ret = setup_hw(np);
        if (ret)
                goto err_put;
        of_node_put(np);
        return 0;
err_put:
        of_node_put(np);
        return ret;
}
"#);
        assert!(findings.is_empty(), "got {findings:?}");
    }

    #[test]
    fn silent_on_ownership_transfer() {
        let findings = run(r#"
struct device_node *find_it(void)
{
        struct device_node *np = of_find_node_by_name(NULL, "x");
        return np;
}
"#);
        assert!(findings.is_empty(), "got {findings:?}");
    }

    #[test]
    fn double_get_is_delta_only_territory() {
        // Two gets, one put, no error path: no template query
        // witnesses this, but the net delta is +1 on every path.
        let findings = run(r#"
void pin_twice(struct device_node *np)
{
        of_node_get(np);
        of_node_get(np);
        use_node(np);
        of_node_put(np);
}
"#);
        assert_eq!(findings.len(), 1, "got {findings:?}");
        assert_eq!(findings[0].pattern, AntiPattern::P5);
        assert_eq!(findings[0].feasibility, Feasibility::Assumed);
        assert!(findings[0].message.contains("net refcount delta"));
        // Merged standalone, the finding reads delta-only.
        let mut f = findings[0].clone();
        f.add_engine(EngineId::Delta);
        assert_eq!(f.confidence(), Confidence::DeltaOnly);
    }

    #[test]
    fn helper_release_resolves_interprocedurally() {
        let findings = run(r#"
static void cleanup(struct device_node *np)
{
        of_node_put(np);
}
int probe(void)
{
        struct device_node *np = of_find_node_by_name(NULL, "x");
        if (!np)
                return -ENODEV;
        cleanup(np);
        return 0;
}
"#);
        assert!(findings.is_empty(), "got {findings:?}");
    }

    #[test]
    fn pattern_scope_filters_findings() {
        let src = r#"
void ping_unhash(struct sock *sk)
{
        sock_put(sk);
        sock_prot_inuse_add(net, sk->sk_prot, -1);
}
"#;
        let scoped = run_engine(&DeltaEngine::for_patterns(&[AntiPattern::P5]), src);
        assert!(scoped.is_empty(), "got {scoped:?}");
        let scoped = run_engine(&DeltaEngine::for_patterns(&[AntiPattern::P8]), src);
        assert_eq!(scoped.len(), 1);
    }

    #[test]
    fn fingerprint_is_stable_and_nonzero() {
        assert_eq!(delta_fingerprint(), delta_fingerprint());
        assert_ne!(delta_fingerprint(), 0);
    }
}

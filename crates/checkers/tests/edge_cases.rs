//! Edge-case behaviour of the checkers on kernel idioms the unit tests
//! do not cover: ERR_PTR guards, switch dispatch, loops, aliasing, and
//! double acquisitions.

use refminer_checkers::{check_unit, AntiPattern, Finding};
use refminer_cparse::parse_str;
use refminer_rcapi::ApiKb;

fn findings(src: &str) -> Vec<Finding> {
    let tu = parse_str("edge.c", src);
    check_unit(&tu, &ApiKb::builtin())
}

#[test]
fn err_ptr_guard_is_not_a_leaky_error_path() {
    // `of_parse_phandle` result guarded with IS_ERR; success path puts.
    let f = findings(
        r#"
int probe(struct platform_device *pdev)
{
        struct device_node *np = of_parse_phandle(pdev->dev.of_node, "x", 0);
        if (IS_ERR(np))
                return PTR_ERR(np);
        use_node(np);
        of_node_put(np);
        return 0;
}
"#,
    );
    assert!(f.is_empty(), "got {f:?}");
}

#[test]
fn err_ptr_guard_does_not_hide_real_leak() {
    // Success path still leaks even with an IS_ERR guard present.
    let f = findings(
        r#"
int probe(struct platform_device *pdev)
{
        struct device_node *np = of_parse_phandle(pdev->dev.of_node, "x", 0);
        if (IS_ERR(np))
                return PTR_ERR(np);
        use_node(np);
        return 0;
}
"#,
    );
    assert!(f.iter().any(|x| x.pattern == AntiPattern::P4), "got {f:?}");
}

#[test]
fn switch_with_put_in_every_case_is_clean() {
    let f = findings(
        r#"
int handle(int mode)
{
        struct device_node *np = of_find_node_by_path("/soc");
        if (!np)
                return -ENODEV;
        switch (mode) {
        case 1:
                setup_a(np);
                of_node_put(np);
                break;
        default:
                of_node_put(np);
                break;
        }
        return 0;
}
"#,
    );
    assert!(f.is_empty(), "got {f:?}");
}

#[test]
fn switch_with_leaky_case_is_flagged() {
    let f = findings(
        r#"
int handle(int mode)
{
        struct device_node *np = of_find_node_by_path("/soc");
        if (!np)
                return -ENODEV;
        switch (mode) {
        case 1:
                setup_a(np);
                break;
        default:
                of_node_put(np);
                break;
        }
        return 0;
}
"#,
    );
    assert!(!f.is_empty(), "the case-1 path leaks");
}

#[test]
fn put_through_alias_is_paired() {
    let f = findings(
        r#"
int probe(void)
{
        struct device_node *np = of_find_node_by_name(NULL, "x");
        struct device_node *alias;
        if (!np)
                return -ENODEV;
        alias = np;
        of_node_put(alias);
        return 0;
}
"#,
    );
    assert!(f.is_empty(), "alias pairing missed: {f:?}");
}

#[test]
fn double_get_needs_double_put() {
    let f = findings(
        r#"
int probe(void)
{
        struct device_node *a = of_find_node_by_name(NULL, "a");
        struct device_node *b = of_find_node_by_name(NULL, "b");
        if (!a)
                return -ENODEV;
        if (!b) {
                of_node_put(a);
                return -ENODEV;
        }
        of_node_put(a);
        return 0;
}
"#,
    );
    // `b` is never released on the success path.
    assert_eq!(f.len(), 1, "got {f:?}");
    assert_eq!(f[0].object.as_deref(), Some("b"));
}

#[test]
fn put_inside_while_loop_pairs_loop_gets() {
    let f = findings(
        r#"
int walk(struct device_node *start)
{
        struct device_node *np = start;
        while (np) {
                struct device_node *next = of_get_parent(np);
                process(np);
                of_node_put(next);
                np = next;
        }
        return 0;
}
"#,
    );
    assert!(f.is_empty(), "got {f:?}");
}

#[test]
fn goto_chain_reaching_put_is_clean() {
    let f = findings(
        r#"
int probe(struct platform_device *pdev)
{
        struct device_node *np = of_find_node_by_path("/soc");
        int ret;
        if (!np)
                return -ENODEV;
        ret = step_one(np);
        if (ret)
                goto err_one;
        ret = step_two(np);
        if (ret)
                goto err_two;
        of_node_put(np);
        return 0;
err_two:
        undo_one(pdev);
err_one:
        of_node_put(np);
        return ret;
}
"#,
    );
    assert!(f.is_empty(), "got {f:?}");
}

#[test]
fn conditional_acquisition_only_pairs_when_taken() {
    let f = findings(
        r#"
int probe(struct platform_device *pdev, int want)
{
        struct device_node *np = NULL;
        if (want)
                np = of_find_node_by_path("/soc");
        if (np)
                of_node_put(np);
        return 0;
}
"#,
    );
    assert!(f.is_empty(), "got {f:?}");
}

#[test]
fn uad_in_loop_detected_across_iterations() {
    // The put happens at the bottom, the deref at the top of the next
    // iteration — visible only through the back-edge.
    let f = findings(
        r#"
void drain(struct sock *sk)
{
        while (more(sk->queue)) {
                sock_put(sk);
        }
}
"#,
    );
    assert!(f.iter().any(|x| x.pattern == AntiPattern::P8), "got {f:?}");
}

#[test]
fn pm_runtime_put_sync_variant_pairs() {
    let f = findings(
        r#"
int resume(struct device *dev)
{
        int ret = pm_runtime_get_sync(dev);
        if (ret < 0) {
                pm_runtime_put_sync(dev);
                return ret;
        }
        pm_runtime_put_autosuspend(dev);
        return 0;
}
"#,
    );
    assert!(f.is_empty(), "got {f:?}");
}

#[test]
fn put_inside_same_unit_helper_is_paired() {
    // The release happens inside a static helper defined in the same
    // file; the summaries make the pairing visible.
    let f = findings(
        r#"
static void codec_cleanup(struct device_node *np)
{
        unmap_regs(np);
        of_node_put(np);
}

int probe(struct platform_device *pdev)
{
        struct device_node *np = of_find_node_by_name(NULL, "codec");
        if (!np)
                return -ENODEV;
        if (setup_hw(np) < 0) {
                codec_cleanup(np);
                return -EIO;
        }
        codec_cleanup(np);
        return 0;
}
"#,
    );
    assert!(f.is_empty(), "got {f:?}");
}

#[test]
fn helper_that_does_not_release_is_no_excuse() {
    let f = findings(
        r#"
static void codec_log(struct device_node *np)
{
        pr_info(np->name);
}

int probe(struct platform_device *pdev)
{
        struct device_node *np = of_find_node_by_name(NULL, "codec");
        if (!np)
                return -ENODEV;
        codec_log(np);
        return 0;
}
"#,
    );
    assert!(f.iter().any(|x| x.pattern == AntiPattern::P4), "got {f:?}");
}

#[test]
fn transitive_helper_release_is_paired() {
    let f = findings(
        r#"
static void inner_put(struct device_node *n)
{
        of_node_put(n);
}
static void outer_teardown(struct device_node *node)
{
        stop_hw(node);
        inner_put(node);
}
int probe(void)
{
        struct device_node *np = of_find_node_by_name(NULL, "x");
        if (!np)
                return -ENODEV;
        outer_teardown(np);
        return 0;
}
"#,
    );
    assert!(f.is_empty(), "got {f:?}");
}

#[test]
fn smartloop_break_with_helper_put_is_clean() {
    let f = findings(
        r#"
static void node_done(struct device_node *dn)
{
        of_node_put(dn);
}
int scan(struct platform_device *pdev)
{
        struct device_node *dn;
        for_each_matching_node(dn, ids) {
                if (want(dn)) {
                        node_done(dn);
                        break;
                }
        }
        return 0;
}
"#,
    );
    assert!(f.is_empty(), "got {f:?}");
}

#[test]
fn ifdef_wrapped_code_is_analyzed() {
    let f = findings(
        r#"
#ifdef CONFIG_OF
int probe(void)
{
        struct device_node *np = of_find_node_by_name(NULL, "x");
        if (!np)
                return -ENODEV;
        return 0;
}
#endif
"#,
    );
    assert_eq!(f.len(), 1, "got {f:?}");
}

#[test]
fn null_eq_comparison_guards_p2() {
    let f = findings(
        r#"
static int probe(void)
{
        struct mdesc_handle *hp = mdesc_grab();
        if (hp == NULL)
                return -ENODEV;
        process_version(hp->version);
        mdesc_release(hp);
        return 0;
}
"#,
    );
    assert!(f.is_empty(), "got {f:?}");
}

#[test]
fn do_while_zero_cleanup_macro_idiom() {
    // `do { ... } while (0)` blocks (expanded macros) are plain code.
    let f = findings(
        r#"
int probe(void)
{
        struct device_node *np = of_find_node_by_name(NULL, "x");
        if (!np)
                return -ENODEV;
        do {
                setup(np);
                of_node_put(np);
        } while (0);
        return 0;
}
"#,
    );
    assert!(f.is_empty(), "got {f:?}");
}

#[test]
fn ternary_condition_checks_do_not_confuse_p4() {
    let f = findings(
        r#"
int probe(int fast)
{
        struct device_node *np = of_find_node_by_name(NULL, "x");
        int rate;
        if (!np)
                return -ENODEV;
        rate = fast ? read_fast(np) : read_slow(np);
        of_node_put(np);
        return rate;
}
"#,
    );
    assert!(f.is_empty(), "got {f:?}");
}

//! Checkers P8 and P9: future-risk bugs (§5.4).

use refminer_cpg::{Origin, PathQuery, Step, StoreTarget};
use refminer_rcapi::RcDir;

use crate::checker::Checker;
use crate::ctx::CheckCtx;
use crate::finding::{AntiPattern, Finding, Impact};

/// **P8 — Use-after-decrease (UAD)**
/// (`F_start → S_P(p0) → S_D(p0) → F_end`).
///
/// Accessing an object after dropping a reference to it assumes the
/// refcounter cannot have reached zero — an assumption that a future
/// caller can silently break (§5.4.1: 94 historical bugs; Listing 6's
/// `ping_unhash`).
pub struct UadChecker;

impl Checker for UadChecker {
    fn pattern(&self) -> AntiPattern {
        AntiPattern::P8
    }

    fn name(&self) -> &'static str {
        "UadChecker"
    }

    fn check(&self, ctx: &CheckCtx<'_>) -> Vec<Finding> {
        let mut out = Vec::new();
        let graph = ctx.graph;
        for n in graph.cfg.node_ids() {
            for call in &graph.facts[n].calls {
                let Some(api) = ctx.kb.get(&call.name) else {
                    continue;
                };
                if api.dir != RcDir::Dec {
                    continue;
                }
                let Some(obj) = api
                    .object_arg()
                    .and_then(|i| call.arg_root(i))
                    .map(str::to_string)
                else {
                    continue;
                };
                // Search: from the decrement, reach a node that
                // dereferences obj — without an intervening re-take,
                // reassignment, or NULL-ing of the pointer.
                let (o1, o2, o3) = (obj.clone(), obj.clone(), obj.clone());
                let dec_node = n;
                let q = PathQuery::new(vec![Step::new(move |m| {
                    m != dec_node && graph.facts[m].derefs_var(&o1)
                })
                .avoiding(move |m| {
                    ctx.reassigns_object(m, &o2)
                        || graph.facts[m].calls.iter().any(|c| {
                            ctx.kb
                                .get(&c.name)
                                .filter(|a| a.dir == RcDir::Inc)
                                .and_then(|a| a.object_arg())
                                .and_then(|i| c.arg_root(i))
                                == Some(&o3)
                        })
                })]);
                // Back-edges stay enabled: a put at the bottom of a
                // loop body makes the deref at the top of the *next*
                // iteration a UAD too.
                if let Some(witness) = q.search(&graph.cfg, n) {
                    let deref_node = witness[0];
                    out.push(Finding {
                        pattern: AntiPattern::P8,
                        impact: Impact::Uaf,
                        file: ctx.file.to_string(),
                        function: graph.name().to_string(),
                        line: graph.line_of(deref_node),
                        api: call.name.clone(),
                        object: Some(obj.clone()),
                        message: format!(
                            "{obj} is accessed after {}({obj}) may have dropped \
                             the last reference",
                            call.name
                        ),
                        feasibility: graph.feas.classify(&q, &graph.cfg, n),
                        checkers: Vec::new(),
                        engines: Vec::new(),
                    });
                }
            }
        }
        out
    }
}

/// **P9 — Reference escape** (`F_start → S_{A_{G|O}} → F_end`).
///
/// Storing a *borrowed* reference (a parameter the function does not
/// own) into a global or out-parameter location without an increment
/// around the escape point leaves a dangling path for the future
/// (§5.4.2: 74 historical bugs).
pub struct EscapeChecker;

impl Checker for EscapeChecker {
    fn pattern(&self) -> AntiPattern {
        AntiPattern::P9
    }

    fn name(&self) -> &'static str {
        "EscapeChecker"
    }

    fn check(&self, ctx: &CheckCtx<'_>) -> Vec<Finding> {
        let mut out = Vec::new();
        let graph = ctx.graph;
        let params = graph.pointer_params();
        let globals: Vec<&str> = ctx.unit.globals().map(|g| g.name.as_str()).collect();
        for n in graph.cfg.node_ids() {
            for assign in &graph.facts[n].assigns {
                let Some(src) = assign.rhs_root.as_deref() else {
                    continue;
                };
                // Only borrowed references: parameters that still hold
                // their incoming value (origin == Param).
                if !params.contains(&src) {
                    continue;
                }
                let origins = graph.origins.at(&graph.cfg, n, src);
                let borrowed =
                    !origins.is_empty() && origins.iter().all(|o| matches!(o, Origin::Param));
                if !borrowed {
                    continue;
                }
                // The escape target must outlive the call: a global
                // variable, an out-parameter store (`*out = src` or
                // `out->field = src` where out is another parameter).
                let escapes = match &assign.target {
                    StoreTarget::Var(v) => globals.contains(&v.as_str()),
                    StoreTarget::Indirect(root) => params.contains(&root.as_str()) && root != src,
                    StoreTarget::Field { root, .. } => {
                        (params.contains(&root.as_str()) || globals.contains(&root.as_str()))
                            && root != src
                    }
                    StoreTarget::Other => false,
                };
                if !escapes {
                    continue;
                }
                // An increment on src anywhere in the function (the
                // paper asks for it *around the escape point*; we accept
                // the whole function to stay conservative on FPs).
                let has_inc = graph.cfg.node_ids().any(|m| {
                    graph.facts[m].calls.iter().any(|c| {
                        ctx.kb
                            .get(&c.name)
                            .filter(|a| a.dir == RcDir::Inc)
                            .and_then(|a| a.object_arg())
                            .and_then(|i| c.arg_root(i))
                            == Some(src)
                    })
                });
                if has_inc {
                    continue;
                }
                // Only refcounted types are interesting; approximate by
                // "struct pointer" parameters whose struct tag looks
                // refcounted or device-tree related.
                let src_param = graph
                    .func
                    .params
                    .iter()
                    .find(|p| p.name.as_deref() == Some(src));
                let refcounted_ty = src_param
                    .and_then(|p| p.ty.struct_tag())
                    .map(|t| {
                        t.contains("node")
                            || t.contains("device")
                            || t.contains("sock")
                            || t.contains("kobject")
                            || t.ends_with("_ref")
                    })
                    .unwrap_or(false);
                if !refcounted_ty {
                    continue;
                }
                out.push(Finding {
                    pattern: AntiPattern::P9,
                    impact: Impact::Uaf,
                    file: ctx.file.to_string(),
                    function: graph.name().to_string(),
                    line: graph.line_of(n),
                    api: String::new(),
                    object: Some(src.to_string()),
                    message: format!(
                        "borrowed reference {src} escapes through a long-lived \
                         store without an increment around the escape point"
                    ),
                    // A single-statement structural match; the escape
                    // happens wherever the store executes.
                    feasibility: refminer_cpg::Feasibility::Assumed,
                    checkers: Vec::new(),
                    engines: Vec::new(),
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use refminer_cparse::parse_str;
    use refminer_cpg::FunctionGraph;
    use refminer_rcapi::ApiKb;

    fn run(checker: &dyn Checker, src: &str) -> Vec<Finding> {
        let tu = parse_str("t.c", src);
        let graphs = FunctionGraph::build_all(&tu);
        let kb = ApiKb::builtin();
        let db = refminer_progdb::ProgramDb::empty();
        let mut out = Vec::new();
        for graph in &graphs {
            let ctx = CheckCtx {
                file: "t.c",
                graph,
                kb: &kb,
                unit: &tu,
                all_graphs: &graphs,
                program: &db,
                trace: refminer_trace::TraceHandle::disabled(),
            };
            out.extend(checker.check(&ctx));
        }
        out
    }

    #[test]
    fn p8_detects_listing6_ping_unhash() {
        let findings = run(
            &UadChecker,
            r#"
void ping_unhash(struct sock *sk)
{
        sock_put(sk);
        isk->inet_num = 0;
        sock_prot_inuse_add(net, sk->sk_prot, -1);
}
"#,
        );
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].pattern, AntiPattern::P8);
        assert_eq!(findings[0].impact, Impact::Uaf);
        assert_eq!(findings[0].object.as_deref(), Some("sk"));
    }

    #[test]
    fn p8_detects_listing2_unlock_after_put() {
        let findings = run(
            &UadChecker,
            r#"
static int usb_console_setup(struct console *co, char *options)
{
        usb_serial_put(serial);
        mutex_unlock(&serial->disc_mutex);
        return 0;
}
"#,
        );
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].api, "usb_serial_put");
    }

    #[test]
    fn p8_clean_when_use_precedes_put() {
        let findings = run(
            &UadChecker,
            r#"
static int usb_console_setup(struct console *co, char *options)
{
        mutex_unlock(&serial->disc_mutex);
        usb_serial_put(serial);
        return 0;
}
"#,
        );
        assert!(findings.is_empty(), "got {findings:?}");
    }

    #[test]
    fn p8_clean_when_pointer_nulled() {
        let findings = run(
            &UadChecker,
            r#"
void drop(struct sock *sk)
{
        sock_put(sk);
        sk = NULL;
        if (sk)
                use_sock(sk->prot);
}
"#,
        );
        assert!(findings.is_empty(), "got {findings:?}");
    }

    #[test]
    fn p9_detects_borrowed_escape() {
        let findings = run(
            &EscapeChecker,
            r#"
static struct device_node *cached;
void stash(struct device_node *np)
{
        cached = np;
}
"#,
        );
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].pattern, AntiPattern::P9);
        assert_eq!(findings[0].object.as_deref(), Some("np"));
    }

    #[test]
    fn p9_clean_with_increment() {
        let findings = run(
            &EscapeChecker,
            r#"
static struct device_node *cached;
void stash(struct device_node *np)
{
        of_node_get(np);
        cached = np;
}
"#,
        );
        assert!(findings.is_empty(), "got {findings:?}");
    }

    #[test]
    fn p9_detects_out_param_escape() {
        let findings = run(
            &EscapeChecker,
            r#"
void fill(struct priv_data *priv, struct device_node *np)
{
        priv->node = np;
}
"#,
        );
        assert_eq!(findings.len(), 1);
    }

    #[test]
    fn p9_ignores_owned_references() {
        // np was acquired by a find: storing it transfers the owned
        // reference, which is correct.
        let findings = run(
            &EscapeChecker,
            r#"
void fill(struct priv_data *priv)
{
        struct device_node *np = of_find_node_by_name(NULL, "x");
        priv->node = np;
}
"#,
        );
        assert!(findings.is_empty(), "got {findings:?}");
    }

    #[test]
    fn p9_ignores_non_refcounted_types() {
        let findings = run(
            &EscapeChecker,
            r#"
static char *cached_name;
void stash(char *name)
{
        cached_name = name;
}
"#,
        );
        assert!(findings.is_empty(), "got {findings:?}");
    }
}

//! Checker context and shared helper predicates.

use refminer_cparse::TranslationUnit;
use refminer_cpg::{FunctionGraph, NodeId, StoreTarget};
use refminer_progdb::ProgramDb;
use refminer_rcapi::{ApiKb, RcApi};
use refminer_trace::TraceHandle;

/// Everything a checker sees for one function.
pub struct CheckCtx<'a> {
    /// The file the function lives in.
    pub file: &'a str,
    /// The function's code property graph.
    pub graph: &'a FunctionGraph,
    /// The API knowledge base.
    pub kb: &'a ApiKb,
    /// The containing translation unit (ops tables, globals).
    pub unit: &'a TranslationUnit,
    /// Graphs of all functions in the unit (for inter-paired lookups).
    pub all_graphs: &'a [FunctionGraph],
    /// The program-wide function-summary database. Helper effects
    /// resolve through it under linkage rules: same-unit definitions
    /// first, external definitions tree-wide in whole-program audits.
    pub program: &'a ProgramDb,
    /// Span handle for the trace recorder. Disabled outside traced
    /// audits; checkers may use it for fine-grained counters but must
    /// never let it influence findings.
    pub trace: TraceHandle,
}

impl<'a> CheckCtx<'a> {
    /// Whether node `n` decrements `obj` in a way that pairs with the
    /// increment API `inc` — either directly by name, or through an
    /// alias that the origin analysis traces back to the same call.
    pub fn is_paired_dec(&self, n: NodeId, inc: &RcApi, obj: &str) -> bool {
        let facts = &self.graph.facts[n];
        let accepted = self.kb.accepted_decs(&inc.name);
        facts.calls.iter().any(|c| {
            if !accepted.iter().any(|d| d == &c.name) && !self.kb.is_dec(&c.name) {
                // Not a refcounting API by name: maybe a helper whose
                // summary says it releases the object.
                return c.args.iter().enumerate().any(|(i, a)| {
                    a.root.as_deref() == Some(obj)
                        && self.program.call_releases(self.file, &c.name, i)
                });
            }
            // Any decrement on the object variable (or an alias of the
            // same acquisition) counts.
            let Some(arg) = c.arg_root(0) else {
                return false;
            };
            if arg == obj {
                return true;
            }
            self.graph
                .origins
                .var_from_call(&self.graph.cfg, n, arg, &inc.name)
        })
    }

    /// Whether node `n` is a `return` whose value transfers ownership
    /// of `obj` to the caller — directly (`return obj;`) or wrapped
    /// (`return to_nvmem_device(dev);`, `return ERR_CAST(np);`).
    pub fn returns_object(&self, n: NodeId, obj: &str) -> bool {
        let facts = &self.graph.facts[n];
        if !facts.is_return {
            return false;
        }
        facts.returns_var.as_deref() == Some(obj)
            || facts
                .calls
                .iter()
                .any(|c| c.args.iter().any(|a| a.root.as_deref() == Some(obj)))
    }

    /// Whether node `n` stores `obj` into a longer-lived location
    /// (struct field, indirect store, or a file-scope global), i.e.
    /// transfers ownership out of the function.
    pub fn escapes_object(&self, n: NodeId, obj: &str) -> bool {
        let globals: Vec<&str> = self.unit.globals().map(|g| g.name.as_str()).collect();
        let direct = self.graph.facts[n].assigns.iter().any(|a| {
            if a.rhs_root.as_deref() != Some(obj) {
                return false;
            }
            match &a.target {
                StoreTarget::Field { .. } | StoreTarget::Indirect(_) => true,
                StoreTarget::Var(v) => globals.contains(&v.as_str()),
                StoreTarget::Other => false,
            }
        });
        // A call into another unit whose summary stores the argument in
        // a long-lived location escapes the object just as surely as a
        // local field store. Same-unit helpers keep the pre-refactor
        // behavior (their stores were never counted as escapes).
        direct
            || self.graph.facts[n].calls.iter().any(|c| {
                c.args.iter().enumerate().any(|(i, a)| {
                    a.root.as_deref() == Some(obj)
                        && self.program.cross_unit_stores(self.file, &c.name, i)
                })
            })
    }

    /// Whether node `n` overwrites `obj` with a fresh value (the old
    /// reference is gone; subsequent paths cannot pair it anymore, but
    /// neither should they be blamed on this acquisition).
    pub fn reassigns_object(&self, n: NodeId, obj: &str) -> bool {
        self.graph.facts[n].assigns.iter().any(|a| {
            a.target == StoreTarget::Var(obj.to_string()) && a.rhs_root.as_deref() != Some(obj)
        })
    }

    /// Whether node `n` passes `obj` to any call that is *not* a
    /// recognized refcounting API — a sink that may consume or stash
    /// the reference (used to lower false positives on registration
    /// patterns like `foo_register(np)`).
    pub fn passes_to_consumer(&self, n: NodeId, obj: &str) -> bool {
        self.graph.facts[n].calls.iter().any(|c| {
            if self.kb.get(&c.name).is_some() || !consumer_name(&c.name) {
                return false;
            }
            c.args.iter().enumerate().any(|(i, a)| {
                if a.root.as_deref() != Some(obj) {
                    return false;
                }
                // When the consumer-named callee is *defined* in another
                // unit, its summary settles the question: it consumes the
                // reference only if it actually releases or stores the
                // argument. Undefined or same-unit callees keep the
                // conservative name-based suppression.
                match self.program.cross_unit_summary(self.file, &c.name) {
                    Some(s) => s.releases.contains(&i) || s.stores.contains(&i),
                    None => true,
                }
            })
        })
    }
}

impl<'a> CheckCtx<'a> {
    /// An edge predicate pruning the branches on which `obj` is known
    /// to be NULL (the True edge of `if (!obj)`, the False edge of
    /// `if (obj)`): no reference is held there, so no pairing is owed.
    pub fn null_branch_of(
        &self,
        obj: &str,
    ) -> impl Fn(refminer_cpg::NodeId, refminer_cpg::NodeId, refminer_cpg::EdgeKind) -> bool + '_
    {
        use refminer_cpg::{CheckFact, EdgeKind};
        let obj = obj.to_string();
        move |from, _to, kind| {
            self.graph.facts[from].checks.iter().any(|c| match c {
                CheckFact::NullOnTrue(v) | CheckFact::ErrPtrOnTrue(v) => {
                    v == &obj && kind == EdgeKind::True
                }
                CheckFact::NonNullOnTrue(v) => v == &obj && kind == EdgeKind::False,
                _ => false,
            })
        }
    }
}

impl<'a> CheckCtx<'a> {
    /// Whether node `n` calls a helper that releases `obj` (resolved
    /// through the program database under linkage rules).
    pub fn helper_releases(&self, n: NodeId, obj: &str) -> bool {
        self.graph.facts[n].calls.iter().any(|c| {
            c.args.iter().enumerate().any(|(i, a)| {
                a.root.as_deref() == Some(obj) && self.program.call_releases(self.file, &c.name, i)
            })
        })
    }
}

/// Call names that conventionally take ownership of their argument.
fn consumer_name(name: &str) -> bool {
    name.contains("register")
        || name.contains("add")
        || name.contains("attach")
        || name.contains("install")
        || name.contains("insert")
        || name.contains("publish")
}

#[cfg(test)]
mod tests {
    use super::*;
    use refminer_cparse::parse_str;

    fn mk(src: &str) -> (TranslationUnit, Vec<FunctionGraph>) {
        let tu = parse_str("t.c", src);
        let graphs = FunctionGraph::build_all(&tu);
        (tu, graphs)
    }

    #[test]
    fn paired_dec_matches_alias() {
        let (tu, graphs) = mk(r#"
int f(void)
{
        struct device_node *np = of_find_node_by_name(NULL, "x");
        struct device_node *alias = np;
        of_node_put(alias);
        return 0;
}
"#);
        let kb = ApiKb::builtin();
        let db = ProgramDb::empty();
        let ctx = CheckCtx {
            file: "t.c",
            graph: &graphs[0],
            kb: &kb,
            unit: &tu,
            all_graphs: &graphs,
            program: &db,
            trace: TraceHandle::disabled(),
        };
        let inc = kb.get("of_find_node_by_name").unwrap();
        let put = ctx.graph.nodes_calling("of_node_put")[0];
        assert!(ctx.is_paired_dec(put, inc, "np"));
    }

    #[test]
    fn escape_to_global_detected() {
        let (tu, graphs) = mk(r#"
static struct device_node *cached;
int f(struct device_node *np)
{
        cached = np;
        return 0;
}
"#);
        let kb = ApiKb::builtin();
        let db = ProgramDb::empty();
        let ctx = CheckCtx {
            file: "t.c",
            graph: &graphs[0],
            kb: &kb,
            unit: &tu,
            all_graphs: &graphs,
            program: &db,
            trace: TraceHandle::disabled(),
        };
        let store = ctx
            .graph
            .cfg
            .node_ids()
            .find(|&i| !ctx.graph.facts[i].assigns.is_empty())
            .unwrap();
        assert!(ctx.escapes_object(store, "np"));
    }

    #[test]
    fn consumer_call_detected() {
        let (tu, graphs) = mk(r#"
int f(struct device_node *np)
{
        snd_soc_register_card(np);
        return 0;
}
"#);
        let kb = ApiKb::builtin();
        let db = ProgramDb::empty();
        let ctx = CheckCtx {
            file: "t.c",
            graph: &graphs[0],
            kb: &kb,
            unit: &tu,
            all_graphs: &graphs,
            program: &db,
            trace: TraceHandle::disabled(),
        };
        let call = ctx.graph.nodes_calling("snd_soc_register_card")[0];
        assert!(ctx.passes_to_consumer(call, "np"));
    }
}

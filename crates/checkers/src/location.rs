//! Checkers P5, P6 and P7: overlooked-location bugs (§5.3).

use refminer_cparse::{Initializer, TranslationUnit};
use refminer_cpg::{FunctionGraph, PathQuery, Step};
use refminer_rcapi::RcDir;

use crate::checker::{has_any_paired_dec, inc_sites, Checker};
use crate::ctx::CheckCtx;
use crate::finding::{AntiPattern, Finding, Impact};

/// **P5 — Error-handle** (`F_start → S_G → S_P | B_error → F_end`).
///
/// The decrement exists on the normal paths but an error-handling path
/// slips out without it (§5.3.1: 110 historical bugs).
pub struct ErrorPathChecker;

impl Checker for ErrorPathChecker {
    fn pattern(&self) -> AntiPattern {
        AntiPattern::P5
    }

    fn name(&self) -> &'static str {
        "ErrorPathChecker"
    }

    fn check(&self, ctx: &CheckCtx<'_>) -> Vec<Finding> {
        let mut out = Vec::new();
        let graph = ctx.graph;
        for site in inc_sites(ctx) {
            if site.api.inc_on_error {
                continue; // P1's territory.
            }
            let Some(obj) = site.object.clone() else {
                continue;
            };
            // P5 requires the pairing to exist *somewhere* — the
            // developer paired the common paths and overlooked one.
            if !has_any_paired_dec(ctx, site.api, &obj) {
                continue; // P4's territory (never paired at all).
            }
            let fexit = graph.cfg.exit;
            let api = site.api;
            let null_guard = refminer_cpg::null_guard_nodes(&graph.cfg, &graph.facts, &obj);
            let (o1, o2) = (obj.clone(), obj.clone());
            let q = PathQuery::new(vec![
                Step::new(move |n| graph.is_error_node(n) && !null_guard.contains(&n)).avoiding(
                    move |n| {
                        ctx.is_paired_dec(n, api, &o1)
                            || ctx.returns_object(n, &o1)
                            || ctx.escapes_object(n, &o1)
                            || ctx.reassigns_object(n, &o1)
                    },
                ),
                Step::new(move |n| n == fexit).avoiding(move |n| {
                    ctx.is_paired_dec(n, api, &o2)
                        || ctx.returns_object(n, &o2)
                        || ctx.escapes_object(n, &o2)
                }),
            ])
            .without_back_edges();
            if let Some(witness) = q.search(&graph.cfg, site.node) {
                out.push(Finding {
                    pattern: AntiPattern::P5,
                    impact: Impact::Leak,
                    file: ctx.file.to_string(),
                    function: graph.name().to_string(),
                    line: graph.line_of(witness[0]),
                    api: site.api.name.clone(),
                    object: Some(obj),
                    message: format!(
                        "error path exits without the {} that other paths perform",
                        ctx.kb
                            .accepted_decs(&site.api.name)
                            .first()
                            .cloned()
                            .unwrap_or_else(|| "paired decrement".into())
                    ),
                    feasibility: graph.feas.classify(&q, &graph.cfg, site.node),
                    checkers: Vec::new(),
                    engines: Vec::new(),
                });
            }
        }
        out
    }
}

/// **P6 — Inter-unpaired / indirect call**
/// (`F⊤_start → S_G → F⊤_end ∧ F⊥_start → F⊥_end`).
///
/// Driver ops tables pair functions through function pointers
/// (`.probe`/`.remove`, `.open`/`.release`); an increment in the ⊤ side
/// must be matched in the ⊥ side (§5.3.2). Name-paired functions
/// (`xx_init`/`xx_exit`) are matched the same way (§7).
pub struct InterUnpairedChecker;

/// The designated-field pairs the checker understands.
const OPS_PAIRS: &[(&str, &str)] = &[
    ("probe", "remove"),
    ("probe", "disconnect"),
    ("open", "release"),
    ("open", "close"),
    ("connect", "shutdown"),
    ("bind", "unbind"),
    ("attach", "detach"),
    ("start", "stop"),
    ("init", "exit"),
];

/// Name-suffix pairs for direct (non-table) pairing.
const NAME_PAIRS: &[(&str, &str)] = &[
    ("probe", "remove"),
    ("register", "unregister"),
    ("create", "destroy"),
    ("init", "uninit"),
    ("init", "exit"),
    ("open", "release"),
    ("start", "stop"),
];

impl Checker for InterUnpairedChecker {
    fn pattern(&self) -> AntiPattern {
        AntiPattern::P6
    }

    fn name(&self) -> &'static str {
        "InterUnpairedChecker"
    }

    fn check(&self, ctx: &CheckCtx<'_>) -> Vec<Finding> {
        // Run once per unit: only on the first function to avoid
        // duplicate reports.
        if ctx
            .all_graphs
            .first()
            .map(|g| g.name() != ctx.graph.name())
            .unwrap_or(true)
        {
            return Vec::new();
        }
        let mut pairs = ops_table_pairs(ctx.unit);
        pairs.extend(name_pairs(ctx.all_graphs));
        pairs.sort();
        pairs.dedup();

        let mut out = Vec::new();
        for (top_name, bottom_name) in pairs {
            let Some(top) = ctx.all_graphs.iter().find(|g| g.name() == top_name) else {
                continue;
            };
            let bottom = ctx.all_graphs.iter().find(|g| g.name() == bottom_name);
            let top_ctx = CheckCtx {
                file: ctx.file,
                graph: top,
                kb: ctx.kb,
                unit: ctx.unit,
                all_graphs: ctx.all_graphs,
                program: ctx.program,
                trace: ctx.trace.clone(),
            };
            for site in inc_sites(&top_ctx) {
                // Only references that survive the ⊤ function matter:
                // ones stored into long-lived state (escaped) — either
                // via a tracked local, or directly into a field
                // (`priv->node = of_find_...(..)`).
                let (obj, escapes) = match site.object.clone() {
                    Some(obj) => {
                        let escapes = top.cfg.node_ids().any(|n| top_ctx.escapes_object(n, &obj));
                        (Some(obj), escapes)
                    }
                    None => {
                        let direct = top.facts[site.node].assigns.iter().any(|a| {
                            a.rhs_call.as_deref() == Some(site.api.name.as_str())
                                && matches!(
                                    a.target,
                                    refminer_cpg::StoreTarget::Field { .. }
                                        | refminer_cpg::StoreTarget::Indirect(_)
                                )
                        });
                        (None, direct)
                    }
                };
                if !escapes {
                    continue;
                }
                // Paired inside ⊤ itself? (By object when tracked, by
                // accepted dec name otherwise.)
                let accepted_top = ctx.kb.accepted_decs(&site.api.name);
                let paired_in_top = match &obj {
                    Some(o) => has_any_paired_dec(&top_ctx, site.api, o),
                    None => top.cfg.node_ids().any(|n| {
                        top.facts[n]
                            .calls
                            .iter()
                            .any(|c| accepted_top.iter().any(|d| d == &c.name))
                    }),
                };
                if paired_in_top {
                    continue;
                }
                // Paired in ⊥ by API name (the object variable differs
                // across functions, so match on accepted dec names) —
                // or through a helper defined in another unit whose
                // summary releases one of the bottom call's arguments.
                let accepted = ctx.kb.accepted_decs(&site.api.name);
                let paired_in_bottom = bottom.is_some_and(|b| {
                    b.cfg.node_ids().any(|n| {
                        b.facts[n].calls.iter().any(|c| {
                            accepted.iter().any(|d| d == &c.name)
                                || ctx
                                    .program
                                    .cross_unit_release(ctx.file, &c.name, c.args.len())
                        })
                    })
                });
                if paired_in_bottom {
                    continue;
                }
                out.push(Finding {
                    pattern: AntiPattern::P6,
                    impact: Impact::Leak,
                    file: ctx.file.to_string(),
                    function: top_name.clone(),
                    line: top.line_of(site.node),
                    api: site.api.name.clone(),
                    object: obj,
                    message: format!(
                        "{} acquires a reference in {top_name}() but the paired \
                         {bottom_name}() never releases it",
                        site.api.name
                    ),
                    // Cross-function pairing has no single witness path
                    // to test against the intra-function constraints.
                    feasibility: refminer_cpg::Feasibility::Assumed,
                    checkers: Vec::new(),
                    engines: Vec::new(),
                });
            }
        }
        out
    }
}

/// Extracts (top, bottom) function-name pairs from ops-table globals.
fn ops_table_pairs(unit: &TranslationUnit) -> Vec<(String, String)> {
    let mut out = Vec::new();
    for g in unit.globals() {
        let Some(init @ Initializer::List(_)) = &g.init else {
            continue;
        };
        for (top_field, bottom_field) in OPS_PAIRS {
            let top = init.designated(top_field).and_then(|i| i.as_ident());
            let bottom = init.designated(bottom_field).and_then(|i| i.as_ident());
            if let (Some(t), Some(b)) = (top, bottom) {
                out.push((t.to_string(), b.to_string()));
            }
        }
    }
    out
}

/// Pairs functions by name suffix: `foo_probe` ↔ `foo_remove`.
fn name_pairs(graphs: &[FunctionGraph]) -> Vec<(String, String)> {
    let names: Vec<&str> = graphs.iter().map(|g| g.name()).collect();
    let mut out = Vec::new();
    for name in &names {
        for (top_suffix, bottom_suffix) in NAME_PAIRS {
            let Some(stem) = name.strip_suffix(&format!("_{top_suffix}")) else {
                continue;
            };
            let bottom = format!("{stem}_{bottom_suffix}");
            if names.iter().any(|n| *n == bottom) {
                out.push((name.to_string(), bottom));
            }
        }
    }
    out
}

/// **P7 — Direct-free** (`F_start → S_G → S_free → F_end`).
///
/// `kfree` on a refcounted object skips the release callback, leaking
/// everything the decrement API would have cleaned up (§5.3.3:
/// commit-258ad2fe's leaked name string; 44 historical bugs).
pub struct DirectFreeChecker;

impl Checker for DirectFreeChecker {
    fn pattern(&self) -> AntiPattern {
        AntiPattern::P7
    }

    fn name(&self) -> &'static str {
        "DirectFreeChecker"
    }

    fn check(&self, ctx: &CheckCtx<'_>) -> Vec<Finding> {
        const FREE_FNS: &[&str] = &["kfree", "kvfree", "kfree_sensitive", "vfree"];
        let mut out = Vec::new();
        let graph = ctx.graph;
        for n in graph.cfg.node_ids() {
            for call in &graph.facts[n].calls {
                if !FREE_FNS.contains(&call.name.as_str()) {
                    continue;
                }
                let Some(obj) = call.arg_root(0).map(str::to_string) else {
                    continue;
                };
                // The freed object is refcounted if it originates from a
                // known increment API...
                let from_inc = graph
                    .origins
                    .call_origins(&graph.cfg, n, &obj)
                    .iter()
                    .any(|name| ctx.kb.is_inc(name));
                // ...or an increment was applied to it in this function.
                let inc_applied = graph.cfg.node_ids().any(|m| {
                    m != n
                        && graph.facts[m].calls.iter().any(|c| {
                            ctx.kb
                                .get(&c.name)
                                .filter(|a| a.dir == RcDir::Inc)
                                .and_then(|a| a.object_arg())
                                .and_then(|i| c.arg_root(i))
                                == Some(&obj)
                        })
                });
                if from_inc || inc_applied {
                    out.push(Finding {
                        pattern: AntiPattern::P7,
                        impact: Impact::Leak,
                        file: ctx.file.to_string(),
                        function: graph.name().to_string(),
                        line: graph.line_of(n),
                        api: call.name.clone(),
                        object: Some(obj.clone()),
                        message: format!(
                            "{obj} is refcounted; freeing it with {} skips the \
                             release callback and leaks attached resources",
                            call.name
                        ),
                        // The free itself is the witness — no path
                        // condition to refute.
                        feasibility: refminer_cpg::Feasibility::Assumed,
                        checkers: Vec::new(),
                        engines: Vec::new(),
                    });
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use refminer_cparse::parse_str;
    use refminer_rcapi::ApiKb;

    fn run(checker: &dyn Checker, src: &str) -> Vec<Finding> {
        let tu = parse_str("t.c", src);
        let graphs = FunctionGraph::build_all(&tu);
        let kb = ApiKb::builtin();
        let db = refminer_progdb::ProgramDb::empty();
        let mut out = Vec::new();
        for graph in &graphs {
            let ctx = CheckCtx {
                file: "t.c",
                graph,
                kb: &kb,
                unit: &tu,
                all_graphs: &graphs,
                program: &db,
                trace: refminer_trace::TraceHandle::disabled(),
            };
            out.extend(checker.check(&ctx));
        }
        out
    }

    #[test]
    fn p5_detects_missing_dec_on_error_path() {
        let findings = run(
            &ErrorPathChecker,
            r#"
int probe(struct platform_device *pdev)
{
        struct device_node *np = of_find_node_by_path("/soc");
        int ret;
        if (!np)
                return -ENODEV;
        ret = setup_hw(np);
        if (ret)
                goto err_disable;
        of_node_put(np);
        return 0;
err_disable:
        disable_hw();
        return ret;
}
"#,
        );
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].pattern, AntiPattern::P5);
    }

    #[test]
    fn p5_clean_when_error_path_puts() {
        let findings = run(
            &ErrorPathChecker,
            r#"
int probe(struct platform_device *pdev)
{
        struct device_node *np = of_find_node_by_path("/soc");
        int ret;
        if (!np)
                return -ENODEV;
        ret = setup_hw(np);
        if (ret)
                goto err_put;
        of_node_put(np);
        return 0;
err_put:
        of_node_put(np);
        return ret;
}
"#,
        );
        assert!(findings.is_empty(), "got {findings:?}");
    }

    #[test]
    fn p6_detects_probe_without_remove_put() {
        let findings = run(
            &InterUnpairedChecker,
            r#"
static int foo_probe(struct platform_device *pdev)
{
        struct device_node *np = of_find_node_by_name(NULL, "codec");
        pdev->priv = np;
        return 0;
}
static int foo_remove(struct platform_device *pdev)
{
        disable_hw(pdev);
        return 0;
}
static const struct platform_driver foo_driver = {
        .probe = foo_probe,
        .remove = foo_remove,
};
"#,
        );
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].pattern, AntiPattern::P6);
        assert_eq!(findings[0].function, "foo_probe");
    }

    #[test]
    fn p6_clean_when_remove_puts() {
        let findings = run(
            &InterUnpairedChecker,
            r#"
static int foo_probe(struct platform_device *pdev)
{
        struct device_node *np = of_find_node_by_name(NULL, "codec");
        pdev->priv = np;
        return 0;
}
static int foo_remove(struct platform_device *pdev)
{
        of_node_put(pdev->priv);
        return 0;
}
static const struct platform_driver foo_driver = {
        .probe = foo_probe,
        .remove = foo_remove,
};
"#,
        );
        assert!(findings.is_empty(), "got {findings:?}");
    }

    #[test]
    fn p6_pairs_by_name_without_table() {
        let findings = run(
            &InterUnpairedChecker,
            r#"
static int bar_init(struct bar *b)
{
        b->node = of_find_node_by_name(NULL, "bar");
        return 0;
}
static void bar_exit(struct bar *b)
{
        stop_bar(b);
}
"#,
        );
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].function, "bar_init");
    }

    #[test]
    fn p7_detects_kfree_of_refcounted() {
        let findings = run(
            &DirectFreeChecker,
            r#"
void teardown(void)
{
        struct device *dev = bus_find_device(&bus, NULL, NULL, m);
        kfree(dev);
}
"#,
        );
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].pattern, AntiPattern::P7);
        assert_eq!(findings[0].object.as_deref(), Some("dev"));
    }

    #[test]
    fn p7_clean_for_plain_allocation() {
        let findings = run(
            &DirectFreeChecker,
            r#"
void teardown(void)
{
        char *buf = kmalloc(64, GFP_KERNEL);
        kfree(buf);
}
"#,
        );
        assert!(findings.is_empty(), "got {findings:?}");
    }

    #[test]
    fn p7_detects_free_after_explicit_get() {
        let findings = run(
            &DirectFreeChecker,
            r#"
void teardown(struct device_node *np)
{
        of_node_get(np);
        kfree(np);
}
"#,
        );
        assert_eq!(findings.len(), 1);
    }
}

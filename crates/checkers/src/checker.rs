//! The checker trait, shared helpers, and the all-checkers runner.

use refminer_cparse::TranslationUnit;
use refminer_cpg::{FunctionGraph, NodeId, StoreTarget};
use refminer_progdb::ProgramDb;
use refminer_rcapi::{ApiKb, RcApi};

use crate::ctx::CheckCtx;
use crate::finding::Finding;

/// A static checker for one anti-pattern.
pub trait Checker {
    /// The anti-pattern this checker detects.
    fn pattern(&self) -> crate::finding::AntiPattern;
    /// Stable checker name, recorded in each finding's `checkers` list
    /// (and combined when the report layer merges same-site findings).
    fn name(&self) -> &'static str;
    /// Runs the checker on one function.
    fn check(&self, ctx: &CheckCtx<'_>) -> Vec<Finding>;
}

/// The default checker set: one per anti-pattern, P1 through P9.
pub fn default_checkers() -> Vec<Box<dyn Checker>> {
    vec![
        Box::new(crate::deviation::ReturnErrorChecker),
        Box::new(crate::deviation::ReturnNullChecker),
        Box::new(crate::hidden::SmartLoopBreakChecker),
        Box::new(crate::hidden::HiddenApiChecker),
        Box::new(crate::location::ErrorPathChecker),
        Box::new(crate::location::InterUnpairedChecker),
        Box::new(crate::location::DirectFreeChecker),
        Box::new(crate::risk::UadChecker),
        Box::new(crate::risk::EscapeChecker),
    ]
}

/// The default checker set restricted to a subset of anti-patterns —
/// the `--only-pattern` audit scope. Order is preserved, so a filtered
/// run emits findings in the same relative order as a full run.
pub fn checkers_for_patterns(patterns: &[crate::finding::AntiPattern]) -> Vec<Box<dyn Checker>> {
    default_checkers()
        .into_iter()
        .filter(|c| patterns.contains(&c.pattern()))
        .collect()
}

/// Runs every checker over every function of a translation unit.
///
/// # Examples
///
/// ```
/// use refminer_cparse::parse_str;
/// use refminer_rcapi::ApiKb;
/// use refminer_checkers::check_unit;
///
/// let tu = parse_str("drivers/nvmem/core.c", r#"
/// int probe(struct bus_type *bus, void *np)
/// {
///         struct device *dev = bus_find_device(bus, NULL, np, match_fn);
///         if (!dev)
///                 return -EPROBE_DEFER;
///         return 0;
/// }
/// "#);
/// let findings = check_unit(&tu, &ApiKb::builtin());
/// assert!(!findings.is_empty());
/// ```
pub fn check_unit(unit: &TranslationUnit, kb: &ApiKb) -> Vec<Finding> {
    let graphs = FunctionGraph::build_all(unit);
    check_unit_with_graphs(unit, kb, &graphs)
}

/// Like [`check_unit`], reusing pre-built graphs.
pub fn check_unit_with_graphs(
    unit: &TranslationUnit,
    kb: &ApiKb,
    graphs: &[FunctionGraph],
) -> Vec<Finding> {
    check_unit_with_checkers(unit, kb, graphs, &default_checkers())
}

/// Runs an explicit checker subset (ablation studies, custom configs).
///
/// Helper effects resolve against a unit-local [`ProgramDb`], so the
/// result is the single-unit view of the whole-program pipeline.
pub fn check_unit_with_checkers(
    unit: &TranslationUnit,
    kb: &ApiKb,
    graphs: &[FunctionGraph],
    checkers: &[Box<dyn Checker>],
) -> Vec<Finding> {
    let globals: Vec<String> = unit.globals().map(|g| g.name.clone()).collect();
    let program = ProgramDb::local(&unit.path, graphs, &globals, kb);
    check_unit_with_program(unit, kb, graphs, checkers, &program)
}

/// Runs checkers over one unit against an externally built
/// [`ProgramDb`] — the phase-2 entry point of the whole-program audit,
/// where the database merges summaries from every unit in the tree.
pub fn check_unit_with_program(
    unit: &TranslationUnit,
    kb: &ApiKb,
    graphs: &[FunctionGraph],
    checkers: &[Box<dyn Checker>],
    program: &ProgramDb,
) -> Vec<Finding> {
    check_unit_with_program_traced(
        unit,
        kb,
        graphs,
        checkers,
        program,
        &refminer_trace::TraceHandle::disabled(),
    )
}

/// Like [`check_unit_with_program`], attributing the wall time each
/// checker spends on this unit to a `checker.{name}.us` trace counter.
/// With a disabled handle the timing collapses to a no-op, and the
/// findings are identical either way — tracing only observes.
pub fn check_unit_with_program_traced(
    unit: &TranslationUnit,
    kb: &ApiKb,
    graphs: &[FunctionGraph],
    checkers: &[Box<dyn Checker>],
    program: &ProgramDb,
    trace: &refminer_trace::TraceHandle,
) -> Vec<Finding> {
    let mut out = Vec::new();
    for graph in graphs {
        let ctx = CheckCtx {
            file: &unit.path,
            graph,
            kb,
            unit,
            all_graphs: graphs,
            program,
            trace: trace.clone(),
        };
        out.extend(run_checkers_on_graph(&ctx, checkers));
    }
    dedup_findings(&mut out);
    out
}

/// Runs the template checkers over one function graph, attributing
/// per-checker wall time to `checker.{name}.us` trace counters and
/// stamping each finding with its checker name and the template engine
/// id. The shared inner loop of both [`check_unit_with_program_traced`]
/// and the engine-layer `TemplateEngine`.
pub(crate) fn run_checkers_on_graph(
    ctx: &CheckCtx<'_>,
    checkers: &[Box<dyn Checker>],
) -> Vec<Finding> {
    let timing = ctx.trace.is_enabled();
    let mut out = Vec::new();
    for checker in checkers {
        let start = timing.then(std::time::Instant::now);
        let mut found = checker.check(ctx);
        if let Some(start) = start {
            // Clamp to at least 1µs so even trivially fast checkers
            // show up in the per-checker table.
            let us = start.elapsed().as_micros().clamp(1, u64::MAX as u128) as u64;
            ctx.trace.add(&format!("checker.{}.us", checker.name()), us);
        }
        for f in &mut found {
            if f.checkers.is_empty() {
                f.checkers.push(checker.name().to_string());
            }
            f.add_engine(crate::finding::EngineId::Template);
        }
        out.extend(found);
    }
    out
}

/// Collapses duplicate findings (same pattern, file, line, api) into
/// one, combining their checker and engine attributions and keeping
/// the most credible feasibility verdict.
///
/// The sort key excludes checker and engine names, so when the two
/// engines flag the same site the finding emitted first (engines run
/// in template-then-delta order) survives and absorbs the other's
/// attribution — the within-unit half of cross-validation.
pub fn dedup_findings(findings: &mut Vec<Finding>) {
    findings.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.pattern, a.api.as_str()).cmp(&(
            b.file.as_str(),
            b.line,
            b.pattern,
            b.api.as_str(),
        ))
    });
    let mut out: Vec<Finding> = Vec::with_capacity(findings.len());
    for f in findings.drain(..) {
        match out.last_mut() {
            Some(prev)
                if prev.pattern == f.pattern
                    && prev.file == f.file
                    && prev.line == f.line
                    && prev.api == f.api =>
            {
                for c in f.checkers {
                    if !prev.checkers.contains(&c) {
                        prev.checkers.push(c);
                    }
                }
                for e in f.engines {
                    prev.add_engine(e);
                }
                prev.feasibility = prev.feasibility.max(f.feasibility);
            }
            _ => out.push(f),
        }
    }
    *findings = out;
}

/// A fingerprint of the default checker set, for cache keying.
///
/// Cached per-unit check results are only valid for the checker set
/// that produced them. The fingerprint folds in every anti-pattern id
/// and its semantic template, plus a version counter bumped whenever
/// checker *logic* changes without the template text moving. Any
/// difference invalidates previously cached findings.
pub fn checker_set_fingerprint() -> u64 {
    // Bump when checker behavior changes in a way the templates don't
    // capture (new heuristics, changed dedup rules, ...).
    // v2: helper summaries resolve through the linkage-aware ProgramDb
    // (cross-unit release/store/consumer refinements).
    // v3: findings carry feasibility verdicts and checker lists; the
    // path-feasibility engine classifies every path-based witness.
    // v4: findings carry engine attributions; the within-unit dedup
    // unions checker/engine lists instead of dropping duplicates.
    const CHECKER_LOGIC_VERSION: u64 = 4;
    let mut h: u64 = 0xcbf29ce484222325; // FNV-1a offset basis
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    };
    eat(&CHECKER_LOGIC_VERSION.to_le_bytes());
    for p in crate::finding::AntiPattern::all() {
        eat(p.id().as_bytes());
        eat(p.template_text().as_bytes());
    }
    h
}

/// An increment-API call site: the node, the API, and the variable the
/// acquired reference landed in (if any). Shared between the template
/// checkers and the delta engine's seed enumeration.
pub struct IncSite<'a> {
    /// The CFG node performing the increment call.
    pub node: NodeId,
    /// The increment API called.
    pub api: &'a RcApi,
    /// The object variable holding the new reference. `None` when the
    /// returned reference was discarded.
    pub object: Option<String>,
}

/// Finds every increment-API call site in a function, with the object
/// variable the reference flows into.
pub fn inc_sites<'a>(ctx: &'a CheckCtx<'_>) -> Vec<IncSite<'a>> {
    let mut out = Vec::new();
    for n in ctx.graph.cfg.node_ids() {
        let facts = &ctx.graph.facts[n];
        for call in &facts.calls {
            let Some(api) = ctx.kb.get(&call.name) else {
                continue;
            };
            if api.dir != refminer_rcapi::RcDir::Inc {
                continue;
            }
            let object = if api.returns_object() {
                facts
                    .assigns
                    .iter()
                    .find(|a| a.rhs_call.as_deref() == Some(api.name.as_str()))
                    .and_then(|a| match &a.target {
                        StoreTarget::Var(v) => Some(v.clone()),
                        _ => None,
                    })
            } else {
                api.object_arg()
                    .and_then(|i| call.arg_root(i))
                    .map(str::to_string)
            };
            out.push(IncSite {
                node: n,
                api,
                object,
            });
        }
    }
    out
}

/// Whether any node in the function pairs the increment `api` on `obj`.
pub fn has_any_paired_dec(ctx: &CheckCtx<'_>, api: &RcApi, obj: &str) -> bool {
    ctx.graph
        .cfg
        .node_ids()
        .any(|n| ctx.is_paired_dec(n, api, obj))
}

#[cfg(test)]
mod tests {
    use super::*;
    use refminer_cparse::parse_str;

    #[test]
    fn inc_sites_extraction() {
        let tu = parse_str(
            "t.c",
            r#"
int f(struct device *dev)
{
        struct device_node *np = of_find_node_by_path("/soc");
        pm_runtime_get_sync(dev);
        of_find_node_by_path("/discarded");
        return 0;
}
"#,
        );
        let graphs = FunctionGraph::build_all(&tu);
        let kb = ApiKb::builtin();
        let db = ProgramDb::empty();
        let ctx = CheckCtx {
            file: "t.c",
            graph: &graphs[0],
            kb: &kb,
            unit: &tu,
            all_graphs: &graphs,
            program: &db,
            trace: refminer_trace::TraceHandle::disabled(),
        };
        let sites = inc_sites(&ctx);
        assert_eq!(sites.len(), 3);
        assert_eq!(sites[0].object.as_deref(), Some("np"));
        assert_eq!(sites[1].object.as_deref(), Some("dev"));
        assert_eq!(sites[2].object, None);
    }

    #[test]
    fn checker_fingerprint_is_stable_and_nonzero() {
        let a = checker_set_fingerprint();
        let b = checker_set_fingerprint();
        assert_eq!(a, b);
        assert_ne!(a, 0);
    }

    #[test]
    fn dedup_removes_duplicates() {
        use crate::finding::{AntiPattern, Impact};
        let f = Finding {
            pattern: AntiPattern::P4,
            impact: Impact::Leak,
            file: "a.c".into(),
            function: "f".into(),
            line: 3,
            api: "x".into(),
            object: None,
            message: String::new(),
            feasibility: refminer_cpg::Feasibility::Assumed,
            checkers: Vec::new(),
            engines: Vec::new(),
        };
        let mut v = vec![f.clone(), f.clone()];
        dedup_findings(&mut v);
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn dedup_unions_checker_and_engine_attribution() {
        use crate::finding::{AntiPattern, Confidence, EngineId, Impact};
        let mk = |checker: &str, engine: EngineId| Finding {
            pattern: AntiPattern::P5,
            impact: Impact::Leak,
            file: "a.c".into(),
            function: "f".into(),
            line: 3,
            api: "x".into(),
            object: None,
            message: String::new(),
            feasibility: refminer_cpg::Feasibility::Assumed,
            checkers: vec![checker.into()],
            engines: vec![engine],
        };
        let mut v = vec![
            mk("ErrorPathChecker", EngineId::Template),
            mk("DeltaEngine", EngineId::Delta),
        ];
        dedup_findings(&mut v);
        assert_eq!(v.len(), 1);
        assert_eq!(
            v[0].checkers,
            vec!["ErrorPathChecker".to_string(), "DeltaEngine".to_string()]
        );
        assert_eq!(v[0].engines, vec![EngineId::Template, EngineId::Delta]);
        assert_eq!(v[0].confidence(), Confidence::Corroborated);
    }
}

//! Checkers P1 and P2: implementation-deviation bugs (§5.1).

use refminer_cpg::{CheckFact, NodeKind, PathQuery, Step};

use crate::checker::{inc_sites, Checker};
use crate::ctx::CheckCtx;
use crate::finding::{AntiPattern, Finding, Impact};

/// **P1 — Return-Error** (`F_start → S_{G_E} → B_error → F_end`).
///
/// APIs like `pm_runtime_get_sync` increment the usage counter even
/// when they fail and return an error code (§5.1.1). Callers that jump
/// straight into the error path on failure leak the reference: the
/// decrement must happen on *every* path once the call was made.
pub struct ReturnErrorChecker;

impl Checker for ReturnErrorChecker {
    fn pattern(&self) -> AntiPattern {
        AntiPattern::P1
    }

    fn name(&self) -> &'static str {
        "ReturnErrorChecker"
    }

    fn check(&self, ctx: &CheckCtx<'_>) -> Vec<Finding> {
        let mut out = Vec::new();
        for site in inc_sites(ctx) {
            if !site.api.inc_on_error {
                continue;
            }
            let Some(obj) = site.object.clone() else {
                continue;
            };
            // Path: call → error block → exit, never decrementing obj.
            // NULL-guard bailouts of the object are not error paths for
            // pairing purposes (no reference was taken when NULL).
            let graph = ctx.graph;
            let exit = graph.cfg.exit;
            let api = site.api;
            let null_guard = refminer_cpg::null_guard_nodes(&graph.cfg, &graph.facts, &obj);
            let obj_ref = obj.clone();
            let obj_ref2 = obj.clone();
            let q = PathQuery::new(vec![
                Step::new(move |n| graph.is_error_node(n) && !null_guard.contains(&n))
                    .avoiding(move |n| ctx.is_paired_dec(n, api, &obj_ref)),
                Step::new(move |n| n == exit)
                    .avoiding(move |n| ctx.is_paired_dec(n, api, &obj_ref2)),
            ]);
            if q.search(&graph.cfg, site.node).is_some() {
                out.push(Finding {
                    pattern: AntiPattern::P1,
                    impact: Impact::Leak,
                    file: ctx.file.to_string(),
                    function: graph.name().to_string(),
                    line: graph.line_of(site.node),
                    api: site.api.name.clone(),
                    object: Some(obj),
                    message: format!(
                        "{} increments the refcounter even on failure; the error \
                         path returns without the paired decrement",
                        site.api.name
                    ),
                    feasibility: graph.feas.classify(&q, &graph.cfg, site.node),
                    checkers: Vec::new(),
                    engines: Vec::new(),
                });
            }
        }
        out
    }
}

/// **P2 — Return-NULL** (`F_start → S_{G_N} → S_{D_N} → F_end`).
///
/// Increment APIs that hand the object back through the return value
/// may return NULL (§5.1.2); dereferencing the result without a NULL
/// check is a NULL-pointer dereference.
pub struct ReturnNullChecker;

impl Checker for ReturnNullChecker {
    fn pattern(&self) -> AntiPattern {
        AntiPattern::P2
    }

    fn name(&self) -> &'static str {
        "ReturnNullChecker"
    }

    fn check(&self, ctx: &CheckCtx<'_>) -> Vec<Finding> {
        let mut out = Vec::new();
        for site in inc_sites(ctx) {
            if !site.api.may_return_null || !site.api.returns_object() {
                continue;
            }
            let Some(obj) = site.object.clone() else {
                continue;
            };
            let graph = ctx.graph;
            let obj_deref = obj.clone();
            let obj_check = obj.clone();
            // Path: call → deref(obj), never passing a NULL-ness check
            // of obj (in either polarity: any test guards the deref).
            let q = PathQuery::new(vec![Step::new(move |n| {
                n != 0 && graph.facts[n].derefs_var(&obj_deref) && n != graph.cfg.entry
            })
            .avoiding(move |n| {
                matches!(graph.cfg.nodes[n].kind, NodeKind::Cond(_))
                    && graph.facts[n].checks.iter().any(|c| match c {
                        CheckFact::NullOnTrue(v) | CheckFact::NonNullOnTrue(v) => v == &obj_check,
                        _ => false,
                    })
            })]);
            if let Some(witness) = q.search(&graph.cfg, site.node) {
                let deref_node = witness[0];
                if deref_node == site.node {
                    // The acquiring statement itself (e.g. the
                    // assignment) — not a use-before-check.
                    continue;
                }
                out.push(Finding {
                    pattern: AntiPattern::P2,
                    impact: Impact::Npd,
                    file: ctx.file.to_string(),
                    function: graph.name().to_string(),
                    line: graph.line_of(deref_node),
                    api: site.api.name.clone(),
                    object: Some(obj),
                    message: format!(
                        "result of {} may be NULL but is dereferenced without a check",
                        site.api.name
                    ),
                    feasibility: graph.feas.classify(&q, &graph.cfg, site.node),
                    checkers: Vec::new(),
                    engines: Vec::new(),
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use refminer_cparse::parse_str;
    use refminer_cpg::FunctionGraph;
    use refminer_rcapi::ApiKb;

    fn run(checker: &dyn Checker, src: &str) -> Vec<Finding> {
        let tu = parse_str("t.c", src);
        let graphs = FunctionGraph::build_all(&tu);
        let kb = ApiKb::builtin();
        let db = refminer_progdb::ProgramDb::empty();
        let mut out = Vec::new();
        for graph in &graphs {
            let ctx = CheckCtx {
                file: "t.c",
                graph,
                kb: &kb,
                unit: &tu,
                all_graphs: &graphs,
                program: &db,
                trace: refminer_trace::TraceHandle::disabled(),
            };
            out.extend(checker.check(&ctx));
        }
        out
    }

    #[test]
    fn p1_detects_listing3_bug() {
        let findings = run(
            &ReturnErrorChecker,
            r#"
static int stm32_crc_remove(struct platform_device *pdev)
{
        struct stm32_crc *crc = platform_get_drvdata(pdev);
        int ret = pm_runtime_get_sync(crc->dev);
        if (ret < 0)
                return ret;
        pm_runtime_put(crc->dev);
        return 0;
}
"#,
        );
        // NOTE: the object here is `crc->dev`, whose root is `crc`.
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].pattern, AntiPattern::P1);
        assert_eq!(findings[0].impact, Impact::Leak);
        assert_eq!(findings[0].api, "pm_runtime_get_sync");
    }

    #[test]
    fn p1_clean_when_error_path_puts() {
        let findings = run(
            &ReturnErrorChecker,
            r#"
static int good_remove(struct device *dev)
{
        int ret = pm_runtime_get_sync(dev);
        if (ret < 0) {
                pm_runtime_put_noidle(dev);
                return ret;
        }
        pm_runtime_put(dev);
        return 0;
}
"#,
        );
        assert!(findings.is_empty(), "got {findings:?}");
    }

    #[test]
    fn p2_detects_unchecked_deref() {
        let findings = run(
            &ReturnNullChecker,
            r#"
static int probe(void)
{
        struct mdesc_handle *hp = mdesc_grab();
        const char *name = hp->name;
        mdesc_release(hp);
        return 0;
}
"#,
        );
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].pattern, AntiPattern::P2);
        assert_eq!(findings[0].impact, Impact::Npd);
    }

    #[test]
    fn p2_clean_with_null_check() {
        let findings = run(
            &ReturnNullChecker,
            r#"
static int probe(void)
{
        struct mdesc_handle *hp = mdesc_grab();
        if (!hp)
                return -ENODEV;
        use_name(hp->name);
        mdesc_release(hp);
        return 0;
}
"#,
        );
        assert!(findings.is_empty(), "got {findings:?}");
    }

    #[test]
    fn p1_ignores_regular_incs() {
        let findings = run(
            &ReturnErrorChecker,
            r#"
static int probe(struct device_node *np)
{
        struct device_node *child = of_get_parent(np);
        if (!child)
                return -ENODEV;
        return 0;
}
"#,
        );
        assert!(findings.is_empty());
    }
}

//! # refminer-checkers
//!
//! The nine anti-pattern static checkers of the SOSP '23 refcounting
//! study (§5–§6), implemented as path queries over `refminer-cpg`
//! function graphs with `refminer-rcapi` giving call names their
//! refcounting meaning:
//!
//! | Checker | Anti-pattern | Root cause | Impact |
//! |---------|--------------|------------|--------|
//! | [`ReturnErrorChecker`]   | P1 | implementation deviation | leak |
//! | [`ReturnNullChecker`]    | P2 | implementation deviation | NPD |
//! | [`SmartLoopBreakChecker`]| P3 | hidden refcounting | leak |
//! | [`HiddenApiChecker`]     | P4 | hidden refcounting | leak / UAF |
//! | [`ErrorPathChecker`]     | P5 | overlooked location | leak |
//! | [`InterUnpairedChecker`] | P6 | overlooked location | leak |
//! | [`DirectFreeChecker`]    | P7 | overlooked location | leak |
//! | [`UadChecker`]           | P8 | future risk | UAF |
//! | [`EscapeChecker`]        | P9 | future risk | UAF |
//!
//! Use [`check_unit`] to run the full set over one parsed file.
//!
//! The checkers are one [`AnalysisEngine`] (the [`TemplateEngine`])
//! behind the engine substrate in [`engine`]; the ownership-delta
//! dataflow engine in `refminer-delta` is the other. Findings carry an
//! `engines` attribution and derive a [`Confidence`]
//! (corroborated / template-only / delta-only) from it.

mod checker;
mod ctx;
mod deviation;
mod engine;
mod finding;
mod hidden;
mod location;
mod risk;

pub use checker::{
    check_unit, check_unit_with_checkers, check_unit_with_graphs, check_unit_with_program,
    check_unit_with_program_traced, checker_set_fingerprint, checkers_for_patterns, dedup_findings,
    default_checkers, has_any_paired_dec, inc_sites, Checker, IncSite,
};
pub use ctx::CheckCtx;
pub use deviation::{ReturnErrorChecker, ReturnNullChecker};
pub use engine::{run_engines_traced, AnalysisEngine, EngineSet, TemplateEngine};
pub use finding::{
    merge_duplicate_findings, merge_unit_findings, sort_findings_canonical, AntiPattern,
    Confidence, EngineId, Finding, Impact,
};
// The feasibility verdict each finding carries (see `refminer-cpg`).
pub use hidden::{HiddenApiChecker, SmartLoopBreakChecker};
pub use location::{DirectFreeChecker, ErrorPathChecker, InterUnpairedChecker};
pub use refminer_cpg::Feasibility;
// Helper-effect summaries live in `refminer-progdb` now; re-exported so
// downstream code keeps one import path for checker-facing types.
pub use refminer_progdb::{CallSite, FnExport, FnSummary, ProgramDb, UnitExports};
pub use risk::{EscapeChecker, UadChecker};

//! Findings: what a checker reports.

use refminer_cpg::Feasibility;
use refminer_json::{obj, ToJson, Value};
use std::fmt;

/// The paper's nine anti-patterns (§5.1.3, §5.2.3, §5.3.4, §5.4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AntiPattern {
    /// Return-Error deviation: `G_E` increment followed by an error
    /// block with no paired decrement.
    P1,
    /// Return-NULL deviation: `G_N` increment whose result is
    /// dereferenced without a NULL check.
    P2,
    /// Smartloop break: leaving a macro loop without decrementing the
    /// iterator.
    P3,
    /// Hidden refcounting: a refcounting-embedded (find-like) API whose
    /// reference is never paired in the function.
    P4,
    /// Error-handling path missing the decrement that other paths have.
    P5,
    /// Inter-unpaired: increment in one half of an indirect-call pair
    /// (probe/remove, open/release) with no decrement in the other.
    P6,
    /// Direct-free: `kfree` on a refcounted object instead of the
    /// decrement API.
    P7,
    /// Use-after-decrease (UAD): object accessed after its decrement.
    P8,
    /// Reference escape: borrowed reference stored into a global or out
    /// parameter without an increment around the escape point.
    P9,
}

impl AntiPattern {
    /// All nine, in order.
    pub fn all() -> [AntiPattern; 9] {
        use AntiPattern::*;
        [P1, P2, P3, P4, P5, P6, P7, P8, P9]
    }

    /// Short identifier (`"P1"`).
    pub fn id(&self) -> &'static str {
        match self {
            AntiPattern::P1 => "P1",
            AntiPattern::P2 => "P2",
            AntiPattern::P3 => "P3",
            AntiPattern::P4 => "P4",
            AntiPattern::P5 => "P5",
            AntiPattern::P6 => "P6",
            AntiPattern::P7 => "P7",
            AntiPattern::P8 => "P8",
            AntiPattern::P9 => "P9",
        }
    }

    /// The semantic-template text of the anti-pattern (§5).
    pub fn template_text(&self) -> &'static str {
        match self {
            AntiPattern::P1 => "F_start -> S_{G_E} -> B_error -> F_end",
            AntiPattern::P2 => "F_start -> S_{G_N} -> S_{D_N} -> F_end",
            AntiPattern::P3 => "F_start -> M_SL -> S_break -> F_end",
            AntiPattern::P4 => "F_start -> S_{G_H} -> F_end",
            AntiPattern::P5 => "F_start -> S_G -> B_error -> F_end",
            AntiPattern::P6 => "F_interpaired -> S_G -> F_end",
            AntiPattern::P7 => "F_start -> S_G -> S_{free} -> F_end",
            AntiPattern::P8 => "F_start -> S_P(p0) -> S_D(p0) -> F_end",
            AntiPattern::P9 => "F_start -> S_{A_GO} -> F_end",
        }
    }

    /// The root-cause family the pattern belongs to (§5 headings).
    pub fn root_cause(&self) -> &'static str {
        match self {
            AntiPattern::P1 | AntiPattern::P2 => "implementation deviation",
            AntiPattern::P3 | AntiPattern::P4 => "hidden refcounting",
            AntiPattern::P5 | AntiPattern::P6 | AntiPattern::P7 => "overlooked location",
            AntiPattern::P8 | AntiPattern::P9 => "future risk",
        }
    }
}

impl fmt::Display for AntiPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// The security impact a finding can lead to (Table 4's columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Impact {
    /// Memory leak (CWE-401).
    Leak,
    /// Use-after-free (CWE-416).
    Uaf,
    /// NULL-pointer dereference.
    Npd,
}

impl fmt::Display for Impact {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Impact::Leak => "Leak",
            Impact::Uaf => "UAF",
            Impact::Npd => "NPD",
        })
    }
}

/// An analysis engine able to produce findings. The template engine
/// runs the paper's nine anti-pattern checkers; the delta engine runs
/// the ownership-delta dataflow analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EngineId {
    /// The semantic-template checkers (P1–P9).
    Template,
    /// The ownership-delta interval dataflow engine.
    Delta,
}

impl EngineId {
    /// Both engines, in canonical (report) order.
    pub fn all() -> [EngineId; 2] {
        [EngineId::Template, EngineId::Delta]
    }

    /// Stable lowercase name, used in JSON and `--engines` parsing.
    pub fn name(&self) -> &'static str {
        match self {
            EngineId::Template => "template",
            EngineId::Delta => "delta",
        }
    }

    /// Parses a lowercase engine name back to its id.
    pub fn from_name(name: &str) -> Option<EngineId> {
        EngineId::all().into_iter().find(|e| e.name() == name)
    }
}

impl fmt::Display for EngineId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Cross-validation confidence: which engines stand behind a finding.
/// Derived from the finding's `engines` list, never stored.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Confidence {
    /// Both engines reported the site independently.
    Corroborated,
    /// Only the template checkers reported it.
    TemplateOnly,
    /// Only the delta dataflow engine reported it.
    DeltaOnly,
}

impl Confidence {
    /// The confidence a given engine attribution implies. An empty
    /// list (findings predating engine stamping) reads as
    /// template-only, matching how those findings were produced.
    pub fn of(engines: &[EngineId]) -> Confidence {
        let template = engines.contains(&EngineId::Template);
        let delta = engines.contains(&EngineId::Delta);
        match (template, delta) {
            (true, true) => Confidence::Corroborated,
            (false, true) => Confidence::DeltaOnly,
            _ => Confidence::TemplateOnly,
        }
    }

    /// Stable lowercase name, used in JSON.
    pub fn name(&self) -> &'static str {
        match self {
            Confidence::Corroborated => "corroborated",
            Confidence::TemplateOnly => "template_only",
            Confidence::DeltaOnly => "delta_only",
        }
    }
}

impl fmt::Display for Confidence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One detected anti-pattern instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Which anti-pattern matched.
    pub pattern: AntiPattern,
    /// The projected security impact.
    pub impact: Impact,
    /// Source file (repo-relative).
    pub file: String,
    /// Containing function.
    pub function: String,
    /// 1-based line of the key statement.
    pub line: u32,
    /// The bug-caused API (Table 5's "Bug-Caused API" column).
    pub api: String,
    /// The refcounted object variable, when identified.
    pub object: Option<String>,
    /// Human-readable explanation.
    pub message: String,
    /// Path-feasibility verdict for the witnessing path. `Infeasible`
    /// findings are suppressed by default in the audit report.
    pub feasibility: Feasibility,
    /// The checkers that reported this site; more than one after the
    /// report layer merges same-(file, line, family) findings.
    pub checkers: Vec<String>,
    /// The engines that reported this site, in canonical order
    /// (template before delta). Both after the dedup/merge layers
    /// collapse a site both engines flagged independently.
    pub engines: Vec<EngineId>,
}

impl Finding {
    /// The cross-validation confidence this finding's engine
    /// attribution implies.
    pub fn confidence(&self) -> Confidence {
        Confidence::of(&self.engines)
    }

    /// Records that `engine` stands behind this finding, keeping the
    /// engine list in canonical order and free of duplicates.
    pub fn add_engine(&mut self, engine: EngineId) {
        if !self.engines.contains(&engine) {
            self.engines.push(engine);
            self.engines.sort();
        }
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}/{}] {} in {}(): {}",
            self.file, self.line, self.pattern, self.impact, self.api, self.function, self.message
        )
    }
}

/// Sorts findings into the canonical report order: stable by
/// `(file, line)`.
///
/// A *stable* sort on exactly this key is load-bearing: findings from
/// the same line keep the order their checkers emitted them in, so the
/// parallel audit pipeline — which concatenates per-unit finding lists
/// in unit index order before sorting — reproduces the sequential
/// report byte for byte at any worker count.
pub fn sort_findings_canonical(findings: &mut [Finding]) {
    findings.sort_by(|a, b| (a.file.as_str(), a.line).cmp(&(b.file.as_str(), b.line)));
}

/// Merges per-unit finding lists into one canonical report.
///
/// Lists must be supplied in unit index order (the order the project
/// scanner yields units); the result is identical to checking the
/// units one after another sequentially.
pub fn merge_unit_findings(per_unit: impl IntoIterator<Item = Vec<Finding>>) -> Vec<Finding> {
    let mut all: Vec<Finding> = per_unit.into_iter().flatten().collect();
    sort_findings_canonical(&mut all);
    all
}

/// Report-layer dedup: collapses findings that name the same
/// `(file, line, root-cause family)` site into one, with the checker
/// lists combined.
///
/// Input must already be in canonical order ([`sort_findings_canonical`]
/// groups same-site findings adjacently and fixes their relative order),
/// so the merge is deterministic at any worker count: the first finding
/// of each group survives, absorbing the others' checkers in encounter
/// order and keeping the most credible feasibility verdict.
pub fn merge_duplicate_findings(findings: &mut Vec<Finding>) {
    let mut out: Vec<Finding> = Vec::with_capacity(findings.len());
    for f in findings.drain(..) {
        match out.last_mut() {
            Some(prev)
                if prev.file == f.file
                    && prev.line == f.line
                    && prev.pattern.root_cause() == f.pattern.root_cause() =>
            {
                for c in f.checkers {
                    if !prev.checkers.contains(&c) {
                        prev.checkers.push(c);
                    }
                }
                for e in f.engines {
                    prev.add_engine(e);
                }
                prev.feasibility = prev.feasibility.max(f.feasibility);
            }
            _ => out.push(f),
        }
    }
    *findings = out;
}

impl ToJson for AntiPattern {
    fn to_json(&self) -> Value {
        Value::Str(self.id().to_string())
    }
}

impl ToJson for Impact {
    fn to_json(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl ToJson for Finding {
    fn to_json(&self) -> Value {
        obj([
            ("pattern", self.pattern.to_json()),
            ("impact", self.impact.to_json()),
            ("file", self.file.to_json()),
            ("function", self.function.to_json()),
            ("line", self.line.to_json()),
            ("api", self.api.to_json()),
            ("object", self.object.to_json()),
            ("message", self.message.to_json()),
            (
                "feasibility",
                Value::Str(self.feasibility.name().to_string()),
            ),
            ("checkers", self.checkers.to_json()),
            (
                "engines",
                Value::Arr(
                    self.engines
                        .iter()
                        .map(|e| Value::Str(e.name().to_string()))
                        .collect(),
                ),
            ),
            (
                "confidence",
                Value::Str(self.confidence().name().to_string()),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_and_families() {
        assert_eq!(AntiPattern::P1.id(), "P1");
        assert_eq!(AntiPattern::all().len(), 9);
        assert_eq!(AntiPattern::P3.root_cause(), "hidden refcounting");
        assert_eq!(AntiPattern::P8.root_cause(), "future risk");
    }

    #[test]
    fn templates_parse() {
        for p in AntiPattern::all() {
            assert!(
                refminer_template::parse_template(p.template_text()).is_ok(),
                "template for {p} must parse"
            );
        }
    }

    #[test]
    fn merge_matches_sequential_order() {
        let mk = |file: &str, line: u32, api: &str| Finding {
            pattern: AntiPattern::P4,
            impact: Impact::Leak,
            file: file.into(),
            function: "f".into(),
            line,
            api: api.into(),
            object: None,
            message: String::new(),
            feasibility: Feasibility::Assumed,
            checkers: Vec::new(),
            engines: Vec::new(),
        };
        // Two units, the second sorting before the first by file name,
        // plus same-line findings whose relative order must survive.
        let unit0 = vec![mk("b.c", 7, "first"), mk("b.c", 7, "second")];
        let unit1 = vec![mk("a.c", 3, "x")];
        let merged = merge_unit_findings([unit0.clone(), unit1.clone()]);

        let mut sequential: Vec<Finding> = Vec::new();
        sequential.extend(unit0);
        sequential.extend(unit1);
        sort_findings_canonical(&mut sequential);

        assert_eq!(merged, sequential);
        assert_eq!(merged[0].file, "a.c");
        assert_eq!(merged[1].api, "first");
        assert_eq!(merged[2].api, "second");
    }

    #[test]
    fn finding_display() {
        let f = Finding {
            pattern: AntiPattern::P4,
            impact: Impact::Leak,
            file: "drivers/soc/foo.c".into(),
            function: "foo_probe".into(),
            line: 42,
            api: "of_find_node_by_name".into(),
            object: Some("np".into()),
            message: "reference never released".into(),
            feasibility: Feasibility::Assumed,
            checkers: vec!["HiddenApiChecker".into()],
            engines: vec![EngineId::Template],
        };
        let s = f.to_string();
        assert!(s.contains("drivers/soc/foo.c:42"));
        assert!(s.contains("[P4/Leak]"));
        assert!(s.contains("foo_probe"));
        let json = f.to_json().to_string();
        assert!(json.contains("\"feasibility\":\"assumed\""));
        assert!(json.contains("HiddenApiChecker"));
        assert!(json.contains("\"engines\":[\"template\"]"));
        assert!(json.contains("\"confidence\":\"template_only\""));
    }

    #[test]
    fn merge_collapses_same_site_same_family() {
        let mk = |pattern: AntiPattern, line: u32, checker: &str| Finding {
            pattern,
            impact: Impact::Leak,
            file: "a.c".into(),
            function: "f".into(),
            line,
            api: "get_thing".into(),
            object: None,
            message: String::new(),
            feasibility: Feasibility::Assumed,
            checkers: vec![checker.into()],
            engines: vec![EngineId::Template],
        };
        // P5 and P7 share the "overlooked location" family at line 9;
        // P1 at the same line is a different family and must survive.
        let mut v = vec![
            mk(AntiPattern::P1, 9, "ReturnErrorChecker"),
            mk(AntiPattern::P5, 9, "ErrorPathChecker"),
            mk(AntiPattern::P7, 9, "DirectFreeChecker"),
            mk(AntiPattern::P5, 11, "ErrorPathChecker"),
        ];
        let mut expect_feas = v.clone();
        expect_feas[2].feasibility = Feasibility::Proven;
        sort_findings_canonical(&mut v);
        merge_duplicate_findings(&mut v);
        assert_eq!(v.len(), 3);
        assert_eq!(v[0].pattern, AntiPattern::P1);
        assert_eq!(v[1].pattern, AntiPattern::P5);
        assert_eq!(
            v[1].checkers,
            vec![
                "ErrorPathChecker".to_string(),
                "DirectFreeChecker".to_string()
            ]
        );
        assert_eq!(v[2].line, 11);
        assert_eq!(v[2].checkers, vec!["ErrorPathChecker".to_string()]);

        // The merged finding keeps the most credible verdict.
        sort_findings_canonical(&mut expect_feas);
        merge_duplicate_findings(&mut expect_feas);
        assert_eq!(expect_feas[1].feasibility, Feasibility::Proven);
    }

    #[test]
    fn engine_names_round_trip() {
        for e in EngineId::all() {
            assert_eq!(EngineId::from_name(e.name()), Some(e));
        }
        assert_eq!(EngineId::from_name("nope"), None);
    }

    #[test]
    fn confidence_derives_from_engine_attribution() {
        use EngineId::*;
        assert_eq!(Confidence::of(&[Template]), Confidence::TemplateOnly);
        assert_eq!(Confidence::of(&[Delta]), Confidence::DeltaOnly);
        assert_eq!(Confidence::of(&[Template, Delta]), Confidence::Corroborated);
        assert_eq!(
            Confidence::of(&[]),
            Confidence::TemplateOnly,
            "legacy findings without engine stamps read as template-only"
        );
    }

    #[test]
    fn merge_unions_engine_attribution() {
        let mk = |engines: &[EngineId]| Finding {
            pattern: AntiPattern::P5,
            impact: Impact::Leak,
            file: "a.c".into(),
            function: "f".into(),
            line: 9,
            api: "get_thing".into(),
            object: None,
            message: String::new(),
            feasibility: Feasibility::Assumed,
            checkers: vec!["ErrorPathChecker".into()],
            engines: engines.to_vec(),
        };
        // The delta finding arrives first here; the union must still
        // come out in canonical (template, delta) order.
        let mut v = vec![mk(&[EngineId::Delta]), mk(&[EngineId::Template])];
        sort_findings_canonical(&mut v);
        merge_duplicate_findings(&mut v);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].engines, vec![EngineId::Template, EngineId::Delta]);
        assert_eq!(v[0].confidence(), Confidence::Corroborated);
    }
}

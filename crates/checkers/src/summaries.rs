//! Lightweight intra-unit function summaries.
//!
//! The paper's checkers are intra-procedural, and its five false
//! positives all came from semantics hidden behind a call (§6.4). For
//! helpers defined *in the same translation unit* we can do better
//! without real inter-procedural analysis: summarize, per function,
//! which pointer parameters it releases or acquires, and let the
//! pairing predicate accept `foo_cleanup(np)` when `foo_cleanup`'s
//! summary says "releases parameter 0".

use std::collections::HashMap;

use refminer_cpg::FunctionGraph;
use refminer_rcapi::{ApiKb, RcDir};

/// Per-function effect summary: which parameter indices the function
/// (transitively, within the unit) releases or acquires.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FnSummary {
    /// Parameter indices whose refcount the function may decrement.
    pub releases: Vec<usize>,
    /// Parameter indices whose refcount the function may increment.
    pub acquires: Vec<usize>,
}

/// Summaries of every function in a translation unit, keyed by name.
#[derive(Debug, Clone, Default)]
pub struct HelperSummaries {
    map: HashMap<String, FnSummary>,
}

impl HelperSummaries {
    /// An empty summary set (no helpers known).
    pub fn empty() -> HelperSummaries {
        HelperSummaries::default()
    }

    /// Computes summaries for all functions of a unit, propagating
    /// through same-unit helper calls to a small fixpoint.
    pub fn compute(graphs: &[FunctionGraph], kb: &ApiKb) -> HelperSummaries {
        let mut map: HashMap<String, FnSummary> = graphs
            .iter()
            .map(|g| (g.name().to_string(), FnSummary::default()))
            .collect();
        // A couple of rounds are enough for the helper-of-helper depth
        // found in practice; a full SCC fixpoint is not worth the
        // complexity here.
        for _round in 0..3 {
            let mut changed = false;
            for g in graphs {
                let params: Vec<Option<&str>> =
                    g.func.params.iter().map(|p| p.name.as_deref()).collect();
                let mut summary = FnSummary::default();
                for n in g.cfg.node_ids() {
                    for call in &g.facts[n].calls {
                        // Direct refcounting APIs.
                        if let Some(api) = kb.get(&call.name) {
                            if let Some(obj_arg) = api.object_arg() {
                                if let Some(root) = call.arg_root(obj_arg) {
                                    if let Some(idx) = params.iter().position(|p| *p == Some(root))
                                    {
                                        match api.dir {
                                            RcDir::Dec => push_unique(&mut summary.releases, idx),
                                            RcDir::Inc => push_unique(&mut summary.acquires, idx),
                                        }
                                    }
                                }
                            }
                            continue;
                        }
                        // Same-unit helpers with known summaries.
                        if let Some(callee) = map.get(&call.name) {
                            let callee = callee.clone();
                            for &rel in &callee.releases {
                                if let Some(root) = call.arg_root(rel) {
                                    if let Some(idx) = params.iter().position(|p| *p == Some(root))
                                    {
                                        push_unique(&mut summary.releases, idx);
                                    }
                                }
                            }
                            for &acq in &callee.acquires {
                                if let Some(root) = call.arg_root(acq) {
                                    if let Some(idx) = params.iter().position(|p| *p == Some(root))
                                    {
                                        push_unique(&mut summary.acquires, idx);
                                    }
                                }
                            }
                        }
                    }
                }
                let entry = map.get_mut(g.name()).expect("seeded above");
                if *entry != summary {
                    *entry = summary;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        HelperSummaries { map }
    }

    /// The summary for a function name, if it is defined in the unit.
    pub fn get(&self, name: &str) -> Option<&FnSummary> {
        self.map.get(name)
    }

    /// Whether calling `name` with `obj` at argument `arg` releases a
    /// reference on it.
    pub fn call_releases(&self, name: &str, arg: usize) -> bool {
        self.get(name)
            .map(|s| s.releases.contains(&arg))
            .unwrap_or(false)
    }
}

fn push_unique(v: &mut Vec<usize>, x: usize) {
    if !v.contains(&x) {
        v.push(x);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use refminer_cparse::parse_str;

    fn summaries(src: &str) -> HelperSummaries {
        let tu = parse_str("t.c", src);
        let graphs = FunctionGraph::build_all(&tu);
        HelperSummaries::compute(&graphs, &ApiKb::builtin())
    }

    #[test]
    fn direct_release_summarized() {
        let s = summaries(
            r#"
static void foo_cleanup(struct device_node *np)
{
        unmap_regs(np);
        of_node_put(np);
}
"#,
        );
        assert_eq!(s.get("foo_cleanup").unwrap().releases, vec![0]);
        assert!(s.call_releases("foo_cleanup", 0));
        assert!(!s.call_releases("foo_cleanup", 1));
    }

    #[test]
    fn transitive_release_through_helper() {
        let s = summaries(
            r#"
static void inner(struct device_node *n)
{
        of_node_put(n);
}
static void outer(struct device_node *node)
{
        log_node(node);
        inner(node);
}
"#,
        );
        assert!(s.call_releases("outer", 0));
    }

    #[test]
    fn acquire_summarized() {
        let s = summaries(
            r#"
static void pin_node(struct device_node *np)
{
        of_node_get(np);
}
"#,
        );
        assert_eq!(s.get("pin_node").unwrap().acquires, vec![0]);
    }

    #[test]
    fn unrelated_helper_has_empty_summary() {
        let s = summaries(
            r#"
static int helper(struct device_node *np)
{
        return np != NULL;
}
"#,
        );
        assert_eq!(s.get("helper").unwrap(), &FnSummary::default());
        assert!(!s.call_releases("helper", 0));
    }

    #[test]
    fn second_parameter_tracked() {
        let s = summaries(
            r#"
static void detach(struct priv *p, struct device_node *np)
{
        p->ready = 0;
        of_node_put(np);
}
"#,
        );
        assert_eq!(s.get("detach").unwrap().releases, vec![1]);
    }
}

//! Checkers P3 and P4: hidden-refcounting bugs (§5.2).

use refminer_cpg::{NodeKind, PathQuery, Payload, Step};
use refminer_rcapi::{ObjectFlow, RcClass};

use crate::checker::{has_any_paired_dec, inc_sites, Checker};
use crate::ctx::CheckCtx;
use crate::finding::{AntiPattern, Finding, Impact};

/// **P3 — Smartloop break** (`F_start → M_SL → S_break → F_end`).
///
/// Macro loops like `for_each_child_of_node` hold a reference on the
/// iterator during each iteration and release it when advancing; a
/// `break`/`goto`/`return` that leaves the loop early keeps the last
/// reference, which must be dropped explicitly (§5.2.1, Listing 4).
pub struct SmartLoopBreakChecker;

impl Checker for SmartLoopBreakChecker {
    fn pattern(&self) -> AntiPattern {
        AntiPattern::P3
    }

    fn name(&self) -> &'static str {
        "SmartLoopBreakChecker"
    }

    fn check(&self, ctx: &CheckCtx<'_>) -> Vec<Finding> {
        let mut out = Vec::new();
        let graph = ctx.graph;
        for head in graph.cfg.node_ids() {
            let NodeKind::MacroLoopHead { name, args } = &graph.cfg.nodes[head].kind else {
                continue;
            };
            let Some(sl) = ctx.kb.smartloop(name) else {
                continue;
            };
            let Some(iter_var) = args.get(sl.iter_arg).and_then(|a| a.as_ident()) else {
                continue;
            };
            let iter_var = iter_var.to_string();
            // Early exits from this loop: break/goto/return nodes whose
            // loop context contains this head.
            for exit_node in graph.cfg.node_ids() {
                if !graph.cfg.nodes[exit_node].loops.contains(&head) {
                    continue;
                }
                let leaves = match &graph.cfg.nodes[exit_node].kind {
                    NodeKind::Stmt(Payload::Break) => {
                        // Only breaks of *this* loop (innermost).
                        graph.cfg.nodes[exit_node].loops.last() == Some(&head)
                    }
                    NodeKind::Stmt(Payload::Goto(_)) => true,
                    NodeKind::Stmt(Payload::Return(_)) => true,
                    _ => false,
                };
                if !leaves {
                    continue;
                }
                // Ownership transfer excuses the missing put.
                if ctx.returns_object(exit_node, &iter_var)
                    || ctx.escapes_object(exit_node, &iter_var)
                {
                    continue;
                }
                // Does some path head → early-exit → function exit skip
                // the iterator's put entirely? Searching from the head
                // lets a put placed *before* the break satisfy the
                // pairing (avoidance wins over matching).
                let fexit = graph.cfg.exit;
                let dec_name = sl.dec_name.clone();
                let put_or_transfer = |n: refminer_cpg::NodeId| {
                    graph.facts[n].calls.iter().any(|c| {
                        (c.name == dec_name || ctx.kb.is_dec(&c.name))
                            && c.arg_root(0) == Some(&iter_var)
                    }) || ctx.helper_releases(n, &iter_var)
                        || ctx.returns_object(n, &iter_var)
                        || ctx.escapes_object(n, &iter_var)
                        || ctx.passes_to_consumer(n, &iter_var)
                };
                let q = PathQuery::new(vec![
                    Step::new(move |n| n == exit_node).avoiding(put_or_transfer),
                    Step::new(move |n| n == fexit).avoiding(put_or_transfer),
                ])
                .without_back_edges();
                if q.search(&graph.cfg, head).is_some() {
                    out.push(Finding {
                        pattern: AntiPattern::P3,
                        impact: Impact::Leak,
                        file: ctx.file.to_string(),
                        function: graph.name().to_string(),
                        line: graph.line_of(exit_node),
                        api: name.clone(),
                        object: Some(iter_var.clone()),
                        message: format!(
                            "early exit from {name} leaves the iterator's hidden \
                             reference unpaired; add {}({iter_var}) before leaving",
                            sl.dec_name
                        ),
                        feasibility: graph.feas.classify(&q, &graph.cfg, head),
                        checkers: Vec::new(),
                        engines: Vec::new(),
                    });
                }
            }
        }
        out
    }
}

/// **P4 — Hidden API, intra-unpaired** (`F_start → S_{G_H|P_H} → F_end`).
///
/// Refcounting-embedded (find-like) APIs acquire a reference the caller
/// often does not realize exists (§5.2.2, Table 3's low name
/// similarities). Two sub-shapes:
///
/// - **hidden increment**: the returned reference is never put on any
///   path (and never returned/escaped) → leak;
/// - **hidden decrement**: APIs with `ArgAndReturned` flow *put* their
///   `from` argument, so passing a borrowed reference without a prior
///   get prematurely drops it → UAF.
pub struct HiddenApiChecker;

impl Checker for HiddenApiChecker {
    fn pattern(&self) -> AntiPattern {
        AntiPattern::P4
    }

    fn name(&self) -> &'static str {
        "HiddenApiChecker"
    }

    fn check(&self, ctx: &CheckCtx<'_>) -> Vec<Finding> {
        let mut out = Vec::new();
        let graph = ctx.graph;
        for site in inc_sites(ctx) {
            if site.api.class != RcClass::Embedded || site.api.inc_on_error {
                continue;
            }
            // Skip calls inside smartloop heads; P3 owns those.
            if matches!(
                graph.cfg.nodes[site.node].kind,
                NodeKind::MacroLoopHead { .. }
            ) {
                continue;
            }
            // Hidden-increment shape.
            if site.api.returns_object() {
                match &site.object {
                    None => {
                        // Result (and its reference) dropped on the
                        // floor: an unconditional leak — unless the
                        // result feeds another call, is stored into a
                        // long-lived location (field/indirect), or is
                        // returned directly.
                        let consumed = feeds_enclosing_call(ctx, site.node, &site.api.name)
                            || graph.facts[site.node]
                                .assigns
                                .iter()
                                .any(|a| a.rhs_call.as_deref() == Some(site.api.name.as_str()))
                            || graph.facts[site.node].is_return;
                        if !consumed {
                            out.push(Finding {
                                pattern: AntiPattern::P4,
                                impact: Impact::Leak,
                                file: ctx.file.to_string(),
                                function: graph.name().to_string(),
                                line: graph.line_of(site.node),
                                api: site.api.name.clone(),
                                object: None,
                                message: format!(
                                    "reference returned by {} is discarded",
                                    site.api.name
                                ),
                                // A discarded result leaks on every
                                // path; no path constraint applies.
                                feasibility: refminer_cpg::Feasibility::Assumed,
                                checkers: Vec::new(),
                                engines: Vec::new(),
                            });
                        }
                    }
                    Some(obj) => {
                        // When the object is paired on *some* path, the
                        // leak (if any) is either on an error path —
                        // P5's finding — or on a plain forgotten branch
                        // (e.g. a switch case), which stays P4's: we
                        // additionally require the witness path to pass
                        // through no error block.
                        let paired_somewhere = has_any_paired_dec(ctx, site.api, obj);
                        let fexit = graph.cfg.exit;
                        let api = site.api;
                        let o = obj.clone();
                        // Paths through a NULL-guard bailout of the
                        // object hold no reference; they cannot witness
                        // the leak.
                        let null_guard =
                            refminer_cpg::null_guard_nodes(&graph.cfg, &graph.facts, &o);
                        let q = PathQuery::new(vec![Step::new(move |n| n == fexit)
                            .avoiding(move |n| {
                                null_guard.contains(&n)
                                    || (paired_somewhere && graph.is_error_node(n))
                                    || ctx.is_paired_dec(n, api, &o)
                                    || ctx.returns_object(n, &o)
                                    || ctx.escapes_object(n, &o)
                                    || ctx.passes_to_consumer(n, &o)
                                    // A direct kfree is wrong too, but
                                    // it is P7's finding, not P4's.
                                    || frees_object(ctx, n, &o)
                            })
                            .avoiding_edges(ctx.null_branch_of(obj))])
                        .without_back_edges();
                        if q.search(&graph.cfg, site.node).is_some() {
                            out.push(Finding {
                                pattern: AntiPattern::P4,
                                impact: Impact::Leak,
                                file: ctx.file.to_string(),
                                function: graph.name().to_string(),
                                line: graph.line_of(site.node),
                                api: site.api.name.clone(),
                                object: Some(obj.clone()),
                                message: format!(
                                    "{} takes a hidden reference on {obj} that is \
                                     never released",
                                    site.api.name
                                ),
                                feasibility: graph.feas.classify(&q, &graph.cfg, site.node),
                                checkers: Vec::new(),
                                engines: Vec::new(),
                            });
                        }
                    }
                }
            }
            // Hidden-decrement shape: the `from` argument is put.
            if let ObjectFlow::ArgAndReturned(idx) = site.api.flow {
                let facts = &graph.facts[site.node];
                let Some(call) = facts.call(&site.api.name) else {
                    continue;
                };
                if call.args.get(idx).is_some_and(|a| a.is_null) {
                    continue; // NULL `from`: nothing is put.
                }
                let Some(from) = call.arg_root(idx).map(str::to_string) else {
                    continue;
                };
                // Borrowed (parameter-origin) references must be
                // re-taken before being consumed.
                let origins = graph.origins.at(&graph.cfg, site.node, &from);
                let borrowed = !origins.is_empty()
                    && origins
                        .iter()
                        .all(|o| matches!(o, refminer_cpg::Origin::Param));
                if borrowed && !preceded_by_get(ctx, site.node, &from) {
                    out.push(Finding {
                        pattern: AntiPattern::P4,
                        impact: Impact::Uaf,
                        file: ctx.file.to_string(),
                        function: graph.name().to_string(),
                        line: graph.line_of(site.node),
                        api: site.api.name.clone(),
                        object: Some(from.clone()),
                        message: format!(
                            "{} drops a hidden reference on {from}, which this \
                             function only borrows; take a reference first",
                            site.api.name
                        ),
                        // Structural (origin-based) shape: the drop
                        // happens wherever the call executes.
                        feasibility: refminer_cpg::Feasibility::Assumed,
                        checkers: Vec::new(),
                        engines: Vec::new(),
                    });
                }
            }
        }
        out
    }
}

/// Whether node `n` frees `obj` with a kfree-family call.
fn frees_object(ctx: &CheckCtx<'_>, n: refminer_cpg::NodeId, obj: &str) -> bool {
    ctx.graph.facts[n].calls.iter().any(|c| {
        matches!(
            c.name.as_str(),
            "kfree" | "kvfree" | "kfree_sensitive" | "vfree"
        ) && c.arg_root(0) == Some(obj)
    })
}

/// Whether the call result flows directly into an enclosing call
/// (`register(of_find_x(..))`), i.e. is consumed rather than discarded.
fn feeds_enclosing_call(ctx: &CheckCtx<'_>, node: refminer_cpg::NodeId, api: &str) -> bool {
    // The facts list calls outermost-first; if another call appears in
    // the same statement, the find result most likely feeds it.
    ctx.graph.facts[node].calls.iter().any(|c| c.name != api)
}

/// Whether any node before `node` takes a reference on `var`.
fn preceded_by_get(ctx: &CheckCtx<'_>, node: refminer_cpg::NodeId, var: &str) -> bool {
    ctx.graph.cfg.node_ids().any(|n| {
        n != node
            && ctx.graph.cfg.reachable(n, node)
            && ctx.graph.facts[n].calls.iter().any(|c| {
                ctx.kb.is_inc(&c.name)
                    && ctx
                        .kb
                        .get(&c.name)
                        .and_then(|a| a.object_arg())
                        .and_then(|i| c.arg_root(i))
                        == Some(var)
            })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use refminer_cparse::parse_str;
    use refminer_cpg::FunctionGraph;
    use refminer_rcapi::ApiKb;

    fn run(checker: &dyn Checker, src: &str) -> Vec<Finding> {
        let tu = parse_str("t.c", src);
        let graphs = FunctionGraph::build_all(&tu);
        let kb = ApiKb::builtin();
        let db = refminer_progdb::ProgramDb::empty();
        let mut out = Vec::new();
        for graph in &graphs {
            let ctx = CheckCtx {
                file: "t.c",
                graph,
                kb: &kb,
                unit: &tu,
                all_graphs: &graphs,
                program: &db,
                trace: refminer_trace::TraceHandle::disabled(),
            };
            out.extend(checker.check(&ctx));
        }
        out
    }

    #[test]
    fn p3_detects_listing4_break() {
        let findings = run(
            &SmartLoopBreakChecker,
            r#"
static int brcmstb_pm_probe(struct platform_device *pdev)
{
        struct device_node *dn;
        for_each_matching_node(dn, sram_dt_ids) {
                if (bad(dn))
                        break;
        }
        return 0;
}
"#,
        );
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].pattern, AntiPattern::P3);
        assert_eq!(findings[0].api, "for_each_matching_node");
        assert_eq!(findings[0].object.as_deref(), Some("dn"));
    }

    #[test]
    fn p3_clean_with_put_before_break() {
        let findings = run(
            &SmartLoopBreakChecker,
            r#"
static int probe(struct platform_device *pdev)
{
        struct device_node *dn;
        for_each_matching_node(dn, ids) {
                if (bad(dn)) {
                        of_node_put(dn);
                        break;
                }
        }
        return 0;
}
"#,
        );
        assert!(findings.is_empty(), "got {findings:?}");
    }

    #[test]
    fn p3_clean_with_put_after_loop() {
        let findings = run(
            &SmartLoopBreakChecker,
            r#"
static int probe(struct platform_device *pdev)
{
        struct device_node *dn;
        for_each_matching_node(dn, ids) {
                if (bad(dn))
                        break;
        }
        of_node_put(dn);
        return 0;
}
"#,
        );
        assert!(findings.is_empty(), "got {findings:?}");
    }

    #[test]
    fn p3_return_inside_loop() {
        let findings = run(
            &SmartLoopBreakChecker,
            r#"
static int scan(struct device_node *parent)
{
        struct device_node *child;
        for_each_child_of_node(parent, child) {
                if (match(child))
                        return 0;
        }
        return -ENODEV;
}
"#,
        );
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].object.as_deref(), Some("child"));
    }

    #[test]
    fn p3_returning_iterator_is_ownership_transfer() {
        let findings = run(
            &SmartLoopBreakChecker,
            r#"
static struct device_node *find_first(struct device_node *parent)
{
        struct device_node *child;
        for_each_child_of_node(parent, child) {
                if (match(child))
                        return child;
        }
        return NULL;
}
"#,
        );
        assert!(findings.is_empty(), "got {findings:?}");
    }

    #[test]
    fn p4_detects_listing1_shape() {
        let findings = run(
            &HiddenApiChecker,
            r#"
struct nvmem_device *__nvmem_device_get(struct device_node *np)
{
        struct device *dev;
        dev = bus_find_device(&nvmem_bus_type, NULL, np, of_nvmem_match);
        if (!dev)
                return ERR_PTR(-EPROBE_DEFER);
        return ERR_PTR(-EINVAL);
}
"#,
        );
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].api, "bus_find_device");
        assert_eq!(findings[0].impact, Impact::Leak);
    }

    #[test]
    fn p4_clean_when_put_everywhere() {
        let findings = run(
            &HiddenApiChecker,
            r#"
int probe(void)
{
        struct device_node *np = of_find_node_by_name(NULL, "x");
        if (!np)
                return -ENODEV;
        use_node(np);
        of_node_put(np);
        return 0;
}
"#,
        );
        assert!(findings.is_empty(), "got {findings:?}");
    }

    #[test]
    fn p4_clean_when_object_returned() {
        let findings = run(
            &HiddenApiChecker,
            r#"
struct device_node *find_it(void)
{
        struct device_node *np = of_find_node_by_name(NULL, "x");
        return np;
}
"#,
        );
        assert!(findings.is_empty(), "got {findings:?}");
    }

    #[test]
    fn p4_discarded_result() {
        let findings = run(
            &HiddenApiChecker,
            r#"
void probe(void)
{
        of_find_node_by_name(NULL, "x");
}
"#,
        );
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("discarded"));
    }

    #[test]
    fn p4_hidden_dec_on_borrowed_from() {
        // `of_find_matching_node(from, ..)` puts `from`; passing the
        // borrowed parameter without a get is the missing-increase bug
        // (§5.2.2, "16 new such missing-increasing bugs").
        let findings = run(
            &HiddenApiChecker,
            r#"
struct device_node *next_node(struct device_node *from)
{
        struct device_node *np = of_find_matching_node(from, ids);
        return np;
}
"#,
        );
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].impact, Impact::Uaf);
        assert_eq!(findings[0].object.as_deref(), Some("from"));
    }

    #[test]
    fn p4_hidden_dec_ok_with_prior_get() {
        let findings = run(
            &HiddenApiChecker,
            r#"
struct device_node *next_node(struct device_node *from)
{
        struct device_node *np;
        of_node_get(from);
        np = of_find_matching_node(from, ids);
        return np;
}
"#,
        );
        assert!(findings.is_empty(), "got {findings:?}");
    }

    #[test]
    fn p4_hidden_dec_ok_with_null_from() {
        let findings = run(
            &HiddenApiChecker,
            r#"
struct device_node *first_node(void)
{
        struct device_node *np = of_find_matching_node(NULL, ids);
        return np;
}
"#,
        );
        assert!(findings.is_empty(), "got {findings:?}");
    }
}

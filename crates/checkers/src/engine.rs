//! The analysis-engine substrate: the trait boundary both the template
//! checkers and the ownership-delta dataflow engine sit behind.
//!
//! Phase 2 of the audit no longer hardwires the template checkers: it
//! builds a list of [`AnalysisEngine`]s and hands every function graph
//! to each of them through the shared [`CheckCtx`]. Engines stamp the
//! findings they produce with their [`EngineId`]; the within-unit dedup
//! and the report-layer merge union those stamps, so a site flagged by
//! both engines independently surfaces once, `Corroborated`.
//!
//! The feasibility pass lives on the substrate too: every engine
//! classifies its witness paths through `graph.feas` (reachable via
//! the ctx), and the report layer suppresses `Infeasible` findings
//! uniformly — an engine cannot opt out of the pruning.

use crate::checker::{run_checkers_on_graph, Checker};
use crate::ctx::CheckCtx;
use crate::finding::{EngineId, Finding};

/// One analysis engine: a strategy producing findings for a single
/// function, given the shared [`CheckCtx`] substrate (graphs, API
/// knowledge base, program database, feasibility engine, trace).
/// Engine instances are cheap; each audit worker builds its own list,
/// so the trait carries no thread-safety bound (mirroring [`Checker`]).
pub trait AnalysisEngine {
    /// The engine's identity, stamped into every finding it produces.
    fn id(&self) -> EngineId;

    /// Stable engine name (`"template"`, `"delta"`), used in trace
    /// counters and reports.
    fn name(&self) -> &'static str {
        self.id().name()
    }

    /// Runs the engine over one function.
    fn analyze(&self, ctx: &CheckCtx<'_>) -> Vec<Finding>;
}

/// The template engine: the paper's nine anti-pattern checkers behind
/// the [`AnalysisEngine`] trait. Owns its checker set so `--only`
/// scoping composes (a filtered set is just a smaller engine).
pub struct TemplateEngine {
    checkers: Vec<Box<dyn Checker>>,
}

impl TemplateEngine {
    /// The engine over an explicit checker set (ablations, `--only`).
    pub fn new(checkers: Vec<Box<dyn Checker>>) -> TemplateEngine {
        TemplateEngine { checkers }
    }

    /// The engine over the full default checker set.
    pub fn default_set() -> TemplateEngine {
        TemplateEngine::new(crate::checker::default_checkers())
    }
}

impl AnalysisEngine for TemplateEngine {
    fn id(&self) -> EngineId {
        EngineId::Template
    }

    fn analyze(&self, ctx: &CheckCtx<'_>) -> Vec<Finding> {
        run_checkers_on_graph(ctx, &self.checkers)
    }
}

/// Which engines an audit runs. The default is both: the template
/// checkers find, the delta engine cross-validates (and contributes
/// its own net-delta findings).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineSet {
    /// Run the template checkers.
    pub template: bool,
    /// Run the ownership-delta dataflow engine.
    pub delta: bool,
}

impl Default for EngineSet {
    fn default() -> EngineSet {
        EngineSet {
            template: true,
            delta: true,
        }
    }
}

impl EngineSet {
    /// The template-only set (the pre-two-engine behavior).
    pub fn template_only() -> EngineSet {
        EngineSet {
            template: true,
            delta: false,
        }
    }

    /// Parses a comma-separated engine list (`"template,delta"`).
    /// Rejects unknown names and empty lists.
    pub fn parse(s: &str) -> Result<EngineSet, String> {
        let mut set = EngineSet {
            template: false,
            delta: false,
        };
        for name in s.split(',').map(str::trim).filter(|n| !n.is_empty()) {
            match EngineId::from_name(name) {
                Some(EngineId::Template) => set.template = true,
                Some(EngineId::Delta) => set.delta = true,
                None => return Err(format!("unknown engine '{name}' (template, delta)")),
            }
        }
        if set
            == (EngineSet {
                template: false,
                delta: false,
            })
        {
            return Err("engine list selects no engine".to_string());
        }
        Ok(set)
    }

    /// Whether the set enables `engine`.
    pub fn enables(&self, engine: EngineId) -> bool {
        match engine {
            EngineId::Template => self.template,
            EngineId::Delta => self.delta,
        }
    }

    /// The enabled engines in canonical order.
    pub fn ids(&self) -> Vec<EngineId> {
        EngineId::all()
            .into_iter()
            .filter(|e| self.enables(*e))
            .collect()
    }

    /// Canonical comma-separated rendering (`"template,delta"`).
    pub fn render(&self) -> String {
        self.ids()
            .iter()
            .map(|e| e.name())
            .collect::<Vec<_>>()
            .join(",")
    }
}

/// Runs a list of engines over every function of a translation unit —
/// the phase-2 entry point of the two-engine audit. Engines run in
/// list order per graph (the caller supplies them in canonical
/// template-then-delta order), each engine's wall time on the unit is
/// attributed to an `engine.{name}.us` trace counter, and the combined
/// findings are deduped with attribution union, so a site both engines
/// flag comes out once with `engines: [template, delta]`.
pub fn run_engines_traced(
    unit: &refminer_cparse::TranslationUnit,
    kb: &refminer_rcapi::ApiKb,
    graphs: &[refminer_cpg::FunctionGraph],
    engines: &[Box<dyn AnalysisEngine>],
    program: &refminer_progdb::ProgramDb,
    trace: &refminer_trace::TraceHandle,
) -> Vec<Finding> {
    let timing = trace.is_enabled();
    let mut out = Vec::new();
    for graph in graphs {
        let ctx = CheckCtx {
            file: &unit.path,
            graph,
            kb,
            unit,
            all_graphs: graphs,
            program,
            trace: trace.clone(),
        };
        for engine in engines {
            let start = timing.then(std::time::Instant::now);
            let mut found = engine.analyze(&ctx);
            if let Some(start) = start {
                let us = start.elapsed().as_micros().clamp(1, u64::MAX as u128) as u64;
                trace.add(&format!("engine.{}.us", engine.name()), us);
            }
            for f in &mut found {
                f.add_engine(engine.id());
            }
            out.extend(found);
        }
    }
    crate::checker::dedup_findings(&mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use refminer_cparse::parse_str;
    use refminer_cpg::FunctionGraph;
    use refminer_progdb::ProgramDb;
    use refminer_rcapi::ApiKb;

    #[test]
    fn engine_set_parses_and_renders() {
        assert_eq!(EngineSet::parse("template,delta"), Ok(EngineSet::default()));
        assert_eq!(EngineSet::parse("template"), Ok(EngineSet::template_only()));
        assert_eq!(
            EngineSet::parse("delta"),
            Ok(EngineSet {
                template: false,
                delta: true
            })
        );
        assert!(EngineSet::parse("bogus").is_err());
        assert!(EngineSet::parse("").is_err());
        assert_eq!(EngineSet::default().render(), "template,delta");
        assert_eq!(EngineSet::template_only().render(), "template");
    }

    #[test]
    fn template_engine_matches_checker_runner() {
        let src = r#"
int f(struct device *d)
{
        int r = pm_runtime_get_sync(d);
        if (r < 0)
                return r;
        pm_runtime_put(d);
        return 0;
}
"#;
        let tu = parse_str("t.c", src);
        let graphs = FunctionGraph::build_all(&tu);
        let kb = ApiKb::builtin();
        let globals: Vec<String> = tu.globals().map(|g| g.name.clone()).collect();
        let db = ProgramDb::local(&tu.path, &graphs, &globals, &kb);
        let engines: Vec<Box<dyn AnalysisEngine>> = vec![Box::new(TemplateEngine::default_set())];
        let via_engines = run_engines_traced(
            &tu,
            &kb,
            &graphs,
            &engines,
            &db,
            &refminer_trace::TraceHandle::disabled(),
        );
        let via_checkers = crate::checker::check_unit_with_program(
            &tu,
            &kb,
            &graphs,
            &crate::checker::default_checkers(),
            &db,
        );
        assert_eq!(via_engines, via_checkers);
        assert_eq!(via_engines.len(), 1);
        assert_eq!(via_engines[0].engines, vec![EngineId::Template]);
    }
}

//! The parser core: token cursor, recovery, and top-level grammar.
//!
//! The expression and statement grammars live in [`crate::expr`] and
//! [`crate::stmt`]; this module owns the cursor plumbing and everything
//! at file scope (functions, structs, typedefs, globals).

use refminer_clex::{Keyword, LexOptions, Lexer, Punct, Span, Token, TokenKind};

use crate::ast::{
    Declaration, EnumDef, Field, FunctionDef, Initializer, Item, Param, Prototype, StructDef,
    TranslationUnit, TypeName, Typedef,
};
use crate::error::ParseError;

/// Identifier annotations the kernel sprinkles into declarations that we
/// can skip outright wherever they appear.
const SKIPPABLE_ANNOTATIONS: &[&str] = &[
    "__init",
    "__exit",
    "__initdata",
    "__exitdata",
    "__read_mostly",
    "__maybe_unused",
    "__unused",
    "__used",
    "__weak",
    "__cold",
    "__hot",
    "__iomem",
    "__user",
    "__kernel",
    "__force",
    "__rcu",
    "__percpu",
    "__must_check",
    "__must_hold",
    "__acquires",
    "__releases",
    "__printf",
    "__pure",
    "__packed",
    "__aligned",
    "__cacheline_aligned",
    "__deprecated",
    "__devinit",
    "__devexit",
    "notrace",
    "asmlinkage",
];

/// Words that act like types in kernel code without a typedef in scope.
const KNOWN_TYPE_WORDS: &[&str] = &[
    "u8",
    "u16",
    "u32",
    "u64",
    "s8",
    "s16",
    "s32",
    "s64",
    "__u8",
    "__u16",
    "__u32",
    "__u64",
    "__s8",
    "__s16",
    "__s32",
    "__s64",
    "size_t",
    "ssize_t",
    "loff_t",
    "off_t",
    "pid_t",
    "uid_t",
    "gid_t",
    "dev_t",
    "umode_t",
    "gfp_t",
    "dma_addr_t",
    "phys_addr_t",
    "resource_size_t",
    "atomic_t",
    "atomic64_t",
    "refcount_t",
    "kref_t",
    "spinlock_t",
    "raw_spinlock_t",
    "mutex_t",
    "wait_queue_head_t",
    "irqreturn_t",
    "cpumask_t",
    "nodemask_t",
    "uint8_t",
    "uint16_t",
    "uint32_t",
    "uint64_t",
    "int8_t",
    "int16_t",
    "int32_t",
    "int64_t",
    "uintptr_t",
    "intptr_t",
    "ptrdiff_t",
    "bool",
];

/// A recursive-descent, error-tolerant parser for kernel-style C.
///
/// The parser never fails a whole file: on an unparseable construct it
/// records a [`ParseError`], skips to a synchronization point (`;` or a
/// balanced `}`), and keeps going — the same property that let the paper
/// analyze every architecture and config combination that LLVM could not
/// compile (§6.1 "Why not LLVM").
///
/// # Examples
///
/// ```
/// use refminer_cparse::parse_str;
///
/// let tu = parse_str("drivers/foo.c", "static int f(void) { return 0; }");
/// assert_eq!(tu.functions().count(), 1);
/// ```
pub struct Parser {
    pub(crate) toks: Vec<Token>,
    pub(crate) pos: usize,
    pub(crate) errors: Vec<ParseError>,
    path: String,
    depth: u32,
    max_depth: u32,
    depth_capped: bool,
}

/// Resource caps applied while lexing and parsing one unit, sized so a
/// hostile or machine-generated file degrades instead of exhausting the
/// stack or memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParseLimits {
    /// Maximum tokens to lex; the stream is truncated past this point.
    pub max_tokens: usize,
    /// Maximum recursion depth across nested expressions, statements,
    /// initializers, and struct bodies combined.
    pub max_depth: u32,
}

impl Default for ParseLimits {
    fn default() -> Self {
        ParseLimits {
            max_tokens: 2_000_000,
            max_depth: 128,
        }
    }
}

/// The result of a limit-aware parse: the (possibly degraded) unit plus
/// what a caller needs to diagnose anything that was lost.
#[derive(Debug)]
pub struct ParseOutcome {
    /// The parsed unit; degraded subtrees appear as `Unknown`/`Empty`
    /// nodes rather than being dropped silently.
    pub unit: TranslationUnit,
    /// Errors the parser recovered from.
    pub errors: Vec<ParseError>,
    /// Byte-level errors the lexer recovered from.
    pub lex_errors: Vec<refminer_clex::LexError>,
    /// The token stream hit [`ParseLimits::max_tokens`] before the end
    /// of input.
    pub truncated: bool,
    /// Some subtree hit [`ParseLimits::max_depth`] and was degraded.
    pub depth_capped: bool,
}

/// Parses a source string into a [`TranslationUnit`], discarding errors.
pub fn parse_str(path: &str, src: &str) -> TranslationUnit {
    parse_str_with_errors(path, src).0
}

/// Parses a source string, returning recovered errors alongside the unit.
pub fn parse_str_with_errors(path: &str, src: &str) -> (TranslationUnit, Vec<ParseError>) {
    let out = parse_str_limited(path, src, &ParseLimits::default());
    (out.unit, out.errors)
}

/// Parses under explicit resource caps, reporting everything that was
/// truncated or degraded along the way. This is the entry point the
/// fault-isolated audit pipeline uses.
pub fn parse_str_limited(path: &str, src: &str, limits: &ParseLimits) -> ParseOutcome {
    let opts = LexOptions {
        keep_comments: false,
        keep_preprocessor: false,
    };
    let (toks, lex_errors, truncated) =
        Lexer::with_options(src, opts).tokenize_limited(limits.max_tokens);
    let mut p = Parser {
        toks,
        pos: 0,
        errors: Vec::new(),
        path: path.to_string(),
        depth: 0,
        max_depth: limits.max_depth,
        depth_capped: false,
    };
    let unit = p.parse_translation_unit();
    ParseOutcome {
        unit,
        errors: p.errors,
        lex_errors,
        truncated,
        depth_capped: p.depth_capped,
    }
}

impl Parser {
    /// Builds a parser over an arbitrary token fragment (used by the
    /// expression/statement fragment helpers and tests).
    pub(crate) fn new_for_fragment(toks: Vec<Token>) -> Parser {
        Parser {
            toks,
            pos: 0,
            errors: Vec::new(),
            path: String::new(),
            depth: 0,
            max_depth: ParseLimits::default().max_depth,
            depth_capped: false,
        }
    }

    /// Enters one recursion level. Returns `false` at the depth cap,
    /// recording [`ParseError::TooDeep`] the first time; callers must
    /// then consume input and return a degraded node instead of
    /// recursing.
    pub(crate) fn enter_depth(&mut self) -> bool {
        if self.depth >= self.max_depth {
            if !self.depth_capped {
                self.depth_capped = true;
                let span = self.cur_span();
                self.errors.push(ParseError::TooDeep { span });
            }
            return false;
        }
        self.depth += 1;
        true
    }

    /// Leaves a recursion level entered via [`Parser::enter_depth`].
    pub(crate) fn leave_depth(&mut self) {
        self.depth = self.depth.saturating_sub(1);
    }

    // ------------------------------------------------------------------
    // Cursor primitives.
    // ------------------------------------------------------------------

    pub(crate) fn peek(&self) -> Option<&Token> {
        self.toks.get(self.pos)
    }

    pub(crate) fn peek_at(&self, off: usize) -> Option<&Token> {
        self.toks.get(self.pos + off)
    }

    pub(crate) fn bump(&mut self) -> Option<&Token> {
        let t = self.toks.get(self.pos);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    pub(crate) fn at_eof(&self) -> bool {
        self.pos >= self.toks.len()
    }

    pub(crate) fn cur_span(&self) -> Span {
        self.peek()
            .map(|t| t.span)
            .or_else(|| self.toks.last().map(|t| t.span))
            .unwrap_or_default()
    }

    pub(crate) fn at_punct(&self, p: Punct) -> bool {
        self.peek().is_some_and(|t| t.kind.is_punct(p))
    }

    pub(crate) fn at_keyword(&self, k: Keyword) -> bool {
        self.peek().is_some_and(|t| t.kind.is_keyword(k))
    }

    pub(crate) fn eat_punct(&mut self, p: Punct) -> bool {
        if self.at_punct(p) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    pub(crate) fn eat_keyword(&mut self, k: Keyword) -> bool {
        if self.at_keyword(k) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// Consumes an expected punctuator, recording an error if absent.
    pub(crate) fn expect_punct(&mut self, p: Punct) {
        if !self.eat_punct(p) {
            let span = self.cur_span();
            self.errors.push(ParseError::Expected {
                what: p.as_str(),
                span,
            });
        }
    }

    pub(crate) fn take_ident(&mut self) -> Option<String> {
        if let Some(t) = self.peek() {
            if let TokenKind::Ident(s) = &t.kind {
                let s = s.to_string();
                self.pos += 1;
                return Some(s);
            }
        }
        None
    }

    /// Skips a balanced token group assuming the cursor sits *on* the
    /// opener. Returns the span covered.
    pub(crate) fn skip_balanced(&mut self, open: Punct, close: Punct) -> Span {
        let start = self.cur_span();
        let mut depth = 0usize;
        let mut end = start;
        while let Some(t) = self.peek() {
            end = t.span;
            if t.kind.is_punct(open) {
                depth += 1;
            } else if t.kind.is_punct(close) {
                depth -= 1;
                self.pos += 1;
                if depth == 0 {
                    break;
                }
                continue;
            }
            self.pos += 1;
            if depth == 0 {
                break;
            }
        }
        start.join(end)
    }

    /// Skips forward to just past the next `;` at brace depth zero, or
    /// past a balanced `{...}` block — the parser's panic-mode recovery.
    pub(crate) fn recover_to_sync(&mut self) {
        let mut depth = 0usize;
        while let Some(t) = self.peek() {
            match &t.kind {
                TokenKind::Punct(Punct::LBrace) => depth += 1,
                TokenKind::Punct(Punct::RBrace) => {
                    self.pos += 1;
                    if depth <= 1 {
                        return;
                    }
                    depth -= 1;
                    continue;
                }
                TokenKind::Punct(Punct::Semi) if depth == 0 => {
                    self.pos += 1;
                    return;
                }
                _ => {}
            }
            self.pos += 1;
        }
    }

    /// Skips `__attribute__((...))` and similar annotation groups.
    #[allow(clippy::while_let_loop)] // The match needs the cursor back.
    pub(crate) fn skip_annotations(&mut self) {
        loop {
            let Some(t) = self.peek() else { break };
            match t.ident() {
                Some("__attribute__") | Some("__attribute") | Some("__declspec") => {
                    self.pos += 1;
                    if self.at_punct(Punct::LParen) {
                        self.skip_balanced(Punct::LParen, Punct::RParen);
                    }
                }
                Some(name) if SKIPPABLE_ANNOTATIONS.contains(&name) => {
                    self.pos += 1;
                    // Some annotations are function-like: `__aligned(8)`.
                    if self.at_punct(Punct::LParen) {
                        self.skip_balanced(Punct::LParen, Punct::RParen);
                    }
                }
                _ => break,
            }
        }
    }

    // ------------------------------------------------------------------
    // Top level.
    // ------------------------------------------------------------------

    fn parse_translation_unit(&mut self) -> TranslationUnit {
        let mut items = Vec::new();
        while !self.at_eof() {
            let before = self.pos;
            items.extend(self.parse_top_item());
            if self.pos == before {
                // Guaranteed progress: drop one token.
                self.pos += 1;
            }
        }
        TranslationUnit {
            path: self.path.clone(),
            items,
        }
    }

    fn parse_top_item(&mut self) -> Vec<Item> {
        self.skip_annotations();
        let Some(t) = self.peek() else {
            return Vec::new();
        };
        let start = t.span;
        match &t.kind {
            TokenKind::Punct(Punct::Semi) => {
                self.pos += 1;
                Vec::new()
            }
            TokenKind::Keyword(Keyword::Typedef) => vec![self.parse_typedef()],
            TokenKind::Keyword(Keyword::Struct) | TokenKind::Keyword(Keyword::Union) => {
                // Could be a definition `struct x { .. };`, a forward
                // declaration, or a global of struct type.
                self.parse_struct_or_decl()
            }
            TokenKind::Keyword(Keyword::Enum) => self.parse_enum_or_decl(),
            TokenKind::Keyword(k) if k.is_decl_specifier() => self.parse_decl_or_function(),
            TokenKind::Ident(name) => {
                // Top-level macro invocations: `MODULE_LICENSE("GPL");`
                // `module_platform_driver(drv);` `EXPORT_SYMBOL(f);`
                if self
                    .peek_at(1)
                    .is_some_and(|t| t.kind.is_punct(Punct::LParen))
                    && looks_like_toplevel_macro(name)
                {
                    self.pos += 1;
                    self.skip_balanced(Punct::LParen, Punct::RParen);
                    self.eat_punct(Punct::Semi);
                    return vec![Item::Skipped(start.join(self.cur_span()))];
                }
                self.parse_decl_or_function()
            }
            _ => {
                let span = self.cur_span();
                self.errors.push(ParseError::UnexpectedToken { span });
                self.recover_to_sync();
                vec![Item::Skipped(span)]
            }
        }
    }

    fn parse_typedef(&mut self) -> Item {
        let start = self.cur_span();
        self.bump(); // `typedef`.
        let ty = self.parse_type_specifiers();
        // Handle `typedef struct { .. } name_t;` where the specifier
        // parsing consumed the struct body; the remaining declarator is
        // usually a simple name, possibly with pointers.
        let mut pointer = 0u8;
        while self.eat_punct(Punct::Star) {
            pointer += 1;
        }
        self.skip_annotations();
        let name = self.take_ident().unwrap_or_default();
        // Function-pointer typedefs and array typedefs: skip the rest.
        while !self.at_punct(Punct::Semi) && !self.at_eof() {
            if self.at_punct(Punct::LParen) {
                self.skip_balanced(Punct::LParen, Punct::RParen);
            } else if self.at_punct(Punct::LBracket) {
                self.skip_balanced(Punct::LBracket, Punct::RBracket);
            } else {
                self.pos += 1;
            }
        }
        self.eat_punct(Punct::Semi);
        Item::Typedef(Typedef {
            name,
            ty: TypeName {
                base: ty.base,
                pointer,
            },
            span: start.join(self.cur_span()),
        })
    }

    /// Parses at `struct`/`union`: either a type definition or the start
    /// of a declaration whose type is a struct.
    fn parse_struct_or_decl(&mut self) -> Vec<Item> {
        // Lookahead: `struct [ident] {` is a definition;
        // anything else is a declaration using the struct type.
        let is_union = self.at_keyword(Keyword::Union);
        let mut off = 1usize;
        let mut tag: Option<String> = None;
        if let Some(t) = self.peek_at(off) {
            if let TokenKind::Ident(s) = &t.kind {
                tag = Some(s.to_string());
                off += 1;
            }
        }
        let opens_body = self
            .peek_at(off)
            .is_some_and(|t| t.kind.is_punct(Punct::LBrace));
        if opens_body {
            let start = self.cur_span();
            self.pos += off; // Past `struct [tag]`.
            let fields = self.parse_struct_body();
            self.skip_annotations();
            // `struct x { .. } instance;` — a definition immediately
            // followed by declarators. We keep the definition and skip
            // the instance declarators for simplicity.
            if !self.at_punct(Punct::Semi) {
                self.recover_to_sync();
            } else {
                self.pos += 1;
            }
            return vec![Item::Struct(StructDef {
                name: tag,
                is_union,
                fields,
                span: start.join(self.cur_span()),
            })];
        }
        // Forward declaration `struct x;`.
        if self
            .peek_at(off)
            .is_some_and(|t| t.kind.is_punct(Punct::Semi))
        {
            self.pos += off + 1;
            return Vec::new();
        }
        self.parse_decl_or_function()
    }

    fn parse_enum_or_decl(&mut self) -> Vec<Item> {
        let mut off = 1usize;
        let mut tag: Option<String> = None;
        if let Some(t) = self.peek_at(off) {
            if let TokenKind::Ident(s) = &t.kind {
                tag = Some(s.to_string());
                off += 1;
            }
        }
        let opens_body = self
            .peek_at(off)
            .is_some_and(|t| t.kind.is_punct(Punct::LBrace));
        if !opens_body {
            if self
                .peek_at(off)
                .is_some_and(|t| t.kind.is_punct(Punct::Semi))
            {
                self.pos += off + 1;
                return Vec::new();
            }
            return self.parse_decl_or_function();
        }
        let start = self.cur_span();
        self.pos += off + 1; // Past `enum [tag] {`.
        let mut variants = Vec::new();
        let mut depth = 1usize;
        while let Some(t) = self.peek() {
            match &t.kind {
                TokenKind::Punct(Punct::LBrace) => {
                    depth += 1;
                    self.pos += 1;
                }
                TokenKind::Punct(Punct::RBrace) => {
                    depth -= 1;
                    self.pos += 1;
                    if depth == 0 {
                        break;
                    }
                }
                TokenKind::Ident(s) if depth == 1 => {
                    variants.push(s.to_string());
                    self.pos += 1;
                    // Skip an optional `= value` part.
                    while let Some(t) = self.peek() {
                        if t.kind.is_punct(Punct::Comma) || t.kind.is_punct(Punct::RBrace) {
                            break;
                        }
                        self.pos += 1;
                    }
                }
                _ => {
                    self.pos += 1;
                }
            }
        }
        self.eat_punct(Punct::Semi);
        vec![Item::Enum(EnumDef {
            name: tag,
            variants,
            span: start.join(self.cur_span()),
        })]
    }

    /// Parses struct fields assuming the cursor is on `{`. Guarded: at
    /// the depth cap the body is skipped and no fields are produced.
    fn parse_struct_body(&mut self) -> Vec<Field> {
        if !self.enter_depth() {
            if self.at_punct(Punct::LBrace) {
                self.skip_balanced(Punct::LBrace, Punct::RBrace);
            }
            return Vec::new();
        }
        let fields = self.parse_struct_body_inner();
        self.leave_depth();
        fields
    }

    fn parse_struct_body_inner(&mut self) -> Vec<Field> {
        self.expect_punct(Punct::LBrace);
        let mut fields = Vec::new();
        while !self.at_eof() && !self.at_punct(Punct::RBrace) {
            let start = self.cur_span();
            self.skip_annotations();
            // Nested anonymous struct/union.
            if (self.at_keyword(Keyword::Struct) || self.at_keyword(Keyword::Union))
                && self
                    .peek_at(1)
                    .is_some_and(|t| t.kind.is_punct(Punct::LBrace))
            {
                self.pos += 1;
                let nested = self.parse_struct_body();
                // Named instance of the anonymous struct, or truly
                // anonymous (fields flatten into the parent).
                if let Some(name) = self.take_ident() {
                    fields.push(Field {
                        name,
                        ty: TypeName::new("struct <anon>"),
                        span: start.join(self.cur_span()),
                    });
                } else {
                    fields.extend(nested);
                }
                self.eat_punct(Punct::Semi);
                continue;
            }
            let ty = self.parse_type_specifiers();
            if ty.base.is_empty() {
                // Could not make sense of this member; skip the line.
                self.recover_member();
                continue;
            }
            // One or more declarators.
            loop {
                let mut pointer = 0u8;
                while self.eat_punct(Punct::Star) {
                    pointer += 1;
                    self.skip_type_qualifiers();
                }
                self.skip_annotations();
                // Function-pointer field `ret (*name)(args)`.
                if self.at_punct(Punct::LParen) {
                    let fspan = self.skip_balanced(Punct::LParen, Punct::RParen);
                    let name = self.fn_ptr_name_from(fspan);
                    if self.at_punct(Punct::LParen) {
                        self.skip_balanced(Punct::LParen, Punct::RParen);
                    }
                    fields.push(Field {
                        name,
                        ty: TypeName {
                            base: format!("{} (*)()", ty.base),
                            pointer: 1,
                        },
                        span: start.join(self.cur_span()),
                    });
                } else if let Some(name) = self.take_ident() {
                    // Array / bitfield suffixes.
                    while self.at_punct(Punct::LBracket) {
                        self.skip_balanced(Punct::LBracket, Punct::RBracket);
                    }
                    if self.eat_punct(Punct::Colon) {
                        self.bump(); // Bitfield width.
                    }
                    self.skip_annotations();
                    fields.push(Field {
                        name,
                        ty: TypeName {
                            base: ty.base.clone(),
                            pointer,
                        },
                        span: start.join(self.cur_span()),
                    });
                } else if self.eat_punct(Punct::Colon) {
                    // Anonymous bitfield.
                    self.bump();
                } else {
                    self.recover_member();
                    break;
                }
                if !self.eat_punct(Punct::Comma) {
                    break;
                }
            }
            self.eat_punct(Punct::Semi);
        }
        self.eat_punct(Punct::RBrace);
        fields
    }

    fn recover_member(&mut self) {
        while let Some(t) = self.peek() {
            if t.kind.is_punct(Punct::Semi) {
                self.pos += 1;
                return;
            }
            if t.kind.is_punct(Punct::RBrace) {
                return;
            }
            if t.kind.is_punct(Punct::LBrace) {
                self.skip_balanced(Punct::LBrace, Punct::RBrace);
                continue;
            }
            self.pos += 1;
        }
    }

    /// Recovers the name of a function-pointer declarator given the span
    /// of its `( * name )` group; falls back to scanning the token range.
    fn fn_ptr_name_from(&self, group: Span) -> String {
        // The tokens of the group are behind the cursor; scan backwards
        // for the last identifier inside the span.
        let mut name = String::new();
        for t in &self.toks {
            if t.span.start >= group.start && t.span.end <= group.end {
                if let TokenKind::Ident(s) = &t.kind {
                    name = s.to_string();
                }
            }
        }
        name
    }

    // ------------------------------------------------------------------
    // Declarations and functions.
    // ------------------------------------------------------------------

    /// Skips `const`/`volatile`/`restrict` runs.
    pub(crate) fn skip_type_qualifiers(&mut self) {
        while self.eat_keyword(Keyword::Const)
            || self.eat_keyword(Keyword::Volatile)
            || self.eat_keyword(Keyword::Restrict)
        {}
    }

    /// Parses declaration specifiers into a [`TypeName`] base (pointer
    /// depth comes later from the declarator). Returns an empty base if
    /// nothing type-like was found.
    pub(crate) fn parse_type_specifiers(&mut self) -> TypeName {
        let mut words: Vec<String> = Vec::new();
        let mut saw_type = false;
        loop {
            self.skip_annotations();
            let Some(t) = self.peek() else { break };
            match &t.kind {
                TokenKind::Keyword(
                    Keyword::Static
                    | Keyword::Extern
                    | Keyword::Inline
                    | Keyword::Auto
                    | Keyword::Register
                    | Keyword::Const
                    | Keyword::Volatile
                    | Keyword::Restrict,
                ) => {
                    // Storage/qualifier words are dropped from the base.
                    self.pos += 1;
                }
                TokenKind::Keyword(Keyword::Struct) | TokenKind::Keyword(Keyword::Union) => {
                    let kw = if t.kind.is_keyword(Keyword::Struct) {
                        "struct"
                    } else {
                        "union"
                    };
                    self.pos += 1;
                    let tag = self.take_ident().unwrap_or_default();
                    if self.at_punct(Punct::LBrace) {
                        // Inline definition in a declaration; skip body.
                        self.skip_balanced(Punct::LBrace, Punct::RBrace);
                    }
                    words.push(format!("{kw} {tag}"));
                    saw_type = true;
                }
                TokenKind::Keyword(Keyword::Enum) => {
                    self.pos += 1;
                    let tag = self.take_ident().unwrap_or_default();
                    if self.at_punct(Punct::LBrace) {
                        self.skip_balanced(Punct::LBrace, Punct::RBrace);
                    }
                    words.push(format!("enum {tag}"));
                    saw_type = true;
                }
                TokenKind::Keyword(Keyword::Typeof) => {
                    self.pos += 1;
                    if self.at_punct(Punct::LParen) {
                        self.skip_balanced(Punct::LParen, Punct::RParen);
                    }
                    words.push("typeof".into());
                    saw_type = true;
                }
                TokenKind::Keyword(k) if k.is_type_start() => {
                    words.push(k.as_str().to_string());
                    saw_type = true;
                    self.pos += 1;
                }
                TokenKind::Ident(name) => {
                    if saw_type {
                        // Already have a type: the identifier is the
                        // declarator name.
                        break;
                    }
                    // Heuristic: `ident` is a type when it is a known
                    // kernel type word, ends in `_t`, or is followed by
                    // another identifier or `*`+ident.
                    let is_known = KNOWN_TYPE_WORDS.contains(&&**name) || name.ends_with("_t");
                    let next_suggests_type = match self.peek_at(1).map(|t| &t.kind) {
                        Some(TokenKind::Ident(_)) => true,
                        Some(TokenKind::Punct(Punct::Star)) => {
                            // `name * x` — declaration if `x` then ends.
                            matches!(
                                self.peek_at(2).map(|t| &t.kind),
                                Some(TokenKind::Ident(_)) | Some(TokenKind::Punct(Punct::Star))
                            )
                        }
                        _ => false,
                    };
                    if is_known || next_suggests_type {
                        words.push(name.to_string());
                        saw_type = true;
                        self.pos += 1;
                    } else {
                        break;
                    }
                }
                _ => break,
            }
        }
        TypeName {
            base: words.join(" "),
            pointer: 0,
        }
    }

    /// After type specifiers, parses `* ... name` and decides between a
    /// function definition, prototype, or (list of) global declarations.
    fn parse_decl_or_function(&mut self) -> Vec<Item> {
        let start = self.cur_span();
        let is_static = self
            .toks
            .get(self.pos..)
            .into_iter()
            .flatten()
            .take_while(|t| !t.kind.is_punct(Punct::Semi) && !t.kind.is_punct(Punct::LBrace))
            .take(8)
            .any(|t| t.kind.is_keyword(Keyword::Static));
        let ty = self.parse_type_specifiers();
        if ty.base.is_empty() {
            // Not a declaration after all; bail out with recovery.
            let span = self.cur_span();
            self.errors.push(ParseError::UnexpectedToken { span });
            self.recover_to_sync();
            return vec![Item::Skipped(span)];
        }
        let mut pointer = 0u8;
        while self.eat_punct(Punct::Star) {
            pointer += 1;
            self.skip_type_qualifiers();
        }
        self.skip_annotations();
        let Some(name) = self.take_ident() else {
            // E.g. `struct x;` already handled; anything else here is
            // noise (or a function pointer global, which we skip).
            self.recover_to_sync();
            return vec![Item::Skipped(start.join(self.cur_span()))];
        };
        self.skip_annotations();

        if self.at_punct(Punct::LParen) {
            // Function definition or prototype.
            let params = self.parse_param_list();
            self.skip_annotations();
            if self.at_punct(Punct::LBrace) {
                let body = self.parse_block();
                return vec![Item::Function(FunctionDef {
                    name,
                    ret: TypeName {
                        base: ty.base,
                        pointer,
                    },
                    params,
                    is_static,
                    span: start.join(self.cur_span()),
                    body,
                })];
            }
            // Prototype (possibly `;` or attribute-terminated).
            self.recover_to_semi();
            return vec![Item::Prototype(Prototype {
                name,
                ret: TypeName {
                    base: ty.base,
                    pointer,
                },
                params,
                span: start.join(self.cur_span()),
            })];
        }

        // Global variable declaration(s).
        let mut decls = Vec::new();
        let mut cur_name = name;
        let mut cur_ptr = pointer;
        loop {
            while self.at_punct(Punct::LBracket) {
                self.skip_balanced(Punct::LBracket, Punct::RBracket);
            }
            self.skip_annotations();
            let init = if self.eat_punct(Punct::Assign) {
                Some(self.parse_initializer())
            } else {
                None
            };
            decls.push(Declaration {
                name: cur_name,
                ty: TypeName {
                    base: ty.base.clone(),
                    pointer: cur_ptr,
                },
                init,
                is_static,
                span: start.join(self.cur_span()),
            });
            if !self.eat_punct(Punct::Comma) {
                break;
            }
            cur_ptr = 0;
            while self.eat_punct(Punct::Star) {
                cur_ptr += 1;
            }
            self.skip_annotations();
            match self.take_ident() {
                Some(n) => cur_name = n,
                None => break,
            }
        }
        self.recover_to_semi();
        decls.into_iter().map(Item::Global).collect()
    }

    fn recover_to_semi(&mut self) {
        while let Some(t) = self.peek() {
            if t.kind.is_punct(Punct::Semi) {
                self.pos += 1;
                return;
            }
            if t.kind.is_punct(Punct::LBrace) {
                self.skip_balanced(Punct::LBrace, Punct::RBrace);
                continue;
            }
            self.pos += 1;
        }
    }

    /// Parses a parenthesized parameter list, cursor on `(`.
    pub(crate) fn parse_param_list(&mut self) -> Vec<Param> {
        self.expect_punct(Punct::LParen);
        let mut params = Vec::new();
        if self.at_punct(Punct::RParen) {
            self.pos += 1;
            return params;
        }
        loop {
            self.skip_annotations();
            if self.at_punct(Punct::Ellipsis) {
                self.pos += 1;
                params.push(Param {
                    name: None,
                    ty: TypeName::new("..."),
                });
            } else if self.at_keyword(Keyword::Void)
                && self
                    .peek_at(1)
                    .is_some_and(|t| t.kind.is_punct(Punct::RParen))
            {
                self.pos += 1;
            } else {
                let ty = self.parse_type_specifiers();
                let mut pointer = 0u8;
                while self.eat_punct(Punct::Star) {
                    pointer += 1;
                    self.skip_type_qualifiers();
                }
                self.skip_annotations();
                let name = if self.at_punct(Punct::LParen) {
                    // Function-pointer parameter.
                    let group = self.skip_balanced(Punct::LParen, Punct::RParen);
                    let n = self.fn_ptr_name_from(group);
                    if self.at_punct(Punct::LParen) {
                        self.skip_balanced(Punct::LParen, Punct::RParen);
                    }
                    if n.is_empty() {
                        None
                    } else {
                        Some(n)
                    }
                } else {
                    self.take_ident()
                };
                while self.at_punct(Punct::LBracket) {
                    self.skip_balanced(Punct::LBracket, Punct::RBracket);
                }
                params.push(Param {
                    name,
                    ty: TypeName {
                        base: ty.base,
                        pointer,
                    },
                });
            }
            if !self.eat_punct(Punct::Comma) {
                break;
            }
        }
        self.expect_punct(Punct::RParen);
        params
    }

    /// Parses an initializer: expression or braced (designated) list.
    /// Guarded: at the depth cap the initializer is skipped wholesale.
    pub(crate) fn parse_initializer(&mut self) -> Initializer {
        if !self.enter_depth() {
            if self.at_punct(Punct::LBrace) {
                self.skip_balanced(Punct::LBrace, Punct::RBrace);
            } else {
                self.bump();
            }
            return Initializer::List(Vec::new());
        }
        let init = self.parse_initializer_inner();
        self.leave_depth();
        init
    }

    fn parse_initializer_inner(&mut self) -> Initializer {
        if self.at_punct(Punct::LBrace) {
            self.pos += 1;
            let mut items = Vec::new();
            while !self.at_eof() && !self.at_punct(Punct::RBrace) {
                let designator = if self.at_punct(Punct::Dot) {
                    self.pos += 1;
                    let name = self.take_ident();
                    self.eat_punct(Punct::Assign);
                    name
                } else if self.at_punct(Punct::LBracket) {
                    // `[index] = init` array designator; keep the index
                    // out of the name.
                    self.skip_balanced(Punct::LBracket, Punct::RBracket);
                    self.eat_punct(Punct::Assign);
                    None
                } else {
                    None
                };
                let init = self.parse_initializer();
                items.push((designator, init));
                if !self.eat_punct(Punct::Comma) {
                    break;
                }
            }
            self.eat_punct(Punct::RBrace);
            Initializer::List(items)
        } else {
            Initializer::Expr(self.parse_assignment_expr())
        }
    }
}

/// Heuristic for statement-less top-level macro invocations.
fn looks_like_toplevel_macro(name: &str) -> bool {
    let all_caps = name
        .chars()
        .all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_');
    all_caps
        || name.starts_with("module_")
        || name.starts_with("late_initcall")
        || name.starts_with("early_initcall")
        || name.starts_with("core_initcall")
        || name.starts_with("subsys_initcall")
        || name.starts_with("device_initcall")
        || name.starts_with("arch_initcall")
        || name.starts_with("fs_initcall")
        || name.starts_with("postcore_initcall")
        || name.starts_with("builtin_platform_driver")
        || name.starts_with("DEFINE_")
        || name.starts_with("DECLARE_")
}

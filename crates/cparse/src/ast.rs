//! The abstract syntax tree produced by the parser.
//!
//! The tree is deliberately *syntactic*: there is no symbol table and no
//! type checking. Types are kept as lightly-structured text
//! ([`TypeName`]), which is all the downstream refcounting analyses need
//! (they match on struct names like `kref` and pointer-ness, never on
//! full C semantics).

use refminer_clex::Span;

/// A parsed source file.
#[derive(Debug, Clone, PartialEq)]
pub struct TranslationUnit {
    /// The path the file was parsed from (informational).
    pub path: String,
    /// Top-level items in source order.
    pub items: Vec<Item>,
}

impl TranslationUnit {
    /// Iterates over the function definitions in the unit.
    pub fn functions(&self) -> impl Iterator<Item = &FunctionDef> {
        self.items.iter().filter_map(|i| match i {
            Item::Function(f) => Some(f),
            _ => None,
        })
    }

    /// Finds a function definition by name.
    pub fn function(&self, name: &str) -> Option<&FunctionDef> {
        self.functions().find(|f| f.name == name)
    }

    /// Iterates over struct definitions (including unions).
    pub fn structs(&self) -> impl Iterator<Item = &StructDef> {
        self.items.iter().filter_map(|i| match i {
            Item::Struct(s) => Some(s),
            _ => None,
        })
    }

    /// Iterates over top-level variable declarations.
    pub fn globals(&self) -> impl Iterator<Item = &Declaration> {
        self.items.iter().filter_map(|i| match i {
            Item::Global(d) => Some(d),
            _ => None,
        })
    }
}

/// A top-level item.
#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    /// A function definition with a body.
    Function(FunctionDef),
    /// A struct or union definition with fields.
    Struct(StructDef),
    /// An enum definition.
    Enum(EnumDef),
    /// A `typedef`.
    Typedef(Typedef),
    /// A global variable declaration (possibly initialized — driver
    /// ops tables land here).
    Global(Declaration),
    /// A function *declaration* (prototype without body).
    Prototype(Prototype),
    /// Anything the parser skipped while recovering; the raw text span
    /// is preserved so nothing is silently lost.
    Skipped(Span),
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionDef {
    /// Function name.
    pub name: String,
    /// Return type.
    pub ret: TypeName,
    /// Parameters in order.
    pub params: Vec<Param>,
    /// Whether the definition is `static`.
    pub is_static: bool,
    /// The body.
    pub body: Block,
    /// Span of the whole definition.
    pub span: Span,
}

/// A function prototype (no body).
#[derive(Debug, Clone, PartialEq)]
pub struct Prototype {
    /// Function name.
    pub name: String,
    /// Return type.
    pub ret: TypeName,
    /// Parameters.
    pub params: Vec<Param>,
    /// Span of the prototype.
    pub span: Span,
}

/// A single function parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Parameter name, if present (prototypes may omit it).
    pub name: Option<String>,
    /// Parameter type.
    pub ty: TypeName,
}

/// A lightly-structured type.
///
/// `base` is the core type word(s) — e.g. `struct device_node`,
/// `unsigned long`, `u32` — and `pointer` counts the `*`s applied by the
/// declarator.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct TypeName {
    /// The base type text, qualifiers stripped.
    pub base: String,
    /// Pointer depth from the declarator.
    pub pointer: u8,
}

impl TypeName {
    /// Creates a non-pointer type from its base text.
    pub fn new(base: impl Into<String>) -> TypeName {
        TypeName {
            base: base.into(),
            pointer: 0,
        }
    }

    /// Creates a pointer type.
    pub fn ptr(base: impl Into<String>, depth: u8) -> TypeName {
        TypeName {
            base: base.into(),
            pointer: depth,
        }
    }

    /// Whether the type is a pointer.
    pub fn is_pointer(&self) -> bool {
        self.pointer > 0
    }

    /// The struct tag if the base is `struct <tag>` (or `union <tag>`).
    pub fn struct_tag(&self) -> Option<&str> {
        self.base
            .strip_prefix("struct ")
            .or_else(|| self.base.strip_prefix("union "))
    }
}

impl std::fmt::Display for TypeName {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.base)?;
        for _ in 0..self.pointer {
            write!(f, " *")?;
        }
        Ok(())
    }
}

/// A struct or union definition.
#[derive(Debug, Clone, PartialEq)]
pub struct StructDef {
    /// The tag, if any.
    pub name: Option<String>,
    /// Whether this is a `union`.
    pub is_union: bool,
    /// Fields in order.
    pub fields: Vec<Field>,
    /// Span of the definition.
    pub span: Span,
}

/// A struct field.
#[derive(Debug, Clone, PartialEq)]
pub struct Field {
    /// Field name (anonymous bitfields get an empty name).
    pub name: String,
    /// Field type.
    pub ty: TypeName,
    /// Span of the field declaration.
    pub span: Span,
}

/// An enum definition.
#[derive(Debug, Clone, PartialEq)]
pub struct EnumDef {
    /// The tag, if any.
    pub name: Option<String>,
    /// Enumerator names in order.
    pub variants: Vec<String>,
    /// Span of the definition.
    pub span: Span,
}

/// A `typedef` alias.
#[derive(Debug, Clone, PartialEq)]
pub struct Typedef {
    /// The new type name.
    pub name: String,
    /// The aliased type.
    pub ty: TypeName,
    /// Span of the typedef.
    pub span: Span,
}

/// A variable declaration (global or local declarator).
#[derive(Debug, Clone, PartialEq)]
pub struct Declaration {
    /// Declared name.
    pub name: String,
    /// Declared type.
    pub ty: TypeName,
    /// Initializer, if present.
    pub init: Option<Initializer>,
    /// Whether declared `static`.
    pub is_static: bool,
    /// Span of the declarator.
    pub span: Span,
}

/// An initializer: a plain expression or a (possibly designated) list.
#[derive(Debug, Clone, PartialEq)]
pub enum Initializer {
    /// `= expr`
    Expr(Expr),
    /// `= { .field = init, init, ... }`
    List(Vec<(Option<String>, Initializer)>),
}

impl Initializer {
    /// Looks up a designated field in a list initializer,
    /// e.g. `.probe = foo_probe`.
    pub fn designated(&self, field: &str) -> Option<&Initializer> {
        match self {
            Initializer::List(items) => items
                .iter()
                .find(|(name, _)| name.as_deref() == Some(field))
                .map(|(_, init)| init),
            Initializer::Expr(_) => None,
        }
    }

    /// If the initializer is a bare identifier expression, its name.
    pub fn as_ident(&self) -> Option<&str> {
        match self {
            Initializer::Expr(e) => e.as_ident(),
            Initializer::List(_) => None,
        }
    }
}

/// A brace-enclosed statement block.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// Statements in order.
    pub stmts: Vec<Stmt>,
    /// Span from `{` to `}`.
    pub span: Span,
}

/// A statement with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Stmt {
    /// What the statement is.
    pub kind: StmtKind,
    /// Where it is.
    pub span: Span,
}

/// Statement forms.
#[derive(Debug, Clone, PartialEq)]
pub enum StmtKind {
    /// A nested block.
    Block(Block),
    /// One or more local declarations from a single declaration
    /// statement (`int a = 1, *b;` yields two entries).
    Decl(Vec<Declaration>),
    /// An expression statement.
    Expr(Expr),
    /// `if (cond) then [else els]`
    If {
        cond: Expr,
        then: Box<Stmt>,
        els: Option<Box<Stmt>>,
    },
    /// `while (cond) body`
    While { cond: Expr, body: Box<Stmt> },
    /// `do body while (cond);`
    DoWhile { body: Box<Stmt>, cond: Expr },
    /// `for (init; cond; step) body`
    For {
        init: Option<Box<Stmt>>,
        cond: Option<Expr>,
        step: Option<Expr>,
        body: Box<Stmt>,
    },
    /// A macro-defined loop such as `for_each_child_of_node(p, c) { .. }`
    /// — the paper's *smartloop*. The macro is not expanded; its
    /// arguments are kept as expressions.
    MacroLoop {
        name: String,
        args: Vec<Expr>,
        body: Box<Stmt>,
    },
    /// `switch (cond) body`
    Switch { cond: Expr, body: Box<Stmt> },
    /// `case expr:` marker (statements follow as siblings).
    Case(Expr),
    /// `default:` marker.
    Default,
    /// `label:` marker.
    Label(String),
    /// `goto label;`
    Goto(String),
    /// `return [expr];`
    Return(Option<Expr>),
    /// `break;`
    Break,
    /// `continue;`
    Continue,
    /// `;`
    Empty,
}

/// An expression with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    /// What the expression is.
    pub kind: ExprKind,
    /// Where it is.
    pub span: Span,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// `*e`
    Deref,
    /// `&e`
    AddrOf,
    /// `-e`
    Neg,
    /// `+e`
    Plus,
    /// `!e`
    Not,
    /// `~e`
    BitNot,
    /// `++e`
    PreInc,
    /// `--e`
    PreDec,
}

/// Postfix update operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PostOp {
    /// `e++`
    Inc,
    /// `e--`
    Dec,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Shl,
    Shr,
    Lt,
    Gt,
    Le,
    Ge,
    Eq,
    Ne,
    BitAnd,
    BitXor,
    BitOr,
    And,
    Or,
}

/// Assignment operators (`=` and the compound forms).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AssignOp {
    Assign,
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Shl,
    Shr,
    BitAnd,
    BitXor,
    BitOr,
}

/// Expression forms.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    /// An identifier use.
    Ident(String),
    /// An integer literal.
    IntLit(i64),
    /// A float literal (raw text).
    FloatLit(String),
    /// A string literal (adjacent literals concatenated).
    StrLit(String),
    /// A character literal (raw text).
    CharLit(String),
    /// `callee(args...)`
    Call { callee: Box<Expr>, args: Vec<Expr> },
    /// `base.field` or `base->field`
    Member {
        base: Box<Expr>,
        field: String,
        arrow: bool,
    },
    /// `base[index]`
    Index { base: Box<Expr>, index: Box<Expr> },
    /// A unary operation.
    Unary { op: UnOp, operand: Box<Expr> },
    /// A postfix `++`/`--`.
    Postfix { op: PostOp, operand: Box<Expr> },
    /// A binary operation.
    Binary {
        op: BinOp,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
    },
    /// An assignment.
    Assign {
        op: AssignOp,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
    },
    /// `cond ? then : els` (gcc's `cond ?: els` sets `then == cond`).
    Ternary {
        cond: Box<Expr>,
        then: Box<Expr>,
        els: Box<Expr>,
    },
    /// `(type)expr`
    Cast { ty: TypeName, expr: Box<Expr> },
    /// `sizeof expr` / `sizeof(type)`
    Sizeof(Box<Expr>),
    /// `sizeof(type)` where the operand parsed as a type.
    SizeofType(TypeName),
    /// `a, b, c`
    Comma(Vec<Expr>),
    /// A brace initializer appearing in expression position
    /// (compound literal payload).
    InitList(Vec<(Option<String>, Box<Expr>)>),
    /// A gcc statement expression `({ ...; v; })` — body is kept.
    StmtExpr(Block),
    /// Anything the parser had to give up on (span preserved).
    Unknown,
}

impl Expr {
    /// The identifier name if this is a bare identifier.
    pub fn as_ident(&self) -> Option<&str> {
        match &self.kind {
            ExprKind::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// The *root variable* of an access path: for `a->b.c[i]` this is
    /// `a`; for `&x` it is `x`; for `f(x)` it is `None`.
    ///
    /// The refcounting checkers key objects by root variable — the same
    /// granularity the paper's templates use for their `p0` parameters.
    pub fn root_var(&self) -> Option<&str> {
        match &self.kind {
            ExprKind::Ident(s) => Some(s),
            ExprKind::Member { base, .. } => base.root_var(),
            ExprKind::Index { base, .. } => base.root_var(),
            ExprKind::Unary {
                op: UnOp::Deref | UnOp::AddrOf,
                operand,
            } => operand.root_var(),
            ExprKind::Cast { expr, .. } => expr.root_var(),
            _ => None,
        }
    }

    /// If this expression is a direct call `name(args...)`, the callee
    /// name and arguments.
    pub fn as_direct_call(&self) -> Option<(&str, &[Expr])> {
        match &self.kind {
            ExprKind::Call { callee, args } => {
                callee.as_ident().map(|name| (name, args.as_slice()))
            }
            _ => None,
        }
    }

    /// Walks this expression and all sub-expressions, pre-order.
    pub fn walk<'a>(&'a self, f: &mut dyn FnMut(&'a Expr)) {
        f(self);
        match &self.kind {
            ExprKind::Call { callee, args } => {
                callee.walk(f);
                for a in args {
                    a.walk(f);
                }
            }
            ExprKind::Member { base, .. } => base.walk(f),
            ExprKind::Index { base, index } => {
                base.walk(f);
                index.walk(f);
            }
            ExprKind::Unary { operand, .. } | ExprKind::Postfix { operand, .. } => operand.walk(f),
            ExprKind::Binary { lhs, rhs, .. } | ExprKind::Assign { lhs, rhs, .. } => {
                lhs.walk(f);
                rhs.walk(f);
            }
            ExprKind::Ternary { cond, then, els } => {
                cond.walk(f);
                then.walk(f);
                els.walk(f);
            }
            ExprKind::Cast { expr, .. } | ExprKind::Sizeof(expr) => expr.walk(f),
            ExprKind::Comma(items) => {
                for e in items {
                    e.walk(f);
                }
            }
            ExprKind::InitList(items) => {
                for (_, e) in items {
                    e.walk(f);
                }
            }
            ExprKind::StmtExpr(_)
            | ExprKind::Ident(_)
            | ExprKind::IntLit(_)
            | ExprKind::FloatLit(_)
            | ExprKind::StrLit(_)
            | ExprKind::CharLit(_)
            | ExprKind::SizeofType(_)
            | ExprKind::Unknown => {}
        }
    }

    /// Collects all direct calls `(name, args)` in this expression tree.
    pub fn direct_calls(&self) -> Vec<(&str, &[Expr])> {
        let mut out = Vec::new();
        self.walk(&mut |e| {
            if let Some(c) = e.as_direct_call() {
                out.push(c);
            }
        });
        out
    }
}

impl Stmt {
    /// Walks this statement and all nested statements, pre-order.
    pub fn walk<'a>(&'a self, f: &mut dyn FnMut(&'a Stmt)) {
        f(self);
        match &self.kind {
            StmtKind::Block(b) => {
                for s in &b.stmts {
                    s.walk(f);
                }
            }
            StmtKind::If { then, els, .. } => {
                then.walk(f);
                if let Some(e) = els {
                    e.walk(f);
                }
            }
            StmtKind::While { body, .. }
            | StmtKind::DoWhile { body, .. }
            | StmtKind::Switch { body, .. }
            | StmtKind::MacroLoop { body, .. } => body.walk(f),
            StmtKind::For { init, body, .. } => {
                if let Some(i) = init {
                    i.walk(f);
                }
                body.walk(f);
            }
            _ => {}
        }
    }

    /// Walks every expression contained in this statement subtree.
    pub fn walk_exprs<'a>(&'a self, f: &mut dyn FnMut(&'a Expr)) {
        self.walk(&mut |s| match &s.kind {
            StmtKind::Expr(e) | StmtKind::Case(e) => e.walk(f),
            StmtKind::If { cond, .. }
            | StmtKind::While { cond, .. }
            | StmtKind::DoWhile { cond, .. }
            | StmtKind::Switch { cond, .. } => cond.walk(f),
            StmtKind::For { cond, step, .. } => {
                if let Some(c) = cond {
                    c.walk(f);
                }
                if let Some(st) = step {
                    st.walk(f);
                }
            }
            StmtKind::MacroLoop { args, .. } => {
                for a in args {
                    a.walk(f);
                }
            }
            StmtKind::Return(Some(e)) => e.walk(f),
            StmtKind::Decl(decls) => {
                for d in decls {
                    if let Some(init) = &d.init {
                        walk_init(init, f);
                    }
                }
            }
            _ => {}
        });
    }
}

fn walk_init<'a>(init: &'a Initializer, f: &mut dyn FnMut(&'a Expr)) {
    match init {
        Initializer::Expr(e) => e.walk(f),
        Initializer::List(items) => {
            for (_, i) in items {
                walk_init(i, f);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ident(name: &str) -> Expr {
        Expr {
            kind: ExprKind::Ident(name.into()),
            span: Span::default(),
        }
    }

    #[test]
    fn root_var_chases_member_chains() {
        let e = Expr {
            kind: ExprKind::Member {
                base: Box::new(Expr {
                    kind: ExprKind::Member {
                        base: Box::new(ident("dev")),
                        field: "kobj".into(),
                        arrow: true,
                    },
                    span: Span::default(),
                }),
                field: "refcount".into(),
                arrow: false,
            },
            span: Span::default(),
        };
        assert_eq!(e.root_var(), Some("dev"));
    }

    #[test]
    fn direct_call_extraction() {
        let call = Expr {
            kind: ExprKind::Call {
                callee: Box::new(ident("of_node_put")),
                args: vec![ident("np")],
            },
            span: Span::default(),
        };
        let (name, args) = call.as_direct_call().unwrap();
        assert_eq!(name, "of_node_put");
        assert_eq!(args[0].as_ident(), Some("np"));
    }

    #[test]
    fn type_name_struct_tag() {
        let t = TypeName::ptr("struct device_node", 1);
        assert_eq!(t.struct_tag(), Some("device_node"));
        assert!(t.is_pointer());
        assert_eq!(t.to_string(), "struct device_node *");
    }

    #[test]
    fn designated_initializer_lookup() {
        let init = Initializer::List(vec![
            (Some("probe".into()), Initializer::Expr(ident("foo_probe"))),
            (
                Some("remove".into()),
                Initializer::Expr(ident("foo_remove")),
            ),
        ]);
        assert_eq!(
            init.designated("probe").and_then(|i| i.as_ident()),
            Some("foo_probe")
        );
        assert!(init.designated("missing").is_none());
    }
}

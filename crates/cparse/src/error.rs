//! Recoverable parse errors.

use refminer_clex::Span;
use std::fmt;

/// An error the parser recovered from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// A specific token was expected but absent.
    Expected {
        /// What was expected (source text).
        what: &'static str,
        /// Where the expectation failed.
        span: Span,
    },
    /// A token that no production could begin with.
    UnexpectedToken {
        /// Where it happened.
        span: Span,
    },
    /// Nesting exceeded the recursion-depth cap; the offending subtree
    /// was replaced with a degraded node (reported once per file).
    TooDeep {
        /// Where the cap was first hit.
        span: Span,
    },
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Expected { what, span } => write!(f, "{span}: expected `{what}`"),
            ParseError::UnexpectedToken { span } => write!(f, "{span}: unexpected token"),
            ParseError::TooDeep { span } => {
                write!(f, "{span}: nesting exceeds the depth cap; subtree degraded")
            }
        }
    }
}

impl std::error::Error for ParseError {}

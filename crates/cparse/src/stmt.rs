//! Statement grammar, including the *smartloop* (macro loop) heuristic.

use refminer_clex::{Keyword, Punct, TokenKind};

use crate::ast::{Block, Declaration, Expr, Stmt, StmtKind, TypeName};
use crate::parser::Parser;

impl Parser {
    /// Parses a `{ ... }` block, cursor on `{`.
    pub(crate) fn parse_block(&mut self) -> Block {
        let start = self.cur_span();
        self.expect_punct(Punct::LBrace);
        let mut stmts = Vec::new();
        while !self.at_eof() && !self.at_punct(Punct::RBrace) {
            let before = self.pos;
            stmts.push(self.parse_stmt());
            if self.pos == before {
                // Guaranteed progress even on pathological input.
                self.pos += 1;
            }
        }
        self.eat_punct(Punct::RBrace);
        Block {
            stmts,
            span: start.join(self.cur_span()),
        }
    }

    /// Parses one statement. Every statement-grammar cycle passes
    /// through here, so the recursion-depth guard lives on this entry:
    /// at the cap the parser synchronizes past the construct and emits
    /// an `Empty` statement.
    pub(crate) fn parse_stmt(&mut self) -> Stmt {
        if !self.enter_depth() {
            let span = self.cur_span();
            self.recover_to_sync();
            return Stmt {
                kind: StmtKind::Empty,
                span,
            };
        }
        let s = self.parse_stmt_inner();
        self.leave_depth();
        s
    }

    fn parse_stmt_inner(&mut self) -> Stmt {
        let start = self.cur_span();
        let Some(t) = self.peek() else {
            return Stmt {
                kind: StmtKind::Empty,
                span: start,
            };
        };
        match &t.kind {
            TokenKind::Punct(Punct::LBrace) => {
                let block = self.parse_block();
                Stmt {
                    span: block.span,
                    kind: StmtKind::Block(block),
                }
            }
            TokenKind::Punct(Punct::Semi) => {
                self.pos += 1;
                Stmt {
                    kind: StmtKind::Empty,
                    span: start,
                }
            }
            TokenKind::Keyword(Keyword::If) => {
                self.pos += 1;
                self.expect_punct(Punct::LParen);
                let cond = self.parse_expr();
                self.expect_punct(Punct::RParen);
                let then = Box::new(self.parse_stmt());
                let els = if self.eat_keyword(Keyword::Else) {
                    Some(Box::new(self.parse_stmt()))
                } else {
                    None
                };
                Stmt {
                    span: start.join(self.cur_span()),
                    kind: StmtKind::If { cond, then, els },
                }
            }
            TokenKind::Keyword(Keyword::While) => {
                self.pos += 1;
                self.expect_punct(Punct::LParen);
                let cond = self.parse_expr();
                self.expect_punct(Punct::RParen);
                let body = Box::new(self.parse_stmt());
                Stmt {
                    span: start.join(self.cur_span()),
                    kind: StmtKind::While { cond, body },
                }
            }
            TokenKind::Keyword(Keyword::Do) => {
                self.pos += 1;
                let body = Box::new(self.parse_stmt());
                self.eat_keyword(Keyword::While);
                self.expect_punct(Punct::LParen);
                let cond = self.parse_expr();
                self.expect_punct(Punct::RParen);
                self.eat_punct(Punct::Semi);
                Stmt {
                    span: start.join(self.cur_span()),
                    kind: StmtKind::DoWhile { body, cond },
                }
            }
            TokenKind::Keyword(Keyword::For) => {
                self.pos += 1;
                self.expect_punct(Punct::LParen);
                let init = if self.at_punct(Punct::Semi) {
                    self.pos += 1;
                    None
                } else {
                    Some(Box::new(self.parse_simple_stmt_for_init()))
                };
                let cond = if self.at_punct(Punct::Semi) {
                    None
                } else {
                    Some(self.parse_expr())
                };
                self.eat_punct(Punct::Semi);
                let step = if self.at_punct(Punct::RParen) {
                    None
                } else {
                    Some(self.parse_expr())
                };
                self.expect_punct(Punct::RParen);
                let body = Box::new(self.parse_stmt());
                Stmt {
                    span: start.join(self.cur_span()),
                    kind: StmtKind::For {
                        init,
                        cond,
                        step,
                        body,
                    },
                }
            }
            TokenKind::Keyword(Keyword::Switch) => {
                self.pos += 1;
                self.expect_punct(Punct::LParen);
                let cond = self.parse_expr();
                self.expect_punct(Punct::RParen);
                let body = Box::new(self.parse_stmt());
                Stmt {
                    span: start.join(self.cur_span()),
                    kind: StmtKind::Switch { cond, body },
                }
            }
            TokenKind::Keyword(Keyword::Case) => {
                self.pos += 1;
                let e = self.parse_expr();
                // Tolerate gcc case ranges `case A ... B:`.
                if self.at_punct(Punct::Ellipsis) {
                    self.pos += 1;
                    let _ = self.parse_expr();
                }
                self.expect_punct(Punct::Colon);
                Stmt {
                    span: start.join(self.cur_span()),
                    kind: StmtKind::Case(e),
                }
            }
            TokenKind::Keyword(Keyword::Default) => {
                self.pos += 1;
                self.expect_punct(Punct::Colon);
                Stmt {
                    span: start.join(self.cur_span()),
                    kind: StmtKind::Default,
                }
            }
            TokenKind::Keyword(Keyword::Goto) => {
                self.pos += 1;
                let label = self.take_ident().unwrap_or_default();
                self.eat_punct(Punct::Semi);
                Stmt {
                    span: start.join(self.cur_span()),
                    kind: StmtKind::Goto(label),
                }
            }
            TokenKind::Keyword(Keyword::Return) => {
                self.pos += 1;
                let value = if self.at_punct(Punct::Semi) {
                    None
                } else {
                    Some(self.parse_expr())
                };
                self.eat_punct(Punct::Semi);
                Stmt {
                    span: start.join(self.cur_span()),
                    kind: StmtKind::Return(value),
                }
            }
            TokenKind::Keyword(Keyword::Break) => {
                self.pos += 1;
                self.eat_punct(Punct::Semi);
                Stmt {
                    kind: StmtKind::Break,
                    span: start,
                }
            }
            TokenKind::Keyword(Keyword::Continue) => {
                self.pos += 1;
                self.eat_punct(Punct::Semi);
                Stmt {
                    kind: StmtKind::Continue,
                    span: start,
                }
            }
            TokenKind::Keyword(k) if k.is_decl_specifier() => {
                let decls = self.parse_local_decl();
                Stmt {
                    span: start.join(self.cur_span()),
                    kind: StmtKind::Decl(decls),
                }
            }
            TokenKind::Ident(name) if matches!(&**name, "asm" | "__asm__" | "__asm") => {
                // Inline assembly: skip qualifiers and the balanced
                // operand group; the analyses treat it as opaque.
                self.pos += 1;
                while self.at_keyword(Keyword::Volatile)
                    || self.at_keyword(Keyword::Goto)
                    || self.at_keyword(Keyword::Inline)
                {
                    self.pos += 1;
                }
                if self.at_punct(Punct::LParen) {
                    self.skip_balanced(Punct::LParen, Punct::RParen);
                }
                self.eat_punct(Punct::Semi);
                Stmt {
                    span: start.join(self.cur_span()),
                    kind: StmtKind::Empty,
                }
            }
            TokenKind::Ident(name) => {
                // Label: `name:` not followed by another `:` (to dodge
                // the rare `a ? b : c` misparse at statement start).
                if self
                    .peek_at(1)
                    .is_some_and(|t| t.kind.is_punct(Punct::Colon))
                {
                    let label = name.to_string();
                    self.pos += 2;
                    return Stmt {
                        span: start.join(self.cur_span()),
                        kind: StmtKind::Label(label),
                    };
                }
                // Macro loop (smartloop) detection.
                if let Some(stmt) = self.try_parse_macro_loop() {
                    return stmt;
                }
                // Declaration with an identifier type (`u32 x;`,
                // `spinlock_t *l;`) vs an expression statement.
                if self.stmt_looks_like_decl() {
                    let decls = self.parse_local_decl();
                    return Stmt {
                        span: start.join(self.cur_span()),
                        kind: StmtKind::Decl(decls),
                    };
                }
                let e = self.parse_expr();
                self.eat_punct(Punct::Semi);
                Stmt {
                    span: start.join(self.cur_span()),
                    kind: StmtKind::Expr(e),
                }
            }
            _ => {
                let e = self.parse_expr();
                self.eat_punct(Punct::Semi);
                Stmt {
                    span: start.join(self.cur_span()),
                    kind: StmtKind::Expr(e),
                }
            }
        }
    }

    /// Parses the init clause of a `for`: declaration or expression,
    /// consuming the trailing `;`.
    fn parse_simple_stmt_for_init(&mut self) -> Stmt {
        let start = self.cur_span();
        let is_decl = match self.peek().map(|t| &t.kind) {
            Some(TokenKind::Keyword(k)) => k.is_decl_specifier(),
            Some(TokenKind::Ident(_)) => self.stmt_looks_like_decl(),
            _ => false,
        };
        if is_decl {
            let decls = self.parse_local_decl();
            Stmt {
                span: start.join(self.cur_span()),
                kind: StmtKind::Decl(decls),
            }
        } else {
            let e = self.parse_expr();
            self.eat_punct(Punct::Semi);
            Stmt {
                span: start.join(self.cur_span()),
                kind: StmtKind::Expr(e),
            }
        }
    }

    /// Lookahead heuristic: does the statement starting at an identifier
    /// look like a declaration (`type name ...`)?
    fn stmt_looks_like_decl(&self) -> bool {
        // Pattern: Ident (Ident | `*`+ Ident) (`;` | `=` | `,` | `[` | `(`).
        let mut off = 1usize;
        let mut stars = 0usize;
        while self
            .peek_at(off)
            .is_some_and(|t| t.kind.is_punct(Punct::Star))
        {
            stars += 1;
            off += 1;
        }
        let Some(t) = self.peek_at(off) else {
            return false;
        };
        if !matches!(t.kind, TokenKind::Ident(_)) {
            return false;
        }
        match self.peek_at(off + 1).map(|t| &t.kind) {
            Some(TokenKind::Punct(Punct::Semi))
            | Some(TokenKind::Punct(Punct::Assign))
            | Some(TokenKind::Punct(Punct::Comma))
            | Some(TokenKind::Punct(Punct::LBracket)) => true,
            // `type name;` with no stars could also be `a b;` nonsense;
            // accept as declaration either way.
            _ => {
                // `ident ident ident` (e.g. annotated types) — too
                // ambiguous; only accept with stars.
                stars == 0
                    && matches!(
                        self.peek_at(off + 1).map(|t| &t.kind),
                        Some(TokenKind::Ident(_))
                    )
            }
        }
    }

    /// Parses a local declaration statement, returning one
    /// [`Declaration`] per declarator. Consumes the trailing `;`.
    fn parse_local_decl(&mut self) -> Vec<Declaration> {
        let start = self.cur_span();
        let is_static = self.at_keyword(Keyword::Static);
        let ty = self.parse_type_specifiers();
        let mut out = Vec::new();
        loop {
            let dstart = self.cur_span();
            let mut pointer = 0u8;
            while self.eat_punct(Punct::Star) {
                pointer += 1;
                self.skip_type_qualifiers();
            }
            self.skip_annotations();
            let Some(name) = self.take_ident() else {
                // Unparseable declarator; recover to `;`.
                while !self.at_eof() && !self.at_punct(Punct::Semi) {
                    if self.at_punct(Punct::LBrace) {
                        self.skip_balanced(Punct::LBrace, Punct::RBrace);
                    } else {
                        self.pos += 1;
                    }
                }
                self.eat_punct(Punct::Semi);
                return out;
            };
            while self.at_punct(Punct::LBracket) {
                self.skip_balanced(Punct::LBracket, Punct::RBracket);
            }
            let init = if self.eat_punct(Punct::Assign) {
                Some(self.parse_initializer())
            } else {
                None
            };
            out.push(Declaration {
                name,
                ty: TypeName {
                    base: ty.base.clone(),
                    pointer,
                },
                init,
                is_static,
                span: dstart.join(self.cur_span()),
            });
            if !self.eat_punct(Punct::Comma) {
                break;
            }
        }
        self.eat_punct(Punct::Semi);
        let _ = start;
        out
    }

    /// Attempts to parse `name(args) { body }` or `for_each_x(args) stmt`
    /// as a macro loop. Returns `None` (cursor unchanged) if the shape
    /// does not match.
    fn try_parse_macro_loop(&mut self) -> Option<Stmt> {
        let save = self.pos;
        let start = self.cur_span();
        let name = match self.peek().and_then(|t| t.ident()) {
            Some(n) => n.to_string(),
            None => return None,
        };
        if !self
            .peek_at(1)
            .is_some_and(|t| t.kind.is_punct(Punct::LParen))
        {
            return None;
        }
        self.pos += 2; // Past `name (`.
        let mut args = Vec::new();
        if !self.at_punct(Punct::RParen) {
            loop {
                args.push(self.parse_assignment_expr());
                if !self.eat_punct(Punct::Comma) {
                    break;
                }
            }
        }
        if !self.eat_punct(Punct::RParen) {
            self.pos = save;
            return None;
        }
        // `name(args) { ... }` — always a macro loop shape.
        if self.at_punct(Punct::LBrace) {
            let block = self.parse_block();
            let span = start.join(self.cur_span());
            return Some(Stmt {
                kind: StmtKind::MacroLoop {
                    name,
                    args,
                    body: Box::new(Stmt {
                        span: block.span,
                        kind: StmtKind::Block(block),
                    }),
                },
                span,
            });
        }
        // `for_each_x(args) stmt;` — single-statement body, only for
        // loop-named macros (otherwise `foo(x);` is a plain call).
        let loopish = name.contains("for_each") || name.starts_with("foreach");
        if loopish && !self.at_punct(Punct::Semi) {
            let body = Box::new(self.parse_stmt());
            let span = start.join(self.cur_span());
            return Some(Stmt {
                kind: StmtKind::MacroLoop { name, args, body },
                span,
            });
        }
        self.pos = save;
        None
    }
}

/// Parses a standalone statement-list fragment (test convenience).
///
/// # Examples
///
/// ```
/// use refminer_cparse::parse_stmts_str;
///
/// let stmts = parse_stmts_str("x = 1; if (x) return;");
/// assert_eq!(stmts.len(), 2);
/// ```
pub fn parse_stmts_str(src: &str) -> Vec<Stmt> {
    let toks = refminer_clex::Lexer::new(src).tokenize();
    let mut p = Parser::new_for_fragment(toks);
    let mut out = Vec::new();
    while !p.at_eof() {
        let before = p.pos;
        out.push(p.parse_stmt());
        if p.pos == before {
            break;
        }
    }
    out
}

#[allow(unused)]
fn _unused(_e: &Expr) {}

//! Expression grammar: precedence climbing over the token cursor.

use refminer_clex::{Keyword, Punct, Span, TokenKind};

use crate::ast::{AssignOp, BinOp, Expr, ExprKind, PostOp, TypeName, UnOp};
use crate::parser::Parser;

impl Parser {
    /// Parses a full expression (including the comma operator).
    pub(crate) fn parse_expr(&mut self) -> Expr {
        let first = self.parse_assignment_expr();
        if !self.at_punct(Punct::Comma) {
            return first;
        }
        let start = first.span;
        let mut items = vec![first];
        while self.eat_punct(Punct::Comma) {
            items.push(self.parse_assignment_expr());
        }
        let span = start.join(self.cur_span());
        Expr {
            kind: ExprKind::Comma(items),
            span,
        }
    }

    /// Parses an assignment expression (no top-level comma).
    pub(crate) fn parse_assignment_expr(&mut self) -> Expr {
        let lhs = self.parse_ternary();
        let op = match self.peek().map(|t| &t.kind) {
            Some(TokenKind::Punct(Punct::Assign)) => Some(AssignOp::Assign),
            Some(TokenKind::Punct(Punct::PlusAssign)) => Some(AssignOp::Add),
            Some(TokenKind::Punct(Punct::MinusAssign)) => Some(AssignOp::Sub),
            Some(TokenKind::Punct(Punct::StarAssign)) => Some(AssignOp::Mul),
            Some(TokenKind::Punct(Punct::SlashAssign)) => Some(AssignOp::Div),
            Some(TokenKind::Punct(Punct::PercentAssign)) => Some(AssignOp::Rem),
            Some(TokenKind::Punct(Punct::ShlAssign)) => Some(AssignOp::Shl),
            Some(TokenKind::Punct(Punct::ShrAssign)) => Some(AssignOp::Shr),
            Some(TokenKind::Punct(Punct::AmpAssign)) => Some(AssignOp::BitAnd),
            Some(TokenKind::Punct(Punct::CaretAssign)) => Some(AssignOp::BitXor),
            Some(TokenKind::Punct(Punct::PipeAssign)) => Some(AssignOp::BitOr),
            _ => None,
        };
        let Some(op) = op else { return lhs };
        self.pos += 1;
        // `a = b = c = ...` recurses without passing `parse_unary`, so
        // the chain carries its own depth charge.
        let rhs = if self.enter_depth() {
            let r = self.parse_assignment_expr();
            self.leave_depth();
            r
        } else {
            let span = self.cur_span();
            self.bump();
            Expr {
                kind: ExprKind::Unknown,
                span,
            }
        };
        let span = lhs.span.join(rhs.span);
        Expr {
            kind: ExprKind::Assign {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            },
            span,
        }
    }

    fn parse_ternary(&mut self) -> Expr {
        let cond = self.parse_binary(0);
        if !self.eat_punct(Punct::Question) {
            return cond;
        }
        // gcc extension `a ?: b`. Both arms recurse without passing
        // `parse_unary`, so `a ? a ? ... : b : b` chains carry their
        // own depth charge.
        let then = if self.at_punct(Punct::Colon) {
            cond.clone()
        } else if self.enter_depth() {
            let t = self.parse_expr();
            self.leave_depth();
            t
        } else {
            let span = self.cur_span();
            self.bump();
            Expr {
                kind: ExprKind::Unknown,
                span,
            }
        };
        self.expect_punct(Punct::Colon);
        let els = if self.enter_depth() {
            let e = self.parse_assignment_expr();
            self.leave_depth();
            e
        } else {
            let span = self.cur_span();
            self.bump();
            Expr {
                kind: ExprKind::Unknown,
                span,
            }
        };
        let span = cond.span.join(els.span);
        Expr {
            kind: ExprKind::Ternary {
                cond: Box::new(cond),
                then: Box::new(then),
                els: Box::new(els),
            },
            span,
        }
    }

    /// Precedence-climbing binary expression parser. `min_bp` is the
    /// minimum binding power to accept.
    fn parse_binary(&mut self, min_bp: u8) -> Expr {
        let mut lhs = self.parse_unary();
        // The loop builds a left-deep tree with no parser recursion, so
        // each wrap layer is charged against the depth budget; past the
        // cap the operand is still consumed but the node is dropped.
        let mut held = 0usize;
        while let Some((op, bp)) = self.peek_binop() {
            if bp < min_bp {
                break;
            }
            self.pos += 1;
            let rhs = self.parse_binary(bp + 1);
            if self.enter_depth() {
                held += 1;
                let span = lhs.span.join(rhs.span);
                lhs = Expr {
                    kind: ExprKind::Binary {
                        op,
                        lhs: Box::new(lhs),
                        rhs: Box::new(rhs),
                    },
                    span,
                };
            }
        }
        for _ in 0..held {
            self.leave_depth();
        }
        lhs
    }

    fn peek_binop(&self) -> Option<(BinOp, u8)> {
        use BinOp::*;
        let p = match self.peek().map(|t| &t.kind)? {
            TokenKind::Punct(p) => *p,
            _ => return None,
        };
        Some(match p {
            Punct::OrOr => (Or, 1),
            Punct::AndAnd => (And, 2),
            Punct::Pipe => (BitOr, 3),
            Punct::Caret => (BitXor, 4),
            Punct::Amp => (BitAnd, 5),
            Punct::Eq => (Eq, 6),
            Punct::Ne => (Ne, 6),
            Punct::Lt => (Lt, 7),
            Punct::Gt => (Gt, 7),
            Punct::Le => (Le, 7),
            Punct::Ge => (Ge, 7),
            Punct::Shl => (Shl, 8),
            Punct::Shr => (Shr, 8),
            Punct::Plus => (Add, 9),
            Punct::Minus => (Sub, 9),
            Punct::Star => (Mul, 10),
            Punct::Slash => (Div, 10),
            Punct::Percent => (Rem, 10),
            _ => return None,
        })
    }

    /// Every expression-grammar cycle passes through here, so this is
    /// where the recursion-depth guard lives: at the cap, one token is
    /// consumed (guaranteeing progress) and an `Unknown` node returned.
    fn parse_unary(&mut self) -> Expr {
        if !self.enter_depth() {
            let span = self.cur_span();
            self.bump();
            return Expr {
                kind: ExprKind::Unknown,
                span,
            };
        }
        let e = self.parse_unary_inner();
        self.leave_depth();
        e
    }

    fn parse_unary_inner(&mut self) -> Expr {
        let start = self.cur_span();
        let op = match self.peek().map(|t| &t.kind) {
            Some(TokenKind::Punct(Punct::Star)) => Some(UnOp::Deref),
            Some(TokenKind::Punct(Punct::Amp)) => Some(UnOp::AddrOf),
            Some(TokenKind::Punct(Punct::Minus)) => Some(UnOp::Neg),
            Some(TokenKind::Punct(Punct::Plus)) => Some(UnOp::Plus),
            Some(TokenKind::Punct(Punct::Not)) => Some(UnOp::Not),
            Some(TokenKind::Punct(Punct::Tilde)) => Some(UnOp::BitNot),
            Some(TokenKind::Punct(Punct::Inc)) => Some(UnOp::PreInc),
            Some(TokenKind::Punct(Punct::Dec)) => Some(UnOp::PreDec),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let operand = self.parse_unary();
            let span = start.join(operand.span);
            return Expr {
                kind: ExprKind::Unary {
                    op,
                    operand: Box::new(operand),
                },
                span,
            };
        }
        if self.at_keyword(Keyword::Sizeof) {
            self.pos += 1;
            if self.at_punct(Punct::LParen) && self.looks_like_type_paren() {
                let ty = self.parse_paren_type();
                let span = start.join(self.cur_span());
                return Expr {
                    kind: ExprKind::SizeofType(ty),
                    span,
                };
            }
            let operand = self.parse_unary();
            let span = start.join(operand.span);
            return Expr {
                kind: ExprKind::Sizeof(Box::new(operand)),
                span,
            };
        }
        // Cast: `(type) unary-expr`.
        if self.at_punct(Punct::LParen) && self.looks_like_type_paren() {
            let save = self.pos;
            let ty = self.parse_paren_type();
            // A compound literal `(type){...}` or a following operand.
            if self.at_punct(Punct::LBrace) {
                let items = self.parse_brace_expr_list();
                let span = start.join(self.cur_span());
                return Expr {
                    kind: ExprKind::Cast {
                        ty,
                        expr: Box::new(Expr {
                            kind: ExprKind::InitList(items),
                            span,
                        }),
                    },
                    span,
                };
            }
            if self.starts_operand() {
                let expr = self.parse_unary();
                let span = start.join(expr.span);
                return Expr {
                    kind: ExprKind::Cast {
                        ty,
                        expr: Box::new(expr),
                    },
                    span,
                };
            }
            // Not a cast after all; rewind and parse as parenthesized.
            self.pos = save;
        }
        self.parse_postfix()
    }

    /// Whether the current token can start an operand expression.
    fn starts_operand(&self) -> bool {
        match self.peek().map(|t| &t.kind) {
            Some(TokenKind::Ident(_))
            | Some(TokenKind::IntLit { .. })
            | Some(TokenKind::FloatLit(_))
            | Some(TokenKind::StrLit(_))
            | Some(TokenKind::CharLit(_)) => true,
            Some(TokenKind::Keyword(Keyword::Sizeof)) => true,
            Some(TokenKind::Punct(p)) => matches!(
                p,
                Punct::LParen
                    | Punct::Star
                    | Punct::Amp
                    | Punct::Minus
                    | Punct::Plus
                    | Punct::Not
                    | Punct::Tilde
                    | Punct::Inc
                    | Punct::Dec
            ),
            _ => false,
        }
    }

    /// Heuristic: does the `( ... )` group at the cursor contain a type?
    fn looks_like_type_paren(&self) -> bool {
        let mut off = 1usize;
        let mut saw_word = false;
        loop {
            match self.peek_at(off).map(|t| &t.kind) {
                Some(TokenKind::Keyword(
                    k @ (Keyword::Struct | Keyword::Union | Keyword::Enum),
                )) => {
                    let _ = k;
                    saw_word = true;
                    off += 1;
                    // The tag identifier belongs to the type.
                    if matches!(
                        self.peek_at(off).map(|t| &t.kind),
                        Some(TokenKind::Ident(_))
                    ) {
                        off += 1;
                    }
                }
                Some(TokenKind::Keyword(k)) if k.is_type_start() => {
                    saw_word = true;
                    off += 1;
                }
                Some(TokenKind::Keyword(Keyword::Typeof)) => return true,
                Some(TokenKind::Ident(name)) => {
                    // Unknown single identifier: a type only if `_t`-ish
                    // or followed by `*` then `)`.
                    if saw_word {
                        return false;
                    }
                    let tyish = name.ends_with("_t")
                        || matches!(
                            &**name,
                            "u8" | "u16"
                                | "u32"
                                | "u64"
                                | "s8"
                                | "s16"
                                | "s32"
                                | "s64"
                                | "uintptr_t"
                                | "intptr_t"
                        );
                    saw_word = true;
                    if !tyish {
                        // Look for `ident * )` or `ident * *` patterns.
                        let mut j = off + 1;
                        let mut stars = 0;
                        while self
                            .peek_at(j)
                            .is_some_and(|t| t.kind.is_punct(Punct::Star))
                        {
                            stars += 1;
                            j += 1;
                        }
                        return stars > 0
                            && self
                                .peek_at(j)
                                .is_some_and(|t| t.kind.is_punct(Punct::RParen));
                    }
                    off += 1;
                }
                Some(TokenKind::Punct(Punct::Star)) => {
                    off += 1;
                }
                Some(TokenKind::Punct(Punct::RParen)) => return saw_word,
                _ => return false,
            }
        }
    }

    /// Parses `( type )`, cursor on `(`.
    fn parse_paren_type(&mut self) -> TypeName {
        self.expect_punct(Punct::LParen);
        let base = self.parse_type_specifiers();
        let mut pointer = 0u8;
        while self.eat_punct(Punct::Star) {
            pointer += 1;
            self.skip_type_qualifiers();
        }
        // Tolerate abstract declarator noise up to `)`.
        while !self.at_eof() && !self.at_punct(Punct::RParen) {
            if self.at_punct(Punct::LParen) {
                self.skip_balanced(Punct::LParen, Punct::RParen);
            } else if self.at_punct(Punct::LBracket) {
                self.skip_balanced(Punct::LBracket, Punct::RBracket);
            } else {
                self.pos += 1;
            }
        }
        self.eat_punct(Punct::RParen);
        TypeName {
            base: base.base,
            pointer,
        }
    }

    #[allow(clippy::while_let_loop)] // The match needs the cursor back.
    fn parse_postfix(&mut self) -> Expr {
        let mut e = self.parse_primary();
        // Like `parse_binary`, this loop nests the AST with no parser
        // recursion (`f(x)(y)(z)...`, `a.b.c...`), so every wrap layer
        // is charged against the depth budget. Past the cap the
        // operand tokens are still consumed — recovery on hostile
        // input lands long `(`-runs here — but the node is dropped.
        let mut held = 0usize;
        loop {
            let Some(t) = self.peek() else { break };
            match &t.kind {
                TokenKind::Punct(Punct::LParen) => {
                    self.pos += 1;
                    let mut args = Vec::new();
                    if !self.at_punct(Punct::RParen) {
                        loop {
                            args.push(self.parse_assignment_expr());
                            if !self.eat_punct(Punct::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect_punct(Punct::RParen);
                    if self.enter_depth() {
                        held += 1;
                        let span = e.span.join(self.cur_span());
                        e = Expr {
                            kind: ExprKind::Call {
                                callee: Box::new(e),
                                args,
                            },
                            span,
                        };
                    }
                }
                TokenKind::Punct(Punct::LBracket) => {
                    self.pos += 1;
                    let index = self.parse_expr();
                    self.expect_punct(Punct::RBracket);
                    if self.enter_depth() {
                        held += 1;
                        let span = e.span.join(self.cur_span());
                        e = Expr {
                            kind: ExprKind::Index {
                                base: Box::new(e),
                                index: Box::new(index),
                            },
                            span,
                        };
                    }
                }
                TokenKind::Punct(Punct::Dot) | TokenKind::Punct(Punct::Arrow) => {
                    let arrow = t.kind.is_punct(Punct::Arrow);
                    self.pos += 1;
                    let field = self.take_ident().unwrap_or_default();
                    if self.enter_depth() {
                        held += 1;
                        let span = e.span.join(self.cur_span());
                        e = Expr {
                            kind: ExprKind::Member {
                                base: Box::new(e),
                                field,
                                arrow,
                            },
                            span,
                        };
                    }
                }
                TokenKind::Punct(Punct::Inc) => {
                    self.pos += 1;
                    if self.enter_depth() {
                        held += 1;
                        let span = e.span.join(self.cur_span());
                        e = Expr {
                            kind: ExprKind::Postfix {
                                op: PostOp::Inc,
                                operand: Box::new(e),
                            },
                            span,
                        };
                    }
                }
                TokenKind::Punct(Punct::Dec) => {
                    self.pos += 1;
                    if self.enter_depth() {
                        held += 1;
                        let span = e.span.join(self.cur_span());
                        e = Expr {
                            kind: ExprKind::Postfix {
                                op: PostOp::Dec,
                                operand: Box::new(e),
                            },
                            span,
                        };
                    }
                }
                _ => break,
            }
        }
        for _ in 0..held {
            self.leave_depth();
        }
        e
    }

    fn parse_primary(&mut self) -> Expr {
        let span = self.cur_span();
        let Some(t) = self.peek() else {
            return Expr {
                kind: ExprKind::Unknown,
                span,
            };
        };
        match &t.kind {
            TokenKind::Ident(name) => {
                let name = name.to_string();
                self.pos += 1;
                Expr {
                    kind: ExprKind::Ident(name),
                    span,
                }
            }
            TokenKind::IntLit { value, .. } => {
                let v = *value;
                self.pos += 1;
                Expr {
                    kind: ExprKind::IntLit(v),
                    span,
                }
            }
            TokenKind::FloatLit(raw) => {
                let raw = raw.clone();
                self.pos += 1;
                Expr {
                    kind: ExprKind::FloatLit(raw),
                    span,
                }
            }
            TokenKind::StrLit(s) => {
                // Adjacent string literal concatenation.
                let mut text = s.clone();
                self.pos += 1;
                while let Some(TokenKind::StrLit(next)) = self.peek().map(|t| &t.kind) {
                    text.push_str(next);
                    self.pos += 1;
                }
                Expr {
                    kind: ExprKind::StrLit(text),
                    span: span.join(self.cur_span()),
                }
            }
            TokenKind::CharLit(s) => {
                let s = s.clone();
                self.pos += 1;
                Expr {
                    kind: ExprKind::CharLit(s),
                    span,
                }
            }
            TokenKind::Punct(Punct::LParen) => {
                // Statement expression `({ ... })`.
                if self
                    .peek_at(1)
                    .is_some_and(|t| t.kind.is_punct(Punct::LBrace))
                {
                    self.pos += 1;
                    let block = self.parse_block();
                    self.expect_punct(Punct::RParen);
                    return Expr {
                        kind: ExprKind::StmtExpr(block),
                        span: span.join(self.cur_span()),
                    };
                }
                self.pos += 1;
                let inner = self.parse_expr();
                self.expect_punct(Punct::RParen);
                inner
            }
            TokenKind::Punct(Punct::LBrace) => {
                // Brace list in expression position (rare; initializer
                // context mostly handles this path).
                let items = self.parse_brace_expr_list();
                Expr {
                    kind: ExprKind::InitList(items),
                    span: span.join(self.cur_span()),
                }
            }
            TokenKind::Keyword(Keyword::Sizeof) => {
                // Reached via parse_unary normally; degrade gracefully.
                self.pos += 1;
                Expr {
                    kind: ExprKind::Unknown,
                    span,
                }
            }
            _ => {
                self.errors
                    .push(crate::error::ParseError::UnexpectedToken { span });
                self.pos += 1;
                Expr {
                    kind: ExprKind::Unknown,
                    span,
                }
            }
        }
    }

    /// Parses `{ [.name =] expr, ... }` in expression position.
    /// Guarded: nested brace lists recurse here without passing through
    /// `parse_unary`, so the depth cap is checked again.
    fn parse_brace_expr_list(&mut self) -> Vec<(Option<String>, Box<Expr>)> {
        if !self.enter_depth() {
            if self.at_punct(Punct::LBrace) {
                self.skip_balanced(Punct::LBrace, Punct::RBrace);
            }
            return Vec::new();
        }
        let items = self.parse_brace_expr_list_inner();
        self.leave_depth();
        items
    }

    fn parse_brace_expr_list_inner(&mut self) -> Vec<(Option<String>, Box<Expr>)> {
        self.expect_punct(Punct::LBrace);
        let mut items = Vec::new();
        while !self.at_eof() && !self.at_punct(Punct::RBrace) {
            let designator = if self.at_punct(Punct::Dot) {
                self.pos += 1;
                let n = self.take_ident();
                self.eat_punct(Punct::Assign);
                n
            } else {
                None
            };
            let e = if self.at_punct(Punct::LBrace) {
                let items = self.parse_brace_expr_list();
                let span = self.cur_span();
                Expr {
                    kind: ExprKind::InitList(items),
                    span,
                }
            } else {
                self.parse_assignment_expr()
            };
            items.push((designator, Box::new(e)));
            if !self.eat_punct(Punct::Comma) {
                break;
            }
        }
        self.eat_punct(Punct::RBrace);
        items
    }
}

/// Parses a standalone expression string (test/tooling convenience).
///
/// # Examples
///
/// ```
/// use refminer_cparse::parse_expr_str;
///
/// let e = parse_expr_str("dev->kobj.kref");
/// assert_eq!(e.root_var(), Some("dev"));
/// ```
pub fn parse_expr_str(src: &str) -> Expr {
    let toks = refminer_clex::Lexer::new(src).tokenize();
    let mut p = Parser::new_for_fragment(toks);
    p.parse_expr()
}

#[allow(unused)]
fn _span_dummy() -> Span {
    Span::default()
}

//! # refminer-cparse
//!
//! An error-tolerant recursive-descent parser for kernel-style C.
//!
//! The parser produces per-function ASTs without a preprocessor, symbol
//! table, or type checker — exactly the trade the SOSP '23 refcounting
//! study makes (§6.1): the Linux tree cannot be compiled whole, so the
//! analyses run on syntax plus heuristics. Two kernel-specific features
//! matter for refcounting analysis and are first-class here:
//!
//! - **Smartloops** — `for_each_*(...) { ... }` macro loops are parsed
//!   as [`StmtKind::MacroLoop`] without expansion, so the checkers can
//!   reason about iteration-embedded refcounting (Anti-Pattern 3).
//! - **Designated initializers** — driver ops tables
//!   (`.probe = foo_probe, .remove = foo_remove`) survive into
//!   [`Initializer::List`], enabling inter-paired API analysis
//!   (Anti-Pattern 6).
//!
//! # Examples
//!
//! ```
//! use refminer_cparse::{parse_str, StmtKind};
//!
//! let tu = parse_str(
//!     "drivers/soc/pm.c",
//!     r#"
//!     static int brcmstb_pm_probe(struct platform_device *pdev)
//!     {
//!             struct device_node *dn;
//!             for_each_matching_node(dn, sram_dt_ids) {
//!                     if (!dn)
//!                             break;
//!             }
//!             return 0;
//!     }
//!     "#,
//! );
//! let f = tu.function("brcmstb_pm_probe").unwrap();
//! let mut saw_loop = false;
//! f.body.stmts.iter().for_each(|s| {
//!     s.walk(&mut |s| {
//!         if let StmtKind::MacroLoop { name, .. } = &s.kind {
//!             assert_eq!(name, "for_each_matching_node");
//!             saw_loop = true;
//!         }
//!     })
//! });
//! assert!(saw_loop);
//! ```

mod ast;
mod error;
mod expr;
mod parser;
mod stmt;

pub use ast::{
    AssignOp, BinOp, Block, Declaration, EnumDef, Expr, ExprKind, Field, FunctionDef, Initializer,
    Item, Param, PostOp, Prototype, Stmt, StmtKind, StructDef, TranslationUnit, TypeName, Typedef,
    UnOp,
};
pub use error::ParseError;
pub use expr::parse_expr_str;
pub use parser::{parse_str, parse_str_limited, parse_str_with_errors, ParseLimits, ParseOutcome};
pub use stmt::parse_stmts_str;

//! Parser tests against realistic kernel-style C snippets, including the
//! exact listings from the paper.

use refminer_cparse::{
    parse_expr_str, parse_stmts_str, parse_str, parse_str_with_errors, ExprKind, Initializer, Item,
    StmtKind,
};

#[test]
fn parses_listing_1_nvmem_get() {
    // Listing 1 of the paper (missing-refcounting bug shape).
    let src = r#"
struct nvmem_device *__nvmem_device_get(struct device_node *np)
{
        struct device *dev;
        dev = bus_find_device(&nvmem_bus_type, NULL, np, of_nvmem_match);
        if (!dev)
                return ERR_PTR(-EPROBE_DEFER);
        return to_nvmem_device(dev);
}
"#;
    let tu = parse_str("drivers/nvmem/core.c", src);
    let f = tu.function("__nvmem_device_get").expect("function parsed");
    assert_eq!(f.ret.base, "struct nvmem_device");
    assert_eq!(f.ret.pointer, 1);
    assert_eq!(f.params.len(), 1);
    assert_eq!(f.params[0].ty.base, "struct device_node");
    // The body must contain the bus_find_device call.
    let mut found = false;
    for s in &f.body.stmts {
        s.walk_exprs(&mut |e| {
            if let Some(("bus_find_device", _)) = e.as_direct_call() {
                found = true;
            }
        });
    }
    assert!(found, "bus_find_device call not found in AST");
}

#[test]
fn parses_listing_2_usb_console() {
    // Listing 2 of the paper (misplacing-refcounting bug shape).
    let src = r#"
static int usb_console_setup(struct console *co, char *options)
{
        usb_serial_put(serial);
        mutex_unlock(&serial->disc_mutex);
        return retval;
}
"#;
    let tu = parse_str("drivers/usb/serial/console.c", src);
    let f = tu.function("usb_console_setup").unwrap();
    assert!(f.is_static);
    assert_eq!(f.body.stmts.len(), 3);
    match &f.body.stmts[1].kind {
        StmtKind::Expr(e) => {
            let (name, args) = e.as_direct_call().unwrap();
            assert_eq!(name, "mutex_unlock");
            assert_eq!(args[0].root_var(), Some("serial"));
        }
        other => panic!("expected expression statement, got {other:?}"),
    }
}

#[test]
fn parses_listing_3_pm_runtime() {
    let src = r#"
static int stm32_crc_remove(struct platform_device *pdev)
{
        struct stm32_crc *crc = platform_get_drvdata(pdev);
        int ret = pm_runtime_get_sync(crc->dev);
        if (ret < 0)
                return ret;
        return 0;
}
"#;
    let tu = parse_str("drivers/crypto/stm32/stm32-crc32.c", src);
    let f = tu.function("stm32_crc_remove").unwrap();
    // First two statements are declarations with call initializers.
    match &f.body.stmts[1].kind {
        StmtKind::Decl(decls) => {
            assert_eq!(decls[0].name, "ret");
            match &decls[0].init {
                Some(Initializer::Expr(e)) => {
                    assert_eq!(e.as_direct_call().unwrap().0, "pm_runtime_get_sync");
                }
                other => panic!("expected call initializer, got {other:?}"),
            }
        }
        other => panic!("expected declaration, got {other:?}"),
    }
    // Then the early-return error check.
    match &f.body.stmts[2].kind {
        StmtKind::If { cond, then, .. } => {
            assert!(matches!(cond.kind, ExprKind::Binary { .. }));
            assert!(matches!(then.kind, StmtKind::Return(Some(_))));
        }
        other => panic!("expected if, got {other:?}"),
    }
}

#[test]
fn parses_listing_4_smartloop() {
    let src = r#"
static int brcmstb_pm_probe(struct platform_device *pdev)
{
        struct device_node *dn;
        for_each_matching_node(dn, sram_dt_ids) {
                ctrl.memcs[i] = of_iomap(dn, 0);
                if (!ctrl.memcs[i])
                        break;
        }
        return 0;
}
"#;
    let tu = parse_str("drivers/soc/bcm/brcmstb/pm/pm-arm.c", src);
    let f = tu.function("brcmstb_pm_probe").unwrap();
    let mut loops = 0;
    let mut breaks = 0;
    for s in &f.body.stmts {
        s.walk(&mut |s| match &s.kind {
            StmtKind::MacroLoop { name, args, .. } => {
                assert_eq!(name, "for_each_matching_node");
                assert_eq!(args.len(), 2);
                assert_eq!(args[0].as_ident(), Some("dn"));
                loops += 1;
            }
            StmtKind::Break => breaks += 1,
            _ => {}
        });
    }
    assert_eq!(loops, 1);
    assert_eq!(breaks, 1);
}

#[test]
fn parses_goto_error_labels() {
    let src = r#"
int foo_probe(struct platform_device *pdev)
{
        int ret;
        np = of_find_node_by_name(NULL, "codec");
        if (!np)
                goto err_put;
        ret = register_thing(np);
        if (ret)
                goto err_put;
        return 0;
err_put:
        of_node_put(np);
        return ret;
}
"#;
    let tu = parse_str("t.c", src);
    let f = tu.function("foo_probe").unwrap();
    let mut gotos = 0;
    let mut labels = Vec::new();
    for s in &f.body.stmts {
        s.walk(&mut |s| match &s.kind {
            StmtKind::Goto(l) => {
                assert_eq!(l, "err_put");
                gotos += 1;
            }
            StmtKind::Label(l) => labels.push(l.clone()),
            _ => {}
        });
    }
    assert_eq!(gotos, 2);
    assert_eq!(labels, vec!["err_put".to_string()]);
}

#[test]
fn parses_driver_ops_table() {
    let src = r#"
static const struct platform_driver foo_driver = {
        .probe = foo_probe,
        .remove = foo_remove,
        .driver = {
                .name = "foo",
                .of_match_table = foo_dt_ids,
        },
};
"#;
    let tu = parse_str("t.c", src);
    let g = tu.globals().next().expect("global parsed");
    assert_eq!(g.name, "foo_driver");
    assert_eq!(g.ty.base, "struct platform_driver");
    let init = g.init.as_ref().unwrap();
    assert_eq!(
        init.designated("probe").and_then(|i| i.as_ident()),
        Some("foo_probe")
    );
    assert_eq!(
        init.designated("remove").and_then(|i| i.as_ident()),
        Some("foo_remove")
    );
    // Nested list.
    assert!(matches!(
        init.designated("driver"),
        Some(Initializer::List(_))
    ));
}

#[test]
fn parses_struct_with_refcount_field() {
    let src = r#"
struct nvmem_device {
        struct device dev;
        struct kref refcnt;
        int users;
        void __iomem *base;
        int (*reg_read)(void *priv, unsigned int offset);
};
"#;
    let tu = parse_str("t.h", src);
    let s = tu.structs().next().unwrap();
    assert_eq!(s.name.as_deref(), Some("nvmem_device"));
    let names: Vec<_> = s.fields.iter().map(|f| f.name.as_str()).collect();
    assert!(names.contains(&"refcnt"));
    assert!(names.contains(&"base"));
    assert!(names.contains(&"reg_read"));
    let refcnt = s.fields.iter().find(|f| f.name == "refcnt").unwrap();
    assert_eq!(refcnt.ty.base, "struct kref");
}

#[test]
fn parses_typedefs_and_enums() {
    let src = r#"
typedef unsigned int gfp_t;
typedef struct kobject *kobj_ptr_t;
enum probe_state { PROBE_IDLE, PROBE_BUSY = 2, PROBE_DONE };
"#;
    let tu = parse_str("t.h", src);
    let mut typedefs = 0;
    let mut enums = 0;
    for item in &tu.items {
        match item {
            Item::Typedef(t) => {
                typedefs += 1;
                assert!(t.name == "gfp_t" || t.name == "kobj_ptr_t");
            }
            Item::Enum(e) => {
                enums += 1;
                assert_eq!(e.variants, vec!["PROBE_IDLE", "PROBE_BUSY", "PROBE_DONE"]);
            }
            _ => {}
        }
    }
    assert_eq!(typedefs, 2);
    assert_eq!(enums, 1);
}

#[test]
fn skips_module_macros() {
    let src = r#"
MODULE_LICENSE("GPL");
MODULE_AUTHOR("someone");
module_platform_driver(foo_driver);
static int x;
"#;
    let tu = parse_str("t.c", src);
    assert_eq!(tu.globals().count(), 1);
    assert_eq!(tu.globals().next().unwrap().name, "x");
}

#[test]
fn recovers_from_garbage() {
    let src = r#"
int good_one(void) { return 1; }
@@@ total garbage $$$ ;
int good_two(void) { return 2; }
"#;
    let (tu, _errors) = parse_str_with_errors("t.c", src);
    assert!(tu.function("good_one").is_some());
    assert!(tu.function("good_two").is_some());
}

#[test]
fn expression_precedence() {
    let e = parse_expr_str("a + b * c");
    match e.kind {
        ExprKind::Binary { op, rhs, .. } => {
            assert_eq!(op, refminer_cparse::BinOp::Add);
            assert!(matches!(rhs.kind, ExprKind::Binary { .. }));
        }
        other => panic!("expected binary, got {other:?}"),
    }
}

#[test]
fn expression_ternary_and_assign() {
    let e = parse_expr_str("x = a ? b : c");
    match e.kind {
        ExprKind::Assign { rhs, .. } => {
            assert!(matches!(rhs.kind, ExprKind::Ternary { .. }));
        }
        other => panic!("expected assign, got {other:?}"),
    }
}

#[test]
fn expression_casts() {
    let e = parse_expr_str("(struct device *)ptr");
    match e.kind {
        ExprKind::Cast { ty, .. } => {
            assert_eq!(ty.base, "struct device");
            assert_eq!(ty.pointer, 1);
        }
        other => panic!("expected cast, got {other:?}"),
    }
}

#[test]
fn expression_not_a_cast() {
    // `(a) + b` — parenthesized expression, not a cast.
    let e = parse_expr_str("(a) + b");
    assert!(matches!(
        e.kind,
        ExprKind::Binary {
            op: refminer_cparse::BinOp::Add,
            ..
        }
    ));
}

#[test]
fn expression_address_and_member() {
    let e = parse_expr_str("&serial->disc_mutex");
    assert_eq!(e.root_var(), Some("serial"));
    match &e.kind {
        ExprKind::Unary { op, operand } => {
            assert_eq!(*op, refminer_cparse::UnOp::AddrOf);
            assert!(matches!(operand.kind, ExprKind::Member { .. }));
        }
        other => panic!("expected unary, got {other:?}"),
    }
}

#[test]
fn statement_switch_and_case() {
    let stmts = parse_stmts_str("switch (mode) { case 1: x = 1; break; default: x = 0; }");
    match &stmts[0].kind {
        StmtKind::Switch { body, .. } => {
            let mut cases = 0;
            let mut defaults = 0;
            body.walk(&mut |s| match &s.kind {
                StmtKind::Case(_) => cases += 1,
                StmtKind::Default => defaults += 1,
                _ => {}
            });
            assert_eq!(cases, 1);
            assert_eq!(defaults, 1);
        }
        other => panic!("expected switch, got {other:?}"),
    }
}

#[test]
fn statement_do_while() {
    let stmts = parse_stmts_str("do { x++; } while (x < 10);");
    assert!(matches!(stmts[0].kind, StmtKind::DoWhile { .. }));
}

#[test]
fn statement_for_with_decl_init() {
    let stmts = parse_stmts_str("for (int i = 0; i < n; i++) sum += i;");
    match &stmts[0].kind {
        StmtKind::For {
            init, cond, step, ..
        } => {
            assert!(matches!(
                init.as_deref().map(|s| &s.kind),
                Some(StmtKind::Decl(_))
            ));
            assert!(cond.is_some());
            assert!(step.is_some());
        }
        other => panic!("expected for, got {other:?}"),
    }
}

#[test]
fn declaration_vs_expression_heuristic() {
    // Pointer declaration.
    let stmts = parse_stmts_str("struct device_node *np = NULL;");
    assert!(matches!(&stmts[0].kind, StmtKind::Decl(d) if d[0].name == "np"));
    // Typedef-name declaration.
    let stmts = parse_stmts_str("u32 reg;");
    assert!(matches!(&stmts[0].kind, StmtKind::Decl(d) if d[0].name == "reg"));
    // Plain call expression.
    let stmts = parse_stmts_str("of_node_put(np);");
    assert!(matches!(&stmts[0].kind, StmtKind::Expr(_)));
    // Assignment expression.
    let stmts = parse_stmts_str("np = of_find_node_by_name(NULL, \"x\");");
    assert!(matches!(&stmts[0].kind, StmtKind::Expr(_)));
}

#[test]
fn multi_declarator_locals() {
    let stmts = parse_stmts_str("int a = 1, *b, c[4];");
    match &stmts[0].kind {
        StmtKind::Decl(decls) => {
            assert_eq!(decls.len(), 3);
            assert_eq!(decls[0].name, "a");
            assert_eq!(decls[1].name, "b");
            assert_eq!(decls[1].ty.pointer, 1);
            assert_eq!(decls[2].name, "c");
        }
        other => panic!("expected decl, got {other:?}"),
    }
}

#[test]
fn prototypes_are_kept() {
    let src = "extern struct device_node *of_find_node_by_name(struct device_node *from, const char *name);";
    let tu = parse_str("t.h", src);
    match &tu.items[0] {
        Item::Prototype(p) => {
            assert_eq!(p.name, "of_find_node_by_name");
            assert_eq!(p.ret.pointer, 1);
            assert_eq!(p.params.len(), 2);
        }
        other => panic!("expected prototype, got {other:?}"),
    }
}

#[test]
fn static_inline_header_function() {
    let src = r#"
static inline int pm_runtime_get_sync(struct device *dev)
{
        return __pm_runtime_resume(dev, RPM_GET_PUT);
}
"#;
    let tu = parse_str("include/linux/pm_runtime.h", src);
    let f = tu.function("pm_runtime_get_sync").unwrap();
    assert!(f.is_static);
    assert_eq!(f.params[0].name.as_deref(), Some("dev"));
}

#[test]
fn sizeof_forms() {
    let e = parse_expr_str("sizeof(struct device)");
    assert!(matches!(e.kind, ExprKind::SizeofType(_)));
    let e = parse_expr_str("sizeof x");
    assert!(matches!(e.kind, ExprKind::Sizeof(_)));
    let e = parse_expr_str("sizeof(*ptr)");
    assert!(matches!(e.kind, ExprKind::Sizeof(_)));
}

#[test]
fn gcc_statement_expression() {
    let stmts = parse_stmts_str("v = ({ int t = f(); t + 1; });");
    assert!(matches!(&stmts[0].kind, StmtKind::Expr(_)));
}

#[test]
fn attribute_soup_function() {
    let src = r#"
static int __init __attribute__((unused)) early_setup(void)
{
        return 0;
}
"#;
    let tu = parse_str("init/main.c", src);
    assert!(tu.function("early_setup").is_some());
}

#[test]
fn preprocessor_lines_ignored_in_functions() {
    let src = r#"
int f(void)
{
#ifdef CONFIG_OF
        of_node_put(np);
#endif
        return 0;
}
"#;
    let tu = parse_str("t.c", src);
    let f = tu.function("f").unwrap();
    let mut put_calls = 0;
    for s in &f.body.stmts {
        s.walk_exprs(&mut |e| {
            if let Some(("of_node_put", _)) = e.as_direct_call() {
                put_calls += 1;
            }
        });
    }
    assert_eq!(put_calls, 1);
}

#[test]
fn nested_if_else_chains() {
    let stmts = parse_stmts_str("if (a) x = 1; else if (b) x = 2; else { x = 3; y = 4; }");
    let mut if_count = 0;
    stmts[0].walk(&mut |s| {
        if matches!(s.kind, StmtKind::If { .. }) {
            if_count += 1;
        }
    });
    assert_eq!(if_count, 2);
}

#[test]
fn list_for_each_entry_single_stmt_body() {
    let stmts = parse_stmts_str(
        "list_for_each_entry(evt, &phba->ct_ev_waiters, node) lpfc_bsg_event_ref(evt);",
    );
    match &stmts[0].kind {
        StmtKind::MacroLoop { name, args, body } => {
            assert_eq!(name, "list_for_each_entry");
            assert_eq!(args.len(), 3);
            assert!(matches!(body.kind, StmtKind::Expr(_)));
        }
        other => panic!("expected macro loop, got {other:?}"),
    }
}

#[test]
fn call_with_function_pointer_arg_is_not_loop() {
    let stmts = parse_stmts_str("dev = bus_find_device(&bus, NULL, np, match_fn);");
    assert!(matches!(&stmts[0].kind, StmtKind::Expr(_)));
}

#[test]
fn comma_operator() {
    let e = parse_expr_str("a = 1, b = 2");
    assert!(matches!(e.kind, ExprKind::Comma(ref items) if items.len() == 2));
}

#[test]
fn string_concatenation() {
    let e = parse_expr_str(r#""hello " "world""#);
    assert!(matches!(e.kind, ExprKind::StrLit(ref s) if s == "hello world"));
}

#[test]
fn union_definition() {
    let src = "union acpi_object { int type; char *str; };";
    let tu = parse_str("t.h", src);
    let s = tu.structs().next().unwrap();
    assert!(s.is_union);
    assert_eq!(s.fields.len(), 2);
}

#[test]
fn anonymous_nested_struct_flattens() {
    let src = r#"
struct outer {
        int a;
        struct {
                int b;
                int c;
        };
        int d;
};
"#;
    let tu = parse_str("t.h", src);
    let s = tu.structs().next().unwrap();
    let names: Vec<_> = s.fields.iter().map(|f| f.name.as_str()).collect();
    assert_eq!(names, vec!["a", "b", "c", "d"]);
}

#[test]
fn multi_declarator_globals_all_kept() {
    let tu = parse_str("t.c", "static int a = 1, b, *c;");
    let names: Vec<_> = tu.globals().map(|g| g.name.as_str()).collect();
    assert_eq!(names, vec!["a", "b", "c"]);
    let c = tu.globals().find(|g| g.name == "c").unwrap();
    assert_eq!(c.ty.pointer, 1);
}

#[test]
fn inline_asm_is_skipped() {
    let src = r#"
int f(void)
{
        asm volatile("mrs %0, cntvct_el0" : "=r"(val));
        __asm__("nop");
        do_thing();
        return 0;
}
"#;
    let tu = parse_str("t.c", src);
    let f = tu.function("f").unwrap();
    let mut calls = Vec::new();
    for s in &f.body.stmts {
        s.walk_exprs(&mut |e| {
            if let Some((name, _)) = e.as_direct_call() {
                calls.push(name.to_string());
            }
        });
    }
    assert_eq!(calls, vec!["do_thing"]);
}

// ----------------------------------------------------------------------
// Depth-cap / resource-limit robustness (fault-isolation guarantees).
// ----------------------------------------------------------------------

#[test]
fn deep_parens_degrade_without_overflow() {
    let depth = 5000;
    let src = format!(
        "int f(void) {{ return {}1{}; }}",
        "(".repeat(depth),
        ")".repeat(depth)
    );
    let out =
        refminer_cparse::parse_str_limited("t.c", &src, &refminer_cparse::ParseLimits::default());
    assert!(out.depth_capped, "5000 nested parens must hit the cap");
    assert!(out
        .errors
        .iter()
        .any(|e| matches!(e, refminer_cparse::ParseError::TooDeep { .. })));
    assert_eq!(out.unit.functions().count(), 1);
}

#[test]
fn deep_unary_chain_degrades_without_overflow() {
    let src = format!("int f(void) {{ return {}x; }}", "!".repeat(5000));
    let out =
        refminer_cparse::parse_str_limited("t.c", &src, &refminer_cparse::ParseLimits::default());
    assert!(out.depth_capped);
}

#[test]
fn deep_brace_statements_degrade_without_overflow() {
    let depth = 5000;
    let src = format!(
        "int f(void) {{ {} x = 1; {} }}",
        "{".repeat(depth),
        "}".repeat(depth)
    );
    let out =
        refminer_cparse::parse_str_limited("t.c", &src, &refminer_cparse::ParseLimits::default());
    assert!(out.depth_capped);
    assert_eq!(out.unit.functions().count(), 1);
}

#[test]
fn deep_initializer_braces_degrade_without_overflow() {
    let depth = 5000;
    let src = format!("int a = {}1{};", "{".repeat(depth), "}".repeat(depth));
    let out =
        refminer_cparse::parse_str_limited("t.c", &src, &refminer_cparse::ParseLimits::default());
    assert!(out.depth_capped);
}

#[test]
fn deep_nested_structs_degrade_without_overflow() {
    let depth = 3000;
    let src = format!(
        "struct s {{ {} int leaf; {} }};",
        "struct {".repeat(depth),
        "};".repeat(depth)
    );
    let out =
        refminer_cparse::parse_str_limited("t.c", &src, &refminer_cparse::ParseLimits::default());
    assert!(out.depth_capped);
}

#[test]
fn token_cap_reports_truncation() {
    let src = "int a; ".repeat(1000);
    let limits = refminer_cparse::ParseLimits {
        max_tokens: 50,
        ..Default::default()
    };
    let out = refminer_cparse::parse_str_limited("t.c", &src, &limits);
    assert!(
        out.truncated,
        "3000-token file under a 50-token cap must truncate"
    );
    assert!(out.unit.globals().count() <= 50);
}

#[test]
fn healthy_code_is_not_flagged_by_limits() {
    let src = r#"
static int probe(struct platform_device *pdev)
{
        struct device_node *np = pdev->dev.of_node;
        if (!np)
                return -ENODEV;
        return of_device_is_available(np) ? 0 : -ENODEV;
}
"#;
    let out =
        refminer_cparse::parse_str_limited("t.c", src, &refminer_cparse::ParseLimits::default());
    assert!(!out.depth_capped);
    assert!(!out.truncated);
    assert!(out.lex_errors.is_empty());
    assert!(out.errors.is_empty());
}

/// Expression depth, measured without recursion (a recursive helper
/// would itself overflow on the bug this guards against).
fn max_expr_depth(unit: &refminer_cparse::TranslationUnit) -> usize {
    use refminer_cparse::{Expr, ExprKind};
    fn children(e: &Expr) -> Vec<&Expr> {
        match &e.kind {
            ExprKind::Call { callee, args } => {
                let mut v: Vec<&Expr> = args.iter().collect();
                v.push(callee);
                v
            }
            ExprKind::Member { base, .. } => vec![base],
            ExprKind::Index { base, index } => vec![base, index],
            ExprKind::Unary { operand, .. } | ExprKind::Postfix { operand, .. } => vec![operand],
            ExprKind::Binary { lhs, rhs, .. } | ExprKind::Assign { lhs, rhs, .. } => {
                vec![lhs, rhs]
            }
            ExprKind::Ternary { cond, then, els } => vec![cond, then, els],
            ExprKind::Cast { expr, .. } | ExprKind::Sizeof(expr) => vec![expr],
            ExprKind::Comma(items) => items.iter().collect(),
            ExprKind::InitList(items) => items.iter().map(|(_, e)| &**e).collect(),
            _ => Vec::new(),
        }
    }
    let mut deepest = 0;
    for f in unit.functions() {
        for s in &f.body.stmts {
            s.walk_exprs(&mut |e| {
                let mut stack = vec![(e, 1usize)];
                while let Some((e, d)) = stack.pop() {
                    deepest = deepest.max(d);
                    for c in children(e) {
                        stack.push((c, d + 1));
                    }
                }
            });
        }
    }
    deepest
}

#[test]
fn long_binary_chain_builds_a_bounded_ast() {
    // `1+1+1+...` nests the AST one level per term with no parser
    // recursion; the depth cap must still bound the tree so downstream
    // recursive walkers (and Drop) cannot overflow.
    let src = format!(
        "int f(void)\n{{\n        return {};\n}}\n",
        vec!["1"; 6000].join(" + ")
    );
    let out =
        refminer_cparse::parse_str_limited("t.c", &src, &refminer_cparse::ParseLimits::default());
    assert!(out.depth_capped);
    let cap = refminer_cparse::ParseLimits::default().max_depth as usize;
    assert!(max_expr_depth(&out.unit) <= cap + 1);
}

#[test]
fn paren_run_recovery_builds_a_bounded_ast() {
    // Once the descent caps out, leftover `(` runs land in the postfix
    // call loop, which wraps iteratively; the wrap layers must also be
    // charged against the depth budget.
    let depth = 6000;
    let src = format!(
        "int f(void)\n{{\n        return {}1{};\n}}\n",
        "(".repeat(depth),
        ")".repeat(depth)
    );
    let out =
        refminer_cparse::parse_str_limited("t.c", &src, &refminer_cparse::ParseLimits::default());
    assert!(out.depth_capped);
    let cap = refminer_cparse::ParseLimits::default().max_depth as usize;
    assert!(max_expr_depth(&out.unit) <= cap + 1);
}

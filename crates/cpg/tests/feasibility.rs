//! Integration tests for the path-feasibility engine, exercising the
//! full parse → CFG → facts → fixpoint → classify stack on function
//! bodies. Complements the unit tests inside `src/feasibility.rs`,
//! which cover the abstract domain and single-check pruning; these
//! focus on connective structure (`&&`/`||`) and write modeling that
//! once wrongly suppressed real leaks.

use refminer_cparse::parse_str;
use refminer_cpg::{Cfg, FeasAnalysis, Feasibility, NodeFacts, PathQuery, Step};

fn build(body: &str) -> (Cfg, Vec<NodeFacts>, FeasAnalysis) {
    let src = format!("int f(struct device *dev) {{ struct device_node *np; int ret; {body} }}");
    let tu = parse_str("t.c", &src);
    let cfg = Cfg::build(tu.function("f").unwrap());
    let facts: Vec<NodeFacts> = cfg.nodes.iter().map(NodeFacts::of).collect();
    let feas = FeasAnalysis::compute(&cfg, &facts);
    (cfg, facts, feas)
}

fn leak_query<'a>(cfg: &'a Cfg, facts: &'a [NodeFacts]) -> PathQuery<'a> {
    PathQuery::new(vec![
        Step::new(move |n| facts[n].calls_named("get_thing")),
        Step::new(move |n| n == cfg.exit).avoiding(move |n| facts[n].calls_named("put_thing")),
    ])
}

#[test]
fn disjunction_true_edge_is_not_pruned() {
    // np is known non-NULL after the guard, but `!np || ret < 0` can
    // still be true via ret < 0 — the goto err edge is feasible and the
    // leak is real.
    let (cfg, facts, feas) = build(
        "np = find_thing(dev); if (!np) return -ENODEV; \
         get_thing(np); ret = do_thing(dev); \
         if (!np || ret < 0) goto err; \
         put_thing(np); return 0; err: return ret;",
    );
    let q = leak_query(&cfg, &facts);
    assert!(q.search_from_entry(&cfg).is_some(), "leaky path exists");
    let v = feas.classify(&q, &cfg, cfg.entry);
    assert_ne!(v, Feasibility::Infeasible, "real leak wrongly suppressed");
}

#[test]
fn fully_dead_disjunction_is_still_pruned() {
    // Both disjuncts are individually impossible (np non-NULL, ret ==
    // 0), so the structural fix must not stop pruning genuinely dead
    // disjunction edges.
    let (cfg, facts, feas) = build(
        "np = find_thing(dev); if (!np) return -ENODEV; \
         get_thing(np); ret = 0; \
         if (!np || ret) goto err; \
         put_thing(np); return 0; err: return -EINVAL;",
    );
    let q = leak_query(&cfg, &facts);
    assert!(q.search_from_entry(&cfg).is_some(), "syntactic path exists");
    let v = feas.classify(&q, &cfg, cfg.entry);
    assert_eq!(v, Feasibility::Infeasible, "dead disjunction not pruned");
}

#[test]
fn conjunction_false_edge_is_not_pruned() {
    // `np && !ret` false with np known non-NULL only says `!ret` may
    // have failed; the else edge must not assert np == NULL or prune.
    let (cfg, facts, feas) = build(
        "np = find_thing(dev); if (!np) return -ENODEV; \
         get_thing(np); ret = do_thing(dev); \
         if (np && !ret) { put_thing(np); return 0; } \
         return ret;",
    );
    let q = leak_query(&cfg, &facts);
    assert!(q.search_from_entry(&cfg).is_some(), "leaky path exists");
    let v = feas.classify(&q, &cfg, cfg.entry);
    assert_ne!(v, Feasibility::Infeasible, "real leak wrongly suppressed");
}

#[test]
fn postfix_increment_defeats_constancy() {
    // ret++ makes ret == 1 at the test; the error path is real.
    let (cfg, facts, feas) = build(
        "get_thing(np); ret = 0; ret++; if (ret) goto err; \
         put_thing(np); return 0; err: return -EINVAL;",
    );
    let q = leak_query(&cfg, &facts);
    assert!(q.search_from_entry(&cfg).is_some(), "leaky path exists");
    let v = feas.classify(&q, &cfg, cfg.entry);
    assert_ne!(v, Feasibility::Infeasible, "real leak wrongly suppressed");
}

#[test]
fn postfix_decrement_defeats_constancy() {
    let (cfg, facts, feas) = build(
        "get_thing(np); ret = 1; ret--; if (!ret) goto err; \
         put_thing(np); return 0; err: return -EINVAL;",
    );
    let q = leak_query(&cfg, &facts);
    assert!(q.search_from_entry(&cfg).is_some(), "leaky path exists");
    let v = feas.classify(&q, &cfg, cfg.entry);
    assert_ne!(v, Feasibility::Infeasible, "real leak wrongly suppressed");
}

#[test]
fn negated_conjunction_distributes() {
    // `!(np && ret == 0)` is `!np || ret != 0`; with np non-NULL the
    // true edge can still fire via ret != 0.
    let (cfg, facts, feas) = build(
        "np = find_thing(dev); if (!np) return -ENODEV; \
         get_thing(np); ret = do_thing(dev); \
         if (!(np && ret == 0)) goto err; \
         put_thing(np); return 0; err: return ret;",
    );
    let q = leak_query(&cfg, &facts);
    assert!(q.search_from_entry(&cfg).is_some(), "leaky path exists");
    let v = feas.classify(&q, &cfg, cfg.entry);
    assert_ne!(v, Feasibility::Infeasible, "real leak wrongly suppressed");
}

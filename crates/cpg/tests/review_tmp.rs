use refminer_cpg::{Cfg, FeasAnalysis, Feasibility, NodeFacts, PathQuery, Step};
use refminer_cparse::parse_str;

fn build(body: &str) -> (Cfg, Vec<NodeFacts>, FeasAnalysis) {
    let src = format!("int f(struct device *dev) {{ struct device_node *np; int ret; {body} }}");
    let tu = parse_str("t.c", &src);
    let cfg = Cfg::build(tu.function("f").unwrap());
    let facts: Vec<NodeFacts> = cfg.nodes.iter().map(NodeFacts::of).collect();
    let feas = FeasAnalysis::compute(&cfg, &facts);
    (cfg, facts, feas)
}

#[test]
fn disjunction_true_edge_is_not_pruned() {
    // np is known non-NULL after the guard, but `!np || ret < 0` can
    // still be true via ret < 0 — the goto err edge is feasible and the
    // leak is real.
    let (cfg, facts, feas) = build(
        "np = find_thing(dev); if (!np) return -ENODEV; \
         get_thing(np); ret = do_thing(dev); \
         if (!np || ret < 0) goto err; \
         put_thing(np); return 0; err: return ret;",
    );
    let q = PathQuery::new(vec![
        Step::new(|n| facts[n].calls_named("get_thing")),
        Step::new(|n| n == cfg.exit).avoiding(|n| facts[n].calls_named("put_thing")),
    ]);
    assert!(q.search_from_entry(&cfg).is_some(), "leaky path exists");
    let v = feas.classify(&q, &cfg, cfg.entry);
    eprintln!("verdict = {v:?}, active = {}", feas.active());
    assert_ne!(v, Feasibility::Infeasible, "real leak wrongly suppressed");
}

#[test]
fn postfix_increment_defeats_constancy() {
    // ret++ makes ret == 1 at the test; the error path is real.
    let (cfg, facts, feas) = build(
        "get_thing(np); ret = 0; ret++; if (ret) goto err; \
         put_thing(np); return 0; err: return -EINVAL;",
    );
    let q = PathQuery::new(vec![
        Step::new(|n| facts[n].calls_named("get_thing")),
        Step::new(|n| n == cfg.exit).avoiding(|n| facts[n].calls_named("put_thing")),
    ]);
    assert!(q.search_from_entry(&cfg).is_some(), "leaky path exists");
    let v = feas.classify(&q, &cfg, cfg.entry);
    eprintln!("verdict = {v:?}, active = {}", feas.active());
    assert_ne!(v, Feasibility::Infeasible, "real leak wrongly suppressed");
}

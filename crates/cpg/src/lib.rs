//! # refminer-cpg
//!
//! Code property graphs for kernel-style C functions.
//!
//! This crate turns `refminer-cparse` ASTs into per-function
//! [`FunctionGraph`]s — a control-flow graph ([`Cfg`]) whose nodes carry
//! extracted semantic facts ([`NodeFacts`]), a variable-origin analysis
//! ([`Origins`]), and an error-block classification — and provides the
//! [`PathQuery`] engine that the anti-pattern checkers use to search for
//! bug-witnessing execution paths.
//!
//! The design follows §6.1 of the SOSP '23 refcounting study: the
//! paper's JOERN-built CPGs with "line numbers embedded in the graph
//! nodes to represent the execution orders" become explicit CFG edges
//! here, and its template matching becomes product-graph path search.

mod cfg;
mod errorpath;
mod facts;
mod feasibility;
mod graph;
mod origins;
mod paths;

pub use cfg::{Cfg, CfgNode, EdgeKind, NodeId, NodeKind, Payload};
pub use errorpath::{error_nodes, is_error_label, null_guard_nodes};
pub use facts::{ArgFact, AssignFact, CallFact, CheckFact, NodeFacts, StoreTarget};
pub use feasibility::{FeasAnalysis, Feasibility};
pub use graph::{FunctionGraph, GraphCapExceeded};
pub use origins::{Origin, Origins};
pub use paths::{PathQuery, Step};

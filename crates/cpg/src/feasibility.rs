//! Path-feasibility constraint analysis.
//!
//! The path-query engine enumerates *syntactic* paths; this module asks
//! whether the branch conditions along them can hold simultaneously.
//! It tracks, flow-sensitively per function, a small abstract value for
//! each scalar variable — known integer constant (`ret = 0`, `flag =
//! 1`, `p = NULL`), known nonzero, or unknown — refined by the
//! NULL/error checks on branch edges, and from the fixpoint derives the
//! set of **infeasible branch edges**: edges whose condition contradicts
//! everything that can reach them (`if (ret) goto err;` after `ret =
//! 0`, a re-test of an already-decided error code, a constant-folded
//! flag guard).
//!
//! Checkers keep their existing unpruned queries for *detection* and
//! call [`FeasAnalysis::classify`] afterwards: a witness that survives
//! the pruned re-search is [`Feasibility::Proven`] (the path exists even
//! under active adversarial pruning) or [`Feasibility::Assumed`] (the
//! analysis had no constraints to prune with); a witness that only
//! exists through an infeasible edge is [`Feasibility::Infeasible`] and
//! is suppressed by default in the audit report.
//!
//! The lattice is deliberately conservative: any construct it does not
//! model (address-taken variables, compound assignments, non-constant
//! right-hand sides, merges of differing constants) degrades to
//! *unknown*, which can only ever cause a finding to be kept, never
//! suppressed.

use std::collections::{BTreeMap, HashSet, VecDeque};

use refminer_cparse::{AssignOp, BinOp, Expr, ExprKind, Initializer, UnOp};

use crate::cfg::{Cfg, EdgeKind, NodeId, NodeKind, Payload};
use crate::facts::{errish_name, extract_checks, CheckFact, NodeFacts};
use crate::paths::PathQuery;

/// The feasibility verdict attached to a checker finding.
///
/// Ordered by certainty: `Infeasible < Assumed < Proven`, so merged
/// findings keep the most credible verdict.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Feasibility {
    /// The bug-witnessing path requires an infeasible branch edge; the
    /// finding is a false path and is suppressed by default.
    Infeasible,
    /// No feasibility constraints applied to this function (or the
    /// finding is structural, not path-based); the verdict stands on
    /// the syntactic path alone.
    #[default]
    Assumed,
    /// The witnessing path survived active pruning: the function had
    /// infeasible edges and the path needs none of them.
    Proven,
}

impl Feasibility {
    /// Stable lowercase name, used in JSON and cache files.
    pub fn name(&self) -> &'static str {
        match self {
            Feasibility::Infeasible => "infeasible",
            Feasibility::Assumed => "assumed",
            Feasibility::Proven => "proven",
        }
    }

    /// Parses a [`name`](Feasibility::name) back.
    pub fn from_name(s: &str) -> Option<Feasibility> {
        match s {
            "infeasible" => Some(Feasibility::Infeasible),
            "assumed" => Some(Feasibility::Assumed),
            "proven" => Some(Feasibility::Proven),
            _ => None,
        }
    }
}

impl std::fmt::Display for Feasibility {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Abstract value of one scalar variable at one program point.
/// `NULL` is folded into `Int(0)`, matching C's null-pointer constant,
/// so pointer guards and integer flags share one domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AbsVal {
    /// Known to hold exactly this value.
    Int(i64),
    /// Known nonzero (valid pointer, set flag, error code), value
    /// unknown.
    NonZero,
}

impl AbsVal {
    fn is_nonzero(self) -> bool {
        !matches!(self, AbsVal::Int(0))
    }
}

/// Join two known values; `None` means unknown (drop the entry).
fn join_val(a: AbsVal, b: AbsVal) -> Option<AbsVal> {
    match (a, b) {
        _ if a == b => Some(a),
        (AbsVal::Int(x), AbsVal::Int(y)) if x != 0 && y != 0 => Some(AbsVal::NonZero),
        (AbsVal::Int(x), AbsVal::NonZero) | (AbsVal::NonZero, AbsVal::Int(x)) if x != 0 => {
            Some(AbsVal::NonZero)
        }
        _ => None,
    }
}

/// A per-point environment; absent variables are unknown.
type Env = BTreeMap<String, AbsVal>;

/// Join `b` into `a`, returning whether `a` changed.
fn join_env(a: &mut Env, b: &Env) -> bool {
    let mut changed = false;
    let keys: Vec<String> = a.keys().cloned().collect();
    for k in keys {
        let av = a[&k];
        match b.get(&k).and_then(|&bv| join_val(av, bv)) {
            Some(v) => {
                if v != av {
                    a.insert(k, v);
                    changed = true;
                }
            }
            None => {
                a.remove(&k);
                changed = true;
            }
        }
    }
    changed
}

/// One write observed in a node, in evaluation order: the variable and
/// its value if it is a recognizable constant.
fn collect_writes(e: &Expr, out: &mut Vec<(String, Option<i64>)>) {
    e.walk(&mut |sub| match &sub.kind {
        ExprKind::Assign { op, lhs, rhs } => {
            if let ExprKind::Ident(v) = &lhs.kind {
                let val = if *op == AssignOp::Assign {
                    const_of(rhs)
                } else {
                    None
                };
                out.push((v.clone(), val));
            }
        }
        ExprKind::Unary {
            op: UnOp::AddrOf | UnOp::PreInc | UnOp::PreDec,
            operand,
        }
        | ExprKind::Postfix { operand, .. } => {
            // `&v` may alias a write through the pointer; `++v`/`--v`
            // and `v++`/`v--` change the value. All degrade the
            // variable to unknown.
            if let ExprKind::Ident(v) = &operand.kind {
                out.push((v.clone(), None));
            }
        }
        _ => {}
    });
}

/// The integer constant an expression evaluates to, if statically
/// obvious: literals, `NULL`, negated literals, casts thereof.
fn const_of(e: &Expr) -> Option<i64> {
    match &e.kind {
        ExprKind::IntLit(v) => Some(*v),
        ExprKind::Ident(name) if name == "NULL" => Some(0),
        ExprKind::Unary {
            op: UnOp::Neg,
            operand,
        } => const_of(operand).map(|v| -v),
        ExprKind::Cast { expr, .. } => const_of(expr),
        _ => None,
    }
}

/// All writes performed by a CFG node, in order.
fn node_writes(kind: &NodeKind) -> Vec<(String, Option<i64>)> {
    let mut out = Vec::new();
    match kind {
        NodeKind::Stmt(Payload::Expr(e)) | NodeKind::Cond(e) => collect_writes(e, &mut out),
        NodeKind::Stmt(Payload::Decl(decls)) => {
            for d in decls {
                if let Some(Initializer::Expr(init)) = &d.init {
                    collect_writes(init, &mut out);
                    out.push((d.name.clone(), const_of(init)));
                }
            }
        }
        NodeKind::Stmt(Payload::Return(Some(e))) => collect_writes(e, &mut out),
        NodeKind::MacroLoopHead { args, .. } => {
            // The macro rebinds its iteration variable(s) every trip.
            for a in args {
                if let ExprKind::Ident(v) = &a.kind {
                    out.push((v.clone(), None));
                }
            }
        }
        _ => {}
    }
    out
}

/// Applies a node's writes to an environment.
fn transfer(env: &mut Env, writes: &[(String, Option<i64>)]) {
    for (v, val) in writes {
        match val {
            Some(k) => {
                env.insert(v.clone(), AbsVal::Int(*k));
            }
            None => {
                env.remove(v);
            }
        }
    }
}

/// Whether a check's error-code reading should be trusted for variable
/// `v`: `IS_ERR(p)` also emits `ErrOnTrue(p)`, but an error pointer is
/// not an integer comparison, so those variables are excluded.
fn errptr_vars(checks: &[CheckFact]) -> HashSet<&str> {
    checks
        .iter()
        .filter_map(|c| match c {
            CheckFact::ErrPtrOnTrue(v) => Some(v.as_str()),
            _ => None,
        })
        .collect()
}

/// The truth value a branch edge asserts for its condition; edges that
/// are not branch outcomes carry no constraint.
fn edge_truth(kind: EdgeKind) -> Option<bool> {
    match kind {
        EdgeKind::True => Some(true),
        EdgeKind::False => Some(false),
        _ => None,
    }
}

/// Refines an environment with what one atomic check asserts when its
/// literal has the given truth value. Overwrites: if the edge
/// contradicts the incoming value it is infeasible anyway and the
/// refined environment only flows into dead territory.
fn fact_refine(env: &mut Env, c: &CheckFact, errptr: &HashSet<&str>, truth: bool) {
    match c {
        CheckFact::NullOnTrue(v) => {
            let val = if truth {
                AbsVal::Int(0)
            } else {
                AbsVal::NonZero
            };
            env.insert(v.clone(), val);
        }
        CheckFact::NonNullOnTrue(v) => {
            let val = if truth {
                AbsVal::NonZero
            } else {
                AbsVal::Int(0)
            };
            env.insert(v.clone(), val);
        }
        CheckFact::OkOnTrue(v) if errish_name(v) && !errptr.contains(v.as_str()) => {
            let val = if truth {
                AbsVal::Int(0)
            } else {
                AbsVal::NonZero
            };
            env.insert(v.clone(), val);
        }
        // True branch: nonzero for both `if (ret)` and `ret < 0`. The
        // false branch of `ret < 0` only means non-negative, which this
        // domain cannot express.
        CheckFact::ErrOnTrue(v) if truth && errish_name(v) && !errptr.contains(v.as_str()) => {
            env.insert(v.clone(), AbsVal::NonZero);
        }
        _ => {}
    }
}

/// Whether the environment proves one atomic check's literal cannot
/// have the given truth value. Only contradictions every source shape
/// of the check agrees on are reported (e.g. `ErrOnTrue` may come from
/// `if (ret)` or `ret < 0`; both are false exactly when `ret == 0`).
fn fact_contradicts(env: &Env, c: &CheckFact, errptr: &HashSet<&str>, truth: bool) -> bool {
    match c {
        CheckFact::NullOnTrue(v) => env.get(v).is_some_and(|&val| {
            if truth {
                val.is_nonzero()
            } else {
                val == AbsVal::Int(0)
            }
        }),
        CheckFact::NonNullOnTrue(v) => env.get(v).is_some_and(|&val| {
            if truth {
                val == AbsVal::Int(0)
            } else {
                val.is_nonzero()
            }
        }),
        CheckFact::OkOnTrue(v) if errish_name(v) && !errptr.contains(v.as_str()) => {
            env.get(v).is_some_and(|&val| {
                if truth {
                    val.is_nonzero()
                } else {
                    val == AbsVal::Int(0)
                }
            })
        }
        CheckFact::ErrOnTrue(v) if errish_name(v) && !errptr.contains(v.as_str()) => {
            env.get(v).is_some_and(|&val| {
                if truth {
                    val == AbsVal::Int(0)
                } else {
                    matches!(val, AbsVal::Int(k) if k < 0)
                }
            })
        }
        _ => false,
    }
}

/// Connective structure of one condition node's checks.
///
/// The flat [`NodeFacts::checks`] list loses whether facts were joined
/// by `&&` or `||`. Treating `||`-joined facts as conjuncts prunes
/// feasible edges — e.g. the true edge of `if (!np || ret < 0)` when
/// `np` is known non-NULL but `ret` is unknown — so the feasibility
/// pass rebuilds the connective tree from the condition expression.
enum CondChecks {
    /// One atomic comparison; the facts are consistent readings of the
    /// same literal (`truth` means the literal holds).
    Leaf(Vec<CheckFact>),
    /// `||` — true iff at least one child is.
    AnyOf(Vec<CondChecks>),
    /// `&&` — true iff every child is.
    AllOf(Vec<CondChecks>),
}

/// Builds the connective tree for a condition expression. `negated`
/// tracks an odd number of enclosing `!`s; De Morgan pushes the
/// negation through connectives and [`extract_checks`]' polarity
/// absorbs it at the leaves.
fn cond_tree(e: &Expr, negated: bool) -> CondChecks {
    match &e.kind {
        ExprKind::Unary {
            op: UnOp::Not,
            operand,
        } if cond_connective(operand) => cond_tree(operand, !negated),
        ExprKind::Binary { op, lhs, rhs } if matches!(op, BinOp::And | BinOp::Or) => {
            let kids = vec![cond_tree(lhs, negated), cond_tree(rhs, negated)];
            if (*op == BinOp::Or) != negated {
                CondChecks::AnyOf(kids)
            } else {
                CondChecks::AllOf(kids)
            }
        }
        ExprKind::Call { callee, args }
            if matches!(callee.as_ident(), Some("likely") | Some("unlikely")) =>
        {
            match args.first() {
                Some(a) => cond_tree(a, negated),
                None => CondChecks::Leaf(Vec::new()),
            }
        }
        _ => {
            let mut facts = Vec::new();
            extract_checks(e, !negated, &mut facts);
            CondChecks::Leaf(facts)
        }
    }
}

/// Whether an expression is a connective the tree builder splits on;
/// `!` over anything else is left to `extract_checks`.
fn cond_connective(e: &Expr) -> bool {
    match &e.kind {
        ExprKind::Binary { op, .. } => matches!(op, BinOp::And | BinOp::Or),
        ExprKind::Unary {
            op: UnOp::Not,
            operand,
        } => cond_connective(operand),
        ExprKind::Call { callee, args } => {
            matches!(callee.as_ident(), Some("likely") | Some("unlikely"))
                && args.first().is_some_and(cond_connective)
        }
        _ => false,
    }
}

impl CondChecks {
    /// Whether the environment proves this formula cannot have the
    /// given truth value.
    fn contradicted(&self, env: &Env, errptr: &HashSet<&str>, truth: bool) -> bool {
        match self {
            CondChecks::Leaf(facts) => facts
                .iter()
                .any(|f| fact_contradicts(env, f, errptr, truth)),
            CondChecks::AnyOf(kids) => {
                if truth {
                    // All disjuncts must be individually impossible.
                    !kids.is_empty() && kids.iter().all(|k| k.contradicted(env, errptr, true))
                } else {
                    // Some disjunct is provably true.
                    kids.iter().any(|k| k.contradicted(env, errptr, false))
                }
            }
            CondChecks::AllOf(kids) => {
                if truth {
                    kids.iter().any(|k| k.contradicted(env, errptr, true))
                } else {
                    !kids.is_empty() && kids.iter().all(|k| k.contradicted(env, errptr, false))
                }
            }
        }
    }

    /// Refines `env` with what taking an edge of the given truth
    /// asserts about this formula.
    fn refine(&self, env: &mut Env, errptr: &HashSet<&str>, truth: bool) {
        match self {
            CondChecks::Leaf(facts) => {
                for f in facts {
                    fact_refine(env, f, errptr, truth);
                }
            }
            CondChecks::AnyOf(kids) if !truth => {
                // `!(a || b)` — every disjunct is false.
                for k in kids {
                    k.refine(env, errptr, false);
                }
            }
            CondChecks::AllOf(kids) if truth => {
                // `a && b` — every conjunct is true.
                for k in kids {
                    k.refine(env, errptr, true);
                }
            }
            // A true disjunction (or false conjunction) pins nothing
            // down by itself — unless the environment already rules
            // out every child but one.
            CondChecks::AnyOf(kids) | CondChecks::AllOf(kids) => {
                let open: Vec<usize> = (0..kids.len())
                    .filter(|&i| !kids[i].contradicted(env, errptr, truth))
                    .collect();
                if let [only] = open[..] {
                    kids[only].refine(env, errptr, truth);
                }
            }
        }
    }
}

/// The per-function feasibility analysis result: the set of branch
/// edges no execution can take.
///
/// # Examples
///
/// ```
/// use refminer_cparse::parse_str;
/// use refminer_cpg::{FeasAnalysis, NodeFacts, Cfg};
///
/// let tu = parse_str(
///     "t.c",
///     "int f(void) { int ret = 0; if (ret) return -1; return 0; }",
/// );
/// let cfg = Cfg::build(tu.function("f").unwrap());
/// let facts: Vec<NodeFacts> = cfg.nodes.iter().map(NodeFacts::of).collect();
/// let feas = FeasAnalysis::compute(&cfg, &facts);
/// assert!(feas.active()); // the `if (ret)` true edge is dead
/// ```
#[derive(Debug, Clone, Default)]
pub struct FeasAnalysis {
    infeasible: HashSet<(NodeId, NodeId, EdgeKind)>,
}

impl FeasAnalysis {
    /// Runs the forward constant/guard analysis to its fixpoint and
    /// collects contradicted branch edges. Deterministic: the fixpoint
    /// of a monotone system is unique, and the contradiction pass is a
    /// plain scan in node order.
    pub fn compute(cfg: &Cfg, facts: &[NodeFacts]) -> FeasAnalysis {
        let n = cfg.nodes.len();
        let writes: Vec<Vec<(String, Option<i64>)>> =
            cfg.nodes.iter().map(|nd| node_writes(&nd.kind)).collect();
        // Connective trees for condition nodes: the flat check lists in
        // `facts` lose `&&`/`||` structure, which pruning must respect.
        let trees: Vec<Option<CondChecks>> = cfg
            .nodes
            .iter()
            .map(|nd| match &nd.kind {
                NodeKind::Cond(e) => Some(cond_tree(e, false)),
                _ => None,
            })
            .collect();
        let errptrs: Vec<HashSet<&str>> = facts.iter().map(|f| errptr_vars(&f.checks)).collect();
        let mut env_in: Vec<Option<Env>> = vec![None; n];
        env_in[cfg.entry] = Some(Env::new());
        let mut queue: VecDeque<NodeId> = VecDeque::new();
        let mut queued = vec![false; n];
        queue.push_back(cfg.entry);
        queued[cfg.entry] = true;
        // Each (node, variable) ascends a 3-step chain, so the true
        // bound is tiny; the budget is a defensive backstop that, if
        // ever hit, abandons pruning rather than over-pruning.
        let mut budget = (n + 1) * 64;
        while let Some(node) = queue.pop_front() {
            queued[node] = false;
            if budget == 0 {
                return FeasAnalysis::default();
            }
            budget -= 1;
            let mut out = env_in[node].clone().unwrap_or_default();
            transfer(&mut out, &writes[node]);
            for &(succ, kind) in cfg.succs(node) {
                let mut e = out.clone();
                if let (Some(tree), Some(truth)) = (&trees[node], edge_truth(kind)) {
                    tree.refine(&mut e, &errptrs[node], truth);
                }
                let changed = match &mut env_in[succ] {
                    Some(cur) => join_env(cur, &e),
                    slot @ None => {
                        *slot = Some(e);
                        true
                    }
                };
                if changed && !queued[succ] {
                    queued[succ] = true;
                    queue.push_back(succ);
                }
            }
        }
        let mut infeasible = HashSet::new();
        for node in cfg.node_ids() {
            if facts[node].checks.is_empty() {
                continue;
            }
            let Some(tree) = &trees[node] else { continue };
            let Some(env) = &env_in[node] else { continue };
            let mut out = env.clone();
            transfer(&mut out, &writes[node]);
            for &(succ, kind) in cfg.succs(node) {
                if let Some(truth) = edge_truth(kind) {
                    if tree.contradicted(&out, &errptrs[node], truth) {
                        infeasible.insert((node, succ, kind));
                    }
                }
            }
        }
        FeasAnalysis { infeasible }
    }

    /// Whether taking this edge contradicts the constraints that reach
    /// it.
    pub fn infeasible_edge(&self, from: NodeId, to: NodeId, kind: EdgeKind) -> bool {
        self.infeasible.contains(&(from, to, kind))
    }

    /// Whether the analysis found any infeasible edge in this function
    /// — i.e. whether pruning is *active* here.
    pub fn active(&self) -> bool {
        !self.infeasible.is_empty()
    }

    /// Number of infeasible edges found.
    pub fn infeasible_count(&self) -> usize {
        self.infeasible.len()
    }

    /// Classifies a query whose **unpruned** search already produced a
    /// witness: re-run it with infeasible edges vetoed and report
    /// whether the witness survives.
    pub fn classify(&self, q: &PathQuery, cfg: &Cfg, start: NodeId) -> Feasibility {
        if !self.active() {
            return Feasibility::Assumed;
        }
        let veto = |f: NodeId, t: NodeId, k: EdgeKind| self.infeasible_edge(f, t, k);
        if q.search_with_veto(cfg, start, &veto).is_some() {
            Feasibility::Proven
        } else {
            Feasibility::Infeasible
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paths::Step;
    use refminer_cparse::parse_str;

    fn build(body: &str) -> (Cfg, Vec<NodeFacts>, FeasAnalysis) {
        let src =
            format!("int f(struct device *dev) {{ struct device_node *np; int ret; {body} }}");
        let tu = parse_str("t.c", &src);
        let cfg = Cfg::build(tu.function("f").unwrap());
        let facts: Vec<NodeFacts> = cfg.nodes.iter().map(NodeFacts::of).collect();
        let feas = FeasAnalysis::compute(&cfg, &facts);
        (cfg, facts, feas)
    }

    fn leak_query<'a>(facts: &'a [NodeFacts], exit: NodeId, put: &'a str) -> PathQuery<'a> {
        PathQuery::new(vec![
            Step::new(move |n| facts[n].calls_named("get_thing")),
            Step::new(move |n| n == exit).avoiding(move |n| facts[n].calls_named(put)),
        ])
    }

    #[test]
    fn correlated_error_branch_is_infeasible() {
        // `ret = 0; if (ret) goto err;` — the classic correlated
        // cleanup false path.
        let (cfg, facts, feas) = build(
            "get_thing(np); ret = 0; if (ret) goto err; \
             put_thing(np); return 0; err: return -EINVAL;",
        );
        assert!(feas.active());
        let q = leak_query(&facts, cfg.exit, "put_thing");
        assert!(q.search_from_entry(&cfg).is_some(), "syntactic path exists");
        assert_eq!(feas.classify(&q, &cfg, cfg.entry), Feasibility::Infeasible);
    }

    #[test]
    fn real_error_branch_stays_feasible() {
        let (cfg, facts, feas) = build(
            "get_thing(np); ret = do_thing(dev); if (ret) goto err; \
             put_thing(np); return 0; err: return ret;",
        );
        let q = leak_query(&facts, cfg.exit, "put_thing");
        assert!(q.search_from_entry(&cfg).is_some());
        // `ret` came from a call: unknown, so the leaky path stands.
        assert_ne!(feas.classify(&q, &cfg, cfg.entry), Feasibility::Infeasible);
    }

    #[test]
    fn rechecked_error_code_is_infeasible() {
        // After `if (ret) return ret;` falls through, ret == 0, so the
        // second test cannot take its true branch.
        let (cfg, facts, feas) = build(
            "ret = do_thing(dev); if (ret) return ret; get_thing(np); \
             if (ret) goto err; put_thing(np); return 0; err: return ret;",
        );
        assert!(feas.active());
        let q = leak_query(&facts, cfg.exit, "put_thing");
        assert!(q.search_from_entry(&cfg).is_some());
        assert_eq!(feas.classify(&q, &cfg, cfg.entry), Feasibility::Infeasible);
    }

    #[test]
    fn constant_flag_guard_is_infeasible() {
        let (cfg, facts, feas) = build(
            "int on = 1; get_thing(np); if (!on) goto skip; \
             put_thing(np); skip: return 0;",
        );
        assert!(feas.active());
        let q = leak_query(&facts, cfg.exit, "put_thing");
        assert!(q.search_from_entry(&cfg).is_some());
        assert_eq!(feas.classify(&q, &cfg, cfg.entry), Feasibility::Infeasible);
    }

    #[test]
    fn repeated_null_guard_is_infeasible() {
        let (_cfg, _facts, feas) = build(
            "np = find_thing(dev); if (!np) return -ENODEV; \
             if (!np) return -EBUSY; return 0;",
        );
        // The second `!np` true edge contradicts the first guard's
        // fall-through.
        assert!(feas.active());
    }

    #[test]
    fn loop_reassignment_defeats_constancy() {
        // `ret` changes inside the loop, so the test is genuinely
        // two-valued and nothing is pruned.
        let (_cfg, _facts, feas) =
            build("ret = 0; while (dev) { if (ret) break; ret = do_thing(dev); } return ret;");
        assert!(!feas.active());
    }

    #[test]
    fn address_taken_variable_is_unknown() {
        let (_cfg, _facts, feas) =
            build("ret = 0; probe_thing(&ret); if (ret) return ret; return 0;");
        assert!(!feas.active());
    }

    #[test]
    fn merge_of_distinct_constants_is_unknown() {
        let (_cfg, _facts, feas) =
            build("if (dev) ret = 0; else ret = 1; if (ret) return -EINVAL; return 0;");
        assert!(!feas.active());
    }

    #[test]
    fn surviving_query_is_proven() {
        // Function has one dead branch, but the leak path does not
        // need it: classification upgrades to Proven.
        let (cfg, facts, feas) = build(
            "int on = 1; if (!on) return 0; get_thing(np); \
             if (ret < 0) return ret; put_thing(np); return 0;",
        );
        assert!(feas.active());
        let q = leak_query(&facts, cfg.exit, "put_thing");
        assert!(q.search_from_entry(&cfg).is_some());
        assert_eq!(feas.classify(&q, &cfg, cfg.entry), Feasibility::Proven);
    }

    #[test]
    fn no_constraints_means_assumed() {
        let (cfg, facts, feas) =
            build("get_thing(np); if (ret < 0) return ret; put_thing(np); return 0;");
        assert!(!feas.active());
        let q = leak_query(&facts, cfg.exit, "put_thing");
        assert!(q.search_from_entry(&cfg).is_some());
        assert_eq!(feas.classify(&q, &cfg, cfg.entry), Feasibility::Assumed);
    }

    #[test]
    fn is_err_pointer_checks_are_not_folded() {
        // IS_ERR(p) emits ErrOnTrue(p), but p = NULL does not make
        // IS_ERR's edges prunable in the integer domain.
        let (_cfg, _facts, feas) = build("np = NULL; if (IS_ERR(np)) return -EINVAL; return 0;");
        assert!(!feas.active());
    }

    #[test]
    fn feasibility_names_round_trip() {
        for f in [
            Feasibility::Infeasible,
            Feasibility::Assumed,
            Feasibility::Proven,
        ] {
            assert_eq!(Feasibility::from_name(f.name()), Some(f));
        }
        assert_eq!(Feasibility::from_name("bogus"), None);
        assert!(Feasibility::Infeasible < Feasibility::Assumed);
        assert!(Feasibility::Assumed < Feasibility::Proven);
    }
}

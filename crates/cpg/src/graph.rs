//! The assembled per-function code property graph.

use std::collections::HashSet;
use std::time::{Duration, Instant};

use refminer_cparse::{FunctionDef, TranslationUnit};

use crate::cfg::{Cfg, NodeId};
use crate::errorpath::error_nodes;
use crate::facts::NodeFacts;
use crate::feasibility::FeasAnalysis;
use crate::origins::Origins;

/// A per-function *code property graph*: the CFG enriched with node
/// facts, variable origins, and error-block classification — the same
/// bundle the paper builds with JOERN and queries via line-ordered
/// paths (§6.1).
///
/// # Examples
///
/// ```
/// use refminer_cparse::parse_str;
/// use refminer_cpg::FunctionGraph;
///
/// let tu = parse_str("t.c", r#"
/// int probe(struct device *dev)
/// {
///         struct device_node *np = of_find_node_by_name(NULL, "x");
///         if (!np)
///                 return -ENODEV;
///         of_node_put(np);
///         return 0;
/// }
/// "#);
/// let g = FunctionGraph::build(tu.function("probe").unwrap());
/// assert_eq!(g.name(), "probe");
/// assert!(g.nodes_calling("of_node_put").len() == 1);
/// ```
#[derive(Debug, Clone)]
pub struct FunctionGraph {
    /// The function definition this graph was built from.
    pub func: FunctionDef,
    /// The control-flow graph.
    pub cfg: Cfg,
    /// Per-node facts, parallel to `cfg.nodes`.
    pub facts: Vec<NodeFacts>,
    /// Variable-origin analysis results.
    pub origins: Origins,
    /// Nodes classified as error-handling blocks (`B_error`).
    pub error_nodes: HashSet<NodeId>,
    /// Path-feasibility constraints: infeasible branch edges derived
    /// from constant/guard tracking.
    pub feas: FeasAnalysis,
}

/// A function whose graph was rejected by the node cap before the
/// expensive analyses ran — the audit layer's defense against
/// machine-generated functions with pathological control flow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphCapExceeded {
    /// The function that blew the cap.
    pub function: String,
    /// How many CFG nodes it produced.
    pub nodes: usize,
    /// The cap in force.
    pub max_nodes: usize,
}

impl std::fmt::Display for GraphCapExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "function `{}` produced {} CFG nodes (cap {})",
            self.function, self.nodes, self.max_nodes
        )
    }
}

impl FunctionGraph {
    /// Builds the full graph for one function.
    pub fn build(func: &FunctionDef) -> FunctionGraph {
        match Self::try_build(func, usize::MAX) {
            Ok(g) => g,
            Err(_) => unreachable!("usize::MAX cap cannot be exceeded"),
        }
    }

    /// Builds the graph only if the CFG stays under `max_nodes`; the
    /// per-node analyses (facts, origins, error classification) never
    /// run on an over-cap function, bounding both time and memory.
    pub fn try_build(
        func: &FunctionDef,
        max_nodes: usize,
    ) -> Result<FunctionGraph, GraphCapExceeded> {
        let mut sink = Duration::ZERO;
        Self::try_build_timed(func, max_nodes, &mut sink)
    }

    /// Like [`FunctionGraph::try_build`], additionally accumulating
    /// the wall time the feasibility fixpoint took into `feas_time`.
    /// Observability only: the timing never influences the graph.
    pub fn try_build_timed(
        func: &FunctionDef,
        max_nodes: usize,
        feas_time: &mut Duration,
    ) -> Result<FunctionGraph, GraphCapExceeded> {
        let cfg = Cfg::build(func);
        if cfg.nodes.len() > max_nodes {
            return Err(GraphCapExceeded {
                function: func.name.clone(),
                nodes: cfg.nodes.len(),
                max_nodes,
            });
        }
        let facts: Vec<NodeFacts> = cfg.nodes.iter().map(NodeFacts::of).collect();
        let params: Vec<String> = func.params.iter().filter_map(|p| p.name.clone()).collect();
        let origins = Origins::compute(&cfg, &facts, &params);
        let error_nodes = error_nodes(&cfg, &facts);
        let feas_start = Instant::now();
        let feas = FeasAnalysis::compute(&cfg, &facts);
        *feas_time += feas_start.elapsed();
        Ok(FunctionGraph {
            func: func.clone(),
            cfg,
            facts,
            origins,
            error_nodes,
            feas,
        })
    }

    /// Builds graphs for every function in a translation unit.
    pub fn build_all(tu: &TranslationUnit) -> Vec<FunctionGraph> {
        tu.functions().map(FunctionGraph::build).collect()
    }

    /// Builds graphs for every function under a node cap, collecting
    /// the functions that were skipped instead of analyzing them.
    pub fn build_all_limited(
        tu: &TranslationUnit,
        max_nodes: usize,
    ) -> (Vec<FunctionGraph>, Vec<GraphCapExceeded>) {
        let (graphs, skipped, _) = Self::build_all_limited_timed(tu, max_nodes);
        (graphs, skipped)
    }

    /// Like [`FunctionGraph::build_all_limited`], additionally
    /// returning the unit's total feasibility-fixpoint wall time, for
    /// the audit pipeline's `feasibility` trace spans.
    pub fn build_all_limited_timed(
        tu: &TranslationUnit,
        max_nodes: usize,
    ) -> (Vec<FunctionGraph>, Vec<GraphCapExceeded>, Duration) {
        let mut graphs = Vec::new();
        let mut skipped = Vec::new();
        let mut feas_time = Duration::ZERO;
        for f in tu.functions() {
            match Self::try_build_timed(f, max_nodes, &mut feas_time) {
                Ok(g) => graphs.push(g),
                Err(e) => skipped.push(e),
            }
        }
        (graphs, skipped, feas_time)
    }

    /// The function name.
    pub fn name(&self) -> &str {
        &self.func.name
    }

    /// Node ids whose facts contain a call to `name`.
    pub fn nodes_calling(&self, name: &str) -> Vec<NodeId> {
        self.cfg
            .node_ids()
            .filter(|&i| self.facts[i].calls_named(name))
            .collect()
    }

    /// Whether node `n` lies in an error-handling block.
    pub fn is_error_node(&self, n: NodeId) -> bool {
        self.error_nodes.contains(&n)
    }

    /// The 1-based source line of node `n`.
    pub fn line_of(&self, n: NodeId) -> u32 {
        self.cfg.nodes[n].span.line
    }

    /// Names of the function's pointer parameters.
    pub fn pointer_params(&self) -> Vec<&str> {
        self.func
            .params
            .iter()
            .filter(|p| p.ty.is_pointer())
            .filter_map(|p| p.name.as_deref())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use refminer_cparse::parse_str;

    #[test]
    fn builds_all_functions() {
        let tu = parse_str("t.c", "int a(void) { return 0; } int b(void) { return 1; }");
        let graphs = FunctionGraph::build_all(&tu);
        assert_eq!(graphs.len(), 2);
        assert_eq!(graphs[0].name(), "a");
        assert_eq!(graphs[1].name(), "b");
    }

    #[test]
    fn pointer_params_extracted() {
        let tu = parse_str(
            "t.c",
            "int f(struct device *dev, int count, char *name) { return 0; }",
        );
        let g = FunctionGraph::build(tu.function("f").unwrap());
        assert_eq!(g.pointer_params(), vec!["dev", "name"]);
    }

    #[test]
    fn error_nodes_wired_in() {
        let tu = parse_str(
            "t.c",
            r#"
int f(void)
{
        int ret = do_thing();
        if (ret < 0)
                return ret;
        return 0;
}
"#,
        );
        let g = FunctionGraph::build(tu.function("f").unwrap());
        assert!(!g.error_nodes.is_empty());
    }

    #[test]
    fn node_cap_skips_big_functions_only() {
        let mut body = String::from("int big(void) {\n");
        for i in 0..200 {
            body.push_str(&format!("        if (x{i}) do_thing({i});\n"));
        }
        body.push_str("        return 0;\n}\nint small(void) { return 0; }\n");
        let tu = parse_str("t.c", &body);
        let (graphs, skipped) = FunctionGraph::build_all_limited(&tu, 50);
        assert_eq!(graphs.len(), 1);
        assert_eq!(graphs[0].name(), "small");
        assert_eq!(skipped.len(), 1);
        assert_eq!(skipped[0].function, "big");
        assert!(skipped[0].nodes > 50);
    }

    #[test]
    fn line_numbers_exposed() {
        let tu = parse_str(
            "t.c",
            "int f(void)\n{\n        do_thing();\n        return 0;\n}\n",
        );
        let g = FunctionGraph::build(tu.function("f").unwrap());
        let call = g.nodes_calling("do_thing")[0];
        assert_eq!(g.line_of(call), 3);
    }
}

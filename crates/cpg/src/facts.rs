//! Per-node semantic facts extracted from CFG node payloads.
//!
//! The checkers never re-walk ASTs: every node of a
//! [`FunctionGraph`](crate::FunctionGraph) carries a [`NodeFacts`] with
//! the calls, assignments, dereferences, NULL/error checks and return
//! shape found in its payload. These correspond to the paper's semantic
//! operators (𝒢, 𝒫, 𝒜, 𝒟, ...) once an API knowledge base assigns
//! refcounting meaning to call names.

use refminer_cparse::{BinOp, Expr, ExprKind, UnOp};

use crate::cfg::{CfgNode, NodeKind, Payload};

/// One argument of a call, reduced to what the checkers need.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgFact {
    /// The root variable of the argument expression, if any
    /// (`&serial->disc_mutex` → `serial`).
    pub root: Option<String>,
    /// Whether the argument is syntactically `NULL` or literal `0`.
    pub is_null: bool,
}

/// A direct call `name(args...)` found in a node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallFact {
    /// Callee name.
    pub name: String,
    /// Reduced arguments.
    pub args: Vec<ArgFact>,
}

impl CallFact {
    /// Root variable of argument `i`, if present.
    pub fn arg_root(&self, i: usize) -> Option<&str> {
        self.args.get(i).and_then(|a| a.root.as_deref())
    }
}

/// Where an assignment stores to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreTarget {
    /// A plain local variable: `v = ...`.
    Var(String),
    /// A field of some object: `obj->field = ...` (root kept).
    Field {
        /// Root variable of the written object.
        root: String,
        /// The field name.
        field: String,
    },
    /// A dereference store `*p = ...` or array store `p[i] = ...`.
    Indirect(String),
    /// Anything else.
    Other,
}

/// An assignment found in a node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AssignFact {
    /// Destination shape.
    pub target: StoreTarget,
    /// If the right-hand side is (or ends in) a direct call, its name.
    pub rhs_call: Option<String>,
    /// If the right-hand side is a plain variable/member chain, its
    /// root variable.
    pub rhs_root: Option<String>,
}

/// A NULL-ness or error-ness test appearing in a condition node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckFact {
    /// `!p` or `p == NULL` — true branch means the pointer is NULL.
    NullOnTrue(String),
    /// `p` or `p != NULL` — true branch means the pointer is valid.
    NonNullOnTrue(String),
    /// `ret < 0`, `ret`, `IS_ERR(p)`, `unlikely(err)` — true branch is
    /// the error path.
    ErrOnTrue(String),
    /// `IS_ERR(p)` / `IS_ERR_OR_NULL(p)` specifically — the pointer is
    /// an error sentinel on the true branch (no reference held).
    ErrPtrOnTrue(String),
    /// `!ret`, `ret == 0` — true branch is the success path.
    OkOnTrue(String),
}

/// The digest of a single CFG node.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NodeFacts {
    /// All direct calls, outermost-first.
    pub calls: Vec<CallFact>,
    /// All assignments (including declaration initializers; a
    /// declaration `T *v = f(x)` yields `v = f(x)`).
    pub assigns: Vec<AssignFact>,
    /// Root variables dereferenced in the node (through `->`, `*`, `[]`,
    /// or `.` on a pointer-ish chain).
    pub derefs: Vec<String>,
    /// For condition nodes, the recognized checks.
    pub checks: Vec<CheckFact>,
    /// For return nodes: the returned root variable, if a simple one.
    pub returns_var: Option<String>,
    /// For return nodes: whether the value is a (possibly wrapped)
    /// negative error constant, `-EINVAL`-style.
    pub returns_error: bool,
    /// Whether this node is a `return` at all.
    pub is_return: bool,
}

impl NodeFacts {
    /// Extracts facts from a CFG node.
    pub fn of(node: &CfgNode) -> NodeFacts {
        let mut f = NodeFacts::default();
        match &node.kind {
            NodeKind::Stmt(Payload::Expr(e)) => {
                f.absorb_expr(e);
            }
            NodeKind::Stmt(Payload::Decl(decls)) => {
                for d in decls {
                    if let Some(refminer_cparse::Initializer::Expr(init)) = &d.init {
                        f.absorb_expr(init);
                        f.assigns.push(AssignFact {
                            target: StoreTarget::Var(d.name.clone()),
                            rhs_call: init.as_direct_call().map(|(n, _)| n.to_string()),
                            rhs_root: init.root_var().map(str::to_string),
                        });
                    }
                }
            }
            NodeKind::Stmt(Payload::Return(value)) => {
                f.is_return = true;
                if let Some(v) = value {
                    f.absorb_expr(v);
                    f.returns_var = v.root_var().map(str::to_string);
                    f.returns_error = is_error_value(v);
                }
            }
            NodeKind::Cond(c) => {
                f.absorb_expr(c);
                extract_checks(c, true, &mut f.checks);
            }
            NodeKind::MacroLoopHead { args, .. } => {
                for a in args {
                    f.absorb_expr(a);
                }
            }
            NodeKind::Case(e) => {
                f.absorb_expr(e);
            }
            _ => {}
        }
        f
    }

    /// Whether the node calls `name` at all.
    pub fn calls_named(&self, name: &str) -> bool {
        self.calls.iter().any(|c| c.name == name)
    }

    /// The first call to `name`, if any.
    pub fn call(&self, name: &str) -> Option<&CallFact> {
        self.calls.iter().find(|c| c.name == name)
    }

    /// Whether the node dereferences the variable `var`.
    pub fn derefs_var(&self, var: &str) -> bool {
        self.derefs.iter().any(|d| d == var)
    }

    fn absorb_expr(&mut self, e: &Expr) {
        collect_calls(e, &mut self.calls);
        collect_derefs(e, &mut self.derefs);
        collect_assigns(e, &mut self.assigns);
    }
}

fn reduce_arg(e: &Expr) -> ArgFact {
    let is_null = match &e.kind {
        ExprKind::Ident(s) => s == "NULL",
        ExprKind::IntLit(0) => true,
        ExprKind::Cast { expr, .. } => matches!(expr.kind, ExprKind::IntLit(0)),
        _ => false,
    };
    ArgFact {
        root: e.root_var().map(str::to_string),
        is_null,
    }
}

fn collect_calls(e: &Expr, out: &mut Vec<CallFact>) {
    e.walk(&mut |sub| {
        if let ExprKind::Call { callee, args } = &sub.kind {
            if let Some(name) = callee.as_ident() {
                out.push(CallFact {
                    name: name.to_string(),
                    args: args.iter().map(reduce_arg).collect(),
                });
            }
        }
    });
}

fn collect_derefs(e: &Expr, out: &mut Vec<String>) {
    e.walk(&mut |sub| {
        let root = match &sub.kind {
            ExprKind::Member { base, arrow, .. } => {
                if *arrow {
                    base.root_var()
                } else {
                    None
                }
            }
            ExprKind::Unary {
                op: UnOp::Deref,
                operand,
            } => operand.root_var(),
            ExprKind::Index { base, .. } => base.root_var(),
            _ => None,
        };
        if let Some(r) = root {
            if !out.iter().any(|o| o == r) {
                out.push(r.to_string());
            }
        }
    });
}

fn collect_assigns(e: &Expr, out: &mut Vec<AssignFact>) {
    e.walk(&mut |sub| {
        if let ExprKind::Assign { lhs, rhs, .. } = &sub.kind {
            let target = match &lhs.kind {
                ExprKind::Ident(v) => StoreTarget::Var(v.clone()),
                ExprKind::Member { base, field, .. } => match base.root_var() {
                    Some(root) => StoreTarget::Field {
                        root: root.to_string(),
                        field: field.clone(),
                    },
                    None => StoreTarget::Other,
                },
                ExprKind::Unary {
                    op: UnOp::Deref,
                    operand,
                } => match operand.root_var() {
                    Some(root) => StoreTarget::Indirect(root.to_string()),
                    None => StoreTarget::Other,
                },
                ExprKind::Index { base, .. } => match base.root_var() {
                    Some(root) => StoreTarget::Indirect(root.to_string()),
                    None => StoreTarget::Other,
                },
                _ => StoreTarget::Other,
            };
            out.push(AssignFact {
                target,
                rhs_call: rhs.as_direct_call().map(|(n, _)| n.to_string()),
                rhs_root: rhs.root_var().map(str::to_string),
            });
        }
    });
}

/// Whether an expression is an error value: `-E...`, `ERR_PTR(..)`,
/// a negative literal, or `NULL`.
fn is_error_value(e: &Expr) -> bool {
    match &e.kind {
        ExprKind::Unary {
            op: UnOp::Neg,
            operand,
        } => {
            matches!(
                &operand.kind,
                ExprKind::Ident(name) if name.starts_with('E')
            ) || matches!(operand.kind, ExprKind::IntLit(_))
        }
        ExprKind::IntLit(v) => *v < 0,
        ExprKind::Ident(name) => name == "NULL",
        ExprKind::Call { callee, .. } => {
            matches!(callee.as_ident(), Some("ERR_PTR") | Some("ERR_CAST"))
        }
        ExprKind::Cast { expr, .. } => is_error_value(expr),
        _ => false,
    }
}

/// Whether a variable name conventionally holds an error code.
pub(crate) fn errish_name(name: &str) -> bool {
    matches!(
        name,
        "ret" | "err" | "error" | "rc" | "status" | "res" | "result" | "retval" | "rv"
    ) || name.ends_with("_ret")
        || name.ends_with("_err")
        || name.ends_with("_rc")
}

/// Recognizes NULL/error checks in a condition expression.
///
/// `polarity` is true when the expression's truth selects the True CFG
/// edge; `!` flips it.
pub(crate) fn extract_checks(e: &Expr, polarity: bool, out: &mut Vec<CheckFact>) {
    match &e.kind {
        ExprKind::Unary {
            op: UnOp::Not,
            operand,
        } => {
            // `!x` — recurse with flipped polarity, but also recognize
            // the direct `!ptr` / `!ret` shapes.
            match &operand.kind {
                ExprKind::Ident(v) => {
                    if polarity {
                        out.push(CheckFact::NullOnTrue(v.clone()));
                        if errish_name(v) {
                            out.push(CheckFact::OkOnTrue(v.clone()));
                        }
                    } else {
                        out.push(CheckFact::NonNullOnTrue(v.clone()));
                        if errish_name(v) {
                            out.push(CheckFact::ErrOnTrue(v.clone()));
                        }
                    }
                }
                _ => extract_checks(operand, !polarity, out),
            }
        }
        ExprKind::Ident(v) => {
            // A bare `if (x)` is an error check only when the variable
            // *names* an error code (`ret`, `err`, ...); for pointers
            // the true branch means "valid", which must not be
            // classified as error handling.
            if polarity {
                out.push(CheckFact::NonNullOnTrue(v.clone()));
                if errish_name(v) {
                    out.push(CheckFact::ErrOnTrue(v.clone()));
                }
            } else {
                out.push(CheckFact::NullOnTrue(v.clone()));
                if errish_name(v) {
                    out.push(CheckFact::OkOnTrue(v.clone()));
                }
            }
        }
        ExprKind::Binary { op, lhs, rhs } => match op {
            BinOp::Eq | BinOp::Ne => {
                // For `p == NULL` with normal polarity, the True edge
                // means p *is* NULL; `!=` or a negation flips that.
                let eq_on_true = (*op == BinOp::Eq) == polarity;
                let flipped = !eq_on_true;
                // `p == NULL` (flipped=false when polarity true & Eq).
                let (var, against_null, against_zero) = match (&lhs.kind, &rhs.kind) {
                    (ExprKind::Ident(v), other) | (other, ExprKind::Ident(v)) if matches!(other, ExprKind::Ident(n) if n == "NULL") => {
                        (Some(v.clone()), true, false)
                    }
                    (ExprKind::Ident(v), ExprKind::IntLit(0))
                    | (ExprKind::IntLit(0), ExprKind::Ident(v)) => (Some(v.clone()), false, true),
                    _ => (None, false, false),
                };
                if let Some(v) = var {
                    if against_null {
                        if flipped {
                            out.push(CheckFact::NonNullOnTrue(v));
                        } else {
                            out.push(CheckFact::NullOnTrue(v));
                        }
                    } else if against_zero {
                        if flipped {
                            out.push(CheckFact::ErrOnTrue(v));
                        } else {
                            out.push(CheckFact::OkOnTrue(v));
                        }
                    }
                }
            }
            BinOp::Lt => {
                // `ret < 0`.
                if let (ExprKind::Ident(v), ExprKind::IntLit(0)) = (&lhs.kind, &rhs.kind) {
                    if polarity {
                        out.push(CheckFact::ErrOnTrue(v.clone()));
                    } else {
                        out.push(CheckFact::OkOnTrue(v.clone()));
                    }
                }
            }
            BinOp::And | BinOp::Or => {
                extract_checks(lhs, polarity, out);
                extract_checks(rhs, polarity, out);
            }
            _ => {}
        },
        ExprKind::Call { callee, args } => match callee.as_ident() {
            Some("IS_ERR") | Some("IS_ERR_OR_NULL") => {
                if let Some(v) = args.first().and_then(|a| a.root_var()) {
                    if polarity {
                        out.push(CheckFact::ErrOnTrue(v.to_string()));
                        out.push(CheckFact::ErrPtrOnTrue(v.to_string()));
                    } else {
                        out.push(CheckFact::OkOnTrue(v.to_string()));
                    }
                }
            }
            Some("unlikely") | Some("likely") => {
                if let Some(a) = args.first() {
                    extract_checks(a, polarity, out);
                }
            }
            _ => {}
        },
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use refminer_clex::Span;
    use refminer_cparse::{parse_expr_str, parse_stmts_str, StmtKind};

    fn facts_of_stmt(src: &str) -> NodeFacts {
        let stmts = parse_stmts_str(src);
        let node = match &stmts[0].kind {
            StmtKind::Expr(e) => CfgNode {
                kind: NodeKind::Stmt(Payload::Expr(e.clone())),
                span: Span::default(),
                loops: Vec::new(),
            },
            StmtKind::Decl(d) => CfgNode {
                kind: NodeKind::Stmt(Payload::Decl(d.clone())),
                span: Span::default(),
                loops: Vec::new(),
            },
            StmtKind::Return(v) => CfgNode {
                kind: NodeKind::Stmt(Payload::Return(v.clone())),
                span: Span::default(),
                loops: Vec::new(),
            },
            other => panic!("unsupported test stmt {other:?}"),
        };
        NodeFacts::of(&node)
    }

    fn facts_of_cond(src: &str) -> NodeFacts {
        let e = parse_expr_str(src);
        NodeFacts::of(&CfgNode {
            kind: NodeKind::Cond(e),
            span: Span::default(),
            loops: Vec::new(),
        })
    }

    #[test]
    fn call_facts() {
        let f = facts_of_stmt("of_node_put(np);");
        assert!(f.calls_named("of_node_put"));
        assert_eq!(f.call("of_node_put").unwrap().arg_root(0), Some("np"));
    }

    #[test]
    fn nested_call_facts() {
        let f = facts_of_stmt("register_thing(of_find_node_by_name(NULL, name));");
        assert!(f.calls_named("register_thing"));
        assert!(f.calls_named("of_find_node_by_name"));
        assert!(f.call("of_find_node_by_name").unwrap().args[0].is_null);
    }

    #[test]
    fn decl_initializer_becomes_assign() {
        let f = facts_of_stmt("struct device *dev = bus_find_device(bus, NULL, np, m);");
        assert_eq!(f.assigns.len(), 1);
        assert_eq!(f.assigns[0].target, StoreTarget::Var("dev".to_string()));
        assert_eq!(f.assigns[0].rhs_call.as_deref(), Some("bus_find_device"));
    }

    #[test]
    fn member_store_target() {
        let f = facts_of_stmt("priv->node = np;");
        assert_eq!(
            f.assigns[0].target,
            StoreTarget::Field {
                root: "priv".into(),
                field: "node".into()
            }
        );
        assert_eq!(f.assigns[0].rhs_root.as_deref(), Some("np"));
    }

    #[test]
    fn deref_detection() {
        let f = facts_of_stmt("x = serial->port[0];");
        assert!(f.derefs_var("serial"));
        let f = facts_of_stmt("y = *ptr;");
        assert!(f.derefs_var("ptr"));
        let f = facts_of_stmt("z = plain;");
        assert!(f.derefs.is_empty());
    }

    #[test]
    fn return_error_shapes() {
        assert!(facts_of_stmt("return -EINVAL;").returns_error);
        assert!(facts_of_stmt("return ERR_PTR(-ENOMEM);").returns_error);
        assert!(facts_of_stmt("return NULL;").returns_error);
        let f = facts_of_stmt("return ret;");
        assert!(!f.returns_error);
        assert_eq!(f.returns_var.as_deref(), Some("ret"));
    }

    #[test]
    fn null_checks() {
        let f = facts_of_cond("!dev");
        assert!(f.checks.contains(&CheckFact::NullOnTrue("dev".into())));
        let f = facts_of_cond("dev == NULL");
        assert!(f.checks.contains(&CheckFact::NullOnTrue("dev".into())));
        let f = facts_of_cond("dev != NULL");
        assert!(f.checks.contains(&CheckFact::NonNullOnTrue("dev".into())));
        let f = facts_of_cond("dev");
        assert!(f.checks.contains(&CheckFact::NonNullOnTrue("dev".into())));
    }

    #[test]
    fn error_checks() {
        let f = facts_of_cond("ret < 0");
        assert!(f.checks.contains(&CheckFact::ErrOnTrue("ret".into())));
        let f = facts_of_cond("IS_ERR(clk)");
        assert!(f.checks.contains(&CheckFact::ErrOnTrue("clk".into())));
        let f = facts_of_cond("unlikely(ret < 0)");
        assert!(f.checks.contains(&CheckFact::ErrOnTrue("ret".into())));
        let f = facts_of_cond("!ret");
        assert!(f.checks.contains(&CheckFact::OkOnTrue("ret".into())));
    }

    #[test]
    fn compound_condition_checks() {
        let f = facts_of_cond("!np || ret < 0");
        assert!(f.checks.contains(&CheckFact::NullOnTrue("np".into())));
        assert!(f.checks.contains(&CheckFact::ErrOnTrue("ret".into())));
    }
}

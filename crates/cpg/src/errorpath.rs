//! Error-handling-block classification (the paper's `B_error` context).
//!
//! Two shapes count as error handling in kernel code (§7 "two kinds of
//! error-handling locations"):
//!
//! 1. the *premature exit*: the True branch of a check like
//!    `if (ret < 0)`, `if (!ptr)`, `if (IS_ERR(x))` that leads to a
//!    `return`/`goto` before the function's main work completes;
//! 2. the *error label*: statements following labels named `err*`,
//!    `out*`, `fail*`, `cleanup*`, ...

use std::collections::HashSet;

use crate::cfg::{Cfg, EdgeKind, NodeId, NodeKind};
use crate::facts::{CheckFact, NodeFacts};

/// Label names that conventionally begin error-handling code.
pub fn is_error_label(name: &str) -> bool {
    let n = name.to_ascii_lowercase();
    n.starts_with("err")
        || n.starts_with("out")
        || n.starts_with("fail")
        || n.starts_with("bail")
        || n.starts_with("cleanup")
        || n.starts_with("unwind")
        || n.starts_with("free")
        || n.starts_with("put")
        || n.starts_with("release")
        || n.starts_with("undo")
        || n.starts_with("abort")
        || n.starts_with("drop")
        || n.starts_with("unlock")
        || n.starts_with("unmap")
        || n.starts_with("disable")
        || n.starts_with("exit")
}

/// Computes the set of nodes that belong to error-handling blocks.
///
/// `facts` must be parallel to `cfg.nodes`.
pub fn error_nodes(cfg: &Cfg, facts: &[NodeFacts]) -> HashSet<NodeId> {
    let mut marked: HashSet<NodeId> = HashSet::new();

    // Shape 2: error labels color everything that follows them up to
    // the exit (flood along Fall/Goto edges, stopping at fresh labels
    // that are *not* error labels).
    for n in cfg.node_ids() {
        if let NodeKind::Label(name) = &cfg.nodes[n].kind {
            if is_error_label(name) {
                flood_forward(cfg, n, &mut marked);
            }
        }
    }

    // Shape 1: the True branch of an error check, when it is a short
    // bail-out region (reaches exit without re-joining long code). We
    // approximate "bail-out" as: every node in the flooded region is a
    // straight-line statement, and the region ends in return/goto.
    for n in cfg.node_ids() {
        let is_err_cond = matches!(cfg.nodes[n].kind, NodeKind::Cond(_))
            && facts[n]
                .checks
                .iter()
                .any(|c| matches!(c, CheckFact::ErrOnTrue(_) | CheckFact::NullOnTrue(_)));
        if !is_err_cond {
            continue;
        }
        for &(succ, kind) in cfg.succs(n) {
            if kind != EdgeKind::True {
                continue;
            }
            if let Some(region) = bailout_region(cfg, succ) {
                marked.extend(region);
            }
        }
    }
    marked
}

/// Computes the nodes belonging to NULL-guard bailouts of `var`: the
/// True-branch regions of checks like `if (!var) return -ENODEV;` or
/// `if (IS_ERR(var)) return PTR_ERR(var);`.
///
/// When an acquired pointer is NULL (or an `ERR_PTR` sentinel), no
/// reference was taken, so the bailout legitimately skips the
/// decrement; checkers exclude these regions from "leaky error path"
/// matching.
pub fn null_guard_nodes(cfg: &Cfg, facts: &[NodeFacts], var: &str) -> HashSet<NodeId> {
    let mut marked = HashSet::new();
    for n in cfg.node_ids() {
        let guards = matches!(cfg.nodes[n].kind, NodeKind::Cond(_))
            && facts[n].checks.iter().any(|c| {
                matches!(c,
                    CheckFact::NullOnTrue(v) | CheckFact::ErrPtrOnTrue(v) if v == var)
            });
        if !guards {
            continue;
        }
        for &(succ, kind) in cfg.succs(n) {
            if kind != EdgeKind::True {
                continue;
            }
            if let Some(region) = bailout_region(cfg, succ) {
                marked.extend(region);
            }
        }
    }
    marked
}

/// Floods forward along non-back edges from `start`, inserting into
/// `marked`.
fn flood_forward(cfg: &Cfg, start: NodeId, marked: &mut HashSet<NodeId>) {
    let mut stack = vec![start];
    while let Some(n) = stack.pop() {
        if !marked.insert(n) {
            continue;
        }
        for &(s, kind) in cfg.succs(n) {
            if kind == EdgeKind::Back {
                continue;
            }
            stack.push(s);
        }
    }
}

/// If the region starting at `start` is a short straight bail-out
/// (statements then return/goto/exit, no branching back into main
/// code), returns its node set.
fn bailout_region(cfg: &Cfg, start: NodeId) -> Option<Vec<NodeId>> {
    let mut region = Vec::new();
    let mut cur = start;
    for _ in 0..32 {
        match &cfg.nodes[cur].kind {
            NodeKind::Exit => return Some(region),
            NodeKind::Stmt(payload) => {
                region.push(cur);
                use crate::cfg::Payload;
                match payload {
                    Payload::Return(_) | Payload::Goto(_) | Payload::Break | Payload::Continue => {
                        return Some(region);
                    }
                    _ => {}
                }
            }
            NodeKind::Label(_) => {
                // Entering a label means joining shared code; only an
                // error label keeps the region an error region (it is
                // already flooded by shape 2 anyway).
                return Some(region);
            }
            NodeKind::Cond(_) | NodeKind::MacroLoopHead { .. } => return None,
            _ => region.push(cur),
        }
        let mut next = None;
        for &(s, kind) in cfg.succs(cur) {
            if kind == EdgeKind::Back {
                continue;
            }
            if next.is_some() {
                return None; // Branches: not a straight bail-out.
            }
            next = Some(s);
        }
        cur = next?;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::facts::NodeFacts;
    use refminer_cparse::parse_str;

    fn analyze(body: &str) -> (Cfg, Vec<NodeFacts>, HashSet<NodeId>) {
        let src =
            format!("int f(struct device *dev) {{ struct device_node *np; int ret; {body} }}");
        let tu = parse_str("t.c", &src);
        let cfg = Cfg::build(tu.function("f").unwrap());
        let facts: Vec<NodeFacts> = cfg.nodes.iter().map(NodeFacts::of).collect();
        let errs = error_nodes(&cfg, &facts);
        (cfg, facts, errs)
    }

    #[test]
    fn error_label_names() {
        assert!(is_error_label("err"));
        assert!(is_error_label("err_unmap"));
        assert!(is_error_label("out_free"));
        assert!(is_error_label("fail2"));
        assert!(!is_error_label("retry"));
        assert!(!is_error_label("loop_top"));
    }

    #[test]
    fn premature_return_is_error_block() {
        let (cfg, facts, errs) =
            analyze("ret = do_thing(); if (ret < 0) return ret; do_more(); return 0;");
        // The `return ret` inside the check must be marked.
        let ret_nodes: Vec<_> = cfg
            .node_ids()
            .filter(|&i| facts[i].is_return && facts[i].returns_var.as_deref() == Some("ret"))
            .collect();
        assert!(ret_nodes.iter().any(|n| errs.contains(n)));
        // The trailing `return 0` must not be.
        let final_ret = cfg
            .node_ids()
            .find(|&i| facts[i].is_return && facts[i].returns_var.is_none())
            .unwrap();
        assert!(!errs.contains(&final_ret));
    }

    #[test]
    fn error_label_block_marked() {
        let (cfg, facts, errs) = analyze(
            "ret = do_thing(); if (ret) goto err_put; return 0; err_put: of_node_put(np); return ret;",
        );
        let put = cfg
            .node_ids()
            .find(|&i| facts[i].calls_named("of_node_put"))
            .unwrap();
        assert!(errs.contains(&put));
    }

    #[test]
    fn null_check_bailout_marked() {
        let (cfg, facts, errs) =
            analyze("np = find_thing(); if (!np) return -ENODEV; use_thing(np); return 0;");
        let bail = cfg
            .node_ids()
            .find(|&i| facts[i].is_return && facts[i].returns_error)
            .unwrap();
        assert!(errs.contains(&bail));
        let use_node = cfg
            .node_ids()
            .find(|&i| facts[i].calls_named("use_thing"))
            .unwrap();
        assert!(!errs.contains(&use_node));
    }

    #[test]
    fn success_path_not_marked() {
        let (cfg, facts, errs) = analyze("do_a(); do_b(); return 0;");
        for i in cfg.node_ids() {
            let _ = &facts[i];
            assert!(!errs.contains(&i));
        }
    }

    #[test]
    fn nested_goto_chain_into_shared_label() {
        // The staged-teardown idiom: a later failure jumps to `err_b`,
        // which falls through into the shared `err_a` tail. Every stage
        // of the chain is error-handling code.
        let (cfg, facts, errs) = analyze(
            "ret = do_a(); if (ret) goto err_a; \
             ret = do_b(); if (ret) goto err_b; \
             return 0; \
             err_b: undo_b(np); \
             err_a: undo_a(np); return ret;",
        );
        let undo_b = cfg
            .node_ids()
            .find(|&i| facts[i].calls_named("undo_b"))
            .unwrap();
        let undo_a = cfg
            .node_ids()
            .find(|&i| facts[i].calls_named("undo_a"))
            .unwrap();
        assert!(errs.contains(&undo_b), "first chain stage marked");
        assert!(errs.contains(&undo_a), "shared tail label marked");
        // The success return before the labels stays clean.
        let ok_ret = cfg
            .node_ids()
            .find(|&i| facts[i].is_return && facts[i].returns_var.is_none())
            .unwrap();
        assert!(!errs.contains(&ok_ret));
    }

    #[test]
    fn is_err_or_null_guard_marked() {
        let (cfg, facts, errs) = analyze(
            "np = find_thing(); if (IS_ERR_OR_NULL(np)) return -EINVAL; \
             use_thing(np); return 0;",
        );
        let bail = cfg
            .node_ids()
            .find(|&i| facts[i].is_return && facts[i].returns_error)
            .unwrap();
        assert!(
            errs.contains(&bail),
            "IS_ERR_OR_NULL bailout is an error block"
        );
        // And it counts as a NULL guard of `np` for the checkers'
        // acquisition-failed exclusion.
        let guards = null_guard_nodes(&cfg, &facts, "np");
        assert!(guards.contains(&bail));
        let use_node = cfg
            .node_ids()
            .find(|&i| facts[i].calls_named("use_thing"))
            .unwrap();
        assert!(!errs.contains(&use_node));
    }

    #[test]
    fn early_return_einval_without_label() {
        // Argument validation with no cleanup label at all.
        let (cfg, facts, errs) = analyze("if (!dev) return -EINVAL; do_work(dev); return 0;");
        let bail = cfg
            .node_ids()
            .find(|&i| facts[i].is_return && facts[i].returns_error)
            .unwrap();
        assert!(
            errs.contains(&bail),
            "label-less early return is an error block"
        );
        let work = cfg
            .node_ids()
            .find(|&i| facts[i].calls_named("do_work"))
            .unwrap();
        assert!(!errs.contains(&work));
    }

    #[test]
    fn error_shapes_keep_stable_feasibility_tags() {
        // Genuine error paths through each shape must never be tagged
        // Infeasible, and the tag must be deterministic across
        // recomputation (findings cache on it).
        use crate::feasibility::{FeasAnalysis, Feasibility};
        use crate::paths::{PathQuery, Step};
        let bodies = [
            // Nested goto chain into a shared label.
            "get_thing(np); ret = do_a(dev); if (ret) goto err_b; \
             put_thing(np); return 0; err_b: undo_b(np); err_a: return ret;",
            // IS_ERR_OR_NULL guard.
            "get_thing(np); if (IS_ERR_OR_NULL(np)) return -EINVAL; \
             ret = do_a(dev); if (ret) return ret; put_thing(np); return 0;",
            // Early return without a label.
            "get_thing(np); if (!dev) return -EINVAL; \
             ret = do_a(dev); if (ret) return ret; put_thing(np); return 0;",
        ];
        for body in bodies {
            let (cfg, facts, _) = analyze(body);
            let q = PathQuery::new(vec![
                Step::new(|n| facts[n].calls_named("get_thing")),
                Step::new(|n| n == cfg.exit).avoiding(|n| facts[n].calls_named("put_thing")),
            ]);
            assert!(
                q.search_from_entry(&cfg).is_some(),
                "leaky path exists: {body}"
            );
            let first = FeasAnalysis::compute(&cfg, &facts).classify(&q, &cfg, cfg.entry);
            let second = FeasAnalysis::compute(&cfg, &facts).classify(&q, &cfg, cfg.entry);
            assert_ne!(
                first,
                Feasibility::Infeasible,
                "real error path pruned: {body}"
            );
            assert_eq!(first, second, "feasibility tag unstable: {body}");
        }
    }
}

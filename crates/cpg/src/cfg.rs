//! Control-flow graph construction from function ASTs.

use refminer_clex::Span;
use refminer_cparse::{Block, Declaration, Expr, FunctionDef, Stmt, StmtKind};

/// Index of a node in a [`Cfg`].
pub type NodeId = usize;

/// The kind of a control-flow edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgeKind {
    /// Sequential fall-through.
    Fall,
    /// Taken branch of a condition.
    True,
    /// Not-taken branch of a condition.
    False,
    /// Loop back-edge.
    Back,
    /// A resolved `goto`.
    Goto,
    /// Dispatch from a `switch` head to a `case`/`default` marker.
    Case,
}

/// Statement payload carried by ordinary CFG nodes.
#[derive(Debug, Clone, PartialEq)]
pub enum Payload {
    /// An expression statement.
    Expr(Expr),
    /// A declaration statement (one entry per declarator).
    Decl(Vec<Declaration>),
    /// A `return`, with its value.
    Return(Option<Expr>),
    /// A `goto` (kept even after resolution, for matching).
    Goto(String),
    /// A `break`.
    Break,
    /// A `continue`.
    Continue,
    /// An empty statement.
    Empty,
}

/// What a CFG node is.
#[derive(Debug, Clone, PartialEq)]
pub enum NodeKind {
    /// The unique function entry.
    Entry,
    /// The unique function exit; all returns and the final fall-through
    /// lead here.
    Exit,
    /// An ordinary statement.
    Stmt(Payload),
    /// A branch condition (`if`/`while`/`for`/`do-while`/`switch`).
    Cond(Expr),
    /// The head of a macro-defined loop (*smartloop*). Iteration both
    /// tests and — for refcounting-embedded macros — adjusts refcounters,
    /// which is why it gets its own node kind.
    MacroLoopHead {
        /// Macro name, e.g. `for_each_child_of_node`.
        name: String,
        /// Macro arguments as written.
        args: Vec<Expr>,
    },
    /// A synthetic join used as a loop head for `do`/`for` loops.
    LoopHead,
    /// A `label:` marker.
    Label(String),
    /// A `case expr:` marker.
    Case(Expr),
    /// A `default:` marker.
    Default,
}

/// One node of the CFG.
#[derive(Debug, Clone)]
pub struct CfgNode {
    /// What the node is.
    pub kind: NodeKind,
    /// Source location.
    pub span: Span,
    /// Stack of enclosing loop-head node ids, innermost last. Used to
    /// answer "is this `break` inside that smartloop?".
    pub loops: Vec<NodeId>,
}

/// A per-function control-flow graph.
///
/// # Examples
///
/// ```
/// use refminer_cparse::parse_str;
/// use refminer_cpg::Cfg;
///
/// let tu = parse_str("t.c", "int f(int a) { if (a) return 1; return 0; }");
/// let cfg = Cfg::build(tu.function("f").unwrap());
/// assert!(cfg.nodes.len() >= 4);
/// assert!(!cfg.succs(cfg.entry).is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct Cfg {
    /// All nodes; indices are [`NodeId`]s.
    pub nodes: Vec<CfgNode>,
    /// Successor adjacency (parallel to `nodes`).
    pub succ: Vec<Vec<(NodeId, EdgeKind)>>,
    /// Predecessor adjacency (parallel to `nodes`).
    pub pred: Vec<Vec<(NodeId, EdgeKind)>>,
    /// The entry node id.
    pub entry: NodeId,
    /// The exit node id.
    pub exit: NodeId,
}

impl Cfg {
    /// Builds the CFG of a function body.
    pub fn build(func: &FunctionDef) -> Cfg {
        let mut b = Builder::new(func.span);
        let preds = vec![(b.cfg.entry, EdgeKind::Fall)];
        let dangling = b.build_block(&func.body, preds);
        for (n, k) in dangling {
            b.connect(n, b.cfg.exit, k);
        }
        b.resolve_gotos();
        b.cfg
    }

    /// Successors of a node.
    pub fn succs(&self, n: NodeId) -> &[(NodeId, EdgeKind)] {
        &self.succ[n]
    }

    /// Predecessors of a node.
    pub fn preds(&self, n: NodeId) -> &[(NodeId, EdgeKind)] {
        &self.pred[n]
    }

    /// Iterates node ids in creation (roughly source) order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        0..self.nodes.len()
    }

    /// All nodes whose kind matches a predicate.
    pub fn find_nodes(&self, mut pred: impl FnMut(&CfgNode) -> bool) -> Vec<NodeId> {
        self.node_ids().filter(|&i| pred(&self.nodes[i])).collect()
    }

    /// Whether `to` is reachable from `from` along CFG edges.
    pub fn reachable(&self, from: NodeId, to: NodeId) -> bool {
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![from];
        seen[from] = true;
        while let Some(n) = stack.pop() {
            if n == to {
                return true;
            }
            for &(s, _) in &self.succ[n] {
                if !seen[s] {
                    seen[s] = true;
                    stack.push(s);
                }
            }
        }
        false
    }
}

/// Dangling exits of a partially built region: edges waiting for their
/// destination node.
type Dangling = Vec<(NodeId, EdgeKind)>;

struct Builder {
    cfg: Cfg,
    /// Stack of break-collectors (innermost last).
    breaks: Vec<Vec<NodeId>>,
    /// Stack of continue targets (loop head ids, innermost last).
    continues: Vec<NodeId>,
    /// Loop-head context stack mirrored into created nodes.
    loop_ctx: Vec<NodeId>,
    /// Label name → node id.
    labels: std::collections::HashMap<String, NodeId>,
    /// Goto node id → target label, resolved at the end.
    gotos: Vec<(NodeId, String)>,
}

impl Builder {
    fn new(span: Span) -> Builder {
        let entry = CfgNode {
            kind: NodeKind::Entry,
            span,
            loops: Vec::new(),
        };
        let exit = CfgNode {
            kind: NodeKind::Exit,
            span,
            loops: Vec::new(),
        };
        Builder {
            cfg: Cfg {
                nodes: vec![entry, exit],
                succ: vec![Vec::new(), Vec::new()],
                pred: vec![Vec::new(), Vec::new()],
                entry: 0,
                exit: 1,
            },
            breaks: Vec::new(),
            continues: Vec::new(),
            loop_ctx: Vec::new(),
            labels: std::collections::HashMap::new(),
            gotos: Vec::new(),
        }
    }

    fn add_node(&mut self, kind: NodeKind, span: Span) -> NodeId {
        let id = self.cfg.nodes.len();
        self.cfg.nodes.push(CfgNode {
            kind,
            span,
            loops: self.loop_ctx.clone(),
        });
        self.cfg.succ.push(Vec::new());
        self.cfg.pred.push(Vec::new());
        id
    }

    fn connect(&mut self, from: NodeId, to: NodeId, kind: EdgeKind) {
        if !self.cfg.succ[from].contains(&(to, kind)) {
            self.cfg.succ[from].push((to, kind));
            self.cfg.pred[to].push((from, kind));
        }
    }

    fn connect_all(&mut self, preds: &Dangling, to: NodeId) {
        for &(n, k) in preds {
            self.connect(n, to, k);
        }
    }

    fn build_block(&mut self, block: &Block, mut preds: Dangling) -> Dangling {
        for stmt in &block.stmts {
            preds = self.build_stmt(stmt, preds);
        }
        preds
    }

    fn build_stmt(&mut self, stmt: &Stmt, preds: Dangling) -> Dangling {
        match &stmt.kind {
            StmtKind::Block(b) => self.build_block(b, preds),
            StmtKind::Empty => {
                // Do not materialize empty statements; pass through.
                preds
            }
            StmtKind::Expr(e) => {
                let n = self.add_node(NodeKind::Stmt(Payload::Expr(e.clone())), stmt.span);
                self.connect_all(&preds, n);
                vec![(n, EdgeKind::Fall)]
            }
            StmtKind::Decl(decls) => {
                let n = self.add_node(NodeKind::Stmt(Payload::Decl(decls.clone())), stmt.span);
                self.connect_all(&preds, n);
                vec![(n, EdgeKind::Fall)]
            }
            StmtKind::Return(v) => {
                let n = self.add_node(NodeKind::Stmt(Payload::Return(v.clone())), stmt.span);
                self.connect_all(&preds, n);
                let exit = self.cfg.exit;
                self.connect(n, exit, EdgeKind::Fall);
                Vec::new()
            }
            StmtKind::Goto(label) => {
                let n = self.add_node(NodeKind::Stmt(Payload::Goto(label.clone())), stmt.span);
                self.connect_all(&preds, n);
                self.gotos.push((n, label.clone()));
                Vec::new()
            }
            StmtKind::Break => {
                let n = self.add_node(NodeKind::Stmt(Payload::Break), stmt.span);
                self.connect_all(&preds, n);
                if let Some(collector) = self.breaks.last_mut() {
                    collector.push(n);
                } else {
                    // `break` outside a loop/switch: treat as exit.
                    let exit = self.cfg.exit;
                    self.connect(n, exit, EdgeKind::Fall);
                }
                Vec::new()
            }
            StmtKind::Continue => {
                let n = self.add_node(NodeKind::Stmt(Payload::Continue), stmt.span);
                self.connect_all(&preds, n);
                if let Some(&head) = self.continues.last() {
                    self.connect(n, head, EdgeKind::Back);
                } else {
                    let exit = self.cfg.exit;
                    self.connect(n, exit, EdgeKind::Fall);
                }
                Vec::new()
            }
            StmtKind::Label(name) => {
                let n = self.add_node(NodeKind::Label(name.clone()), stmt.span);
                self.connect_all(&preds, n);
                self.labels.insert(name.clone(), n);
                vec![(n, EdgeKind::Fall)]
            }
            StmtKind::Case(e) => {
                let n = self.add_node(NodeKind::Case(e.clone()), stmt.span);
                self.connect_all(&preds, n);
                vec![(n, EdgeKind::Fall)]
            }
            StmtKind::Default => {
                let n = self.add_node(NodeKind::Default, stmt.span);
                self.connect_all(&preds, n);
                vec![(n, EdgeKind::Fall)]
            }
            StmtKind::If { cond, then, els } => {
                let c = self.add_node(NodeKind::Cond(cond.clone()), stmt.span);
                self.connect_all(&preds, c);
                let mut out = self.build_stmt(then, vec![(c, EdgeKind::True)]);
                match els {
                    Some(e) => {
                        let else_out = self.build_stmt(e, vec![(c, EdgeKind::False)]);
                        out.extend(else_out);
                    }
                    None => out.push((c, EdgeKind::False)),
                }
                out
            }
            StmtKind::While { cond, body } => {
                let c = self.add_node(NodeKind::Cond(cond.clone()), stmt.span);
                self.connect_all(&preds, c);
                self.breaks.push(Vec::new());
                self.continues.push(c);
                self.loop_ctx.push(c);
                let body_out = self.build_stmt(body, vec![(c, EdgeKind::True)]);
                self.loop_ctx.pop();
                self.continues.pop();
                let broken = self.breaks.pop().unwrap_or_default();
                for (n, _) in body_out {
                    self.connect(n, c, EdgeKind::Back);
                }
                let mut out: Dangling = vec![(c, EdgeKind::False)];
                out.extend(broken.into_iter().map(|n| (n, EdgeKind::Fall)));
                out
            }
            StmtKind::DoWhile { body, cond } => {
                let head = self.add_node(NodeKind::LoopHead, stmt.span);
                self.connect_all(&preds, head);
                let c = self.add_node(NodeKind::Cond(cond.clone()), stmt.span);
                self.breaks.push(Vec::new());
                self.continues.push(c);
                self.loop_ctx.push(head);
                let body_out = self.build_stmt(body, vec![(head, EdgeKind::Fall)]);
                self.loop_ctx.pop();
                self.continues.pop();
                let broken = self.breaks.pop().unwrap_or_default();
                self.connect_all(&body_out, c);
                self.connect(c, head, EdgeKind::Back);
                let mut out: Dangling = vec![(c, EdgeKind::False)];
                out.extend(broken.into_iter().map(|n| (n, EdgeKind::Fall)));
                out
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                let mut cur = preds;
                if let Some(i) = init {
                    cur = self.build_stmt(i, cur);
                }
                let head = match cond {
                    Some(c) => self.add_node(NodeKind::Cond(c.clone()), stmt.span),
                    None => self.add_node(NodeKind::LoopHead, stmt.span),
                };
                self.connect_all(&cur, head);
                // The step node sits between body end and head.
                let step_node = step
                    .as_ref()
                    .map(|s| self.add_node(NodeKind::Stmt(Payload::Expr(s.clone())), stmt.span));
                let back_target = head;
                self.breaks.push(Vec::new());
                self.continues.push(step_node.unwrap_or(head));
                self.loop_ctx.push(head);
                let body_out = self.build_stmt(body, vec![(head, EdgeKind::True)]);
                self.loop_ctx.pop();
                self.continues.pop();
                let broken = self.breaks.pop().unwrap_or_default();
                match step_node {
                    Some(sn) => {
                        self.connect_all(&body_out, sn);
                        self.connect(sn, back_target, EdgeKind::Back);
                    }
                    None => {
                        for (n, _) in body_out {
                            self.connect(n, back_target, EdgeKind::Back);
                        }
                    }
                }
                let mut out: Dangling = match cond {
                    Some(_) => vec![(head, EdgeKind::False)],
                    None => Vec::new(),
                };
                out.extend(broken.into_iter().map(|n| (n, EdgeKind::Fall)));
                out
            }
            StmtKind::MacroLoop { name, args, body } => {
                let head = self.add_node(
                    NodeKind::MacroLoopHead {
                        name: name.clone(),
                        args: args.clone(),
                    },
                    stmt.span,
                );
                self.connect_all(&preds, head);
                self.breaks.push(Vec::new());
                self.continues.push(head);
                self.loop_ctx.push(head);
                let body_out = self.build_stmt(body, vec![(head, EdgeKind::True)]);
                self.loop_ctx.pop();
                self.continues.pop();
                let broken = self.breaks.pop().unwrap_or_default();
                for (n, _) in body_out {
                    self.connect(n, head, EdgeKind::Back);
                }
                let mut out: Dangling = vec![(head, EdgeKind::False)];
                out.extend(broken.into_iter().map(|n| (n, EdgeKind::Fall)));
                out
            }
            StmtKind::Switch { cond, body } => {
                let c = self.add_node(NodeKind::Cond(cond.clone()), stmt.span);
                self.connect_all(&preds, c);
                self.breaks.push(Vec::new());
                // Build the body with *no* fall-in; case markers receive
                // Case edges from the switch head afterwards.
                let body_out = self.build_stmt(body, Vec::new());
                let broken = self.breaks.pop().unwrap_or_default();
                // Wire dispatch edges.
                let mut has_default = false;
                let case_ids: Vec<NodeId> = self
                    .cfg
                    .nodes
                    .iter()
                    .enumerate()
                    .filter(|(i, n)| {
                        *i > c
                            && matches!(n.kind, NodeKind::Case(_) | NodeKind::Default)
                            && n.loops == self.cfg.nodes[c].loops
                            // A case already dispatched belongs to a
                            // nested switch built earlier.
                            && self.cfg.pred[*i].iter().all(|&(_, k)| k != EdgeKind::Case)
                    })
                    .map(|(i, _)| i)
                    .collect();
                for id in case_ids {
                    if matches!(self.cfg.nodes[id].kind, NodeKind::Default) {
                        has_default = true;
                    }
                    self.connect(c, id, EdgeKind::Case);
                }
                let mut out: Dangling = body_out;
                if !has_default {
                    out.push((c, EdgeKind::False));
                }
                out.extend(broken.into_iter().map(|n| (n, EdgeKind::Fall)));
                out
            }
        }
    }

    fn resolve_gotos(&mut self) {
        let gotos = std::mem::take(&mut self.gotos);
        for (n, label) in gotos {
            match self.labels.get(&label) {
                Some(&target) => self.connect(n, target, EdgeKind::Goto),
                None => {
                    // Unknown label (macro-hidden or parse loss): treat
                    // as function exit so paths stay conservative.
                    let exit = self.cfg.exit;
                    self.connect(n, exit, EdgeKind::Goto);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use refminer_cparse::parse_str;

    fn cfg_of(body: &str) -> Cfg {
        let src = format!("int f(int a, int b) {{ {body} }}");
        let tu = parse_str("t.c", &src);
        Cfg::build(tu.function("f").expect("parsed"))
    }

    #[test]
    fn straight_line() {
        let cfg = cfg_of("a = 1; b = 2; return a;");
        // entry, exit + 3 statements.
        assert_eq!(cfg.nodes.len(), 5);
        assert!(cfg.reachable(cfg.entry, cfg.exit));
    }

    #[test]
    fn if_has_two_branches() {
        let cfg = cfg_of("if (a) b = 1; return b;");
        let conds = cfg.find_nodes(|n| matches!(n.kind, NodeKind::Cond(_)));
        assert_eq!(conds.len(), 1);
        let kinds: Vec<EdgeKind> = cfg.succs(conds[0]).iter().map(|&(_, k)| k).collect();
        assert!(kinds.contains(&EdgeKind::True));
        assert!(kinds.contains(&EdgeKind::False));
    }

    #[test]
    fn early_return_bypasses_rest() {
        let cfg = cfg_of("if (a) return 1; b = 2; return b;");
        let returns = cfg.find_nodes(|n| matches!(n.kind, NodeKind::Stmt(Payload::Return(_))));
        assert_eq!(returns.len(), 2);
        // Both returns flow to exit.
        for r in returns {
            assert!(cfg.succs(r).iter().any(|&(t, _)| t == cfg.exit));
        }
    }

    #[test]
    fn while_loop_has_back_edge() {
        let cfg = cfg_of("while (a) { a = a - 1; } return 0;");
        let mut back = 0;
        for n in cfg.node_ids() {
            back += cfg
                .succs(n)
                .iter()
                .filter(|&&(_, k)| k == EdgeKind::Back)
                .count();
        }
        assert_eq!(back, 1);
    }

    #[test]
    fn break_leaves_loop() {
        let cfg = cfg_of("while (a) { if (b) break; } return 0;");
        let breaks = cfg.find_nodes(|n| matches!(n.kind, NodeKind::Stmt(Payload::Break)));
        assert_eq!(breaks.len(), 1);
        // The break's successor is the return statement, not the head.
        let (succ, _) = cfg.succs(breaks[0])[0];
        assert!(matches!(
            cfg.nodes[succ].kind,
            NodeKind::Stmt(Payload::Return(_))
        ));
    }

    #[test]
    fn continue_goes_to_head() {
        let cfg = cfg_of("while (a) { if (b) continue; b = 1; } return 0;");
        let conts = cfg.find_nodes(|n| matches!(n.kind, NodeKind::Stmt(Payload::Continue)));
        assert_eq!(conts.len(), 1);
        let (succ, kind) = cfg.succs(conts[0])[0];
        assert_eq!(kind, EdgeKind::Back);
        assert!(matches!(cfg.nodes[succ].kind, NodeKind::Cond(_)));
    }

    #[test]
    fn goto_resolves_to_label() {
        let cfg = cfg_of("if (a) goto out; b = 1; out: return b;");
        let gotos = cfg.find_nodes(|n| matches!(n.kind, NodeKind::Stmt(Payload::Goto(_))));
        let labels = cfg.find_nodes(|n| matches!(n.kind, NodeKind::Label(_)));
        assert_eq!(gotos.len(), 1);
        assert_eq!(labels.len(), 1);
        assert!(cfg
            .succs(gotos[0])
            .iter()
            .any(|&(t, k)| t == labels[0] && k == EdgeKind::Goto));
    }

    #[test]
    fn unknown_goto_goes_to_exit() {
        let cfg = cfg_of("goto nowhere;");
        let gotos = cfg.find_nodes(|n| matches!(n.kind, NodeKind::Stmt(Payload::Goto(_))));
        assert!(cfg.succs(gotos[0]).iter().any(|&(t, _)| t == cfg.exit));
    }

    #[test]
    fn macro_loop_head_created() {
        let cfg = cfg_of(
            "struct device_node *dn; for_each_matching_node(dn, ids) { if (a) break; } return 0;",
        );
        let heads = cfg.find_nodes(|n| matches!(n.kind, NodeKind::MacroLoopHead { .. }));
        assert_eq!(heads.len(), 1);
        // The break records the enclosing loop head in its context.
        let breaks = cfg.find_nodes(|n| matches!(n.kind, NodeKind::Stmt(Payload::Break)));
        assert_eq!(cfg.nodes[breaks[0]].loops, vec![heads[0]]);
    }

    #[test]
    fn for_loop_step_runs_before_back_edge() {
        let cfg = cfg_of("int i; for (i = 0; i < a; i++) { b += i; } return b;");
        // The step node exists and has a Back edge to the cond.
        let mut found = false;
        for n in cfg.node_ids() {
            if cfg.succs(n).iter().any(|&(_, k)| k == EdgeKind::Back) {
                found = true;
            }
        }
        assert!(found);
    }

    #[test]
    fn switch_dispatches_to_cases() {
        let cfg = cfg_of(
            "switch (a) { case 1: b = 1; break; case 2: b = 2; break; default: b = 0; } return b;",
        );
        let case_edges: usize = cfg
            .node_ids()
            .map(|n| {
                cfg.succs(n)
                    .iter()
                    .filter(|&&(_, k)| k == EdgeKind::Case)
                    .count()
            })
            .sum();
        assert_eq!(case_edges, 3);
    }

    #[test]
    fn switch_without_default_falls_through() {
        let cfg = cfg_of("switch (a) { case 1: b = 1; } return b;");
        let conds = cfg.find_nodes(|n| matches!(n.kind, NodeKind::Cond(_)));
        // The switch head has a False edge to the code after.
        assert!(cfg
            .succs(conds[0])
            .iter()
            .any(|&(_, k)| k == EdgeKind::False));
    }

    #[test]
    fn nested_loops_context() {
        let cfg = cfg_of("while (a) { while (b) { if (a) break; } } return 0;");
        let breaks = cfg.find_nodes(|n| matches!(n.kind, NodeKind::Stmt(Payload::Break)));
        assert_eq!(cfg.nodes[breaks[0]].loops.len(), 2);
    }

    #[test]
    fn do_while_executes_body_first() {
        let cfg = cfg_of("do { a = 1; } while (b); return a;");
        let heads = cfg.find_nodes(|n| matches!(n.kind, NodeKind::LoopHead));
        assert_eq!(heads.len(), 1);
        // Entry's successor chain passes through the loop head into the
        // body before any condition.
        let (first, _) = cfg.succs(cfg.entry)[0];
        assert_eq!(first, heads[0]);
    }
}

//! Variable-origin analysis: a forward may-analysis over the CFG that
//! tracks, for every program point, which call (or parameter) each
//! pointer variable may currently hold the result of.
//!
//! This is the light-weight stand-in for full def-use chains: the
//! refcounting checkers need to know "`np` was obtained from
//! `of_find_node_by_name`" at the point of a `put`/deref/escape, with
//! one level of copy propagation (`alias = np;`).

use std::collections::{BTreeMap, BTreeSet};

use crate::cfg::{Cfg, NodeId, NodeKind};
use crate::facts::{NodeFacts, StoreTarget};

/// Where a variable's current value may have come from.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Origin {
    /// The return value of a direct call, with the originating node.
    Call {
        /// Callee name.
        name: String,
        /// Node where the call was assigned.
        node: NodeId,
    },
    /// A function parameter (never reassigned so far).
    Param,
    /// Anything else (literal, arithmetic, unparsed).
    Other,
}

/// Per-node origin environments (the state *after* the node executes).
#[derive(Debug, Clone)]
pub struct Origins {
    out: Vec<BTreeMap<String, BTreeSet<Origin>>>,
}

impl Origins {
    /// Runs the analysis to a fixpoint.
    ///
    /// `facts` must be parallel to `cfg.nodes`. `params` seeds the entry
    /// environment.
    pub fn compute(cfg: &Cfg, facts: &[NodeFacts], params: &[String]) -> Origins {
        let n = cfg.nodes.len();
        let mut out: Vec<BTreeMap<String, BTreeSet<Origin>>> = vec![BTreeMap::new(); n];
        // Seed entry with parameters.
        for p in params {
            out[cfg.entry]
                .entry(p.clone())
                .or_default()
                .insert(Origin::Param);
        }
        let mut work: Vec<NodeId> = cfg.node_ids().collect();
        let mut iterations = 0usize;
        let cap = n.saturating_mul(64).max(1024);
        while let Some(node) = work.pop() {
            iterations += 1;
            if iterations > cap {
                break;
            }
            // In-state: union of predecessors' out-states (entry keeps
            // its seeded state).
            let mut env: BTreeMap<String, BTreeSet<Origin>> = if node == cfg.entry {
                out[cfg.entry].clone()
            } else {
                let mut e: BTreeMap<String, BTreeSet<Origin>> = BTreeMap::new();
                for &(p, _) in cfg.preds(node) {
                    for (var, origins) in &out[p] {
                        e.entry(var.clone())
                            .or_default()
                            .extend(origins.iter().cloned());
                    }
                }
                e
            };
            // Transfer: apply this node's assignments.
            apply_transfer(&facts[node], node, &mut env);
            // Macro loop heads bind their iterator argument to the loop
            // macro itself (the hidden find-like call).
            // Which argument is the iterator differs per macro
            // (`for_each_matching_node(dn, ids)` vs
            // `for_each_child_of_node(parent, child)`), so bind every
            // bare-identifier argument; the checkers narrow with their
            // smartloop knowledge base.
            if let NodeKind::MacroLoopHead { name, args } = &cfg.nodes[node].kind {
                for arg in args {
                    if let Some(var) = arg.as_ident() {
                        let mut set = BTreeSet::new();
                        set.insert(Origin::Call {
                            name: name.clone(),
                            node,
                        });
                        env.insert(var.to_string(), set);
                    }
                }
            }
            if env != out[node] {
                out[node] = env;
                for &(s, _) in cfg.succs(node) {
                    if !work.contains(&s) {
                        work.push(s);
                    }
                }
            }
        }
        Origins { out }
    }

    /// The origins of `var` *after* node `n` executes (i.e. visible to
    /// its successors). For queries about the state at `n` itself, ask
    /// about a predecessor — or use [`Origins::at`], which unions the
    /// predecessors.
    pub fn after(&self, n: NodeId, var: &str) -> impl Iterator<Item = &Origin> {
        self.out[n].get(var).into_iter().flatten()
    }

    /// The origins of `var` as seen *by* node `n` (union over preds).
    pub fn at<'a>(&'a self, cfg: &Cfg, n: NodeId, var: &str) -> BTreeSet<&'a Origin> {
        let mut set = BTreeSet::new();
        for &(p, _) in cfg.preds(n) {
            if let Some(origins) = self.out[p].get(var) {
                set.extend(origins.iter());
            }
        }
        if n == cfg.entry {
            if let Some(origins) = self.out[cfg.entry].get(var) {
                set.extend(origins.iter());
            }
        }
        set
    }

    /// Whether `var`, as seen by node `n`, may hold the result of a call
    /// to `callee`.
    pub fn var_from_call(&self, cfg: &Cfg, n: NodeId, var: &str, callee: &str) -> bool {
        self.at(cfg, n, var)
            .iter()
            .any(|o| matches!(o, Origin::Call { name, .. } if name == callee))
    }

    /// All call names `var` may originate from, as seen by node `n`.
    pub fn call_origins(&self, cfg: &Cfg, n: NodeId, var: &str) -> Vec<String> {
        self.at(cfg, n, var)
            .iter()
            .filter_map(|o| match o {
                Origin::Call { name, .. } => Some(name.clone()),
                _ => None,
            })
            .collect()
    }
}

fn apply_transfer(facts: &NodeFacts, node: NodeId, env: &mut BTreeMap<String, BTreeSet<Origin>>) {
    for a in &facts.assigns {
        let StoreTarget::Var(dest) = &a.target else {
            continue;
        };
        let mut set = BTreeSet::new();
        if let Some(call) = &a.rhs_call {
            set.insert(Origin::Call {
                name: call.clone(),
                node,
            });
        } else if let Some(src) = &a.rhs_root {
            // Copy propagation: inherit the source's origins.
            if let Some(origins) = env.get(src) {
                set.extend(origins.iter().cloned());
            } else {
                set.insert(Origin::Other);
            }
        } else {
            set.insert(Origin::Other);
        }
        // Strong update: assignment replaces previous origins.
        env.insert(dest.clone(), set);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::facts::NodeFacts;
    use refminer_cparse::parse_str;

    fn setup(body: &str) -> (Cfg, Vec<NodeFacts>, Origins) {
        let src = format!(
            "int f(struct device *pdev) {{ struct device_node *np; struct device_node *alias; int ret; {body} }}"
        );
        let tu = parse_str("t.c", &src);
        let func = tu.function("f").unwrap();
        let cfg = Cfg::build(func);
        let facts: Vec<NodeFacts> = cfg.nodes.iter().map(NodeFacts::of).collect();
        let origins = Origins::compute(&cfg, &facts, &["pdev".to_string()]);
        (cfg, facts, origins)
    }

    #[test]
    fn call_origin_tracked() {
        let (cfg, facts, origins) =
            setup("np = of_find_node_by_name(NULL, \"x\"); of_node_put(np); return 0;");
        // Find the put node.
        let put = cfg
            .node_ids()
            .find(|&i| facts[i].calls_named("of_node_put"))
            .unwrap();
        assert!(origins.var_from_call(&cfg, put, "np", "of_find_node_by_name"));
    }

    #[test]
    fn copy_propagation() {
        let (cfg, facts, origins) = setup(
            "np = of_find_node_by_name(NULL, \"x\"); alias = np; of_node_put(alias); return 0;",
        );
        let put = cfg
            .node_ids()
            .find(|&i| facts[i].calls_named("of_node_put"))
            .unwrap();
        assert!(origins.var_from_call(&cfg, put, "alias", "of_find_node_by_name"));
    }

    #[test]
    fn strong_update_kills_origin() {
        let (cfg, facts, origins) =
            setup("np = of_find_node_by_name(NULL, \"x\"); np = NULL; of_node_put(np); return 0;");
        let put = cfg
            .node_ids()
            .find(|&i| facts[i].calls_named("of_node_put"))
            .unwrap();
        assert!(!origins.var_from_call(&cfg, put, "np", "of_find_node_by_name"));
    }

    #[test]
    fn merge_over_branches() {
        let (cfg, facts, origins) = setup(
            "if (ret) np = of_find_node_by_name(NULL, \"a\"); else np = of_get_parent(pdev); of_node_put(np); return 0;",
        );
        let put = cfg
            .node_ids()
            .find(|&i| facts[i].calls_named("of_node_put"))
            .unwrap();
        assert!(origins.var_from_call(&cfg, put, "np", "of_find_node_by_name"));
        assert!(origins.var_from_call(&cfg, put, "np", "of_get_parent"));
    }

    #[test]
    fn params_are_params() {
        let (cfg, _facts, origins) = setup("return 0;");
        let at_exit = origins.at(&cfg, cfg.exit, "pdev");
        assert!(at_exit.iter().any(|o| matches!(o, Origin::Param)));
    }

    #[test]
    fn macro_loop_binds_iterator() {
        let (cfg, facts, origins) =
            setup("for_each_child_of_node(pdev, np) { of_node_put(np); } return 0;");
        let put = cfg
            .node_ids()
            .find(|&i| facts[i].calls_named("of_node_put"))
            .unwrap();
        assert!(origins.var_from_call(&cfg, put, "np", "for_each_child_of_node"));
    }
}

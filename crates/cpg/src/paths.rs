//! The path-query engine: existential execution-path search over a CFG.
//!
//! A [`PathQuery`] is the executable form of the paper's semantic
//! templates (§3.2): an ordered sequence of node predicates
//! (`F_start → S_G → B_error → F_end`), each optionally guarded by an
//! *avoid* predicate that prunes paths passing through unwanted nodes
//! (e.g. "reach the exit *without* a paired `put`"). The search runs on
//! the product of the CFG and the step index, so it is polynomial, not
//! path-enumerating.

use crate::cfg::{Cfg, EdgeKind, NodeId};

/// Edge predicate type for [`Step::avoid_edge`]: `(from, to, kind)`.
pub type EdgePredicate<'a> = Box<dyn Fn(NodeId, NodeId, EdgeKind) -> bool + 'a>;

/// A single step of a path query.
pub struct Step<'a> {
    /// Node predicate that advances the query when matched.
    pub matcher: Box<dyn Fn(NodeId) -> bool + 'a>,
    /// Nodes that must *not* be traversed while searching for this
    /// step's match. Avoidance wins: a node that both matches and is
    /// avoided prunes the path (e.g. an error-block node that performs
    /// the paired decrement satisfies the pairing, not the bug).
    pub avoid: Option<Box<dyn Fn(NodeId) -> bool + 'a>>,
    /// Edges that must not be traversed while searching for this
    /// step's match (`(from, to, kind)`). Lets queries express
    /// branch-sensitive facts node predicates cannot, e.g. "never take
    /// the NULL branch of a check on the object".
    pub avoid_edge: Option<EdgePredicate<'a>>,
}

impl<'a> Step<'a> {
    /// A step matching `matcher` with no avoidance constraint.
    pub fn new(matcher: impl Fn(NodeId) -> bool + 'a) -> Step<'a> {
        Step {
            matcher: Box::new(matcher),
            avoid: None,
            avoid_edge: None,
        }
    }

    /// Adds an avoidance constraint to the step.
    pub fn avoiding(mut self, avoid: impl Fn(NodeId) -> bool + 'a) -> Step<'a> {
        self.avoid = Some(Box::new(avoid));
        self
    }

    /// Adds an edge-avoidance constraint to the step.
    pub fn avoiding_edges(
        mut self,
        avoid: impl Fn(NodeId, NodeId, EdgeKind) -> bool + 'a,
    ) -> Step<'a> {
        self.avoid_edge = Some(Box::new(avoid));
        self
    }
}

/// An ordered sequence of [`Step`]s to satisfy along one execution path.
pub struct PathQuery<'a> {
    steps: Vec<Step<'a>>,
    /// Whether back-edges may be traversed (allows reasoning about a
    /// second loop iteration). Default: true.
    follow_back_edges: bool,
}

impl<'a> PathQuery<'a> {
    /// Creates a query from its steps.
    pub fn new(steps: Vec<Step<'a>>) -> PathQuery<'a> {
        PathQuery {
            steps,
            follow_back_edges: true,
        }
    }

    /// Disallows traversing loop back-edges.
    pub fn without_back_edges(mut self) -> PathQuery<'a> {
        self.follow_back_edges = false;
        self
    }

    /// Searches for a path from `start` satisfying every step in order.
    ///
    /// Returns a witness: the node that matched each step. The search
    /// visits each (node, step) state at most once, so runtime is
    /// `O(steps × edges)`.
    pub fn search(&self, cfg: &Cfg, start: NodeId) -> Option<Vec<NodeId>> {
        self.search_inner(cfg, start, None)
    }

    /// [`search`](PathQuery::search) with an additional query-wide edge
    /// veto: an edge for which `veto` returns true is never traversed,
    /// on any step. Used by the feasibility engine to re-run a query
    /// with infeasible branch edges removed.
    pub fn search_with_veto(
        &self,
        cfg: &Cfg,
        start: NodeId,
        veto: &dyn Fn(NodeId, NodeId, EdgeKind) -> bool,
    ) -> Option<Vec<NodeId>> {
        self.search_inner(cfg, start, Some(veto))
    }

    fn search_inner(
        &self,
        cfg: &Cfg,
        start: NodeId,
        veto: Option<&dyn Fn(NodeId, NodeId, EdgeKind) -> bool>,
    ) -> Option<Vec<NodeId>> {
        // A start node outside the CFG can only come from a malformed
        // caller-built query; report "no path" instead of indexing out
        // of bounds.
        if start >= cfg.nodes.len() {
            return None;
        }
        if self.steps.is_empty() {
            return Some(Vec::new());
        }
        let n = cfg.nodes.len();
        let k = self.steps.len();
        // parent[state] = previous state, for witness reconstruction;
        // state = step * n + node.
        let mut seen = vec![false; n * k.max(1) + n];
        let mut parent: Vec<Option<usize>> = vec![None; seen.len()];
        let state = |step: usize, node: NodeId| step * n + node;

        let mut queue = std::collections::VecDeque::new();

        // Process the start node itself: it may match step 0. The
        // avoid predicate is *not* applied to the start node — the
        // caller chose to start there (e.g. the acquiring statement,
        // which often looks like a reassignment of the object).
        let mut start_step = 0usize;
        if (self.steps[0].matcher)(start) {
            start_step = 1;
            if start_step == k {
                return Some(vec![start]);
            }
        }
        let s0 = state(start_step, start);
        seen[s0] = true;
        queue.push_back(s0);

        while let Some(st) = queue.pop_front() {
            let step = st / n;
            let node = st % n;
            for &(succ, kind) in cfg.succs(node) {
                if kind == EdgeKind::Back && !self.follow_back_edges {
                    continue;
                }
                if veto.is_some_and(|v| v(node, succ, kind)) {
                    continue; // Edge vetoed query-wide (infeasible).
                }
                // Decide the successor's step index. Avoidance is
                // checked first and wins over matching.
                if self.steps[step]
                    .avoid_edge
                    .as_ref()
                    .is_some_and(|a| a(node, succ, kind))
                {
                    continue; // Edge pruned.
                }
                if self.steps[step].avoid.as_ref().is_some_and(|a| a(succ)) {
                    continue; // Pruned.
                }
                let next_step = if (self.steps[step].matcher)(succ) {
                    step + 1
                } else {
                    step
                };
                if next_step == k {
                    // Success. Witness = the node that matched each
                    // step: a state whose step exceeds its parent's was
                    // entered by matching.
                    let mut witness = vec![succ];
                    let mut cur = st;
                    loop {
                        let c_step = cur / n;
                        match parent[cur] {
                            Some(p) => {
                                if c_step == p / n + 1 {
                                    witness.push(cur % n);
                                }
                                cur = p;
                            }
                            None => {
                                if c_step == 1 {
                                    // The start node itself matched
                                    // step 0.
                                    witness.push(cur % n);
                                }
                                break;
                            }
                        }
                    }
                    witness.reverse();
                    return Some(witness);
                }
                let nst = state(next_step, succ);
                if !seen[nst] {
                    seen[nst] = true;
                    parent[nst] = Some(st);
                    queue.push_back(nst);
                }
            }
        }
        None
    }

    /// Convenience: search from the CFG entry.
    pub fn search_from_entry(&self, cfg: &Cfg) -> Option<Vec<NodeId>> {
        self.search(cfg, cfg.entry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::{Cfg, NodeKind, Payload};
    use crate::facts::NodeFacts;
    use refminer_cparse::parse_str;

    fn build(body: &str) -> (Cfg, Vec<NodeFacts>) {
        let src =
            format!("int f(struct device *dev) {{ struct device_node *np; int ret; {body} }}");
        let tu = parse_str("t.c", &src);
        let cfg = Cfg::build(tu.function("f").unwrap());
        let facts = cfg.nodes.iter().map(NodeFacts::of).collect();
        (cfg, facts)
    }

    fn call_step<'a>(facts: &'a [NodeFacts], name: &'a str) -> Step<'a> {
        Step::new(move |n| facts[n].calls_named(name))
    }

    #[test]
    fn finds_simple_sequence() {
        let (cfg, facts) = build("get_thing(np); put_thing(np); return 0;");
        let q = PathQuery::new(vec![
            call_step(&facts, "get_thing"),
            call_step(&facts, "put_thing"),
        ]);
        let witness = q.search_from_entry(&cfg).expect("path exists");
        assert_eq!(witness.len(), 2);
    }

    #[test]
    fn order_matters() {
        let (cfg, facts) = build("put_thing(np); get_thing(np); return 0;");
        let q = PathQuery::new(vec![
            call_step(&facts, "get_thing"),
            call_step(&facts, "put_thing"),
        ])
        .without_back_edges();
        assert!(q.search_from_entry(&cfg).is_none());
    }

    #[test]
    fn avoidance_prunes() {
        // get → put on every path to exit: the "reach exit avoiding put"
        // query must fail.
        let (cfg, facts) = build("get_thing(np); put_thing(np); return 0;");
        let exit = cfg.exit;
        let q = PathQuery::new(vec![
            call_step(&facts, "get_thing"),
            Step::new(move |n| n == exit).avoiding(|n| facts[n].calls_named("put_thing")),
        ]);
        assert!(q.search_from_entry(&cfg).is_none());
    }

    #[test]
    fn avoidance_finds_leaky_branch() {
        // One branch returns early without the put.
        let (cfg, facts) = build("get_thing(np); if (ret) return ret; put_thing(np); return 0;");
        let exit = cfg.exit;
        let q = PathQuery::new(vec![
            call_step(&facts, "get_thing"),
            Step::new(move |n| n == exit).avoiding(|n| facts[n].calls_named("put_thing")),
        ]);
        let witness = q.search_from_entry(&cfg).expect("leaky path exists");
        assert_eq!(*witness.last().unwrap(), cfg.exit);
    }

    #[test]
    fn three_step_query() {
        let (cfg, facts) =
            build("get_thing(np); if (ret) goto out; use_thing(np); out: put_thing(np); return 0;");
        let q = PathQuery::new(vec![
            call_step(&facts, "get_thing"),
            call_step(&facts, "use_thing"),
            call_step(&facts, "put_thing"),
        ]);
        assert!(q.search_from_entry(&cfg).is_some());
    }

    #[test]
    fn back_edges_allow_second_iteration() {
        // put before get, but inside a loop: a second iteration sees
        // get → (back) → put.
        let (cfg, facts) = build("while (ret) { put_thing(np); get_thing(np); } return 0;");
        let with_back = PathQuery::new(vec![
            call_step(&facts, "get_thing"),
            call_step(&facts, "put_thing"),
        ]);
        assert!(with_back.search_from_entry(&cfg).is_some());
        let without = PathQuery::new(vec![
            call_step(&facts, "get_thing"),
            call_step(&facts, "put_thing"),
        ])
        .without_back_edges();
        assert!(without.search_from_entry(&cfg).is_none());
    }

    #[test]
    fn empty_query_matches_trivially() {
        let (cfg, _facts) = build("return 0;");
        let q = PathQuery::new(Vec::new());
        assert_eq!(q.search_from_entry(&cfg), Some(Vec::new()));
    }

    #[test]
    fn out_of_range_start_finds_nothing() {
        // Regression: this used to index out of bounds instead of
        // returning None.
        let (cfg, _facts) = build("return 0;");
        let q = PathQuery::new(vec![Step::new(|_| true)]);
        assert_eq!(q.search(&cfg, cfg.nodes.len()), None);
        assert_eq!(q.search(&cfg, usize::MAX), None);
        let empty = PathQuery::new(Vec::new());
        assert_eq!(empty.search(&cfg, cfg.nodes.len() + 7), None);
    }

    #[test]
    fn start_node_can_match_first_step() {
        let (cfg, _facts) = build("return 0;");
        let entry = cfg.entry;
        let q = PathQuery::new(vec![Step::new(move |n| n == entry)]);
        assert_eq!(q.search_from_entry(&cfg), Some(vec![cfg.entry]));
    }

    #[test]
    fn witness_reports_matching_nodes() {
        let (cfg, facts) = build("get_thing(np); mid_thing(np); put_thing(np); return 0;");
        let q = PathQuery::new(vec![
            call_step(&facts, "get_thing"),
            call_step(&facts, "put_thing"),
        ]);
        let witness = q.search_from_entry(&cfg).unwrap();
        assert!(facts[witness[0]].calls_named("get_thing"));
        assert!(facts[witness[1]].calls_named("put_thing"));
        // Verify node kinds are statements.
        for &w in &witness {
            assert!(matches!(
                cfg.nodes[w].kind,
                NodeKind::Stmt(Payload::Expr(_))
            ));
        }
    }
}

//! Structured tracing for the audit pipeline.
//!
//! A [`TraceHandle`] is a cheap, cloneable reference to a shared
//! recorder (or to nothing at all — the disabled handle is a single
//! `None` and every operation on it is a no-op, so the pipeline can
//! thread one through unconditionally). The recorder collects:
//!
//! - **Spans** — named wall-time intervals, optionally tagged with the
//!   unit (file) they cover. Top-level pipeline stages (`scan`,
//!   `parse`, `export`, `merge.kb`, `merge.progdb`, `check`,
//!   `cache.load`, `cache.save`, `report`) run sequentially inside the
//!   `audit` span, so their durations sum to ~the total wall time;
//!   per-unit spans (`parse.unit`, `check.unit`, `feasibility`, …)
//!   nest inside them and overlap freely across worker threads.
//! - **Counters** — named monotonic totals (`cache.parse.hit`,
//!   `limit.token_cap`, `checker.errorpath.us`, `check.steals`, …).
//! - **Peak in-flight** — the high-water mark of concurrently open
//!   *unit* spans, i.e. how many units the work-stealing scheduler
//!   actually had in flight at once.
//!
//! Determinism: recording is observation only. Nothing read from the
//! recorder ever feeds back into analysis results or cache keys, so
//! findings are byte-identical with tracing on or off. The serialized
//! span log ([`TraceLog::to_jsonl`]) has deterministic *field* order
//! (refminer-json preserves insertion order) and sorts spans by start
//! time with stable tie-breaks; the timing values themselves naturally
//! vary run to run.
//!
//! No external dependencies, matching the workspace's offline-shim
//! policy: timekeeping is `std::time::Instant`, sharing is
//! `Arc<Mutex<…>>`. Recording cost is one lock per span end — spans
//! cover whole files or stages, so contention is noise.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use refminer_json::{obj, ToJson, Value};

/// Number of log2 duration buckets in a stage histogram. Bucket `i`
/// counts spans with `dur_us` in `[2^i, 2^(i+1))` (bucket 0 holds `0`
/// and `1` µs); the last bucket absorbs everything longer (≥ ~34 s).
pub const HISTOGRAM_BUCKETS: usize = 26;

/// One recorded span: a named interval, microseconds relative to the
/// recorder's epoch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRec {
    /// Stage name, e.g. `"parse"` or `"check.unit"`.
    pub stage: String,
    /// The unit (file path) the span covers, for per-unit spans.
    pub unit: Option<String>,
    /// Start offset from the recorder epoch, in microseconds.
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
}

/// The shared recorder behind enabled handles.
#[derive(Debug)]
struct Recorder {
    epoch: Instant,
    spans: Mutex<Vec<SpanRec>>,
    counters: Mutex<BTreeMap<String, u64>>,
    in_flight: AtomicU64,
    peak_in_flight: AtomicU64,
}

impl Recorder {
    fn new() -> Recorder {
        Recorder {
            epoch: Instant::now(),
            spans: Mutex::new(Vec::new()),
            counters: Mutex::new(BTreeMap::new()),
            in_flight: AtomicU64::new(0),
            peak_in_flight: AtomicU64::new(0),
        }
    }

    fn push_span(&self, stage: &str, unit: Option<&str>, start: Instant, end: Instant) {
        let rec = SpanRec {
            stage: stage.to_string(),
            unit: unit.map(str::to_string),
            start_us: start.saturating_duration_since(self.epoch).as_micros() as u64,
            dur_us: end.saturating_duration_since(start).as_micros() as u64,
        };
        self.spans.lock().unwrap().push(rec);
    }

    fn enter_unit(&self) {
        let now = self.in_flight.fetch_add(1, Ordering::SeqCst) + 1;
        self.peak_in_flight.fetch_max(now, Ordering::SeqCst);
    }

    fn leave_unit(&self) {
        self.in_flight.fetch_sub(1, Ordering::SeqCst);
    }
}

/// A cloneable handle to a trace recorder; the disabled handle makes
/// every operation free, so pipeline code threads one unconditionally.
#[derive(Debug, Clone, Default)]
pub struct TraceHandle {
    inner: Option<Arc<Recorder>>,
}

impl TraceHandle {
    /// A handle that records into a fresh shared recorder.
    pub fn recording() -> TraceHandle {
        TraceHandle {
            inner: Some(Arc::new(Recorder::new())),
        }
    }

    /// The no-op handle (same as `TraceHandle::default()`).
    pub fn disabled() -> TraceHandle {
        TraceHandle::default()
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Opens a stage span; it records when dropped (or via
    /// [`Span::done`]).
    pub fn span(&self, stage: &str) -> Span {
        Span::open(self.inner.clone(), stage, None, false)
    }

    /// Opens a per-unit span. Unit spans additionally maintain the
    /// in-flight high-water mark.
    pub fn unit_span(&self, stage: &str, unit: &str) -> Span {
        Span::open(self.inner.clone(), stage, Some(unit), true)
    }

    /// Records a span measured externally: `start` was taken with
    /// `Instant::now()` by the caller, `dur` is the accumulated time.
    /// Used where the measured work is interleaved with other work
    /// (e.g. feasibility fixpoints inside graph construction).
    pub fn record_span(&self, stage: &str, unit: Option<&str>, start: Instant, dur: Duration) {
        if let Some(rec) = &self.inner {
            rec.push_span(stage, unit, start, start + dur);
        }
    }

    /// Adds `n` to a named counter.
    pub fn add(&self, counter: &str, n: u64) {
        if n == 0 {
            return;
        }
        if let Some(rec) = &self.inner {
            *rec.counters
                .lock()
                .unwrap()
                .entry(counter.to_string())
                .or_insert(0) += n;
        }
    }

    /// Raises a named counter to at least `n` — a high-water mark
    /// rather than a running total. Used for gauges sampled over time,
    /// e.g. the audit daemon's request-queue depth.
    pub fn add_max(&self, counter: &str, n: u64) {
        if let Some(rec) = &self.inner {
            let mut counters = rec.counters.lock().unwrap();
            let entry = counters.entry(counter.to_string()).or_insert(0);
            if n > *entry {
                *entry = n;
            }
        }
    }

    /// Snapshots everything recorded so far. Returns `None` on a
    /// disabled handle.
    pub fn finish(&self) -> Option<TraceLog> {
        let rec = self.inner.as_ref()?;
        let mut spans = rec.spans.lock().unwrap().clone();
        spans.sort_by(|a, b| {
            (a.start_us, a.dur_us, &a.stage, &a.unit)
                .cmp(&(b.start_us, b.dur_us, &b.stage, &b.unit))
        });
        Some(TraceLog {
            spans,
            counters: rec.counters.lock().unwrap().clone(),
            peak_in_flight: rec.peak_in_flight.load(Ordering::SeqCst),
        })
    }
}

/// An open span; records its interval into the recorder on drop.
#[derive(Debug)]
pub struct Span {
    rec: Option<Arc<Recorder>>,
    stage: String,
    unit: Option<String>,
    start: Instant,
    is_unit: bool,
}

impl Span {
    fn open(rec: Option<Arc<Recorder>>, stage: &str, unit: Option<&str>, is_unit: bool) -> Span {
        if let (Some(r), true) = (&rec, is_unit) {
            r.enter_unit();
        }
        Span {
            rec,
            stage: stage.to_string(),
            unit: unit.map(str::to_string),
            start: Instant::now(),
            is_unit,
        }
    }

    /// Closes the span now (equivalent to dropping it).
    pub fn done(self) {}
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(rec) = &self.rec {
            rec.push_span(
                &self.stage,
                self.unit.as_deref(),
                self.start,
                Instant::now(),
            );
            if self.is_unit {
                rec.leave_unit();
            }
        }
    }
}

/// Everything one run recorded: spans, counters and the in-flight
/// high-water mark.
#[derive(Debug, Clone, Default)]
pub struct TraceLog {
    /// All spans, sorted by `(start_us, dur_us, stage, unit)`.
    pub spans: Vec<SpanRec>,
    /// All counters, sorted by name.
    pub counters: BTreeMap<String, u64>,
    /// High-water mark of concurrently open unit spans.
    pub peak_in_flight: u64,
}

impl TraceLog {
    /// Serializes the log as JSON lines: one `meta` line, then one line
    /// per span, then one line per counter. Field order is fixed
    /// (refminer-json preserves insertion order); spans are sorted by
    /// start time with stable tie-breaks, counters by name.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        out.push_str(
            &obj([
                ("type", "meta".into()),
                ("version", 1u64.to_json()),
                ("spans", self.spans.len().to_json()),
                ("counters", self.counters.len().to_json()),
                ("peak_in_flight", self.peak_in_flight.to_json()),
            ])
            .to_string(),
        );
        out.push('\n');
        for s in &self.spans {
            let mut members = vec![
                ("type".to_string(), Value::from("span")),
                ("stage".to_string(), s.stage.to_json()),
            ];
            if let Some(u) = &s.unit {
                members.push(("unit".to_string(), u.to_json()));
            }
            members.push(("start_us".to_string(), s.start_us.to_json()));
            members.push(("dur_us".to_string(), s.dur_us.to_json()));
            out.push_str(&Value::Obj(members).to_string());
            out.push('\n');
        }
        for (name, value) in &self.counters {
            out.push_str(
                &obj([
                    ("type", "counter".into()),
                    ("name", name.to_json()),
                    ("value", value.to_json()),
                ])
                .to_string(),
            );
            out.push('\n');
        }
        out
    }

    /// Aggregates the log into per-stage statistics and a top-N slowest
    /// unit list.
    pub fn summary(&self, top_n: usize) -> TraceSummary {
        let mut stages: BTreeMap<&str, StageStat> = BTreeMap::new();
        for s in &self.spans {
            let stat = stages.entry(&s.stage).or_insert_with(|| StageStat {
                stage: s.stage.clone(),
                count: 0,
                total_us: 0,
                min_us: u64::MAX,
                max_us: 0,
                buckets: vec![0; HISTOGRAM_BUCKETS],
            });
            stat.count += 1;
            stat.total_us += s.dur_us;
            stat.min_us = stat.min_us.min(s.dur_us);
            stat.max_us = stat.max_us.max(s.dur_us);
            stat.buckets[bucket_of(s.dur_us)] += 1;
        }
        let mut slowest: Vec<SlowUnit> = self
            .spans
            .iter()
            .filter_map(|s| {
                s.unit.as_ref().map(|u| SlowUnit {
                    stage: s.stage.clone(),
                    unit: u.clone(),
                    dur_us: s.dur_us,
                })
            })
            .collect();
        slowest.sort_by(|a, b| {
            b.dur_us
                .cmp(&a.dur_us)
                .then_with(|| (&a.unit, &a.stage).cmp(&(&b.unit, &b.stage)))
        });
        slowest.truncate(top_n);
        let total_us = self
            .spans
            .iter()
            .map(|s| s.start_us + s.dur_us)
            .max()
            .unwrap_or(0)
            .saturating_sub(self.spans.iter().map(|s| s.start_us).min().unwrap_or(0));
        TraceSummary {
            total_us,
            stages: stages.into_values().collect(),
            slowest,
            counters: self.counters.clone(),
            peak_in_flight: self.peak_in_flight,
        }
    }
}

/// The log2 histogram bucket a duration falls into.
fn bucket_of(dur_us: u64) -> usize {
    ((64 - dur_us.leading_zeros() as usize).saturating_sub(1)).min(HISTOGRAM_BUCKETS - 1)
}

/// Aggregated wall-time statistics for one stage name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageStat {
    /// Stage name.
    pub stage: String,
    /// Number of spans.
    pub count: u64,
    /// Total microseconds across spans.
    pub total_us: u64,
    /// Shortest span (`u64::MAX` is impossible — count ≥ 1 by
    /// construction).
    pub min_us: u64,
    /// Longest span.
    pub max_us: u64,
    /// Log2 duration histogram; see [`HISTOGRAM_BUCKETS`].
    pub buckets: Vec<u64>,
}

impl ToJson for StageStat {
    fn to_json(&self) -> Value {
        // Trailing empty buckets are elided to keep reports small; the
        // bucket index is still the log2 of the duration.
        let used = self
            .buckets
            .iter()
            .rposition(|&c| c > 0)
            .map_or(0, |i| i + 1);
        obj([
            ("stage", self.stage.to_json()),
            ("count", self.count.to_json()),
            ("total_us", self.total_us.to_json()),
            ("min_us", self.min_us.to_json()),
            ("max_us", self.max_us.to_json()),
            ("buckets", self.buckets[..used].to_json()),
        ])
    }
}

/// One entry in the slowest-units table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlowUnit {
    /// The stage the span belonged to.
    pub stage: String,
    /// The unit path.
    pub unit: String,
    /// Span duration in microseconds.
    pub dur_us: u64,
}

/// A digest of one run's trace, for `--stats` and benchmark reports.
#[derive(Debug, Clone, Default)]
pub struct TraceSummary {
    /// Wall-clock extent of the whole log in microseconds (last span
    /// end minus first span start).
    pub total_us: u64,
    /// Per-stage statistics, sorted by stage name.
    pub stages: Vec<StageStat>,
    /// The slowest per-unit spans, longest first.
    pub slowest: Vec<SlowUnit>,
    /// All counters, sorted by name.
    pub counters: BTreeMap<String, u64>,
    /// High-water mark of concurrently open unit spans.
    pub peak_in_flight: u64,
}

impl TraceSummary {
    /// Total microseconds recorded for one stage, 0 when absent.
    pub fn stage_total_us(&self, stage: &str) -> u64 {
        self.stages
            .iter()
            .find(|s| s.stage == stage)
            .map_or(0, |s| s.total_us)
    }

    /// Renders the human-readable `--stats` block.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "trace: {:.3}s total, peak {} unit(s) in flight\n",
            self.total_us as f64 / 1e6,
            self.peak_in_flight
        ));
        out.push_str("  stage                      count      total      max\n");
        for s in &self.stages {
            out.push_str(&format!(
                "  {:<24} {:>7} {:>9.3}s {:>7.3}s\n",
                s.stage,
                s.count,
                s.total_us as f64 / 1e6,
                s.max_us as f64 / 1e6,
            ));
        }
        if !self.slowest.is_empty() {
            out.push_str("  slowest units:\n");
            for s in &self.slowest {
                out.push_str(&format!(
                    "    {:>9.3}s  {} ({})\n",
                    s.dur_us as f64 / 1e6,
                    s.unit,
                    s.stage
                ));
            }
        }
        let timers: Vec<(&String, &u64)> = self
            .counters
            .iter()
            .filter(|(k, _)| k.starts_with("checker."))
            .collect();
        if !timers.is_empty() {
            out.push_str("  per-checker time:\n");
            for (k, v) in timers {
                let name = k.trim_start_matches("checker.").trim_end_matches(".us");
                out.push_str(&format!("    {:<22} {:>9.3}s\n", name, *v as f64 / 1e6));
            }
        }
        let rest: Vec<(&String, &u64)> = self
            .counters
            .iter()
            .filter(|(k, _)| !k.starts_with("checker."))
            .collect();
        if !rest.is_empty() {
            out.push_str("  counters:\n");
            for (k, v) in rest {
                out.push_str(&format!("    {k:<28} {v}\n"));
            }
        }
        out
    }
}

impl ToJson for TraceSummary {
    fn to_json(&self) -> Value {
        obj([
            ("total_us", self.total_us.to_json()),
            ("peak_in_flight", self.peak_in_flight.to_json()),
            ("stages", self.stages.to_json()),
            (
                "slowest",
                Value::Arr(
                    self.slowest
                        .iter()
                        .map(|s| {
                            obj([
                                ("unit", s.unit.to_json()),
                                ("stage", s.stage.to_json()),
                                ("dur_us", s.dur_us.to_json()),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "counters",
                Value::Obj(
                    self.counters
                        .iter()
                        .map(|(k, v)| (k.clone(), v.to_json()))
                        .collect(),
                ),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let t = TraceHandle::disabled();
        assert!(!t.is_enabled());
        {
            let _s = t.span("parse");
            let _u = t.unit_span("parse.unit", "a.c");
            t.add("cache.parse.hit", 3);
        }
        assert!(t.finish().is_none());
    }

    #[test]
    fn spans_and_counters_record() {
        let t = TraceHandle::recording();
        {
            let _audit = t.span("audit");
            let _u = t.unit_span("parse.unit", "a.c");
            t.add("cache.parse.hit", 2);
            t.add("cache.parse.hit", 1);
            t.add("zeroes", 0);
        }
        let log = t.finish().unwrap();
        assert_eq!(log.spans.len(), 2);
        assert!(log.spans.iter().any(|s| s.stage == "audit"));
        assert!(log
            .spans
            .iter()
            .any(|s| s.stage == "parse.unit" && s.unit.as_deref() == Some("a.c")));
        assert_eq!(log.counters.get("cache.parse.hit"), Some(&3));
        // Zero adds do not materialize a counter.
        assert!(!log.counters.contains_key("zeroes"));
        assert_eq!(log.peak_in_flight, 1);
    }

    #[test]
    fn add_max_keeps_high_water() {
        let t = TraceHandle::recording();
        t.add_max("queue.depth.peak", 3);
        t.add_max("queue.depth.peak", 1);
        t.add_max("queue.depth.peak", 7);
        t.add_max("queue.depth.peak", 5);
        let log = t.finish().unwrap();
        assert_eq!(log.counters.get("queue.depth.peak"), Some(&7));
        // Inert on a disabled handle, like every other operation.
        TraceHandle::disabled().add_max("x", 9);
    }

    #[test]
    fn peak_in_flight_tracks_concurrency() {
        let t = TraceHandle::recording();
        let a = t.unit_span("check.unit", "a.c");
        let b = t.unit_span("check.unit", "b.c");
        drop(a);
        let c = t.unit_span("check.unit", "c.c");
        drop(b);
        drop(c);
        assert_eq!(t.finish().unwrap().peak_in_flight, 2);
    }

    #[test]
    fn handle_is_shared_across_clones_and_threads() {
        let t = TraceHandle::recording();
        let clones: Vec<TraceHandle> = (0..4).map(|_| t.clone()).collect();
        std::thread::scope(|s| {
            for (i, c) in clones.iter().enumerate() {
                s.spawn(move || {
                    let _u = c.unit_span("parse.unit", &format!("f{i}.c"));
                    c.add("units", 1);
                });
            }
        });
        let log = t.finish().unwrap();
        assert_eq!(log.spans.len(), 4);
        assert_eq!(log.counters.get("units"), Some(&4));
        assert!(log.peak_in_flight >= 1);
    }

    #[test]
    fn jsonl_round_trips_and_orders_fields() {
        let t = TraceHandle::recording();
        {
            let _s = t.span("audit");
            let _u = t.unit_span("check.unit", "x.c");
            t.add("limit.token_cap", 1);
        }
        let text = t.finish().unwrap().to_jsonl();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4); // meta + 2 spans + 1 counter
        let meta = Value::parse(lines[0]).unwrap();
        assert_eq!(meta.get("type").and_then(Value::as_str), Some("meta"));
        assert_eq!(meta.get("spans").and_then(Value::as_u64), Some(2));
        for line in &lines[1..] {
            let v = Value::parse(line).unwrap();
            let ty = v.get("type").and_then(Value::as_str).unwrap();
            assert!(ty == "span" || ty == "counter");
        }
        // Field order is fixed: "type" leads every line.
        for line in &lines {
            assert!(line.starts_with("{\"type\":"));
        }
    }

    #[test]
    fn summary_aggregates_per_stage() {
        let log = TraceLog {
            spans: vec![
                SpanRec {
                    stage: "parse.unit".into(),
                    unit: Some("a.c".into()),
                    start_us: 0,
                    dur_us: 100,
                },
                SpanRec {
                    stage: "parse.unit".into(),
                    unit: Some("b.c".into()),
                    start_us: 10,
                    dur_us: 900,
                },
                SpanRec {
                    stage: "audit".into(),
                    unit: None,
                    start_us: 0,
                    dur_us: 1000,
                },
            ],
            counters: BTreeMap::new(),
            peak_in_flight: 2,
        };
        let sum = log.summary(1);
        assert_eq!(sum.total_us, 1000);
        let parse = sum.stages.iter().find(|s| s.stage == "parse.unit").unwrap();
        assert_eq!(parse.count, 2);
        assert_eq!(parse.total_us, 1000);
        assert_eq!(parse.min_us, 100);
        assert_eq!(parse.max_us, 900);
        // 100µs lands in bucket 6 ([64,128)), 900µs in bucket 9.
        assert_eq!(parse.buckets[6], 1);
        assert_eq!(parse.buckets[9], 1);
        assert_eq!(sum.slowest.len(), 1);
        assert_eq!(sum.slowest[0].unit, "b.c");
        assert_eq!(sum.stage_total_us("audit"), 1000);
        assert_eq!(sum.stage_total_us("missing"), 0);
        let text = sum.render_text();
        assert!(text.contains("parse.unit"));
        assert!(text.contains("slowest units"));
    }

    #[test]
    fn histogram_buckets_are_log2() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 1);
        assert_eq!(bucket_of(4), 2);
        assert_eq!(bucket_of(1023), 9);
        assert_eq!(bucket_of(1024), 10);
        assert_eq!(bucket_of(u64::MAX), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn record_span_uses_caller_timing() {
        let t = TraceHandle::recording();
        let start = Instant::now();
        t.record_span(
            "feasibility",
            Some("a.c"),
            start,
            Duration::from_micros(250),
        );
        let log = t.finish().unwrap();
        assert_eq!(log.spans.len(), 1);
        assert_eq!(log.spans[0].stage, "feasibility");
        assert_eq!(log.spans[0].dur_us, 250);
    }
}

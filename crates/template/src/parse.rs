//! Text parser for the semantic-template syntax.
//!
//! Grammar (ASCII form of the paper's notation):
//!
//! ```text
//! template  := atom (`->` atom)*
//! atom      := ctx `_` subscript
//! ctx       := `F` | `S` | `B` | `M`
//! subscript := `{` spec `}` | word [`(` param `)`]
//! spec      := op (`.` op)* [`(` param `)`]
//! op        := `G` | `G_E` | `G_N` | `G_H` | `P` | `P_H` | `A`
//!            | `A_GO` | `D` | `D_N` | `L` | `U` | `free`
//! word      := `start` | `end` | `error` | `break` | `SL` | ident
//! ```

use crate::ast::{Atom, ContextKind, OpSpec, Operator, Subscript, Template};

/// A template-syntax error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TemplateParseError {
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for TemplateParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "template syntax error: {}", self.message)
    }
}

impl std::error::Error for TemplateParseError {}

fn err<T>(message: impl Into<String>) -> Result<T, TemplateParseError> {
    Err(TemplateParseError {
        message: message.into(),
    })
}

/// Parses a template from its text syntax.
///
/// # Examples
///
/// ```
/// use refminer_template::parse_template;
///
/// let t = parse_template("F_start -> S_{G_E} -> B_error -> F_end").unwrap();
/// assert_eq!(t.atoms.len(), 4);
/// assert_eq!(t.to_string(), "F_start -> S_{G_E} -> B_error -> F_end");
/// ```
pub fn parse_template(text: &str) -> Result<Template, TemplateParseError> {
    let mut atoms = Vec::new();
    for part in text.split("->") {
        let part = part.trim();
        if part.is_empty() {
            return err("empty atom");
        }
        atoms.push(parse_atom(part)?);
    }
    Ok(Template::new(atoms))
}

fn parse_atom(text: &str) -> Result<Atom, TemplateParseError> {
    let mut chars = text.chars();
    let ctx = match chars.next() {
        Some('F') => ContextKind::Func,
        Some('S') => ContextKind::Stmt,
        Some('B') => ContextKind::Block,
        Some('M') => ContextKind::Macro,
        other => return err(format!("unknown context symbol {other:?} in `{text}`")),
    };
    let rest: String = chars.collect();
    let Some(sub_text) = rest.strip_prefix('_') else {
        return err(format!("missing `_` after context in `{text}`"));
    };
    let sub = parse_subscript(sub_text)?;
    Ok(Atom::new(ctx, sub))
}

fn parse_subscript(text: &str) -> Result<Subscript, TemplateParseError> {
    if let Some(inner) = text.strip_prefix('{') {
        // `{spec}` with an optional `(param)` suffix outside the braces
        // (`S_{U.D}(p0)`).
        let Some(close) = inner.find('}') else {
            return err(format!("unclosed `{{` in `{text}`"));
        };
        let mut spec = parse_spec(&inner[..close])?;
        let suffix = inner[close + 1..].trim();
        if !suffix.is_empty() {
            let Some(param) = suffix.strip_prefix('(').and_then(|s| s.strip_suffix(')')) else {
                return err(format!("malformed parameter suffix in `{text}`"));
            };
            attach_param(&mut spec, param);
        }
        return Ok(Subscript::Op(spec));
    }
    // `word` or `word(param)`.
    let (word, param) = split_param(text)?;
    let sub = match word {
        "start" => Subscript::Start,
        "end" => Subscript::End,
        "error" => Subscript::Error,
        "break" => Subscript::Break,
        "SL" => Subscript::SmartLoop,
        w => {
            // Single-letter operator shorthand: `S_G`, `S_P(p0)`.
            if let Some(op) = Operator::from_str(w) {
                let mut spec = OpSpec::new(op);
                if let Some(p) = param {
                    spec = spec.with_param(p);
                }
                return Ok(Subscript::Op(spec));
            }
            Subscript::Named(w.to_string())
        }
    };
    if param.is_some() {
        return err(format!("parameter not allowed on `{word}`"));
    }
    Ok(sub)
}

/// Splits `word(param)` into `(word, Some(param))`.
fn split_param(text: &str) -> Result<(&str, Option<&str>), TemplateParseError> {
    match text.find('(') {
        None => Ok((text, None)),
        Some(open) => {
            let Some(inner) = text[open..]
                .strip_prefix('(')
                .and_then(|s| s.strip_suffix(')'))
            else {
                return err(format!("malformed parameter in `{text}`"));
            };
            Ok((&text[..open], Some(inner)))
        }
    }
}

/// Attaches a parameter to the innermost operator of a spec chain.
fn attach_param(spec: &mut OpSpec, param: &str) {
    let mut cur = spec;
    while let Some(inner) = cur.nested.as_deref_mut() {
        cur = inner;
    }
    cur.param = Some(param.to_string());
}

fn parse_spec(text: &str) -> Result<OpSpec, TemplateParseError> {
    let (ops_text, param) = split_param(text.trim())?;
    let mut specs: Vec<OpSpec> = Vec::new();
    for op_text in ops_text.split('.') {
        let op_text = op_text.trim();
        let Some(op) = Operator::from_str(op_text) else {
            return err(format!("unknown operator `{op_text}`"));
        };
        specs.push(OpSpec::new(op));
    }
    if specs.is_empty() {
        return err("empty operator spec");
    }
    // Attach the parameter to the innermost operator.
    if let Some(p) = param {
        if let Some(last) = specs.last_mut() {
            last.param = Some(p.to_string());
        }
    }
    // Fold right-to-left into a nesting chain.
    let mut iter = specs.into_iter().rev();
    let mut acc = iter.next().expect("non-empty checked above");
    for mut outer in iter {
        outer.nested = Some(Box::new(acc));
        acc = outer;
    }
    Ok(acc)
}

/// The paper's nine anti-patterns (§5), ready-parsed.
///
/// Index 0 is Anti-Pattern 1 (`P1`), and so on.
pub fn anti_pattern_templates() -> Vec<(String, Template)> {
    // Text forms follow §5.1.3, §5.2.3, §5.3.4, §5.4.3. P6 spans two
    // functions; the template shows the inc-side function with the
    // named `interpaired` context standing in for the ⊤/⊥ pair.
    let texts: [(&str, &str); 9] = [
        ("P1", "F_start -> S_{G_E} -> B_error -> F_end"),
        ("P2", "F_start -> S_{G_N} -> S_{D_N} -> F_end"),
        ("P3", "F_start -> M_SL -> S_break -> F_end"),
        ("P4", "F_start -> S_{G_H} -> F_end"),
        ("P5", "F_start -> S_G -> B_error -> F_end"),
        ("P6", "F_interpaired -> S_G -> F_end"),
        ("P7", "F_start -> S_G -> S_{free} -> F_end"),
        ("P8", "F_start -> S_P(p0) -> S_D(p0) -> F_end"),
        ("P9", "F_start -> S_{A_GO} -> F_end"),
    ];
    texts
        .iter()
        .map(|(name, text)| {
            (
                name.to_string(),
                parse_template(text).expect("builtin templates are valid"),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::pretty;

    #[test]
    fn parses_listing1_template() {
        let t = parse_template("F_start -> S_G -> B_error -> F_end").unwrap();
        assert_eq!(t.atoms.len(), 4);
        assert_eq!(t.atoms[0].sub, Subscript::Start);
        assert!(matches!(&t.atoms[1].sub, Subscript::Op(s) if s.op == Operator::G));
        assert_eq!(t.atoms[2].sub, Subscript::Error);
    }

    #[test]
    fn parses_listing2_template() {
        let t = parse_template("F_start -> S_P(p0) -> S_{U.D}(p0) -> F_end").unwrap();
        assert_eq!(t.params(), vec!["p0"]);
        match &t.atoms[2].sub {
            Subscript::Op(spec) => {
                assert_eq!(spec.operators(), vec![Operator::U, Operator::D]);
                assert_eq!(spec.bound_param(), Some("p0"));
            }
            other => panic!("expected op, got {other:?}"),
        }
    }

    #[test]
    fn round_trips_through_display() {
        for text in [
            "F_start -> S_{G_E} -> B_error -> F_end",
            "F_start -> S_{G_N} -> S_{D_N} -> F_end",
            "F_start -> M_SL -> S_break -> F_end",
            "F_start -> S_P(p0) -> S_D(p0) -> F_end",
        ] {
            let t = parse_template(text).unwrap();
            assert_eq!(t.to_string(), text, "round trip failed for {text}");
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_template("X_start").is_err());
        assert!(parse_template("F_start -> ").is_err());
        assert!(parse_template("S_{QQ}").is_err());
        assert!(parse_template("Sstart").is_err());
        assert!(parse_template("F_start(p0)").is_err());
    }

    #[test]
    fn all_nine_anti_patterns_parse() {
        let all = anti_pattern_templates();
        assert_eq!(all.len(), 9);
        assert_eq!(all[0].0, "P1");
        assert_eq!(all[7].1.params(), vec!["p0"]);
    }

    #[test]
    fn pretty_renders_math() {
        let t = parse_template("F_start -> S_{G_E} -> B_error -> F_end").unwrap();
        let p = pretty(&t);
        assert!(p.contains('𝐹'));
        assert!(p.contains("𝒢_E"));
        assert!(p.contains('→'));
    }
}

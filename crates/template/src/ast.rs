//! The semantic-template language of §3.2.
//!
//! A template is a `→`-separated sequence of *context atoms*; each atom
//! is a context symbol (𝒮 statement, 𝐵 block, 𝐹 function, 𝑀 macro)
//! subscripted with either a semantic name (`start`, `end`, `error`) or
//! an operator expression (𝒢, 𝒫, 𝒜, 𝒟, ℒ, 𝒰 with optional nesting `∘`
//! and pointer parameters `p0`, `p1`, ...).

use std::fmt;

/// Semantic operators (§3.2 "Semantic Operators").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operator {
    /// 𝒢 — refcount increment.
    G,
    /// 𝒢_E — increment that also increments on error return (§5.1.1).
    GE,
    /// 𝒢_N — increment that may return NULL (§5.1.2).
    GN,
    /// 𝒢_H — hidden increment (refcounting-embedded API, §5.2).
    GH,
    /// 𝒫 — refcount decrement.
    P,
    /// 𝒫_H — hidden decrement (embedded in a find-like API, §5.2.2).
    PH,
    /// 𝒜 — assignment.
    A,
    /// 𝒜_{G|O} — escaping assignment to a global or out parameter
    /// (§5.4.2).
    AEsc,
    /// 𝒟 — pointer dereference.
    D,
    /// 𝒟_N — dereference without a NULL check (§5.1.3).
    DN,
    /// ℒ — lock.
    L,
    /// 𝒰 — unlock.
    U,
    /// `kfree`-style direct free (§5.3.3).
    Free,
}

impl Operator {
    /// The ASCII spelling used in the text syntax.
    pub fn as_str(&self) -> &'static str {
        match self {
            Operator::G => "G",
            Operator::GE => "G_E",
            Operator::GN => "G_N",
            Operator::GH => "G_H",
            Operator::P => "P",
            Operator::PH => "P_H",
            Operator::A => "A",
            Operator::AEsc => "A_GO",
            Operator::D => "D",
            Operator::DN => "D_N",
            Operator::L => "L",
            Operator::U => "U",
            Operator::Free => "free",
        }
    }

    /// The paper's mathematical rendering.
    pub fn pretty(&self) -> &'static str {
        match self {
            Operator::G => "𝒢",
            Operator::GE => "𝒢_E",
            Operator::GN => "𝒢_N",
            Operator::GH => "𝒢_H",
            Operator::P => "𝒫",
            Operator::PH => "𝒫_H",
            Operator::A => "𝒜",
            Operator::AEsc => "𝒜_{G|O}",
            Operator::D => "𝒟",
            Operator::DN => "𝒟_N",
            Operator::L => "ℒ",
            Operator::U => "𝒰",
            Operator::Free => "free",
        }
    }

    /// Parses the ASCII spelling.
    ///
    /// Not the `FromStr` trait: an unknown spelling is an ordinary
    /// `None`, not an error type.
    #[allow(clippy::should_implement_trait)]
    pub fn from_str(s: &str) -> Option<Operator> {
        Some(match s {
            "G" => Operator::G,
            "G_E" | "GE" => Operator::GE,
            "G_N" | "GN" => Operator::GN,
            "G_H" | "GH" => Operator::GH,
            "P" => Operator::P,
            "P_H" | "PH" => Operator::PH,
            "A" => Operator::A,
            "A_GO" | "AGO" | "A_G|O" => Operator::AEsc,
            "D" => Operator::D,
            "D_N" | "DN" => Operator::DN,
            "L" => Operator::L,
            "U" => Operator::U,
            "free" => Operator::Free,
            _ => return None,
        })
    }
}

/// An operator expression: an operator, possibly nested (`U∘D`), with an
/// optional pointer parameter (`p0`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpSpec {
    /// The outer operator.
    pub op: Operator,
    /// A nested operator (the `∘` composition), if any.
    pub nested: Option<Box<OpSpec>>,
    /// The bound pointer parameter name (`p0`), if any.
    pub param: Option<String>,
}

impl OpSpec {
    /// A bare operator.
    pub fn new(op: Operator) -> OpSpec {
        OpSpec {
            op,
            nested: None,
            param: None,
        }
    }

    /// Adds a pointer parameter.
    pub fn with_param(mut self, p: impl Into<String>) -> OpSpec {
        self.param = Some(p.into());
        self
    }

    /// Nests another operator under this one (`self ∘ inner`).
    pub fn nesting(mut self, inner: OpSpec) -> OpSpec {
        self.nested = Some(Box::new(inner));
        self
    }

    /// All operators in the composition, outermost first.
    pub fn operators(&self) -> Vec<Operator> {
        let mut out = vec![self.op];
        let mut cur = &self.nested;
        while let Some(spec) = cur {
            out.push(spec.op);
            cur = &spec.nested;
        }
        out
    }

    /// The parameter bound anywhere in the composition.
    pub fn bound_param(&self) -> Option<&str> {
        if let Some(p) = &self.param {
            return Some(p);
        }
        self.nested.as_ref().and_then(|n| n.bound_param())
    }
}

/// Context symbols (§3.2 "Contexts").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ContextKind {
    /// 𝒮 — a statement.
    Stmt,
    /// 𝐵 — a basic block.
    Block,
    /// 𝐹 — a function.
    Func,
    /// 𝑀 — a macro.
    Macro,
}

impl ContextKind {
    fn letter(&self) -> char {
        match self {
            ContextKind::Stmt => 'S',
            ContextKind::Block => 'B',
            ContextKind::Func => 'F',
            ContextKind::Macro => 'M',
        }
    }

    fn pretty(&self) -> char {
        match self {
            ContextKind::Stmt => '𝒮',
            ContextKind::Block => '𝐵',
            ContextKind::Func => '𝐹',
            ContextKind::Macro => '𝑀',
        }
    }
}

/// The subscript attached to a context symbol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Subscript {
    /// `start` — function entry.
    Start,
    /// `end` — function exit.
    End,
    /// `error` — an error-handling block.
    Error,
    /// `break` — a loop break statement.
    Break,
    /// `SL` — a smartloop macro.
    SmartLoop,
    /// An operator expression.
    Op(OpSpec),
    /// Any other semantic name.
    Named(String),
}

/// A single template atom: context + subscript.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Atom {
    /// The context symbol.
    pub ctx: ContextKind,
    /// Its subscript.
    pub sub: Subscript,
}

impl Atom {
    /// Creates an atom.
    pub fn new(ctx: ContextKind, sub: Subscript) -> Atom {
        Atom { ctx, sub }
    }
}

/// A complete semantic template: an execution path of atoms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Template {
    /// The atoms, in path order.
    pub atoms: Vec<Atom>,
}

impl Template {
    /// Creates a template from atoms.
    pub fn new(atoms: Vec<Atom>) -> Template {
        Template { atoms }
    }

    /// All distinct parameter names bound in the template, in order of
    /// first use.
    pub fn params(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        for atom in &self.atoms {
            if let Subscript::Op(spec) = &atom.sub {
                if let Some(p) = spec.bound_param() {
                    if !out.contains(&p) {
                        out.push(p);
                    }
                }
            }
        }
        out
    }
}

impl fmt::Display for Template {
    /// Renders the template in its ASCII text syntax (parseable back by
    /// [`parse_template`](crate::parse_template)).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, atom) in self.atoms.iter().enumerate() {
            if i > 0 {
                write!(f, " -> ")?;
            }
            write!(f, "{}_", atom.ctx.letter())?;
            match &atom.sub {
                Subscript::Start => write!(f, "start")?,
                Subscript::End => write!(f, "end")?,
                Subscript::Error => write!(f, "error")?,
                Subscript::Break => write!(f, "break")?,
                Subscript::SmartLoop => write!(f, "SL")?,
                Subscript::Named(n) => write!(f, "{n}")?,
                Subscript::Op(spec) => write_spec(f, spec, false)?,
            }
        }
        Ok(())
    }
}

fn write_spec(f: &mut fmt::Formatter<'_>, spec: &OpSpec, pretty: bool) -> fmt::Result {
    let render = |op: &Operator| {
        if pretty {
            op.pretty().to_string()
        } else {
            op.as_str().to_string()
        }
    };
    // Simple single-letter operators use the shorthand `S_P(p0)`;
    // underscored names and compositions are braced, with any parameter
    // outside: `S_{G_E}`, `S_{U.D}(p0)`.
    let simple = spec.nested.is_none() && !spec.op.as_str().contains('_') && !pretty;
    if simple {
        write!(f, "{}", render(&spec.op))?;
    } else {
        write!(f, "{{{}", render(&spec.op))?;
        let mut cur = &spec.nested;
        while let Some(inner) = cur {
            write!(f, "{}{}", if pretty { "∘" } else { "." }, render(&inner.op))?;
            cur = &inner.nested;
        }
        write!(f, "}}")?;
    }
    if let Some(p) = spec.bound_param() {
        write!(f, "({p})")?;
    }
    Ok(())
}

/// Renders a template in the paper's mathematical notation, e.g.
/// `𝐹_start → 𝒮_{𝒫}(p0) → 𝒮_{𝒰∘𝒟}(p0) → 𝐹_end`.
pub fn pretty(t: &Template) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for (i, atom) in t.atoms.iter().enumerate() {
        if i > 0 {
            out.push_str(" → ");
        }
        out.push(atom.ctx.pretty());
        out.push('_');
        match &atom.sub {
            Subscript::Start => out.push_str("start"),
            Subscript::End => out.push_str("end"),
            Subscript::Error => out.push_str("error"),
            Subscript::Break => out.push_str("break"),
            Subscript::SmartLoop => out.push_str("𝒮ℒ"),
            Subscript::Named(n) => out.push_str(n),
            Subscript::Op(spec) => {
                let _ = write!(out, "{}", PrettySpec(spec));
            }
        }
    }
    out
}

struct PrettySpec<'a>(&'a OpSpec);

impl fmt::Display for PrettySpec<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_spec(f, self.0, true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operators_round_trip() {
        for op in [
            Operator::G,
            Operator::GE,
            Operator::GN,
            Operator::P,
            Operator::DN,
            Operator::AEsc,
        ] {
            assert_eq!(Operator::from_str(op.as_str()), Some(op));
        }
    }

    #[test]
    fn opspec_composition() {
        let spec = OpSpec::new(Operator::U).nesting(OpSpec::new(Operator::D).with_param("p0"));
        assert_eq!(spec.operators(), vec![Operator::U, Operator::D]);
        assert_eq!(spec.bound_param(), Some("p0"));
    }

    #[test]
    fn template_params() {
        let t = Template::new(vec![
            Atom::new(ContextKind::Func, Subscript::Start),
            Atom::new(
                ContextKind::Stmt,
                Subscript::Op(OpSpec::new(Operator::P).with_param("p0")),
            ),
            Atom::new(
                ContextKind::Stmt,
                Subscript::Op(OpSpec::new(Operator::D).with_param("p0")),
            ),
            Atom::new(ContextKind::Func, Subscript::End),
        ]);
        assert_eq!(t.params(), vec!["p0"]);
    }

    #[test]
    fn display_ascii() {
        let t = Template::new(vec![
            Atom::new(ContextKind::Func, Subscript::Start),
            Atom::new(ContextKind::Stmt, Subscript::Op(OpSpec::new(Operator::GE))),
            Atom::new(ContextKind::Block, Subscript::Error),
            Atom::new(ContextKind::Func, Subscript::End),
        ]);
        assert_eq!(t.to_string(), "F_start -> S_{G_E} -> B_error -> F_end");
    }

    #[test]
    fn pretty_rendering() {
        let t = Template::new(vec![
            Atom::new(ContextKind::Func, Subscript::Start),
            Atom::new(
                ContextKind::Stmt,
                Subscript::Op(
                    OpSpec::new(Operator::U).nesting(OpSpec::new(Operator::D).with_param("p0")),
                ),
            ),
            Atom::new(ContextKind::Func, Subscript::End),
        ]);
        let p = pretty(&t);
        assert!(p.contains('𝒰'));
        assert!(p.contains('∘'));
        assert!(p.contains("(p0)"));
    }
}

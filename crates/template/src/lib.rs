//! # refminer-template
//!
//! The semantic-template language the SOSP '23 refcounting study uses to
//! describe bugs (§3.2) and anti-patterns (§5): operators 𝒢/𝒫/𝒜/𝒟/ℒ/𝒰
//! over contexts 𝒮/𝐵/𝐹/𝑀 along a potential execution path.
//!
//! Three layers:
//!
//! - [`Template`] and friends — the AST of the notation;
//! - [`parse_template`] — the ASCII text syntax
//!   (`"F_start -> S_{G_E} -> B_error -> F_end"`);
//! - [`TemplateMatcher`] — compiles a template to a CPG path query and
//!   searches function graphs for witnesses.
//!
//! [`anti_pattern_templates`] returns the paper's nine anti-patterns
//! ready-parsed; the checker crate builds its detectors on top of these
//! with added per-pattern precision (origins, avoidance constraints).

mod ast;
mod matcher;
mod parse;

pub use ast::{pretty, Atom, ContextKind, OpSpec, Operator, Subscript, Template};
pub use matcher::{TemplateMatch, TemplateMatcher};
pub use parse::{anti_pattern_templates, parse_template, TemplateParseError};

//! Template matching: compiling a semantic template into a CPG path
//! query and searching a function graph for witnesses.

use std::collections::BTreeSet;

use refminer_cpg::{
    Feasibility, FunctionGraph, NodeId, NodeKind, PathQuery, Payload, Step, StoreTarget,
};
use refminer_rcapi::{ApiKb, RcClass, RcDir};

use crate::ast::{Atom, ContextKind, OpSpec, Operator, Subscript, Template};

/// A successful template match.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TemplateMatch {
    /// The nodes that matched each atom, in order.
    pub witness: Vec<NodeId>,
    /// The variable bound to each template parameter, in
    /// [`Template::params`] order.
    pub bindings: Vec<(String, String)>,
    /// Whether the witnessing path survives the graph's path-feasibility
    /// constraints (correlated branches, constant flags, NULL guards).
    pub feasibility: Feasibility,
}

/// Matches templates against function graphs using an API knowledge
/// base to give call names their refcounting meaning.
///
/// # Examples
///
/// ```
/// use refminer_cparse::parse_str;
/// use refminer_cpg::FunctionGraph;
/// use refminer_rcapi::ApiKb;
/// use refminer_template::{parse_template, TemplateMatcher};
///
/// let tu = parse_str("t.c", r#"
/// int f(struct sock *sk)
/// {
///         sock_put(sk);
///         return sk->sk_err;
/// }
/// "#);
/// let g = FunctionGraph::build(tu.function("f").unwrap());
/// let kb = ApiKb::builtin();
/// let t = parse_template("F_start -> S_P(p0) -> S_D(p0) -> F_end").unwrap();
/// let matches = TemplateMatcher::new(&kb).find(&t, &g);
/// assert_eq!(matches.len(), 1);
/// assert_eq!(matches[0].bindings[0], ("p0".to_string(), "sk".to_string()));
/// ```
pub struct TemplateMatcher<'kb> {
    kb: &'kb ApiKb,
}

impl<'kb> TemplateMatcher<'kb> {
    /// Creates a matcher over a knowledge base.
    pub fn new(kb: &'kb ApiKb) -> TemplateMatcher<'kb> {
        TemplateMatcher { kb }
    }

    /// Finds all matches of `template` in `graph`, one per satisfiable
    /// parameter binding (plus a single match for parameterless
    /// templates).
    pub fn find(&self, template: &Template, graph: &FunctionGraph) -> Vec<TemplateMatch> {
        let params = template.params();
        if params.is_empty() {
            return self
                .find_with_binding(template, graph, &[])
                .into_iter()
                .collect();
        }
        // Enumerate candidate variables: pointer parameters plus every
        // assignment target in the function.
        let candidates = candidate_vars(graph);
        let mut out = Vec::new();
        // Templates in the paper bind at most one parameter; support
        // that directly and fall back to the first candidate set
        // otherwise.
        let param = params[0];
        for var in &candidates {
            let binding = vec![(param.to_string(), var.clone())];
            if let Some(m) = self.find_with_binding(template, graph, &binding) {
                out.push(m);
            }
        }
        out
    }

    /// Attempts a match under a fixed parameter binding.
    pub fn find_with_binding(
        &self,
        template: &Template,
        graph: &FunctionGraph,
        bindings: &[(String, String)],
    ) -> Option<TemplateMatch> {
        let steps: Vec<Step<'_>> = template
            .atoms
            .iter()
            .map(|atom| self.compile_atom(atom, graph, bindings))
            .collect();
        let query = PathQuery::new(steps);
        let witness = query.search_from_entry(&graph.cfg)?;
        let feasibility = graph.feas.classify(&query, &graph.cfg, graph.cfg.entry);
        Some(TemplateMatch {
            witness,
            bindings: bindings.to_vec(),
            feasibility,
        })
    }

    /// Compiles one atom into a path-query step.
    fn compile_atom<'a>(
        &'a self,
        atom: &'a Atom,
        graph: &'a FunctionGraph,
        bindings: &'a [(String, String)],
    ) -> Step<'a>
    where
        'kb: 'a,
    {
        let lookup = move |p: &str| -> Option<String> {
            bindings
                .iter()
                .find(|(name, _)| name == p)
                .map(|(_, var)| var.clone())
        };
        let kb = self.kb;
        match (&atom.ctx, &atom.sub) {
            (ContextKind::Func, Subscript::Start) => {
                Step::new(move |n: NodeId| n == graph.cfg.entry)
            }
            (ContextKind::Func, Subscript::End) => Step::new(move |n: NodeId| n == graph.cfg.exit),
            (ContextKind::Func, Subscript::Named(_)) => {
                // Named function contexts (e.g. `F_interpaired`) cannot
                // be checked intra-procedurally; treat as the entry so
                // the rest of the template still constrains the path.
                Step::new(move |n: NodeId| n == graph.cfg.entry)
            }
            (ContextKind::Block, Subscript::Error) => {
                Step::new(move |n: NodeId| graph.is_error_node(n))
            }
            (ContextKind::Macro, Subscript::SmartLoop) => Step::new(move |n: NodeId| {
                matches!(
                    &graph.cfg.nodes[n].kind,
                    NodeKind::MacroLoopHead { name, .. } if kb.smartloop(name).is_some()
                )
            }),
            (_, Subscript::Break) => Step::new(move |n: NodeId| {
                matches!(&graph.cfg.nodes[n].kind, NodeKind::Stmt(Payload::Break))
            }),
            (_, Subscript::Op(spec)) => {
                let spec = spec.clone();
                Step::new(move |n: NodeId| op_matches(kb, graph, n, &spec, &lookup))
            }
            // Remaining combinations (named statements/blocks, macro
            // names) match nothing rather than everything, keeping
            // queries conservative.
            _ => Step::new(move |_n: NodeId| false),
        }
    }
}

/// Candidate variables for parameter binding: pointer params and all
/// assignment-target variables.
fn candidate_vars(graph: &FunctionGraph) -> Vec<String> {
    let mut set: BTreeSet<String> = BTreeSet::new();
    for p in graph.pointer_params() {
        set.insert(p.to_string());
    }
    for facts in &graph.facts {
        for a in &facts.assigns {
            if let StoreTarget::Var(v) = &a.target {
                set.insert(v.clone());
            }
        }
    }
    set.into_iter().collect()
}

/// Whether node `n` exhibits the operator spec (every operator in the
/// composition must hold on the node, with parameter constraints).
fn op_matches(
    kb: &ApiKb,
    graph: &FunctionGraph,
    n: NodeId,
    spec: &OpSpec,
    lookup: &dyn Fn(&str) -> Option<String>,
) -> bool {
    let var = spec.bound_param().and_then(lookup);
    spec.operators()
        .iter()
        .all(|op| single_op_matches(kb, graph, n, *op, var.as_deref()))
}

fn single_op_matches(
    kb: &ApiKb,
    graph: &FunctionGraph,
    n: NodeId,
    op: Operator,
    var: Option<&str>,
) -> bool {
    let facts = &graph.facts[n];
    let call_matches = |pred: &dyn Fn(&refminer_rcapi::RcApi) -> bool| -> bool {
        facts.calls.iter().any(|c| {
            let Some(api) = kb.get(&c.name) else {
                return false;
            };
            if !pred(api) {
                return false;
            }
            match (var, api.object_arg()) {
                (Some(v), Some(idx)) => c.arg_root(idx) == Some(v),
                // Object flows via return value: accept if the node
                // assigns the result to the bound variable (or no
                // binding requested).
                (Some(v), None) => facts.assigns.iter().any(|a| {
                    a.rhs_call.as_deref() == Some(c.name.as_str())
                        && a.target == StoreTarget::Var(v.to_string())
                }),
                (None, _) => true,
            }
        })
    };
    match op {
        Operator::G => call_matches(&|api| api.dir == RcDir::Inc),
        Operator::GE => call_matches(&|api| api.dir == RcDir::Inc && api.inc_on_error),
        Operator::GN => call_matches(&|api| api.dir == RcDir::Inc && api.may_return_null),
        Operator::GH => {
            call_matches(&|api| api.dir == RcDir::Inc && api.class == RcClass::Embedded)
        }
        Operator::P => call_matches(&|api| api.dir == RcDir::Dec),
        Operator::PH => {
            // A hidden decrement: an *increment*-classified embedded
            // API that also puts its argument (ArgAndReturned flow).
            call_matches(&|api| {
                api.dir == RcDir::Inc
                    && api.class == RcClass::Embedded
                    && api.object_arg().is_some()
            })
        }
        Operator::A => !facts.assigns.is_empty(),
        Operator::AEsc => facts.assigns.iter().any(|a| {
            matches!(
                &a.target,
                StoreTarget::Field { .. } | StoreTarget::Indirect(_)
            ) && match var {
                Some(v) => a.rhs_root.as_deref() == Some(v),
                None => true,
            }
        }),
        Operator::D => match var {
            Some(v) => facts.derefs_var(v),
            None => !facts.derefs.is_empty(),
        },
        Operator::DN => {
            // A dereference with no NULL check between: the checker
            // layer adds the avoidance; at the node level this is a
            // plain dereference.
            match var {
                Some(v) => facts.derefs_var(v),
                None => !facts.derefs.is_empty(),
            }
        }
        Operator::L => facts.calls.iter().any(|c| is_lock_name(&c.name, false)),
        Operator::U => facts.calls.iter().any(|c| is_lock_name(&c.name, true)),
        Operator::Free => facts.calls.iter().any(|c| {
            matches!(
                c.name.as_str(),
                "kfree" | "kvfree" | "kfree_sensitive" | "vfree"
            )
        }),
    }
}

/// Whether `name` is a lock (`unlock == false`) or unlock
/// (`unlock == true`) primitive.
fn is_lock_name(name: &str, unlock: bool) -> bool {
    let has_unlock = name.contains("unlock");
    if unlock {
        has_unlock
    } else {
        name.contains("lock") && !has_unlock
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_template;
    use refminer_cparse::parse_str;

    fn graph(src: &str) -> FunctionGraph {
        let tu = parse_str("t.c", src);
        let f = tu.functions().next().expect("one function");
        FunctionGraph::build(f)
    }

    #[test]
    fn matches_inc_then_error_block() {
        let g = graph(
            r#"
int probe(struct device *dev)
{
        int ret = pm_runtime_get_sync(dev);
        if (ret < 0)
                return ret;
        pm_runtime_put(dev);
        return 0;
}
"#,
        );
        let kb = ApiKb::builtin();
        let t = parse_template("F_start -> S_{G_E} -> B_error -> F_end").unwrap();
        let matches = TemplateMatcher::new(&kb).find(&t, &g);
        assert_eq!(matches.len(), 1);
    }

    #[test]
    fn correlated_branch_match_is_tagged_infeasible() {
        // `ret` is constant 0 at the test, so the error block is
        // unreachable: the match survives structurally but carries an
        // Infeasible verdict.
        let g = graph(
            r#"
int probe(struct device *dev)
{
        int ret = pm_runtime_get_sync(dev);
        ret = 0;
        if (ret)
                return ret;
        pm_runtime_put(dev);
        return 0;
}
"#,
        );
        let kb = ApiKb::builtin();
        let t = parse_template("F_start -> S_{G_E} -> B_error -> F_end").unwrap();
        let matches = TemplateMatcher::new(&kb).find(&t, &g);
        assert_eq!(matches.len(), 1);
        assert_eq!(matches[0].feasibility, Feasibility::Infeasible);
    }

    #[test]
    fn no_match_without_error_block() {
        let g = graph(
            r#"
int probe(struct device *dev)
{
        pm_runtime_get_sync(dev);
        pm_runtime_put(dev);
        return 0;
}
"#,
        );
        let kb = ApiKb::builtin();
        let t = parse_template("F_start -> S_{G_E} -> B_error -> F_end").unwrap();
        assert!(TemplateMatcher::new(&kb).find(&t, &g).is_empty());
    }

    #[test]
    fn uad_template_binds_parameter() {
        let g = graph(
            r#"
void unhash(struct sock *sk)
{
        sock_put(sk);
        sk->sk_state = 0;
}
"#,
        );
        let kb = ApiKb::builtin();
        let t = parse_template("F_start -> S_P(p0) -> S_D(p0) -> F_end").unwrap();
        let matches = TemplateMatcher::new(&kb).find(&t, &g);
        assert_eq!(matches.len(), 1);
        assert_eq!(matches[0].bindings[0].1, "sk");
    }

    #[test]
    fn uad_template_rejects_deref_before_put() {
        let g = graph(
            r#"
void unhash(struct sock *sk)
{
        sk->sk_state = 0;
        sock_put(sk);
}
"#,
        );
        let kb = ApiKb::builtin();
        let t = parse_template("F_start -> S_P(p0) -> S_D(p0) -> F_end").unwrap();
        assert!(TemplateMatcher::new(&kb).find(&t, &g).is_empty());
    }

    #[test]
    fn smartloop_break_template() {
        let g = graph(
            r#"
int scan(void)
{
        struct device_node *dn;
        for_each_matching_node(dn, ids) {
                if (found)
                        break;
        }
        return 0;
}
"#,
        );
        let kb = ApiKb::builtin();
        let t = parse_template("F_start -> M_SL -> S_break -> F_end").unwrap();
        assert_eq!(TemplateMatcher::new(&kb).find(&t, &g).len(), 1);
    }

    #[test]
    fn unlock_nested_deref_template() {
        let g = graph(
            r#"
int setup(struct usb_serial *serial)
{
        usb_serial_put(serial);
        mutex_unlock(&serial->disc_mutex);
        return 0;
}
"#,
        );
        let kb = ApiKb::builtin();
        let t = parse_template("F_start -> S_P(p0) -> S_{U.D}(p0) -> F_end").unwrap();
        let matches = TemplateMatcher::new(&kb).find(&t, &g);
        assert_eq!(matches.len(), 1);
        assert_eq!(matches[0].bindings[0].1, "serial");
    }

    #[test]
    fn escape_assignment_template() {
        let g = graph(
            r#"
void attach(struct priv *priv, struct device_node *np)
{
        priv->node = np;
}
"#,
        );
        let kb = ApiKb::builtin();
        let t = parse_template("F_start -> S_{A_GO} -> F_end").unwrap();
        assert_eq!(TemplateMatcher::new(&kb).find(&t, &g).len(), 1);
    }
}
